#ifndef STPT_FUZZ_FUZZ_UTIL_H_
#define STPT_FUZZ_FUZZ_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"

namespace stpt::fuzz {

/// One corpus entry: the file's bytes plus its basename (used both for
/// reporting and to derive the entry's deterministic mutation stream, so
/// adding or removing other files never shifts an entry's mutants).
struct CorpusEntry {
  std::string name;
  std::vector<uint8_t> bytes;
};

/// Loads every regular file under `dir` (non-recursive), sorted by
/// basename. A single-file path loads that one file. Missing paths yield
/// an empty list.
std::vector<CorpusEntry> LoadCorpus(const std::string& path);

/// FNV-1a over a string — the deterministic per-entry seed basis.
uint64_t Fnv1a(const std::string& text);

/// Returns a deterministic mutant of `seed`: 1–8 stacked operations
/// (bit flips, byte writes, interesting-value overwrites, truncations,
/// insertions, erasures, chunk duplication) drawn from `rng`, capped at
/// `max_size` bytes. Pure function of (seed, rng state).
std::vector<uint8_t> Mutate(const std::vector<uint8_t>& seed, Rng& rng,
                            size_t max_size = 1 << 16);

/// Result of a truncation-and-bitflip sweep.
struct SweepStats {
  size_t cases = 0;     ///< inputs fed to the decoder
  size_t accepted = 0;  ///< inputs the decoder reported as valid
};

/// Feeds `decode` every strict prefix of `bytes` and every single-bit flip
/// of `bytes` (exhaustive up to `max_exhaustive` input bytes, deterministic
/// stride sampling beyond that). `decode` returns whether it accepted the
/// input; the helper exists so the byte-level robustness sweep promoted out
/// of serve_test is shared verbatim by the unit tests and the corpus-replay
/// harnesses. The decoder must never crash, hang, or trip a sanitizer.
SweepStats TruncationAndBitflipSweep(
    const std::vector<uint8_t>& bytes,
    const std::function<bool(const uint8_t*, size_t)>& decode,
    size_t max_exhaustive = 4096);

}  // namespace stpt::fuzz

#endif  // STPT_FUZZ_FUZZ_UTIL_H_
