#include <cmath>
#include <complex>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/math_util.h"
#include "kernels/backend.h"
#include "signal/fft.h"
#include "signal/wavelet.h"
#include "targets.h"

namespace stpt::fuzz {
namespace {

using Complex = std::complex<double>;

/// Textbook O(n^2) DFT — the reference the Bluestein implementation is
/// checked against on every (arbitrary, not just power-of-two) length.
std::vector<Complex> NaiveDft(const std::vector<Complex>& input, bool inverse) {
  const size_t n = input.size();
  std::vector<Complex> out(n);
  const double dir = inverse ? 1.0 : -1.0;
  for (size_t k = 0; k < n; ++k) {
    Complex acc(0.0, 0.0);
    for (size_t j = 0; j < n; ++j) {
      const double ang = dir * 2.0 * M_PI * static_cast<double>(k * j) /
                         static_cast<double>(n);
      acc += input[j] * Complex(std::cos(ang), std::sin(ang));
    }
    out[k] = inverse ? acc / static_cast<double>(n) : acc;
  }
  return out;
}

[[noreturn]] void Fail(const char* what, size_t n, double err, double tol) {
  std::fprintf(stderr, "FuzzSignalDiff: %s (n=%zu, err=%g, tol=%g)\n", what, n,
               err, tol);
  std::abort();
}

double MaxDiff(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

}  // namespace

int FuzzSignalDiff(const uint8_t* data, size_t size) {
  if (size < 2) return 0;
  // Layout: u16 length selector, then 8 bytes per sample (little-endian
  // f64 bit patterns; non-finite samples are mapped to 0 so the transforms
  // are compared on the domain they are specified over).
  const size_t n = ((static_cast<size_t>(data[0]) | (static_cast<size_t>(data[1]) << 8)) % 300) + 1;
  std::vector<double> samples(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    uint64_t u = 0;
    for (size_t b = 0; b < 8; ++b) {
      const size_t at = 2 + i * 8 + b;
      u |= static_cast<uint64_t>(at < size ? data[at] : 0) << (8 * b);
    }
    double v;
    std::memcpy(&v, &u, sizeof(v));
    if (!std::isfinite(v) || std::fabs(v) > 1e12) v = 0.0;
    samples[i] = v;
  }

  std::vector<Complex> input(n);
  double max_abs = 0.0;
  for (size_t i = 0; i < n; ++i) {
    input[i] = Complex(samples[i], 0.0);
    max_abs = std::max(max_abs, std::fabs(samples[i]));
  }
  // Error in both implementations grows with n and magnitude; the naive
  // reference itself carries O(n * eps * |x|) rounding, so scale the bound.
  const double tol = 1e-9 * static_cast<double>(n) * (1.0 + max_abs) *
                     static_cast<double>(n);

  const std::vector<Complex> fast = signal::Dft(input, /*inverse=*/false);
  const std::vector<Complex> naive = NaiveDft(input, /*inverse=*/false);
  if (fast.size() != n || naive.size() != n) {
    Fail("Dft returned wrong length", n, 0.0, tol);
  }
  double err = MaxDiff(fast, naive);
  if (err > tol) Fail("Bluestein Dft diverges from naive DFT", n, err, tol);

  const std::vector<Complex> back = signal::Dft(fast, /*inverse=*/true);
  err = MaxDiff(back, input);
  if (err > tol) Fail("inverse Dft does not round-trip", n, err, tol);

  // Haar round-trip on the padded (power-of-two) signal.
  const std::vector<double> padded = signal::PadToPowerOfTwo(samples);
  auto fwd = kernels::Default()->HaarForward(padded);
  if (!fwd.ok()) Fail("HaarForward rejected a power-of-two length", n, 0.0, 0.0);
  auto inv = kernels::Default()->HaarInverse(*fwd);
  if (!inv.ok()) Fail("HaarInverse rejected HaarForward output", n, 0.0, 0.0);
  double haar_err = 0.0;
  for (size_t i = 0; i < padded.size(); ++i) {
    haar_err = std::max(haar_err, std::fabs((*inv)[i] - padded[i]));
  }
  const double haar_tol = 1e-10 * (1.0 + max_abs) *
                          static_cast<double>(FloorLog2(padded.size()) + 1);
  if (haar_err > haar_tol) {
    Fail("Haar forward/inverse does not round-trip", padded.size(), haar_err,
         haar_tol);
  }
  return 0;
}

}  // namespace stpt::fuzz
