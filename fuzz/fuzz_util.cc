#include "fuzz_util.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace stpt::fuzz {
namespace {

namespace fs = std::filesystem;

std::vector<uint8_t> ReadFileBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

/// Boundary-ish byte values that parsers mishandle most often.
constexpr uint8_t kInterestingBytes[] = {0x00, 0x01, 0x7F, 0x80, 0xFF, 0xFE, 0x20, 0x2C};

}  // namespace

std::vector<CorpusEntry> LoadCorpus(const std::string& path) {
  std::vector<CorpusEntry> out;
  std::error_code ec;
  if (fs::is_regular_file(path, ec)) {
    out.push_back({fs::path(path).filename().string(), ReadFileBytes(path)});
    return out;
  }
  if (!fs::is_directory(path, ec)) return out;
  for (const auto& entry : fs::directory_iterator(path, ec)) {
    if (!entry.is_regular_file()) continue;
    out.push_back({entry.path().filename().string(), ReadFileBytes(entry.path())});
  }
  std::sort(out.begin(), out.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) { return a.name < b.name; });
  return out;
}

uint64_t Fnv1a(const std::string& text) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::vector<uint8_t> Mutate(const std::vector<uint8_t>& seed, Rng& rng,
                            size_t max_size) {
  std::vector<uint8_t> out = seed;
  const int ops = static_cast<int>(rng.UniformInt(1, 8));
  for (int op = 0; op < ops; ++op) {
    switch (rng.UniformInt(0, 6)) {
      case 0: {  // flip one bit
        if (out.empty()) break;
        const size_t i = static_cast<size_t>(rng.UniformInt(0, out.size() - 1));
        out[i] ^= uint8_t{1} << rng.UniformInt(0, 7);
        break;
      }
      case 1: {  // overwrite one byte with anything
        if (out.empty()) break;
        const size_t i = static_cast<size_t>(rng.UniformInt(0, out.size() - 1));
        out[i] = static_cast<uint8_t>(rng.UniformInt(0, 255));
        break;
      }
      case 2: {  // overwrite one byte with an interesting value
        if (out.empty()) break;
        const size_t i = static_cast<size_t>(rng.UniformInt(0, out.size() - 1));
        out[i] = kInterestingBytes[rng.UniformInt(
            0, static_cast<int64_t>(std::size(kInterestingBytes)) - 1)];
        break;
      }
      case 3: {  // truncate
        if (out.empty()) break;
        out.resize(static_cast<size_t>(rng.UniformInt(0, out.size() - 1)));
        break;
      }
      case 4: {  // insert random bytes
        const size_t n = static_cast<size_t>(rng.UniformInt(1, 16));
        if (out.size() + n > max_size) break;
        const size_t at = static_cast<size_t>(rng.UniformInt(0, out.size()));
        std::vector<uint8_t> ins(n);
        for (auto& b : ins) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
        out.insert(out.begin() + at, ins.begin(), ins.end());
        break;
      }
      case 5: {  // erase a chunk
        if (out.empty()) break;
        const size_t at = static_cast<size_t>(rng.UniformInt(0, out.size() - 1));
        const size_t n = static_cast<size_t>(
            rng.UniformInt(1, std::min<int64_t>(16, out.size() - at)));
        out.erase(out.begin() + at, out.begin() + at + n);
        break;
      }
      default: {  // duplicate a chunk elsewhere (splice)
        if (out.size() < 2) break;
        const size_t from = static_cast<size_t>(rng.UniformInt(0, out.size() - 2));
        const size_t n = static_cast<size_t>(
            rng.UniformInt(1, std::min<int64_t>(32, out.size() - from)));
        if (out.size() + n > max_size) break;
        const size_t at = static_cast<size_t>(rng.UniformInt(0, out.size()));
        const std::vector<uint8_t> chunk(out.begin() + from, out.begin() + from + n);
        out.insert(out.begin() + at, chunk.begin(), chunk.end());
        break;
      }
    }
  }
  if (out.size() > max_size) out.resize(max_size);
  return out;
}

SweepStats TruncationAndBitflipSweep(
    const std::vector<uint8_t>& bytes,
    const std::function<bool(const uint8_t*, size_t)>& decode,
    size_t max_exhaustive) {
  SweepStats stats;
  const size_t n = bytes.size();
  const size_t stride = n <= max_exhaustive ? 1 : n / max_exhaustive + 1;
  for (size_t len = 0; len < n; len += stride) {
    ++stats.cases;
    if (decode(bytes.data(), len)) ++stats.accepted;
  }
  std::vector<uint8_t> flipped = bytes;
  for (size_t i = 0; i < n; i += stride) {
    for (int bit = 0; bit < 8; ++bit) {
      flipped[i] ^= uint8_t{1} << bit;
      ++stats.cases;
      if (decode(flipped.data(), flipped.size())) ++stats.accepted;
      flipped[i] ^= uint8_t{1} << bit;
    }
  }
  return stats;
}

}  // namespace stpt::fuzz
