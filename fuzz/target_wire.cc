#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "serve/wire.h"
#include "targets.h"

namespace stpt::fuzz {
namespace {

void RequireCanonical(const char* what, const std::vector<uint8_t>& reencoded,
                      const std::vector<uint8_t>& payload) {
  if (reencoded != payload) {
    std::fprintf(stderr, "FuzzWire: accepted %s payload is not canonical "
                         "(in %zu bytes, out %zu bytes)\n",
                 what, payload.size(), reencoded.size());
    std::abort();
  }
}

/// Feeds the bytes through ReadFrame as a raw socket stream: whatever a
/// hostile client can put on the wire, the frame reader must turn into
/// frames or a Status. Bounded at 64 frames; the writer side is closed up
/// front so a short stream terminates cleanly.
void FuzzFrameStream(const uint8_t* data, size_t size) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return;
  size_t sent = 0;
  while (sent < size) {
    const ssize_t w = ::write(fds[0], data + sent, size - sent);
    if (w <= 0) break;
    sent += static_cast<size_t>(w);
  }
  ::shutdown(fds[0], SHUT_WR);
  for (int i = 0; i < 64; ++i) {
    auto frame = serve::ReadFrame(fds[1]);
    if (!frame.ok()) break;
  }
  ::close(fds[0]);
  ::close(fds[1]);
}

}  // namespace

int FuzzWire(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t mode = data[0];
  const std::vector<uint8_t> payload(data + 1, data + size);
  switch (mode) {
    case 0: {
      auto batch = serve::DecodeQueryRequest(payload);
      if (batch.ok()) {
        RequireCanonical("query request", serve::EncodeQueryRequest(*batch), payload);
      }
      break;
    }
    case 1: {
      auto answers = serve::DecodeQueryResponse(payload);
      if (answers.ok()) {
        RequireCanonical("query response", serve::EncodeQueryResponse(*answers),
                         payload);
      }
      break;
    }
    case 2: {
      auto text = serve::DecodeString(payload);
      if (text.ok()) {
        RequireCanonical("string", serve::EncodeString(*text), payload);
      }
      break;
    }
    case 3: {
      auto meta = serve::DecodeMetaResponse(payload);
      if (meta.ok()) {
        RequireCanonical("meta", serve::EncodeMetaResponse(*meta), payload);
      }
      break;
    }
    case 5: {
      auto request = serve::DecodeTenantQueryRequest(payload);
      if (request.ok()) {
        RequireCanonical("tenant query request",
                         serve::EncodeTenantQueryRequest(*request), payload);
      }
      break;
    }
    case 6: {
      auto response = serve::DecodeTenantQueryResponse(payload);
      if (response.ok()) {
        RequireCanonical("tenant query response",
                         serve::EncodeTenantQueryResponse(*response), payload);
      }
      break;
    }
    case 7: {
      auto admin = serve::DecodeAdminRequest(payload);
      if (admin.ok()) {
        RequireCanonical("admin request", serve::EncodeAdminRequest(*admin),
                         payload);
      }
      break;
    }
    case 8: {
      auto admin = serve::DecodeAdminResponse(payload);
      if (admin.ok()) {
        RequireCanonical("admin response", serve::EncodeAdminResponse(*admin),
                         payload);
      }
      break;
    }
    case 9: {
      auto stats = serve::DecodeShardStatsRequest(payload);
      if (stats.ok()) {
        RequireCanonical("shard stats request",
                         serve::EncodeShardStatsRequest(*stats), payload);
      }
      break;
    }
    case 10: {
      auto fetch = serve::DecodeTraceFetchRequest(payload);
      if (fetch.ok()) {
        RequireCanonical("trace fetch request",
                         serve::EncodeTraceFetchRequest(*fetch), payload);
      }
      break;
    }
    default:
      // Socket traffic is slower than pure codec calls, so cap the stream
      // the frame reader sees. 64 KiB is plenty to cover every header and
      // length edge case.
      FuzzFrameStream(payload.data(), std::min<size_t>(payload.size(), 1 << 16));
      break;
  }
  return 0;
}

}  // namespace stpt::fuzz
