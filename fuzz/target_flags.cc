#include <string>
#include <vector>

#include "common/flags.h"
#include "targets.h"

namespace stpt::fuzz {

int FuzzFlags(const uint8_t* data, size_t size) {
  // Tokenise on newlines into an argv (argv[0] is the program name). Token
  // and argc caps keep one run cheap; the content is unrestricted bytes.
  std::vector<std::string> tokens = {"fuzz"};
  std::string current;
  for (size_t i = 0; i < size && tokens.size() < 64; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n') {
      tokens.push_back(current);
      current.clear();
    } else if (current.size() < 1024) {
      current.push_back(c);
    }
  }
  if (!current.empty() && tokens.size() < 64) tokens.push_back(current);

  std::vector<const char*> argv;
  argv.reserve(tokens.size());
  for (const auto& t : tokens) argv.push_back(t.c_str());

  FlagSet flags;
  flags.DefineString("str", "default", "a string flag");
  flags.DefineInt("int", 7, "an int flag");
  flags.DefineDouble("num", 0.5, "a double flag");
  flags.DefineBool("flag", false, "a bool flag");
  flags.IgnorePrefix("benchmark_");
  const Status status = flags.Parse(static_cast<int>(argv.size()), argv.data());
  if (status.ok()) {
    // Accepted parses must leave every flag readable (typed getters assert
    // on registry corruption) and Provided() consistent.
    (void)flags.GetString("str");
    (void)flags.GetInt("int");
    (void)flags.GetDouble("num");
    (void)flags.GetBool("flag");
    (void)flags.Provided("flag");
    (void)flags.positional();
  }
  return 0;
}

}  // namespace stpt::fuzz
