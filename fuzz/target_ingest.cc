#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "ingest/clock.h"
#include "ingest/pipeline.h"
#include "serve/registry.h"
#include "serve/wire.h"
#include "targets.h"

namespace stpt::fuzz {
namespace {

void RequireCanonical(const char* what, const std::vector<uint8_t>& reencoded,
                      const std::vector<uint8_t>& payload) {
  if (reencoded != payload) {
    std::fprintf(stderr, "FuzzIngest: accepted %s payload is not canonical "
                         "(in %zu bytes, out %zu bytes)\n",
                 what, payload.size(), reencoded.size());
    std::abort();
  }
}

/// Structure-aware pipeline driver: the payload is cut into (header, batch)
/// records and applied to an in-memory IngestPipeline. Whatever arbitrary
/// tenants, cells, timestamps, and loads arrive, every ack must account for
/// every reading (accepted + clamped + rejected) and the shard ledgers must
/// replay to the accountants' consumed epsilon bitwise. Bounded work: dims 4x4x8, <= 64 batches of
/// <= 16 readings, <= 4 shards.
void FuzzPipeline(const uint8_t* data, size_t size) {
  auto registry = serve::SnapshotRegistry::Create();
  if (!registry.ok()) return;
  ingest::ManualClock clock;
  ingest::IngestOptions options;
  options.dims = grid::Dims{4, 4, 8};
  options.epoch_readings = 24;
  options.epoch_ticks_ns = 1000;
  options.backfill_grace = 1;  // keep the late-but-in-grace path reachable
  options.max_shards = 4;
  auto pipeline =
      ingest::IngestPipeline::Create(registry->get(), &clock, options);
  if (!pipeline.ok()) return;

  size_t pos = 0;
  for (int b = 0; b < 64 && pos < size; ++b) {
    // Header: tenant selector, reading count, clock advance.
    const uint8_t sel = data[pos++];
    serve::ReadingBatch batch;
    batch.tenant = "t" + std::to_string(sel & 0x7);
    batch.tile = "0";
    const size_t count = std::min<size_t>((sel >> 3) & 0xF, (size - pos) / 6);
    for (size_t i = 0; i < count; ++i) {
      serve::MeterReading r;
      r.meter_id = i;
      // Raw bytes, deliberately unclamped: out-of-bounds cells, late
      // timesteps, and wild loads must all be rejected, never crash.
      r.x = static_cast<int32_t>(data[pos]) - 8;
      r.y = static_cast<int32_t>(data[pos + 1]) - 8;
      r.t = static_cast<int32_t>(data[pos + 2]) - 8;
      uint16_t load = 0;
      std::memcpy(&load, data + pos + 3, 2);
      r.kwh = static_cast<double>(load) * 0.25;
      clock.Advance(data[pos + 5]);
      pos += 6;
      batch.readings.push_back(r);
    }
    const serve::ReadingAck ack = pipeline->get()->Apply(batch);
    if (ack.accepted + ack.clamped + ack.rejected != batch.readings.size()) {
      std::fprintf(stderr, "FuzzIngest: ack %llu+%llu+%llu != %zu readings\n",
                   static_cast<unsigned long long>(ack.accepted),
                   static_cast<unsigned long long>(ack.clamped),
                   static_cast<unsigned long long>(ack.rejected),
                   batch.readings.size());
      std::abort();
    }
  }
  for (int s = 0; s < 8; ++s) {
    auto audit = pipeline->get()->Audit("t" + std::to_string(s), "0");
    if (!audit.ok()) continue;
    // Bitwise, not approximate: the ledger records the exact charges.
    if (audit->ledger_composed_epsilon != audit->consumed_epsilon) {
      std::fprintf(stderr, "FuzzIngest: ledger %.17g != accountant %.17g\n",
                   audit->ledger_composed_epsilon, audit->consumed_epsilon);
      std::abort();
    }
  }
}

}  // namespace

int FuzzIngest(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t mode = data[0];
  const std::vector<uint8_t> payload(data + 1, data + size);
  switch (mode) {
    case 0: {
      auto batch = serve::DecodeReadingBatch(payload);
      if (batch.ok()) {
        RequireCanonical("reading batch", serve::EncodeReadingBatch(*batch),
                         payload);
      }
      break;
    }
    case 1: {
      auto ack = serve::DecodeReadingAck(payload);
      if (ack.ok()) {
        RequireCanonical("reading ack", serve::EncodeReadingAck(*ack), payload);
      }
      break;
    }
    default:
      FuzzPipeline(payload.data(), std::min<size_t>(payload.size(), 1 << 12));
      break;
  }
  return 0;
}

}  // namespace stpt::fuzz
