// Deterministic corpus-replay driver: the ctest-facing counterpart of the
// libFuzzer binaries. For every checked-in corpus entry it runs the harness
// on the seed itself, on a full truncation-and-bitflip sweep of the seed,
// and on a fixed number of stacked mutants derived from the deterministic
// Rng — no wall clock and no entropy anywhere, so a replay is
// bit-reproducible across machines and runs, and any crash it finds can be
// re-triggered from the corpus file alone.
//
// Usage: fuzz_<target>_replay [--mutants=N] <corpus dir or file>...
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fuzz_util.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

// Seeds larger than this skip the exhaustive sweep (it is quadratic in the
// seed size) and rely on mutants instead.
constexpr size_t kMaxSweepBytes = 4096;

}  // namespace

int main(int argc, char** argv) {
  int mutants = 128;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--mutants=", 0) == 0) {
      mutants = std::atoi(arg.c_str() + 10);
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: %s [--mutants=N] <corpus dir or file>...\n",
                 argv[0]);
    return 2;
  }

  size_t seeds = 0, cases = 0;
  for (const std::string& path : paths) {
    const auto corpus = stpt::fuzz::LoadCorpus(path);
    if (corpus.empty()) {
      std::fprintf(stderr, "replay: no corpus entries under '%s'\n", path.c_str());
      return 2;
    }
    for (const auto& entry : corpus) {
      ++seeds;
      LLVMFuzzerTestOneInput(entry.bytes.data(), entry.bytes.size());
      ++cases;
      if (entry.bytes.size() <= kMaxSweepBytes) {
        const auto stats = stpt::fuzz::TruncationAndBitflipSweep(
            entry.bytes, [](const uint8_t* data, size_t size) {
              LLVMFuzzerTestOneInput(data, size);
              return false;  // acceptance is not asserted here, only "no crash"
            });
        cases += stats.cases;
      }
      // The mutation stream is keyed by the entry's basename, so adding or
      // removing other corpus files never changes this entry's mutants.
      stpt::Rng rng(stpt::fuzz::Fnv1a(entry.name) ^ 0x5EEDF00DULL);
      for (int m = 0; m < mutants; ++m) {
        const auto mutant = stpt::fuzz::Mutate(entry.bytes, rng);
        LLVMFuzzerTestOneInput(mutant.data(), mutant.size());
        ++cases;
      }
    }
  }
  std::printf("replay ok: %zu seeds, %zu cases\n", seeds, cases);
  return 0;
}
