#ifndef STPT_FUZZ_TARGETS_H_
#define STPT_FUZZ_TARGETS_H_

#include <cstddef>
#include <cstdint>

namespace stpt::fuzz {

/// The six structure-aware harnesses, one per byte-eating surface. Each
/// follows the libFuzzer contract: consume arbitrary bytes, return 0, and
/// enforce its surface's invariant — "arbitrary bytes yield a Status error
/// or a valid object, never a crash, hang, or sanitizer report" — by
/// aborting the process on any violation. Every harness is deterministic
/// (no wall clock, no entropy), so corpus replays are bit-reproducible.

/// serve/snapshot.cc: DecodeSnapshot, plus canonical re-encode round-trip
/// on every accepted input.
int FuzzSnapshot(const uint8_t* data, size_t size);

/// serve/wire.cc: the payload codecs (selector byte, including the v2
/// codecs with their optional trailing trace field and the trace-fetch
/// request) and ReadFrame over a socketpair, with canonical re-encode
/// checks on accepted payloads.
int FuzzWire(const uint8_t* data, size_t size);

/// io/csv.cc: ReadMatrixCsv and ReadDatasetCsv over the same untrusted
/// text, with structural invariant checks on every accepted object.
int FuzzCsv(const uint8_t* data, size_t size);

/// common/flags.cc: FlagSet::Parse over a newline-tokenised argv with one
/// flag of each type plus an ignored prefix.
int FuzzFlags(const uint8_t* data, size_t size);

/// signal/: differential harness — Bluestein Dft vs a naive O(n^2) DFT on
/// arbitrary lengths, inverse round-trip, and HaarForward∘HaarInverse.
int FuzzSignalDiff(const uint8_t* data, size_t size);

/// ingest/: DecodeReadingBatch / DecodeReadingAck with canonical re-encode
/// (selector byte), plus a structure-aware IngestPipeline driver that
/// applies arbitrary batch sequences under a ManualClock and checks ack
/// accounting and bitwise ledger-vs-accountant agreement.
int FuzzIngest(const uint8_t* data, size_t size);

}  // namespace stpt::fuzz

#endif  // STPT_FUZZ_TARGETS_H_
