#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "serve/snapshot.h"
#include "targets.h"

namespace stpt::fuzz {

int FuzzSnapshot(const uint8_t* data, size_t size) {
  auto decoded = serve::DecodeSnapshot(data, size);
  if (!decoded.ok()) return 0;  // any Status is a correct outcome
  // The container format is canonical (no padding, exact trailing-byte
  // check), so an accepted input must re-encode to the identical bytes.
  const std::vector<uint8_t> reencoded = serve::EncodeSnapshot(*decoded);
  if (reencoded.size() != size ||
      (size > 0 && std::memcmp(reencoded.data(), data, size) != 0)) {
    std::fprintf(stderr, "FuzzSnapshot: accepted container is not canonical "
                         "(in %zu bytes, out %zu bytes)\n", size, reencoded.size());
    std::abort();
  }
  return 0;
}

}  // namespace stpt::fuzz
