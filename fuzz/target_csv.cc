#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "io/csv.h"
#include "targets.h"

namespace stpt::fuzz {
namespace {

[[noreturn]] void Fail(const char* what) {
  std::fprintf(stderr, "FuzzCsv: %s\n", what);
  std::abort();
}

}  // namespace

int FuzzCsv(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  {
    std::istringstream in(text);
    auto matrix = io::ReadMatrixCsv(in);
    if (matrix.ok()) {
      const auto& dims = matrix->dims();
      if (dims.cx <= 0 || dims.cy <= 0 || dims.ct <= 0 ||
          dims.cx > io::kMaxCsvAxis || dims.cy > io::kMaxCsvAxis ||
          dims.ct > io::kMaxCsvAxis) {
        Fail("accepted matrix with out-of-bounds dims");
      }
      for (const double v : matrix->data()) {
        if (!std::isfinite(v)) Fail("accepted matrix with non-finite cell");
      }
    }
  }

  {
    std::istringstream in(text);
    auto ds = io::ReadDatasetCsv(in);
    if (ds.ok()) {
      if (ds->grid_x <= 0 || ds->grid_y <= 0 || ds->hours <= 0 ||
          ds->grid_x > io::kMaxCsvAxis || ds->grid_y > io::kMaxCsvAxis ||
          ds->hours > io::kMaxCsvAxis) {
        Fail("accepted dataset with out-of-bounds spec dims");
      }
      if (static_cast<int>(ds->households.size()) != ds->spec.num_households) {
        Fail("accepted dataset whose household count mismatches its spec");
      }
      for (const auto& h : ds->households) {
        if (h.cell_x < 0 || h.cell_x >= ds->grid_x || h.cell_y < 0 ||
            h.cell_y >= ds->grid_y) {
          Fail("accepted dataset with household outside the grid");
        }
        if (static_cast<int>(h.series.size()) != ds->hours) {
          Fail("accepted dataset with mis-sized series");
        }
        for (const double v : h.series) {
          if (!std::isfinite(v)) Fail("accepted dataset with non-finite reading");
        }
      }
    }
  }
  return 0;
}

}  // namespace stpt::fuzz
