// One-line libFuzzer entry shim. Each fuzz binary compiles this file with
// -DSTPT_FUZZ_TARGET=<FuzzFunction> so the same five harnesses link both as
// libFuzzer targets (clang, -fsanitize=fuzzer) and under the deterministic
// corpus-replay runner (replay_main.cc, any compiler).
#include "targets.h"

#ifndef STPT_FUZZ_TARGET
#error "compile with -DSTPT_FUZZ_TARGET=<FuzzFunction from targets.h>"
#endif

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  return stpt::fuzz::STPT_FUZZ_TARGET(data, size);
}
