// stpt_ingest — synthetic meter-reading feeder for a --ingest server.
//
//   stpt_ingest --port=P [--host=127.0.0.1] [--tenant=] [--tile=]
//               [--dims=8,8,64] [--slices=16] [--t-offset=0]
//               [--readings=4096] [--batch=256] [--seed=7] [--kwh-max=5.0]
//               [--no-flush] [--fail-on=reject] [--threads=N] [--trace=path]
//               [--log-level=warn] [--trace-sample=N]
//
// Generates --readings synthetic readings spread in time order over
// --slices timesteps starting at --t-offset of a --dims grid (cells and
// loads drawn from a seeded Rng, so a fixed seed replays the identical
// stream), sends them as kReadingBatch frames of --batch readings each,
// and finishes with an empty batch that forces the server to publish any
// trailing partial epoch (suppress with --no-flush). A nonzero --t-offset
// continues a shard a previous invocation left open — the w-event release
// is immutable once published, so re-streaming timesteps an earlier run
// already covered would be rejected as late. Prints accepted/clamped/
// rejected counts, the shard's final epoch, and sustained readings/s.
//
// `--fail-on` picks the admission outcomes that fail the run: `reject`
// (the default) exits nonzero if any reading is rejected, `clamp` also
// fails on sensitivity-clamped readings, and `none` only reports. All
// modes still fail when the final epoch never advanced past zero
// (nothing was published).
//
// `--trace-sample=N` attaches a deterministic per-batch trace context,
// head-sampled 1/N. Sampled batches chain accept → republish → registry
// swap spans in the server's trace store (`stpt_serve trace`). The trace
// ids fork off their own Rng stream, so the reading stream — and the DP
// release it produces — is bit-identical with tracing on or off.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "exec/thread_pool.h"
#include "exec/timing.h"
#include "kernels/backend.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "serve/client.h"
#include "serve/wire.h"

namespace {

using namespace stpt;

int Fail(const Status& status) {
  std::fprintf(stderr, "stpt_ingest: %s\n", status.ToString().c_str());
  return 1;
}

FlagSet MakeFlags() {
  FlagSet flags;
  flags.DefineString("host", "127.0.0.1", "server host");
  flags.DefineInt("port", 0, "server port (required)");
  flags.DefineString("tenant", "", "target tenant ('' = default shard)");
  flags.DefineString("tile", "", "target tile ('' = default tile)");
  flags.DefineString("dims", "8,8,64", "CX,CY,CT grid the readings land in");
  flags.DefineInt("slices", 16, "spread readings over N timesteps");
  flags.DefineInt("t-offset", 0,
                  "first timestep to stream (continue a prior run's shard)");
  flags.DefineInt("readings", 4096, "total readings to stream");
  flags.DefineInt("batch", 256, "readings per kReadingBatch frame");
  flags.DefineInt("seed", 7, "generator seed");
  flags.DefineDouble("kwh-max", 5.0, "loads drawn uniformly from [0, max)");
  flags.DefineBool("no-flush", false, "skip the final forced-publish batch");
  flags.DefineString("fail-on", "reject",
                     "admission outcomes that fail the run "
                     "(reject, clamp, none)");
  flags.DefineInt("threads", 0, "exec pool size (0 = hardware)");
  flags.DefineString("trace", "", "write Chrome trace-event JSON here");
  flags.DefineString("log-level", "warn", "debug|info|warn|error|off");
  flags.DefineString("kernel-backend", "auto", "kernel backend (naive, avx2, auto)");
  flags.DefineInt("trace-sample", 0,
                  "attach trace contexts, head-sampled 1/N (0 = untraced)");
  return flags;
}

int Run(const FlagSet& flags) {
  if (flags.GetInt("port") <= 0) {
    return Fail(Status::InvalidArgument("--port is required"));
  }
  int cx = 0, cy = 0, ct = 0;
  if (std::sscanf(flags.GetString("dims").c_str(), "%d,%d,%d", &cx, &cy,
                  &ct) != 3 ||
      cx <= 0 || cy <= 0 || ct <= 0) {
    return Fail(Status::InvalidArgument("--dims wants positive CX,CY,CT"));
  }
  const int64_t total = flags.GetInt("readings");
  const int64_t batch_size = flags.GetInt("batch");
  const int64_t t_offset = flags.GetInt("t-offset");
  const int64_t slices =
      std::min<int64_t>(flags.GetInt("slices"), ct - t_offset);
  if (total <= 0 || batch_size <= 0 || slices <= 0) {
    return Fail(Status::InvalidArgument(
        "--readings, --batch and --slices must be positive"));
  }
  if (t_offset < 0 || t_offset >= ct) {
    return Fail(Status::InvalidArgument("--t-offset must lie inside the grid"));
  }
  const std::string fail_on = flags.GetString("fail-on");
  if (fail_on != "reject" && fail_on != "clamp" && fail_on != "none") {
    return Fail(Status::InvalidArgument(
        "--fail-on wants reject, clamp or none"));
  }

  auto client = serve::Client::Connect(
      flags.GetString("host"), static_cast<int>(flags.GetInt("port")));
  if (!client.ok()) return Fail(client.status());

  const std::string tenant = flags.GetString("tenant");
  const std::string tile = flags.GetString("tile");
  const double kwh_max = flags.GetDouble("kwh-max");
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  // Trace ids come from their own base Rng (MakeTraceContext forks it
  // without advancing), so the reading stream above replays identically
  // whether or not tracing is on.
  const uint32_t trace_sample =
      static_cast<uint32_t>(flags.GetInt("trace-sample"));
  const Rng trace_base(static_cast<uint64_t>(flags.GetInt("seed")));
  uint64_t batch_index = 0;
  auto next_trace = [&]() {
    return trace_sample > 0
               ? obs::MakeTraceContext(trace_base, batch_index++, trace_sample)
               : obs::TraceContext{};
  };

  // Readings per timestep, in time order so the server never sees a "late"
  // slice: reading i lands on t = i / per_slice.
  const int64_t per_slice = (total + slices - 1) / slices;

  uint64_t accepted = 0, clamped = 0, rejected = 0, epoch = 0;
  std::vector<serve::MeterReading> pending;
  pending.reserve(static_cast<size_t>(batch_size));
  const int64_t start_ns = exec::NowNanos();
  for (int64_t i = 0; i < total; ++i) {
    serve::MeterReading r;
    r.meter_id = static_cast<uint64_t>(i);
    r.x = static_cast<int32_t>(rng.UniformInt(0, cx - 1));
    r.y = static_cast<int32_t>(rng.UniformInt(0, cy - 1));
    r.t = static_cast<int32_t>(t_offset + i / per_slice);
    r.kwh = rng.Uniform(0.0, kwh_max);
    pending.push_back(r);
    if (static_cast<int64_t>(pending.size()) == batch_size || i + 1 == total) {
      auto ack = client->Ingest(tenant, tile, pending, next_trace());
      if (!ack.ok()) return Fail(ack.status());
      accepted += ack->accepted;
      clamped += ack->clamped;
      rejected += ack->rejected;
      epoch = ack->epoch;
      pending.clear();
    }
  }
  if (!flags.GetBool("no-flush")) {
    auto ack = client->Ingest(tenant, tile, {}, next_trace());
    if (!ack.ok()) return Fail(ack.status());
    epoch = ack->epoch;
  }
  const double elapsed_s =
      static_cast<double>(exec::NowNanos() - start_ns) * 1e-9;

  std::printf(
      "streamed %lld readings (%llu accepted, %llu clamped, %llu rejected) "
      "over %lld slices: epoch %llu, %.0f readings/s\n",
      static_cast<long long>(total), static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(clamped),
      static_cast<unsigned long long>(rejected),
      static_cast<long long>(slices), static_cast<unsigned long long>(epoch),
      static_cast<double>(total) / (elapsed_s > 0 ? elapsed_s : 1e-9));
  if (fail_on != "none" && rejected != 0) {
    std::fprintf(stderr, "stpt_ingest: server rejected %llu readings\n",
                 static_cast<unsigned long long>(rejected));
    return 1;
  }
  if (fail_on == "clamp" && clamped != 0) {
    std::fprintf(stderr, "stpt_ingest: server clamped %llu readings\n",
                 static_cast<unsigned long long>(clamped));
    return 1;
  }
  if (epoch == 0) {
    std::fprintf(stderr, "stpt_ingest: no epoch was published\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stpt;
  FlagSet flags = MakeFlags();
  if (const Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "error: %s\nflags for 'stpt_ingest':\n%s",
                 st.ToString().c_str(), flags.Usage().c_str());
    return 2;
  }
  if (flags.Provided("threads")) {
    exec::SetThreads(static_cast<int>(flags.GetInt("threads")));
  }
  obs::LogLevel log_level;
  if (!obs::ParseLogLevel(flags.GetString("log-level"), &log_level)) {
    std::fprintf(stderr, "error: bad --log-level '%s'\n",
                 flags.GetString("log-level").c_str());
    return 2;
  }
  obs::SetLogLevel(log_level);
  if (flags.Provided("kernel-backend")) {
    if (const Status st = kernels::SetDefault(flags.GetString("kernel-backend"));
        !st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 2;
    }
  }
  if (flags.Provided("trace")) {
    obs::RegisterCurrentThreadName("main");
    obs::StartTraceEvents();
  }
  const int rc = Run(flags);
  if (flags.Provided("trace")) {
    obs::StopTraceEvents();
    if (!obs::WriteChromeTrace(flags.GetString("trace"))) {
      std::fprintf(stderr, "error: cannot write trace path '%s'\n",
                   flags.GetString("trace").c_str());
      return 1;
    }
  }
  return rc;
}
