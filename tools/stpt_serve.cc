// stpt_serve — publish-once / serve-many front end for published grids.
//
//   stpt_serve serve    --snapshot=g.stpt [--port=7261] [--bind=127.0.0.1]
//                       [--port-file=path] [--threads=N]
//   stpt_serve query    --port=P [--host=127.0.0.1] [--count=1000]
//                       [--kind=random|small|large] [--seed=7] [--batch=256]
//   stpt_serve verify   --snapshot=g.stpt --port=P [--host=...] [--count=10000]
//                       [--kind=random] [--seed=7] [--batch=256]
//   stpt_serve stats    --port=P [--host=...]
//   stpt_serve shutdown --port=P [--host=...]
//
// `serve` loads a snapshot container (written by `stpt_cli publish
// --snapshot=...`) and answers framed range-query batches over TCP until a
// client sends shutdown. `query` generates a workload against the server's
// dims and reports throughput. `verify` additionally loads the snapshot
// locally and requires every served answer to be bit-identical to direct
// in-memory evaluation — the end-to-end integrity check used by CI.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "exec/timing.h"
#include "query/range_query.h"
#include "serve/client.h"
#include "serve/query_server.h"
#include "serve/snapshot.h"
#include "serve/tcp_server.h"

namespace {

using namespace stpt;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: stpt_serve <serve|query|verify|stats|shutdown> [--options]\n"
               "see the header of tools/stpt_serve.cc for details\n");
  return 2;
}

StatusOr<query::WorkloadKind> KindByName(const std::string& name) {
  if (name == "random") return query::WorkloadKind::kRandom;
  if (name == "small") return query::WorkloadKind::kSmall;
  if (name == "large") return query::WorkloadKind::kLarge;
  return Status::NotFound("unknown workload kind '" + name + "'");
}

int RunServe(const Flags& flags) {
  const std::string path = flags.GetString("snapshot", "grid.stpt");
  auto engine = serve::QueryServer::Open(path);
  if (!engine.ok()) return Fail(engine.status());

  serve::TcpServerOptions options;
  options.bind_address = flags.GetString("bind", "127.0.0.1");
  options.port = static_cast<int>(flags.GetInt("port", 0));
  serve::TcpServer server(&*engine, options);
  const Status st = server.Start();
  if (!st.ok()) return Fail(st);

  if (flags.Has("port-file")) {
    std::ofstream out(flags.GetString("port-file", ""));
    out << server.port() << "\n";
  }
  const grid::Dims& dims = engine->dims();
  std::printf("serving %s release %dx%dx%d (eps=%.1f) on %s:%d\n",
              engine->meta().algorithm.c_str(), dims.cx, dims.cy, dims.ct,
              engine->meta().eps_total, options.bind_address.c_str(), server.port());
  std::fflush(stdout);
  server.Wait();
  server.Stop();
  const serve::ServerStats stats = engine->stats();
  std::printf("served %llu queries, cache hit rate %.1f%%, p99 %.1f us\n",
              static_cast<unsigned long long>(stats.queries), 100.0 * stats.hit_rate(),
              static_cast<double>(stats.p99_ns) * 1e-3);
  return 0;
}

/// Shared query driver for `query` (report only) and `verify` (compare to a
/// locally evaluated snapshot). Returns nonzero on any mismatch.
int RunQueryOrVerify(const Flags& flags, bool verify) {
  const std::string host = flags.GetString("host", "127.0.0.1");
  const int port = static_cast<int>(flags.GetInt("port", 0));
  auto client = serve::Client::Connect(host, port);
  if (!client.ok()) return Fail(client.status());

  auto meta = client->Meta();
  if (!meta.ok()) return Fail(meta.status());

  serve::Snapshot local;
  if (verify) {
    auto snap = serve::ReadSnapshot(flags.GetString("snapshot", "grid.stpt"));
    if (!snap.ok()) return Fail(snap.status());
    if (!(snap->sanitized.dims() == meta->dims)) {
      return Fail(Status::FailedPrecondition(
          "verify: local snapshot dims differ from the server's"));
    }
    local = std::move(*snap);
  }

  auto kind = KindByName(flags.GetString("kind", "random"));
  if (!kind.ok()) return Fail(kind.status());
  const int count = static_cast<int>(flags.GetInt("count", verify ? 10000 : 1000));
  const int batch_size = static_cast<int>(flags.GetInt("batch", 256));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed", 7)));
  auto workload = query::MakeWorkload(*kind, meta->dims, count, rng);
  if (!workload.ok()) return Fail(workload.status());

  const grid::PrefixSum3D* direct = nullptr;
  grid::PrefixSum3D direct_storage{grid::ConsumptionMatrix()};
  if (verify) {
    auto pre = grid::PrefixSum3D::FromRaw(local.sanitized.dims(),
                                          std::move(local.prefix));
    if (!pre.ok()) return Fail(pre.status());
    direct_storage = std::move(*pre);
    direct = &direct_storage;
  }

  const uint64_t start_ns = exec::NowNanos();
  double checksum = 0.0;
  int64_t mismatches = 0;
  for (int base = 0; base < count; base += batch_size) {
    const int n = std::min(batch_size, count - base);
    query::Workload batch(workload->begin() + base, workload->begin() + base + n);
    auto answers = client->Query(batch);
    if (!answers.ok()) return Fail(answers.status());
    for (int i = 0; i < n; ++i) {
      checksum += (*answers)[i];
      if (direct != nullptr) {
        const query::RangeQuery& q = batch[i];
        const double expect = direct->BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1);
        // Bit-identity, not epsilon-closeness: the served path must be the
        // same arithmetic as the local prefix-sum evaluation.
        if (std::memcmp(&expect, &(*answers)[i], sizeof(double)) != 0) ++mismatches;
      }
    }
  }
  const double secs = static_cast<double>(exec::NowNanos() - start_ns) * 1e-9;
  std::printf("%d queries in %.3f s (%.0f q/s), checksum %.6g\n", count, secs,
              secs > 0 ? count / secs : 0.0, checksum);
  if (verify) {
    if (mismatches > 0) {
      std::fprintf(stderr, "verify FAILED: %lld of %d answers differ\n",
                   static_cast<long long>(mismatches), count);
      return 1;
    }
    std::printf("verify OK: all %d answers bit-identical to local evaluation\n",
                count);
  }
  return 0;
}

int RunStats(const Flags& flags) {
  auto client = serve::Client::Connect(flags.GetString("host", "127.0.0.1"),
                                       static_cast<int>(flags.GetInt("port", 0)));
  if (!client.ok()) return Fail(client.status());
  auto stats = client->Stats();
  if (!stats.ok()) return Fail(stats.status());
  std::printf("%s\n", stats->c_str());
  return 0;
}

int RunShutdown(const Flags& flags) {
  auto client = serve::Client::Connect(flags.GetString("host", "127.0.0.1"),
                                       static_cast<int>(flags.GetInt("port", 0)));
  if (!client.ok()) return Fail(client.status());
  const Status st = client->Shutdown();
  if (!st.ok()) return Fail(st);
  std::printf("server shut down\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = stpt::Flags::Parse(argc, argv);
  if (!flags.ok()) return Fail(flags.status());
  if (flags->positional().empty()) return Usage();
  if (flags->Has("threads")) {
    exec::SetThreads(static_cast<int>(flags->GetInt("threads", 0)));
  }
  const std::string command = flags->positional()[0];
  if (command == "serve") return RunServe(*flags);
  if (command == "query") return RunQueryOrVerify(*flags, /*verify=*/false);
  if (command == "verify") return RunQueryOrVerify(*flags, /*verify=*/true);
  if (command == "stats") return RunStats(*flags);
  if (command == "shutdown") return RunShutdown(*flags);
  return Usage();
}
