// stpt_serve — publish-once / serve-many front end for published grids.
//
//   stpt_serve serve    [--snapshot=g.stpt] [--tenant=default] [--tile=0]
//                       [--port=7261] [--bind=127.0.0.1] [--port-file=path]
//                       [--max-inflight=64] [--threads=N]
//                       [--ingest [--ingest-dims=8,8,64]
//                        [--ingest-epoch-readings=4096] [--ingest-epoch-ms=0]
//                        [--ingest-publish-ms=0] [--ingest-window=10]
//                        [--ingest-epsilon=1.0] [--ingest-unit=1.0]
//                        [--ingest-grace=0] [--ingest-cap=1048576]
//                        [--ingest-seed=24301] [--ingest-snapshot-dir=]
//                        [--ingest-ledger=] [--ingest-wal-dir=]]
//   stpt_serve query    --port=P [--host=127.0.0.1] [--tenant=] [--tile=]
//                       [--count=1000] [--kind=random|small|large] [--seed=7]
//                       [--batch=256] [--trace-sample=N]
//   stpt_serve verify   --snapshot=g.stpt --port=P [--tenant=] [--tile=]
//                       [--host=...] [--count=10000] [--kind=random]
//                       [--seed=7] [--batch=256] [--trace-sample=N]
//   stpt_serve load     --port=P --tenant=T [--tile=0] --snapshot=path
//   stpt_serve swap     --port=P --tenant=T [--tile=0] --snapshot=path
//   stpt_serve unload   --port=P --tenant=T [--tile=0]
//   stpt_serve stats    --port=P [--host=...] [--tenant=T [--tile=0]]
//   stpt_serve metrics  --port=P [--host=...]
//   stpt_serve trace    --port=P [--host=...] [--limit=N] [--trace-id=HEX]
//   stpt_serve shutdown --port=P [--host=...]
//
// `serve` starts the sharded event-loop server. With --snapshot it loads
// that container (written by `stpt_cli publish --snapshot=...`) as the
// --tenant/--tile shard (default tenant "default", tile "0" — where v1
// clients are routed); without it the server starts empty and shards are
// loaded at runtime. With --ingest the server additionally accepts
// kReadingBatch frames (see stpt_ingest): readings accumulate per shard and
// every epoch boundary republishes that shard's grid under w-event DP,
// hot-swapping it into the registry with zero dropped queries. Admission
// clamps each meter's per-cell-per-timestep contribution to
// ±--ingest-unit (the sensitivity the noise is calibrated for);
// --ingest-grace keeps that many completed slices open for late
// backfill, and --ingest-cap bounds the per-shard clamp-tracking map.
// With --ingest-wal-dir every batch is write-ahead-logged and a
// restarted server replays the WALs at startup, resuming each shard —
// accumulator, noise stream, budget accountant and audit ledger —
// bit-for-bit where the dead process stopped. --ingest-publish-ms runs a
// periodic publish sweep so idle shards still meet --ingest-epoch-ms
// deadlines (it defaults to --ingest-epoch-ms when that is set).
// `load`/`swap`/`unload` administer shards over the
// wire: load publishes a new (tenant, tile) shard, swap hot-swaps an
// existing shard to a new snapshot with zero dropped queries, unload
// removes one. The path is resolved on the *server's* filesystem.
//
// `query` generates a workload against the server's dims and reports
// throughput; with --tenant/--tile it speaks the tenant-addressed v2
// protocol. `verify` additionally loads the snapshot locally and requires
// every served answer to be bit-identical to direct in-memory evaluation —
// the end-to-end integrity check used by CI (it holds across hot-swaps to
// a byte-identical snapshot). `stats` prints serving counters as JSON
// (per-shard when --tenant is given); `metrics` prints every metric
// registry in Prometheus text exposition format.
//
// `--trace-sample=N` on query/verify attaches a deterministic trace
// context to every request batch (v2 frames) and head-samples traces at
// 1/N (N=1 samples every batch; 0, the default, sends untraced frames
// that are byte-identical to the pre-trace protocol). Sampled requests
// leave lifecycle spans in the server's trace store; fetch them as JSON
// with `stpt_serve trace` (most recent --limit traces, or one --trace-id).
//
// Every subcommand also accepts --trace=<path> (Chrome trace-event JSON
// written at exit), --log-level=<debug|info|warn|error|off> (structured
// log threshold, default warn), and --kernel-backend=<naive|avx2|auto>
// (kernel backend for prefix builds and ingest scans; strict — requesting
// avx2 on an unsupported CPU is an error).

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "exec/thread_pool.h"
#include "exec/timing.h"
#include "ingest/clock.h"
#include "ingest/pipeline.h"
#include "kernels/backend.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "query/range_query.h"
#include "serve/client.h"
#include "serve/event_loop.h"
#include "serve/query_server.h"
#include "serve/registry.h"
#include "serve/snapshot.h"

namespace {

using namespace stpt;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: stpt_serve <serve|query|verify|load|swap|unload|stats|"
               "metrics|trace|shutdown> [--options]\n"
               "see the header of tools/stpt_serve.cc for details\n");
  return 2;
}

void DefineCommonFlags(FlagSet& flags) {
  flags.DefineInt("threads", 0, "exec pool size (0 = auto / STPT_THREADS)");
  flags.DefineString("trace", "",
                     "write a Chrome trace-event JSON to this path at exit");
  flags.DefineString("log-level", "warn",
                     "structured-log threshold (debug, info, warn, error, off)");
  flags.DefineString("kernel-backend", "auto",
                     "kernel backend (naive, avx2, auto)");
}

void DefineClientFlags(FlagSet& flags) {
  flags.DefineString("host", "127.0.0.1", "server host");
  flags.DefineInt("port", 0, "server port");
}

void DefineShardFlags(FlagSet& flags) {
  flags.DefineString("tenant", "", "tenant name (empty = default shard)");
  flags.DefineString("tile", "", "grid tile within the tenant");
}

FlagSet ServeFlags() {
  FlagSet flags;
  DefineCommonFlags(flags);
  flags.DefineString("snapshot", "",
                     "snapshot container to serve (empty = start with no shards)");
  flags.DefineString("tenant", serve::kDefaultTenant,
                     "tenant the --snapshot shard is published under");
  flags.DefineString("tile", serve::kDefaultTile,
                     "tile the --snapshot shard is published under");
  flags.DefineString("bind", "127.0.0.1", "listen address");
  flags.DefineInt("port", 0, "listen port (0 = ephemeral)");
  flags.DefineString("port-file", "", "write the bound port to this file");
  flags.DefineInt("max-inflight", 64,
                  "dispatched-batch backlog before reads are deferred");
  flags.DefineBool("ingest", false,
                   "accept kReadingBatch frames into a live ingest pipeline");
  flags.DefineString("ingest-dims", "8,8,64",
                     "CX,CY,CT accumulator dims for ingest shards");
  flags.DefineInt("ingest-epoch-readings", 4096,
                  "publish after this many accepted readings (0 = off)");
  flags.DefineInt("ingest-epoch-ms", 0,
                  "publish after this many wall-clock ms (0 = off)");
  flags.DefineInt("ingest-publish-ms", 0,
                  "periodic publish-sweep timer in ms (0 = follow "
                  "--ingest-epoch-ms)");
  flags.DefineInt("ingest-window", 10, "w-event window in time slices");
  flags.DefineDouble("ingest-epsilon", 1.0, "privacy budget per w-event window");
  flags.DefineDouble("ingest-unit", 1.0,
                     "per-user per-slice contribution bound (sensitivity), "
                     "enforced by clamping at admission");
  flags.DefineInt("ingest-grace", 0,
                  "completed slices kept open for late backfill");
  flags.DefineInt("ingest-cap", 1 << 20,
                  "per-shard cap on tracked contribution keys (0 = unlimited)");
  flags.DefineInt("ingest-seed", 0x5EED, "noise seed for ingest shards");
  flags.DefineString("ingest-snapshot-dir", "",
                     "write each published epoch as a .stpt container here");
  flags.DefineString("ingest-ledger", "",
                     "JSONL audit-ledger path (per-shard suffixes for "
                     "non-default shards)");
  flags.DefineString("ingest-wal-dir", "",
                     "per-shard reading WAL directory; enables crash "
                     "recovery on restart");
  return flags;
}

bool ParseDims(const std::string& text, grid::Dims* dims) {
  return std::sscanf(text.c_str(), "%d,%d,%d", &dims->cx, &dims->cy,
                     &dims->ct) == 3;
}

FlagSet QueryFlags() {
  FlagSet flags;
  DefineCommonFlags(flags);
  DefineClientFlags(flags);
  DefineShardFlags(flags);
  flags.DefineString("snapshot", "grid.stpt", "local snapshot (verify only)");
  flags.DefineString("kind", "random", "workload kind (random, small, large)");
  flags.DefineInt("count", -1, "queries to run (-1 = 1000, or 10000 for verify)");
  flags.DefineInt("batch", 256, "queries per request frame");
  flags.DefineInt("seed", 7, "workload seed");
  flags.DefineInt("trace-sample", 0,
                  "attach trace contexts, head-sampled 1/N (0 = untraced)");
  return flags;
}

FlagSet TraceFlags() {
  FlagSet flags;
  DefineCommonFlags(flags);
  DefineClientFlags(flags);
  flags.DefineInt("limit", 0, "most recent traces to fetch (0 = all stored)");
  flags.DefineString("trace-id", "", "fetch one trace by 32-hex-char id");
  return flags;
}

FlagSet AdminFlags() {
  FlagSet flags;
  DefineCommonFlags(flags);
  DefineClientFlags(flags);
  flags.DefineString("tenant", serve::kDefaultTenant, "tenant to administer");
  flags.DefineString("tile", serve::kDefaultTile, "tile to administer");
  flags.DefineString("snapshot", "",
                     "snapshot container path, resolved on the server (load/swap)");
  return flags;
}

FlagSet StatsFlags() {
  FlagSet flags;
  DefineCommonFlags(flags);
  DefineClientFlags(flags);
  DefineShardFlags(flags);
  return flags;
}

FlagSet ClientOnlyFlags() {
  FlagSet flags;
  DefineCommonFlags(flags);
  DefineClientFlags(flags);
  return flags;
}

StatusOr<query::WorkloadKind> KindByName(const std::string& name) {
  if (name == "random") return query::WorkloadKind::kRandom;
  if (name == "small") return query::WorkloadKind::kSmall;
  if (name == "large") return query::WorkloadKind::kLarge;
  return Status::NotFound("unknown workload kind '" + name + "'");
}

StatusOr<serve::Client> ConnectFromFlags(const FlagSet& flags) {
  return serve::Client::Connect(flags.GetString("host"),
                                static_cast<int>(flags.GetInt("port")));
}

int RunServe(const FlagSet& flags) {
  auto registry = serve::SnapshotRegistry::Create();
  if (!registry.ok()) return Fail(registry.status());

  if (!flags.GetString("snapshot").empty()) {
    const serve::ShardKey key{flags.GetString("tenant"), flags.GetString("tile")};
    auto epoch = (*registry)->LoadFile(key, flags.GetString("snapshot"));
    if (!epoch.ok()) return Fail(epoch.status());
  }

  // Declared before `server` so the sink outlives the event loop.
  ingest::SystemClock ingest_clock;
  std::unique_ptr<ingest::IngestPipeline> pipeline;
  if (flags.GetBool("ingest")) {
    ingest::IngestOptions ingest_options;
    if (!ParseDims(flags.GetString("ingest-dims"), &ingest_options.dims)) {
      return Fail(Status::InvalidArgument("--ingest-dims wants CX,CY,CT"));
    }
    ingest_options.epoch_readings = flags.GetInt("ingest-epoch-readings");
    ingest_options.epoch_ticks_ns = flags.GetInt("ingest-epoch-ms") * 1000000;
    ingest_options.window = static_cast<int>(flags.GetInt("ingest-window"));
    ingest_options.epsilon = flags.GetDouble("ingest-epsilon");
    ingest_options.unit_sensitivity = flags.GetDouble("ingest-unit");
    ingest_options.backfill_grace = static_cast<int>(flags.GetInt("ingest-grace"));
    ingest_options.contribution_cap = flags.GetInt("ingest-cap");
    ingest_options.seed = static_cast<uint64_t>(flags.GetInt("ingest-seed"));
    ingest_options.snapshot_dir = flags.GetString("ingest-snapshot-dir");
    ingest_options.ledger_path = flags.GetString("ingest-ledger");
    ingest_options.wal_dir = flags.GetString("ingest-wal-dir");
    auto built = ingest::IngestPipeline::Create(registry->get(), &ingest_clock,
                                                ingest_options);
    if (!built.ok()) return Fail(built.status());
    pipeline = std::move(*built);
    // Crash recovery before the listener opens: any shard a dead process
    // logged is replayed and re-published, so the first query after a
    // restart already sees the pre-crash epochs.
    if (const Status st = pipeline->Recover(ingest_options.snapshot_dir,
                                            ingest_options.ledger_path);
        !st.ok()) {
      return Fail(st);
    }
  }

  serve::EventLoopOptions options;
  options.bind_address = flags.GetString("bind");
  options.port = static_cast<int>(flags.GetInt("port"));
  options.max_inflight_batches = static_cast<int>(flags.GetInt("max-inflight"));
  // The publish timer rides the tick-epoch deadline unless overridden, so
  // an idle shard still publishes when --ingest-epoch-ms elapses.
  options.ingest_publish_interval_ms = flags.Provided("ingest-publish-ms")
                                           ? flags.GetInt("ingest-publish-ms")
                                           : flags.GetInt("ingest-epoch-ms");
  auto server = serve::EventLoopServer::Create(registry->get(), options);
  if (!server.ok()) return Fail(server.status());
  if (pipeline != nullptr) (*server)->set_ingest_sink(pipeline.get());
  if (const Status st = (*server)->Start(); !st.ok()) return Fail(st);

  if (flags.Provided("port-file")) {
    std::ofstream out(flags.GetString("port-file"));
    out << (*server)->port() << "\n";
  }
  const auto shards = (*registry)->List();
  if (shards.empty()) {
    std::printf("serving 0 shards on %s:%d (load via 'stpt_serve load')\n",
                options.bind_address.c_str(), (*server)->port());
  } else {
    for (const auto& shard : shards) {
      std::printf("serving %s/%s: %s release %dx%dx%d (eps=%.1f) on %s:%d\n",
                  shard.key.tenant.c_str(), shard.key.tile.c_str(),
                  shard.meta.algorithm.c_str(), shard.dims.cx, shard.dims.cy,
                  shard.dims.ct, shard.meta.eps_total,
                  options.bind_address.c_str(), (*server)->port());
    }
  }
  if (pipeline != nullptr) {
    std::printf("ingest enabled: dims %s, epoch at %lld readings / %lld ms, "
                "window %lld, eps %.3f\n",
                flags.GetString("ingest-dims").c_str(),
                static_cast<long long>(flags.GetInt("ingest-epoch-readings")),
                static_cast<long long>(flags.GetInt("ingest-epoch-ms")),
                static_cast<long long>(flags.GetInt("ingest-window")),
                flags.GetDouble("ingest-epsilon"));
  }
  std::fflush(stdout);
  (*server)->Wait();
  (*server)->Stop();
  for (const auto& shard : (*registry)->List()) {
    std::printf(
        "shard %s/%s epoch %llu: served %llu queries, cache hit rate %.1f%%, "
        "p99 %.1f us\n",
        shard.key.tenant.c_str(), shard.key.tile.c_str(),
        static_cast<unsigned long long>(shard.epoch),
        static_cast<unsigned long long>(shard.stats.queries),
        100.0 * shard.stats.hit_rate(),
        static_cast<double>(shard.stats.p99_ns) * 1e-3);
  }
  return 0;
}

/// Shared query driver for `query` (report only) and `verify` (compare to a
/// locally evaluated snapshot). Returns nonzero on any mismatch. With
/// --tenant/--tile it uses tenant-addressed v2 frames.
int RunQueryOrVerify(const FlagSet& flags, bool verify) {
  auto client = ConnectFromFlags(flags);
  if (!client.ok()) return Fail(client.status());

  auto meta = client->Meta();
  if (!meta.ok()) return Fail(meta.status());

  serve::Snapshot local;
  if (verify) {
    auto snap = serve::ReadSnapshot(flags.GetString("snapshot"));
    if (!snap.ok()) return Fail(snap.status());
    if (!(snap->sanitized.dims() == meta->dims)) {
      return Fail(Status::FailedPrecondition(
          "verify: local snapshot dims differ from the server's"));
    }
    local = std::move(*snap);
  }

  auto kind = KindByName(flags.GetString("kind"));
  if (!kind.ok()) return Fail(kind.status());
  const int count = flags.Provided("count") ? static_cast<int>(flags.GetInt("count"))
                                            : (verify ? 10000 : 1000);
  const int batch_size = static_cast<int>(flags.GetInt("batch"));
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  auto workload = query::MakeWorkload(*kind, meta->dims, count, rng);
  if (!workload.ok()) return Fail(workload.status());

  const grid::PrefixSum3D* direct = nullptr;
  grid::PrefixSum3D direct_storage{grid::ConsumptionMatrix()};
  if (verify) {
    auto pre = grid::PrefixSum3D::FromRaw(local.sanitized.dims(),
                                          std::move(local.prefix));
    if (!pre.ok()) return Fail(pre.status());
    direct_storage = std::move(*pre);
    direct = &direct_storage;
  }

  const uint32_t trace_sample =
      static_cast<uint32_t>(flags.GetInt("trace-sample"));
  // Tracing needs the v2 frame (the v1 layout is frozen); untenanted traced
  // runs address the default shard explicitly.
  const bool v2 = flags.Provided("tenant") || flags.Provided("tile") ||
                  trace_sample > 0;
  const std::string tenant = flags.GetString("tenant");
  const std::string tile = flags.GetString("tile");
  // Trace ids fork off their own base so the workload stream is untouched:
  // answers are bit-identical with tracing on or off.
  const Rng trace_base(static_cast<uint64_t>(flags.GetInt("seed")));
  std::string first_sampled_id;
  int sampled_batches = 0;

  const uint64_t start_ns = exec::NowNanos();
  double checksum = 0.0;
  int64_t mismatches = 0;
  uint64_t first_epoch = 0;
  uint64_t last_epoch = 0;
  for (int base = 0; base < count; base += batch_size) {
    const int n = std::min(batch_size, count - base);
    query::Workload batch(workload->begin() + base, workload->begin() + base + n);
    serve::QueryResponse answers;
    if (v2) {
      obs::TraceContext trace;
      if (trace_sample > 0) {
        trace = obs::MakeTraceContext(
            trace_base, static_cast<uint64_t>(base / batch_size), trace_sample);
        if (trace.sampled) {
          ++sampled_batches;
          if (first_sampled_id.empty()) first_sampled_id = obs::TraceIdHex(trace);
        }
      }
      auto response = client->QueryTenant(tenant, tile, batch, /*epoch=*/0, trace);
      if (!response.ok()) return Fail(response.status());
      if (first_epoch == 0) first_epoch = response->epoch;
      last_epoch = response->epoch;
      answers = std::move(response->answers);
    } else {
      auto response = client->Query(batch);
      if (!response.ok()) return Fail(response.status());
      answers = std::move(*response);
    }
    for (int i = 0; i < n; ++i) {
      checksum += answers[i];
      if (direct != nullptr) {
        const query::RangeQuery& q = batch[i];
        const double expect = direct->BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1);
        // Bit-identity, not epsilon-closeness: the served path must be the
        // same arithmetic as the local prefix-sum evaluation.
        if (std::memcmp(&expect, &answers[i], sizeof(double)) != 0) ++mismatches;
      }
    }
  }
  const double secs = static_cast<double>(exec::NowNanos() - start_ns) * 1e-9;
  std::printf("%d queries in %.3f s (%.0f q/s), checksum %.6g\n", count, secs,
              secs > 0 ? count / secs : 0.0, checksum);
  if (trace_sample > 0) {
    std::printf("trace sampling 1/%u: %d batches sampled%s%s\n", trace_sample,
                sampled_batches, first_sampled_id.empty() ? "" : ", first id ",
                first_sampled_id.c_str());
  }
  if (v2 && first_epoch != last_epoch) {
    std::printf("epoch advanced %llu -> %llu during the run (hot swap)\n",
                static_cast<unsigned long long>(first_epoch),
                static_cast<unsigned long long>(last_epoch));
  }
  if (verify) {
    if (mismatches > 0) {
      std::fprintf(stderr, "verify FAILED: %lld of %d answers differ\n",
                   static_cast<long long>(mismatches), count);
      return 1;
    }
    std::printf("verify OK: all %d answers bit-identical to local evaluation\n",
                count);
  }
  return 0;
}

int RunAdmin(const FlagSet& flags, serve::AdminVerb verb) {
  const std::string path = flags.GetString("snapshot");
  if (verb != serve::AdminVerb::kUnload && path.empty()) {
    return Fail(Status::InvalidArgument("--snapshot=<path> is required"));
  }
  auto client = ConnectFromFlags(flags);
  if (!client.ok()) return Fail(client.status());
  const std::string tenant = flags.GetString("tenant");
  const std::string tile = flags.GetString("tile");
  switch (verb) {
    case serve::AdminVerb::kLoad: {
      auto epoch = client->Load(tenant, tile, path);
      if (!epoch.ok()) return Fail(epoch.status());
      std::printf("loaded %s/%s epoch %llu\n", tenant.c_str(), tile.c_str(),
                  static_cast<unsigned long long>(*epoch));
      return 0;
    }
    case serve::AdminVerb::kSwap: {
      auto epoch = client->Swap(tenant, tile, path);
      if (!epoch.ok()) return Fail(epoch.status());
      std::printf("swapped %s/%s to epoch %llu\n", tenant.c_str(), tile.c_str(),
                  static_cast<unsigned long long>(*epoch));
      return 0;
    }
    case serve::AdminVerb::kUnload: {
      const Status st = client->Unload(tenant, tile);
      if (!st.ok()) return Fail(st);
      std::printf("unloaded %s/%s\n", tenant.c_str(), tile.c_str());
      return 0;
    }
  }
  return 1;
}

int RunStats(const FlagSet& flags) {
  auto client = ConnectFromFlags(flags);
  if (!client.ok()) return Fail(client.status());
  StatusOr<std::string> stats =
      (flags.Provided("tenant") || flags.Provided("tile"))
          ? client->ShardStats(flags.GetString("tenant"), flags.GetString("tile"))
          : client->Stats();
  if (!stats.ok()) return Fail(stats.status());
  std::printf("%s\n", stats->c_str());
  return 0;
}

int RunMetrics(const FlagSet& flags) {
  auto client = ConnectFromFlags(flags);
  if (!client.ok()) return Fail(client.status());
  auto metrics = client->Metrics();
  if (!metrics.ok()) return Fail(metrics.status());
  std::fputs(metrics->c_str(), stdout);
  return 0;
}

int RunTrace(const FlagSet& flags) {
  auto client = ConnectFromFlags(flags);
  if (!client.ok()) return Fail(client.status());
  auto traces =
      client->FetchTraces(static_cast<uint32_t>(flags.GetInt("limit")),
                          flags.GetString("trace-id"));
  if (!traces.ok()) return Fail(traces.status());
  std::printf("%s\n", traces->c_str());
  return 0;
}

int RunShutdown(const FlagSet& flags) {
  auto client = ConnectFromFlags(flags);
  if (!client.ok()) return Fail(client.status());
  const Status st = client->Shutdown();
  if (!st.ok()) return Fail(st);
  std::printf("server shut down\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  FlagSet flags;
  if (command == "serve") {
    flags = ServeFlags();
  } else if (command == "query" || command == "verify") {
    flags = QueryFlags();
  } else if (command == "load" || command == "swap" || command == "unload") {
    flags = AdminFlags();
  } else if (command == "stats") {
    flags = StatsFlags();
  } else if (command == "trace") {
    flags = TraceFlags();
  } else if (command == "metrics" || command == "shutdown") {
    flags = ClientOnlyFlags();
  } else {
    return Usage();
  }
  if (const Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "error: %s\nflags for 'stpt_serve %s':\n%s",
                 st.ToString().c_str(), command.c_str(), flags.Usage().c_str());
    return 2;
  }
  if (flags.Provided("threads")) {
    exec::SetThreads(static_cast<int>(flags.GetInt("threads")));
  }
  obs::LogLevel log_level;
  if (!obs::ParseLogLevel(flags.GetString("log-level"), &log_level)) {
    std::fprintf(stderr, "error: bad --log-level '%s'\n",
                 flags.GetString("log-level").c_str());
    return 2;
  }
  obs::SetLogLevel(log_level);
  if (flags.Provided("kernel-backend")) {
    if (const Status st = kernels::SetDefault(flags.GetString("kernel-backend"));
        !st.ok()) {
      return Fail(st);
    }
  }
  if (flags.Provided("trace")) {
    obs::RegisterCurrentThreadName("main");
    obs::StartTraceEvents();
  }
  int rc;
  if (command == "serve") {
    rc = RunServe(flags);
  } else if (command == "query") {
    rc = RunQueryOrVerify(flags, /*verify=*/false);
  } else if (command == "verify") {
    rc = RunQueryOrVerify(flags, /*verify=*/true);
  } else if (command == "load") {
    rc = RunAdmin(flags, stpt::serve::AdminVerb::kLoad);
  } else if (command == "swap") {
    rc = RunAdmin(flags, stpt::serve::AdminVerb::kSwap);
  } else if (command == "unload") {
    rc = RunAdmin(flags, stpt::serve::AdminVerb::kUnload);
  } else if (command == "stats") {
    rc = RunStats(flags);
  } else if (command == "metrics") {
    rc = RunMetrics(flags);
  } else if (command == "trace") {
    rc = RunTrace(flags);
  } else {
    rc = RunShutdown(flags);
  }
  if (flags.Provided("trace")) {
    obs::StopTraceEvents();
    if (!obs::WriteChromeTrace(flags.GetString("trace"))) {
      std::fprintf(stderr, "error: cannot write trace path '%s'\n",
                   flags.GetString("trace").c_str());
      return 1;
    }
  }
  return rc;
}
