// stpt_cli — command-line front end for the library.
//
//   stpt_cli generate --dataset=CER --distribution=uniform --grid=32
//            --days=220 --seed=1 --out=data.csv
//   stpt_cli publish  --in=data.csv --algorithm=stpt --eps=30
//            --t-train=100 --out=sanitized.csv [--truth-out=truth.csv]
//            [--snapshot=release.stpt]
//   stpt_cli evaluate --truth=truth.csv --sanitized=sanitized.csv
//            --kind=random --queries=300 [--seed=7]
//
// Every subcommand also accepts --threads=N (exec pool size), --profile
// (print the timing profile at exit), --metrics=<path> (write a JSON
// snapshot of the process metric registry + trace-region profile at exit),
// --trace=<path> (record per-thread span events and write a Chrome
// trace-event JSON at exit; load in chrome://tracing or Perfetto), and
// --log-level=<debug|info|warn|error|off> (structured-log threshold,
// default warn), and --kernel-backend=<naive|avx2|auto> (kernel backend for
// the hot numeric paths; strict — requesting avx2 on an unsupported CPU is
// an error). `publish` additionally accepts --train-log=<path> (JSONL
// loss curve, one row per epoch) and --audit-ledger=<path> (JSONL record of
// every privacy-budget charge). Unknown or malformed flags are rejected
// with the subcommand's flag listing.
//
// `publish` aggregates to day granularity, runs the chosen algorithm
// (stpt, identity, fast, fourier10, fourier20, wavelet10, wavelet20,
// lgan, wpo), and writes the sanitized test region. With --snapshot it
// additionally emits a binary .stpt container (sanitized matrix + prefix
// sums + privacy metadata) that stpt_serve answers range queries from.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "baselines/fast.h"
#include "baselines/fourier.h"
#include "baselines/identity.h"
#include "baselines/lgan_dp.h"
#include "baselines/wavelet_pub.h"
#include "baselines/wpo.h"
#include "common/flags.h"
#include "common/rng.h"
#include "core/stpt.h"
#include "datagen/dataset.h"
#include "dp/audit_ledger.h"
#include "exec/thread_pool.h"
#include "exec/timing.h"
#include "io/csv.h"
#include "kernels/backend.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/metrics.h"
#include "serve/client.h"
#include "serve/registry.h"
#include "serve/snapshot.h"

namespace {

using namespace stpt;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: stpt_cli <generate|publish|evaluate> [--options]\n"
               "see the header of tools/stpt_cli.cc for details\n");
  return 2;
}

/// Flags shared by every subcommand (exec runtime + observability).
void DefineCommonFlags(FlagSet& flags) {
  flags.DefineInt("threads", 0, "exec pool size (0 = auto / STPT_THREADS)");
  flags.DefineBool("profile", false, "print the timing profile to stderr at exit");
  flags.DefineString("metrics", "",
                     "write a JSON metric-registry snapshot to this path at exit");
  flags.DefineString("trace", "",
                     "write a Chrome trace-event JSON to this path at exit");
  flags.DefineString("log-level", "warn",
                     "structured-log threshold (debug, info, warn, error, off)");
  flags.DefineString("kernel-backend", "auto",
                     "kernel backend (naive, avx2, auto)");
}

FlagSet GenerateFlags() {
  FlagSet flags;
  DefineCommonFlags(flags);
  flags.DefineString("dataset", "CER", "dataset spec (CER, CA, MI, TX)");
  flags.DefineString("distribution", "uniform",
                     "spatial distribution (uniform, normal, la)");
  flags.DefineInt("households", 0, "household count override (0 = spec default)");
  flags.DefineInt("grid", 32, "grid cells per side");
  flags.DefineInt("days", 220, "days of hourly readings");
  flags.DefineInt("seed", 1, "generator seed");
  flags.DefineString("out", "data.csv", "output CSV path");
  return flags;
}

FlagSet PublishFlags() {
  FlagSet flags;
  DefineCommonFlags(flags);
  flags.DefineString("in", "data.csv", "input dataset CSV");
  flags.DefineString("algorithm", "stpt",
                     "stpt, identity, fast, fourier10/20, wavelet10/20, lgan, wpo");
  flags.DefineDouble("eps", 30.0, "total privacy budget");
  flags.DefineInt("t-train", -1, "training prefix length (-1 = half the slices)");
  flags.DefineInt("seed", 1, "noise / training seed");
  flags.DefineInt("depth", 3, "quadtree depth (stpt)");
  flags.DefineInt("k", 8, "quantization levels (stpt)");
  flags.DefineString("out", "sanitized.csv", "sanitized-region CSV path");
  flags.DefineString("truth-out", "", "also write the true test region here");
  flags.DefineString("snapshot", "", "also write a .stpt snapshot container here");
  flags.DefineInt("push-port", 0,
                  "push the written --snapshot into a live stpt_serve on this port");
  flags.DefineString("push-host", "127.0.0.1", "stpt_serve host for --push-port");
  flags.DefineString("tenant", serve::kDefaultTenant,
                     "tenant to publish the pushed shard under");
  flags.DefineString("tile", serve::kDefaultTile,
                     "tile to publish the pushed shard under");
  flags.DefineString("train-log", "", "write a JSONL per-epoch loss curve here (stpt)");
  flags.DefineString("audit-ledger", "",
                     "write a JSONL privacy-budget audit ledger here (stpt)");
  return flags;
}

FlagSet EvaluateFlags() {
  FlagSet flags;
  DefineCommonFlags(flags);
  flags.DefineString("truth", "truth.csv", "true test-region CSV");
  flags.DefineString("sanitized", "sanitized.csv", "sanitized-region CSV");
  flags.DefineString("kind", "random", "workload kind (random, small, large)");
  flags.DefineInt("queries", 300, "workload size");
  flags.DefineInt("seed", 7, "workload seed");
  return flags;
}

StatusOr<datagen::DatasetSpec> SpecByName(const std::string& name) {
  for (const auto& spec : datagen::AllSpecs()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown dataset '" + name + "' (CER, CA, MI, TX)");
}

StatusOr<datagen::SpatialDistribution> DistributionByName(const std::string& name) {
  if (name == "uniform") return datagen::SpatialDistribution::kUniform;
  if (name == "normal") return datagen::SpatialDistribution::kNormal;
  if (name == "la") return datagen::SpatialDistribution::kLosAngeles;
  return Status::NotFound("unknown distribution '" + name +
                          "' (uniform, normal, la)");
}

int RunGenerate(const FlagSet& flags) {
  auto spec = SpecByName(flags.GetString("dataset"));
  if (!spec.ok()) return Fail(spec.status());
  auto dist = DistributionByName(flags.GetString("distribution"));
  if (!dist.ok()) return Fail(dist.status());
  if (flags.Provided("households")) {
    spec->num_households = static_cast<int>(flags.GetInt("households"));
  }
  datagen::GenerateOptions opts;
  opts.grid_x = opts.grid_y = static_cast<int>(flags.GetInt("grid"));
  opts.hours = static_cast<int>(flags.GetInt("days")) * 24;
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  auto ds = datagen::GenerateDataset(*spec, *dist, opts, rng);
  if (!ds.ok()) return Fail(ds.status());
  const std::string out = flags.GetString("out");
  const Status st = io::WriteDatasetCsv(*ds, out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %d households x %d hours to %s\n", spec->num_households,
              opts.hours, out.c_str());
  return 0;
}

int RunPublish(const FlagSet& flags) {
  auto ds = io::ReadDatasetCsv(flags.GetString("in"));
  if (!ds.ok()) return Fail(ds.status());
  auto cons = datagen::BuildConsumptionMatrix(*ds, /*hours_per_slice=*/24);
  if (!cons.ok()) return Fail(cons.status());
  const double unit = datagen::UnitSensitivity(ds->spec, 24);
  const double eps = flags.GetDouble("eps");
  const int t_train = flags.Provided("t-train")
                          ? static_cast<int>(flags.GetInt("t-train"))
                          : cons->dims().ct / 2;
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));

  auto truth = core::TestRegion(*cons, t_train);
  if (!truth.ok()) return Fail(truth.status());
  if (flags.Provided("truth-out")) {
    const Status st = io::WriteMatrixCsv(*truth, flags.GetString("truth-out"));
    if (!st.ok()) return Fail(st);
  }

  const std::string algorithm = flags.GetString("algorithm");
  StatusOr<grid::ConsumptionMatrix> sanitized =
      Status::Internal("not run");
  double eps_pattern = 0.0;  // nonzero only for stpt's two-phase split
  if (algorithm == "stpt") {
    core::StptConfig cfg;
    cfg.eps_pattern = eps / 3.0;
    cfg.eps_sanitize = eps - cfg.eps_pattern;
    eps_pattern = cfg.eps_pattern;
    cfg.t_train = t_train;
    cfg.quadtree_depth = static_cast<int>(flags.GetInt("depth"));
    cfg.quantization_levels = static_cast<int>(flags.GetInt("k"));
    cfg.training.train_log_path = flags.GetString("train-log");
    dp::AuditLedger ledger;
    if (flags.Provided("audit-ledger")) {
      const Status st = ledger.OpenFile(flags.GetString("audit-ledger"));
      if (!st.ok()) return Fail(st);
      cfg.audit_ledger = &ledger;
    }
    auto res = core::Stpt(cfg).Publish(*cons, unit, rng);
    if (!res.ok()) return Fail(res.status());
    sanitized = std::move(res->sanitized);
  } else {
    if (flags.Provided("train-log") || flags.Provided("audit-ledger")) {
      obs::Log(obs::LogLevel::kWarn, "cli",
               "--train-log/--audit-ledger only apply to --algorithm=stpt",
               {{"algorithm", algorithm}});
    }
    std::unique_ptr<baselines::Publisher> pub;
    if (algorithm == "identity") pub = std::make_unique<baselines::IdentityPublisher>();
    if (algorithm == "fast") pub = std::make_unique<baselines::FastPublisher>();
    if (algorithm == "fourier10") pub = std::make_unique<baselines::FourierPublisher>(10);
    if (algorithm == "fourier20") pub = std::make_unique<baselines::FourierPublisher>(20);
    if (algorithm == "wavelet10") pub = std::make_unique<baselines::WaveletPublisher>(10);
    if (algorithm == "wavelet20") pub = std::make_unique<baselines::WaveletPublisher>(20);
    if (algorithm == "lgan") pub = std::make_unique<baselines::LganDpPublisher>();
    if (algorithm == "wpo") pub = std::make_unique<baselines::WpoPublisher>();
    if (pub == nullptr) {
      return Fail(Status::NotFound("unknown algorithm '" + algorithm + "'"));
    }
    sanitized = pub->Publish(*truth, eps, unit, rng);
  }
  if (!sanitized.ok()) return Fail(sanitized.status());
  const std::string out = flags.GetString("out");
  const Status st = io::WriteMatrixCsv(*sanitized, out);
  if (!st.ok()) return Fail(st);
  if (flags.Provided("snapshot")) {
    serve::SnapshotMeta meta;
    meta.algorithm = algorithm;
    meta.eps_total = eps;
    meta.eps_pattern = eps_pattern;
    meta.eps_sanitize = eps - eps_pattern;
    meta.t_train = t_train;
    const std::string snapshot_path = flags.GetString("snapshot");
    const Status snap_st = serve::WriteSnapshot(
        serve::Snapshot::FromMatrix(*sanitized, std::move(meta)), snapshot_path);
    if (!snap_st.ok()) return Fail(snap_st);
    std::printf("wrote snapshot container to %s\n", snapshot_path.c_str());
    if (flags.Provided("push-port")) {
      // Upsert into a live server: hot-swap if the shard exists, load it
      // fresh otherwise. The server re-reads snapshot_path from its own
      // filesystem, so this assumes a shared (here: local) filesystem.
      auto client = serve::Client::Connect(
          flags.GetString("push-host"),
          static_cast<int>(flags.GetInt("push-port")));
      if (!client.ok()) return Fail(client.status());
      const std::string tenant = flags.GetString("tenant");
      const std::string tile = flags.GetString("tile");
      auto epoch = client->Swap(tenant, tile, snapshot_path);
      if (!epoch.ok()) epoch = client->Load(tenant, tile, snapshot_path);
      if (!epoch.ok()) return Fail(epoch.status());
      std::printf("pushed %s/%s epoch %llu to %s:%d\n", tenant.c_str(),
                  tile.c_str(), static_cast<unsigned long long>(*epoch),
                  flags.GetString("push-host").c_str(),
                  static_cast<int>(flags.GetInt("push-port")));
    }
  }
  std::printf("published %s release (%dx%dx%d, eps=%.1f) to %s\n",
              algorithm.c_str(), sanitized->dims().cx, sanitized->dims().cy,
              sanitized->dims().ct, eps, out.c_str());
  return 0;
}

int RunEvaluate(const FlagSet& flags) {
  auto truth = io::ReadMatrixCsv(flags.GetString("truth"));
  if (!truth.ok()) return Fail(truth.status());
  auto sanitized = io::ReadMatrixCsv(flags.GetString("sanitized"));
  if (!sanitized.ok()) return Fail(sanitized.status());
  if (!(truth->dims() == sanitized->dims())) {
    return Fail(Status::InvalidArgument("matrix dimensions differ"));
  }
  const std::string kind_name = flags.GetString("kind");
  query::WorkloadKind kind = query::WorkloadKind::kRandom;
  if (kind_name == "small") kind = query::WorkloadKind::kSmall;
  if (kind_name == "large") kind = query::WorkloadKind::kLarge;
  Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  auto wl = query::MakeWorkload(kind, truth->dims(),
                                static_cast<int>(flags.GetInt("queries")), rng);
  if (!wl.ok()) return Fail(wl.status());
  query::MreOptions opts;
  opts.denominator_floor =
      truth->TotalSum() / static_cast<double>(truth->size());
  std::printf("MRE (%s, %zu queries): %.2f%%\n", kind_name.c_str(), wl->size(),
              query::MeanRelativeError(*truth, *sanitized, *wl, opts));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  FlagSet flags;
  if (command == "generate") {
    flags = GenerateFlags();
  } else if (command == "publish") {
    flags = PublishFlags();
  } else if (command == "evaluate") {
    flags = EvaluateFlags();
  } else {
    return Usage();
  }
  if (const Status st = flags.Parse(argc, argv); !st.ok()) {
    std::fprintf(stderr, "error: %s\nflags for 'stpt_cli %s':\n%s",
                 st.ToString().c_str(), command.c_str(), flags.Usage().c_str());
    return 2;
  }
  // --threads=N overrides the STPT_THREADS env default (1 = serial). The
  // fork-by-index determinism contract makes outputs identical either way.
  if (flags.Provided("threads")) {
    exec::SetThreads(static_cast<int>(flags.GetInt("threads")));
  }
  obs::LogLevel log_level;
  if (!obs::ParseLogLevel(flags.GetString("log-level"), &log_level)) {
    std::fprintf(stderr, "error: bad --log-level '%s'\n",
                 flags.GetString("log-level").c_str());
    return 2;
  }
  obs::SetLogLevel(log_level);
  if (flags.Provided("kernel-backend")) {
    if (const Status st = kernels::SetDefault(flags.GetString("kernel-backend"));
        !st.ok()) {
      return Fail(st);
    }
  }
  if (flags.Provided("trace")) {
    obs::RegisterCurrentThreadName("main");
    obs::StartTraceEvents();
  }
  int rc;
  if (command == "generate") {
    rc = RunGenerate(flags);
  } else if (command == "publish") {
    rc = RunPublish(flags);
  } else {
    rc = RunEvaluate(flags);
  }
  if (flags.GetBool("profile")) exec::PrintTimings(std::cerr);
  if (flags.Provided("metrics")) {
    std::ofstream out(flags.GetString("metrics"));
    if (!out) {
      return Fail(Status::Internal("cannot open metrics path '" +
                                   flags.GetString("metrics") + "'"));
    }
    out << exec::MetricsSnapshotJson() << "\n";
  }
  if (flags.Provided("trace")) {
    obs::StopTraceEvents();
    if (!obs::WriteChromeTrace(flags.GetString("trace"))) {
      return Fail(Status::Internal("cannot write trace path '" +
                                   flags.GetString("trace") + "'"));
    }
  }
  return rc;
}
