#!/usr/bin/env python3
"""Perf gate for the per-backend kernel rows of bench_micro.

Compares a fresh BENCH_micro.json against the checked-in baseline and
enforces two properties:

  1. No kernel row (name starting with BM_Kernel) regresses more than
     --tolerance (default 30%) in real_time against the same-named row of
     the baseline. Hard failure on an AVX2-capable runner; downgraded to a
     warning when the runner lacks AVX2 (the committed baseline is recorded
     on an AVX2 machine, so absolute times are not comparable there).
  2. Within the fresh run, the avx2 backend is at least --min-speedup
     (default 1.5x) faster than naive on the MatMul and PrefixSum kernel
     families. Skipped when the runner lacks AVX2.

Rows present in only one file are reported but never fail the gate, so
adding or retiring benchmarks does not require lockstep baseline updates.

Usage:
  tools/perf_gate.py --fresh build/bench/BENCH_micro.json \
                     --baseline BENCH_micro.json
"""

import argparse
import json
import sys

KERNEL_PREFIX = "BM_Kernel"
SPEEDUP_FAMILIES = ("BM_KernelMatMul", "BM_KernelPrefixSum")


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        rows[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return doc.get("context", {}), rows


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", required=True, help="just-produced BENCH_micro.json")
    ap.add_argument("--baseline", required=True, help="checked-in BENCH_micro.json")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="max allowed fractional regression per kernel row")
    ap.add_argument("--min-speedup", type=float, default=1.5,
                    help="required naive/avx2 ratio for MatMul and PrefixSum")
    args = ap.parse_args()

    fresh_ctx, fresh = load_rows(args.fresh)
    _, baseline = load_rows(args.baseline)
    has_avx2 = fresh_ctx.get("stpt_avx2") == "1"
    hard = has_avx2  # warn-only on runners without AVX2

    failures = []
    warnings = []

    # 1. Regression check, row by row.
    kernel_rows = sorted(n for n in fresh if n.startswith(KERNEL_PREFIX))
    if not kernel_rows:
        failures.append("fresh run contains no BM_Kernel* rows "
                        "(wrong --benchmark_filter?)")
    for name in kernel_rows:
        if name not in baseline:
            print(f"note: {name}: no baseline row (new benchmark), skipping")
            continue
        (t_fresh, unit), (t_base, _) = fresh[name], baseline[name]
        ratio = t_fresh / t_base
        line = (f"{name}: baseline={t_base:.0f}{unit} "
                f"fresh={t_fresh:.0f}{unit} ratio={ratio:.2f}")
        if ratio > 1.0 + args.tolerance:
            (failures if hard else warnings).append(
                f"{line} — regressed more than {args.tolerance:.0%}")
        else:
            print(line)
    for name in sorted(baseline):
        if name.startswith(KERNEL_PREFIX) and name not in fresh:
            print(f"note: {name}: row retired (present only in baseline)")

    # 2. AVX2-vs-naive speedup inside the fresh run.
    if has_avx2:
        for family in SPEEDUP_FAMILIES:
            pairs = 0
            for name, (t_naive, _) in fresh.items():
                if not name.startswith(family + "/backend:naive"):
                    continue
                other = name.replace("/backend:naive", "/backend:avx2")
                if other not in fresh:
                    continue
                pairs += 1
                speedup = t_naive / fresh[other][0]
                line = f"{family}: naive/avx2 speedup {speedup:.2f}x ({name})"
                if speedup < args.min_speedup:
                    failures.append(
                        f"{line} — below required {args.min_speedup:.2f}x")
                else:
                    print(line)
            if pairs == 0:
                failures.append(f"{family}: no naive/avx2 row pair found")
    else:
        print("runner lacks AVX2: speedup check skipped, "
              "regressions reported as warnings")

    for w in warnings:
        print(f"::warning title=perf gate::{w}")
    for f in failures:
        print(f"FAIL: {f}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
