# Empty dependencies file for stpt_common.
# This may be replaced when dependencies are built.
