file(REMOVE_RECURSE
  "CMakeFiles/stpt_common.dir/flags.cc.o"
  "CMakeFiles/stpt_common.dir/flags.cc.o.d"
  "CMakeFiles/stpt_common.dir/math_util.cc.o"
  "CMakeFiles/stpt_common.dir/math_util.cc.o.d"
  "CMakeFiles/stpt_common.dir/rng.cc.o"
  "CMakeFiles/stpt_common.dir/rng.cc.o.d"
  "CMakeFiles/stpt_common.dir/status.cc.o"
  "CMakeFiles/stpt_common.dir/status.cc.o.d"
  "CMakeFiles/stpt_common.dir/table_printer.cc.o"
  "CMakeFiles/stpt_common.dir/table_printer.cc.o.d"
  "libstpt_common.a"
  "libstpt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
