file(REMOVE_RECURSE
  "libstpt_common.a"
)
