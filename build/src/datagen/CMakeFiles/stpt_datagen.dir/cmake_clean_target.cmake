file(REMOVE_RECURSE
  "libstpt_datagen.a"
)
