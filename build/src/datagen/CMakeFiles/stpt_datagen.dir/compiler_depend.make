# Empty compiler generated dependencies file for stpt_datagen.
# This may be replaced when dependencies are built.
