file(REMOVE_RECURSE
  "CMakeFiles/stpt_datagen.dir/dataset.cc.o"
  "CMakeFiles/stpt_datagen.dir/dataset.cc.o.d"
  "libstpt_datagen.a"
  "libstpt_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpt_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
