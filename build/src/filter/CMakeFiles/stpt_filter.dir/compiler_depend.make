# Empty compiler generated dependencies file for stpt_filter.
# This may be replaced when dependencies are built.
