file(REMOVE_RECURSE
  "libstpt_filter.a"
)
