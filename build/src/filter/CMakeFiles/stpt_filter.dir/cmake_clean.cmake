file(REMOVE_RECURSE
  "CMakeFiles/stpt_filter.dir/kalman.cc.o"
  "CMakeFiles/stpt_filter.dir/kalman.cc.o.d"
  "libstpt_filter.a"
  "libstpt_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpt_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
