# Empty compiler generated dependencies file for stpt_grid.
# This may be replaced when dependencies are built.
