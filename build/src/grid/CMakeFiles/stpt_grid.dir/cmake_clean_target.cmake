file(REMOVE_RECURSE
  "libstpt_grid.a"
)
