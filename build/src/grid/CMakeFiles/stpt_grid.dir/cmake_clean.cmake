file(REMOVE_RECURSE
  "CMakeFiles/stpt_grid.dir/consumption_matrix.cc.o"
  "CMakeFiles/stpt_grid.dir/consumption_matrix.cc.o.d"
  "CMakeFiles/stpt_grid.dir/quadtree.cc.o"
  "CMakeFiles/stpt_grid.dir/quadtree.cc.o.d"
  "libstpt_grid.a"
  "libstpt_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpt_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
