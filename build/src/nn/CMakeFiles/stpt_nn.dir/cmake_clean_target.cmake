file(REMOVE_RECURSE
  "libstpt_nn.a"
)
