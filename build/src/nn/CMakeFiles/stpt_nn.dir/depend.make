# Empty dependencies file for stpt_nn.
# This may be replaced when dependencies are built.
