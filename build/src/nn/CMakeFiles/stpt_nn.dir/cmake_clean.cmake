file(REMOVE_RECURSE
  "CMakeFiles/stpt_nn.dir/layers.cc.o"
  "CMakeFiles/stpt_nn.dir/layers.cc.o.d"
  "CMakeFiles/stpt_nn.dir/ops.cc.o"
  "CMakeFiles/stpt_nn.dir/ops.cc.o.d"
  "CMakeFiles/stpt_nn.dir/optimizer.cc.o"
  "CMakeFiles/stpt_nn.dir/optimizer.cc.o.d"
  "CMakeFiles/stpt_nn.dir/predictor.cc.o"
  "CMakeFiles/stpt_nn.dir/predictor.cc.o.d"
  "CMakeFiles/stpt_nn.dir/tensor.cc.o"
  "CMakeFiles/stpt_nn.dir/tensor.cc.o.d"
  "libstpt_nn.a"
  "libstpt_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpt_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
