
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accuracy_model.cc" "src/core/CMakeFiles/stpt_core.dir/accuracy_model.cc.o" "gcc" "src/core/CMakeFiles/stpt_core.dir/accuracy_model.cc.o.d"
  "/root/repo/src/core/budget_allocation.cc" "src/core/CMakeFiles/stpt_core.dir/budget_allocation.cc.o" "gcc" "src/core/CMakeFiles/stpt_core.dir/budget_allocation.cc.o.d"
  "/root/repo/src/core/htf_partition.cc" "src/core/CMakeFiles/stpt_core.dir/htf_partition.cc.o" "gcc" "src/core/CMakeFiles/stpt_core.dir/htf_partition.cc.o.d"
  "/root/repo/src/core/pattern_recognition.cc" "src/core/CMakeFiles/stpt_core.dir/pattern_recognition.cc.o" "gcc" "src/core/CMakeFiles/stpt_core.dir/pattern_recognition.cc.o.d"
  "/root/repo/src/core/quantization.cc" "src/core/CMakeFiles/stpt_core.dir/quantization.cc.o" "gcc" "src/core/CMakeFiles/stpt_core.dir/quantization.cc.o.d"
  "/root/repo/src/core/stpt.cc" "src/core/CMakeFiles/stpt_core.dir/stpt.cc.o" "gcc" "src/core/CMakeFiles/stpt_core.dir/stpt.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/core/CMakeFiles/stpt_core.dir/streaming.cc.o" "gcc" "src/core/CMakeFiles/stpt_core.dir/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stpt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/stpt_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/stpt_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/stpt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/stpt_query.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
