file(REMOVE_RECURSE
  "libstpt_core.a"
)
