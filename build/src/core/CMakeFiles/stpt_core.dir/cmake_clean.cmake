file(REMOVE_RECURSE
  "CMakeFiles/stpt_core.dir/accuracy_model.cc.o"
  "CMakeFiles/stpt_core.dir/accuracy_model.cc.o.d"
  "CMakeFiles/stpt_core.dir/budget_allocation.cc.o"
  "CMakeFiles/stpt_core.dir/budget_allocation.cc.o.d"
  "CMakeFiles/stpt_core.dir/htf_partition.cc.o"
  "CMakeFiles/stpt_core.dir/htf_partition.cc.o.d"
  "CMakeFiles/stpt_core.dir/pattern_recognition.cc.o"
  "CMakeFiles/stpt_core.dir/pattern_recognition.cc.o.d"
  "CMakeFiles/stpt_core.dir/quantization.cc.o"
  "CMakeFiles/stpt_core.dir/quantization.cc.o.d"
  "CMakeFiles/stpt_core.dir/stpt.cc.o"
  "CMakeFiles/stpt_core.dir/stpt.cc.o.d"
  "CMakeFiles/stpt_core.dir/streaming.cc.o"
  "CMakeFiles/stpt_core.dir/streaming.cc.o.d"
  "libstpt_core.a"
  "libstpt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
