# Empty dependencies file for stpt_core.
# This may be replaced when dependencies are built.
