# Empty dependencies file for stpt_io.
# This may be replaced when dependencies are built.
