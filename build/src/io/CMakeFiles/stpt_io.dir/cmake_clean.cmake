file(REMOVE_RECURSE
  "CMakeFiles/stpt_io.dir/csv.cc.o"
  "CMakeFiles/stpt_io.dir/csv.cc.o.d"
  "libstpt_io.a"
  "libstpt_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpt_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
