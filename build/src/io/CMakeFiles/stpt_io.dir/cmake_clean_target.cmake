file(REMOVE_RECURSE
  "libstpt_io.a"
)
