file(REMOVE_RECURSE
  "CMakeFiles/stpt_dp.dir/budget_accountant.cc.o"
  "CMakeFiles/stpt_dp.dir/budget_accountant.cc.o.d"
  "CMakeFiles/stpt_dp.dir/mechanisms.cc.o"
  "CMakeFiles/stpt_dp.dir/mechanisms.cc.o.d"
  "libstpt_dp.a"
  "libstpt_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpt_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
