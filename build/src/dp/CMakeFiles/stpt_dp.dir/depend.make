# Empty dependencies file for stpt_dp.
# This may be replaced when dependencies are built.
