file(REMOVE_RECURSE
  "libstpt_dp.a"
)
