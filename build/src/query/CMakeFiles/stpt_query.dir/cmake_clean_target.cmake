file(REMOVE_RECURSE
  "libstpt_query.a"
)
