file(REMOVE_RECURSE
  "CMakeFiles/stpt_query.dir/metrics.cc.o"
  "CMakeFiles/stpt_query.dir/metrics.cc.o.d"
  "CMakeFiles/stpt_query.dir/range_query.cc.o"
  "CMakeFiles/stpt_query.dir/range_query.cc.o.d"
  "libstpt_query.a"
  "libstpt_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpt_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
