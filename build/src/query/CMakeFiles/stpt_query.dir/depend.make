# Empty dependencies file for stpt_query.
# This may be replaced when dependencies are built.
