file(REMOVE_RECURSE
  "libstpt_signal.a"
)
