file(REMOVE_RECURSE
  "CMakeFiles/stpt_signal.dir/fft.cc.o"
  "CMakeFiles/stpt_signal.dir/fft.cc.o.d"
  "CMakeFiles/stpt_signal.dir/wavelet.cc.o"
  "CMakeFiles/stpt_signal.dir/wavelet.cc.o.d"
  "libstpt_signal.a"
  "libstpt_signal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpt_signal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
