# Empty compiler generated dependencies file for stpt_signal.
# This may be replaced when dependencies are built.
