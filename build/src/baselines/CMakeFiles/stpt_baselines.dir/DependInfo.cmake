
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/fast.cc" "src/baselines/CMakeFiles/stpt_baselines.dir/fast.cc.o" "gcc" "src/baselines/CMakeFiles/stpt_baselines.dir/fast.cc.o.d"
  "/root/repo/src/baselines/fourier.cc" "src/baselines/CMakeFiles/stpt_baselines.dir/fourier.cc.o" "gcc" "src/baselines/CMakeFiles/stpt_baselines.dir/fourier.cc.o.d"
  "/root/repo/src/baselines/identity.cc" "src/baselines/CMakeFiles/stpt_baselines.dir/identity.cc.o" "gcc" "src/baselines/CMakeFiles/stpt_baselines.dir/identity.cc.o.d"
  "/root/repo/src/baselines/lgan_dp.cc" "src/baselines/CMakeFiles/stpt_baselines.dir/lgan_dp.cc.o" "gcc" "src/baselines/CMakeFiles/stpt_baselines.dir/lgan_dp.cc.o.d"
  "/root/repo/src/baselines/local_dp.cc" "src/baselines/CMakeFiles/stpt_baselines.dir/local_dp.cc.o" "gcc" "src/baselines/CMakeFiles/stpt_baselines.dir/local_dp.cc.o.d"
  "/root/repo/src/baselines/publisher.cc" "src/baselines/CMakeFiles/stpt_baselines.dir/publisher.cc.o" "gcc" "src/baselines/CMakeFiles/stpt_baselines.dir/publisher.cc.o.d"
  "/root/repo/src/baselines/wavelet_pub.cc" "src/baselines/CMakeFiles/stpt_baselines.dir/wavelet_pub.cc.o" "gcc" "src/baselines/CMakeFiles/stpt_baselines.dir/wavelet_pub.cc.o.d"
  "/root/repo/src/baselines/wpo.cc" "src/baselines/CMakeFiles/stpt_baselines.dir/wpo.cc.o" "gcc" "src/baselines/CMakeFiles/stpt_baselines.dir/wpo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/stpt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/stpt_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/stpt_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/stpt_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/stpt_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/stpt_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
