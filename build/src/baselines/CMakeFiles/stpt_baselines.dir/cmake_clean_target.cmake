file(REMOVE_RECURSE
  "libstpt_baselines.a"
)
