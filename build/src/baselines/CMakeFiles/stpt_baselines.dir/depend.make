# Empty dependencies file for stpt_baselines.
# This may be replaced when dependencies are built.
