file(REMOVE_RECURSE
  "CMakeFiles/stpt_baselines.dir/fast.cc.o"
  "CMakeFiles/stpt_baselines.dir/fast.cc.o.d"
  "CMakeFiles/stpt_baselines.dir/fourier.cc.o"
  "CMakeFiles/stpt_baselines.dir/fourier.cc.o.d"
  "CMakeFiles/stpt_baselines.dir/identity.cc.o"
  "CMakeFiles/stpt_baselines.dir/identity.cc.o.d"
  "CMakeFiles/stpt_baselines.dir/lgan_dp.cc.o"
  "CMakeFiles/stpt_baselines.dir/lgan_dp.cc.o.d"
  "CMakeFiles/stpt_baselines.dir/local_dp.cc.o"
  "CMakeFiles/stpt_baselines.dir/local_dp.cc.o.d"
  "CMakeFiles/stpt_baselines.dir/publisher.cc.o"
  "CMakeFiles/stpt_baselines.dir/publisher.cc.o.d"
  "CMakeFiles/stpt_baselines.dir/wavelet_pub.cc.o"
  "CMakeFiles/stpt_baselines.dir/wavelet_pub.cc.o.d"
  "CMakeFiles/stpt_baselines.dir/wpo.cc.o"
  "CMakeFiles/stpt_baselines.dir/wpo.cc.o.d"
  "libstpt_baselines.a"
  "libstpt_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpt_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
