# Empty compiler generated dependencies file for stpt_bench_util.
# This may be replaced when dependencies are built.
