file(REMOVE_RECURSE
  "libstpt_bench_util.a"
)
