file(REMOVE_RECURSE
  "CMakeFiles/stpt_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/stpt_bench_util.dir/bench_util.cc.o.d"
  "libstpt_bench_util.a"
  "libstpt_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpt_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
