file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8d.dir/bench_fig8d.cc.o"
  "CMakeFiles/bench_fig8d.dir/bench_fig8d.cc.o.d"
  "bench_fig8d"
  "bench_fig8d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
