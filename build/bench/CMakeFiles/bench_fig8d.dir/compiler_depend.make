# Empty compiler generated dependencies file for bench_fig8d.
# This may be replaced when dependencies are built.
