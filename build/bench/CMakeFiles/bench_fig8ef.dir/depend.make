# Empty dependencies file for bench_fig8ef.
# This may be replaced when dependencies are built.
