file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8ef.dir/bench_fig8ef.cc.o"
  "CMakeFiles/bench_fig8ef.dir/bench_fig8ef.cc.o.d"
  "bench_fig8ef"
  "bench_fig8ef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8ef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
