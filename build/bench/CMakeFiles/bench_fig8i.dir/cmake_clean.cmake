file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8i.dir/bench_fig8i.cc.o"
  "CMakeFiles/bench_fig8i.dir/bench_fig8i.cc.o.d"
  "bench_fig8i"
  "bench_fig8i.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8i.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
