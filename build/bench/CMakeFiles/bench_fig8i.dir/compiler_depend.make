# Empty compiler generated dependencies file for bench_fig8i.
# This may be replaced when dependencies are built.
