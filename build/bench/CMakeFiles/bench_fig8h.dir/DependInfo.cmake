
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig8h.cc" "bench/CMakeFiles/bench_fig8h.dir/bench_fig8h.cc.o" "gcc" "bench/CMakeFiles/bench_fig8h.dir/bench_fig8h.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/stpt_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stpt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/stpt_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/stpt_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/stpt_query.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/stpt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/filter/CMakeFiles/stpt_filter.dir/DependInfo.cmake"
  "/root/repo/build/src/signal/CMakeFiles/stpt_signal.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/stpt_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/dp/CMakeFiles/stpt_dp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/stpt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
