file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8h.dir/bench_fig8h.cc.o"
  "CMakeFiles/bench_fig8h.dir/bench_fig8h.cc.o.d"
  "bench_fig8h"
  "bench_fig8h.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8h.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
