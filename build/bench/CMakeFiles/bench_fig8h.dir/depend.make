# Empty dependencies file for bench_fig8h.
# This may be replaced when dependencies are built.
