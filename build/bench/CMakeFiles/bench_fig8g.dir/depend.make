# Empty dependencies file for bench_fig8g.
# This may be replaced when dependencies are built.
