file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8g.dir/bench_fig8g.cc.o"
  "CMakeFiles/bench_fig8g.dir/bench_fig8g.cc.o.d"
  "bench_fig8g"
  "bench_fig8g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
