# Empty dependencies file for bench_fig8ab.
# This may be replaced when dependencies are built.
