file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8ab.dir/bench_fig8ab.cc.o"
  "CMakeFiles/bench_fig8ab.dir/bench_fig8ab.cc.o.d"
  "bench_fig8ab"
  "bench_fig8ab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8ab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
