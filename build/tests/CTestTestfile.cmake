# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dp_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
include("/root/repo/build/tests/signal_test[1]_include.cmake")
include("/root/repo/build/tests/filter_test[1]_include.cmake")
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/layers_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/htf_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_behavior_test[1]_include.cmake")
include("/root/repo/build/tests/nn_extra_test[1]_include.cmake")
