file(REMOVE_RECURSE
  "CMakeFiles/htf_test.dir/htf_test.cc.o"
  "CMakeFiles/htf_test.dir/htf_test.cc.o.d"
  "htf_test"
  "htf_test.pdb"
  "htf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
