file(REMOVE_RECURSE
  "CMakeFiles/stpt_cli.dir/stpt_cli.cc.o"
  "CMakeFiles/stpt_cli.dir/stpt_cli.cc.o.d"
  "stpt_cli"
  "stpt_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stpt_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
