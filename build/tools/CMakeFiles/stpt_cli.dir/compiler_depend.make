# Empty compiler generated dependencies file for stpt_cli.
# This may be replaced when dependencies are built.
