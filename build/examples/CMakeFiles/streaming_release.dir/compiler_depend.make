# Empty compiler generated dependencies file for streaming_release.
# This may be replaced when dependencies are built.
