file(REMOVE_RECURSE
  "CMakeFiles/streaming_release.dir/streaming_release.cpp.o"
  "CMakeFiles/streaming_release.dir/streaming_release.cpp.o.d"
  "streaming_release"
  "streaming_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
