# Empty compiler generated dependencies file for custom_pipeline.
# This may be replaced when dependencies are built.
