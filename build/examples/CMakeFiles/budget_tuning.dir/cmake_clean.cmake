file(REMOVE_RECURSE
  "CMakeFiles/budget_tuning.dir/budget_tuning.cpp.o"
  "CMakeFiles/budget_tuning.dir/budget_tuning.cpp.o.d"
  "budget_tuning"
  "budget_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budget_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
