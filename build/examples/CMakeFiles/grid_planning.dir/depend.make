# Empty dependencies file for grid_planning.
# This may be replaced when dependencies are built.
