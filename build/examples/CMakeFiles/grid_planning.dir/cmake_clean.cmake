file(REMOVE_RECURSE
  "CMakeFiles/grid_planning.dir/grid_planning.cpp.o"
  "CMakeFiles/grid_planning.dir/grid_planning.cpp.o.d"
  "grid_planning"
  "grid_planning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_planning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
