#ifndef STPT_COMMON_MATH_UTIL_H_
#define STPT_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace stpt {

/// Returns true if x is a power of two (and nonzero).
constexpr bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Returns the smallest power of two >= x (x >= 1).
uint64_t NextPowerOfTwo(uint64_t x);

/// Returns floor(log2(x)) for x >= 1.
int FloorLog2(uint64_t x);

/// Returns ceil(a / b) for positive integers.
constexpr int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

/// Clamps v to [lo, hi].
double Clamp(double v, double lo, double hi);

/// Arithmetic mean of a vector; returns 0 for empty input.
double Mean(const std::vector<double>& v);

/// Population standard deviation; returns 0 for size < 2.
double StdDev(const std::vector<double>& v);

/// Maximum element; returns -inf for empty input.
double Max(const std::vector<double>& v);

/// Minimum element; returns +inf for empty input.
double Min(const std::vector<double>& v);

/// Mean absolute error between two equally sized vectors.
double MeanAbsoluteError(const std::vector<double>& a, const std::vector<double>& b);

/// Root mean squared error between two equally sized vectors.
double RootMeanSquaredError(const std::vector<double>& a, const std::vector<double>& b);

/// The p-quantile (0<=p<=1) of the values using linear interpolation.
/// Copies and sorts internally; returns 0 for empty input.
double Quantile(std::vector<double> v, double p);

}  // namespace stpt

#endif  // STPT_COMMON_MATH_UTIL_H_
