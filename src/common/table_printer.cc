#include "common/table_printer.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <sstream>

namespace stpt {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  assert(row.size() == headers_.size());
  rows_.push_back(std::move(row));
}

void TablePrinter::AddRow(const std::string& label, const std::vector<double>& values,
                          int precision) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(FormatDouble(v, precision));
  AddRow(std::move(row));
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_sep = [&] {
    os << '+';
    for (size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string TablePrinter::ToString() const {
  std::ostringstream ss;
  Print(ss);
  return ss.str();
}

}  // namespace stpt
