#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace stpt {
namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(NextUint64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t r;
  do {
    r = NextUint64();
  } while (r >= limit);
  return lo + static_cast<int64_t>(r % range);
}

double Rng::Gaussian() {
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 0.0);
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

double Rng::Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

double Rng::Laplace(double scale) {
  assert(scale > 0.0);
  const double u = NextDouble() - 0.5;  // uniform in [-0.5, 0.5)
  const double sign = (u < 0.0) ? -1.0 : 1.0;
  return -scale * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::LogNormal(double mu, double sigma) { return std::exp(Gaussian(mu, sigma)); }

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

Rng Rng::Fork() {
  const uint64_t child_seed = NextUint64() ^ 0xD1B54A32D192ED03ULL;
  return Rng(child_seed);
}

uint64_t Rng::ForkSeed(uint64_t stream) const {
  // Hash the full 256-bit state down to 64 bits, then mix the stream index
  // through a second splitmix round so adjacent indices decorrelate. The
  // Rng constructor expands the combined seed through splitmix again.
  uint64_t h = s_[0] ^ Rotl(s_[1], 13) ^ Rotl(s_[2], 29) ^ Rotl(s_[3], 43);
  const uint64_t state_hash = SplitMix64(&h);
  uint64_t t = stream ^ 0xD1B54A32D192ED03ULL;
  const uint64_t stream_hash = SplitMix64(&t);
  return state_hash ^ stream_hash;
}

Rng Rng::Fork(uint64_t stream) const { return Rng(ForkSeed(stream)); }

}  // namespace stpt
