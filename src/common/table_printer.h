#ifndef STPT_COMMON_TABLE_PRINTER_H_
#define STPT_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace stpt {

/// Renders aligned ASCII tables for benchmark harness output, so every
/// reproduced paper table/figure prints in a consistent, diffable format.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; the row must have exactly as many cells as headers.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  /// Writes the formatted table to the stream.
  void Print(std::ostream& os) const;

  /// Returns the formatted table as a string.
  std::string ToString() const;

  /// Formats a double with fixed precision.
  static std::string FormatDouble(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stpt

#endif  // STPT_COMMON_TABLE_PRINTER_H_
