#ifndef STPT_COMMON_STATUS_H_
#define STPT_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace stpt {

/// Canonical error codes, a small subset of the gRPC/absl canonical space.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kResourceExhausted = 7,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// Lightweight status object used across library boundaries instead of
/// exceptions (per the project style rules). Cheap to copy in the OK case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory for an OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error holder, analogous to absl::StatusOr<T>.
///
/// Accessing value() on a non-OK StatusOr aborts in debug builds and is
/// undefined in release builds; callers must check ok() first.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (OK state).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status from an expression to the calling function.
#define STPT_RETURN_IF_ERROR(expr)                \
  do {                                            \
    ::stpt::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                    \
  } while (0)

/// Evaluates a StatusOr expression, assigning the value on success and
/// returning the error status otherwise.
#define STPT_ASSIGN_OR_RETURN(lhs, expr)          \
  auto STPT_CONCAT_(_st_or_, __LINE__) = (expr);  \
  if (!STPT_CONCAT_(_st_or_, __LINE__).ok())      \
    return STPT_CONCAT_(_st_or_, __LINE__).status(); \
  lhs = std::move(STPT_CONCAT_(_st_or_, __LINE__)).value()

#define STPT_CONCAT_INNER_(a, b) a##b
#define STPT_CONCAT_(a, b) STPT_CONCAT_INNER_(a, b)

}  // namespace stpt

#endif  // STPT_COMMON_STATUS_H_
