#include "common/math_util.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>

namespace stpt {

uint64_t NextPowerOfTwo(uint64_t x) {
  assert(x >= 1);
  uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

int FloorLog2(uint64_t x) {
  assert(x >= 1);
  int l = 0;
  while (x > 1) {
    x >>= 1;
    ++l;
  }
  return l;
}

double Clamp(double v, double lo, double hi) { return std::max(lo, std::min(hi, v)); }

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double ss = 0.0;
  for (double x : v) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(v.size()));
}

double Max(const std::vector<double>& v) {
  if (v.empty()) return -std::numeric_limits<double>::infinity();
  return *std::max_element(v.begin(), v.end());
}

double Min(const std::vector<double>& v) {
  if (v.empty()) return std::numeric_limits<double>::infinity();
  return *std::min_element(v.begin(), v.end());
}

double MeanAbsoluteError(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
  return s / static_cast<double>(a.size());
}

double RootMeanSquaredError(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  if (a.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += (a[i] - b[i]) * (a[i] - b[i]);
  return std::sqrt(s / static_cast<double>(a.size()));
}

double Quantile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  p = Clamp(p, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(idx);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace stpt
