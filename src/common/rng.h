#ifndef STPT_COMMON_RNG_H_
#define STPT_COMMON_RNG_H_

#include <cstdint>

namespace stpt {

/// Deterministic pseudo-random number generator (xoshiro256++), seeded via
/// splitmix64. Every stochastic component in the library takes an explicit
/// Rng& so that all experiments and tests are reproducible from a seed.
///
/// Not cryptographically secure; a production DP deployment must swap the
/// noise-sampling RNG for a CSPRNG. The sampling *logic* (inverse-CDF Laplace,
/// etc.) is unchanged by that swap, which is why it is injected.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed (expanded via splitmix64).
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64 uniformly random bits.
  uint64_t NextUint64();

  /// Returns a double uniform in [0, 1).
  double NextDouble();

  /// Returns a double uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Returns an integer uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Returns a standard normal sample (Box–Muller, no caching).
  double Gaussian();

  /// Returns a N(mean, stddev^2) sample.
  double Gaussian(double mean, double stddev);

  /// Returns a zero-mean Laplace(b) sample via inverse CDF.
  double Laplace(double scale);

  /// Returns an Exp(rate) sample (mean 1/rate).
  double Exponential(double rate);

  /// Returns a log-normal sample with the given underlying normal params.
  double LogNormal(double mu, double sigma);

  /// Returns true with probability p.
  bool Bernoulli(double p);

  /// Forks an independent child generator; the child stream does not overlap
  /// the parent's (different splitmix64 seed derived from parent state).
  /// Advances the parent, so successive calls yield distinct children.
  Rng Fork();

  /// Derives the `stream`-th child generator from the current state
  /// *without* advancing it: the same (state, stream) pair always yields
  /// the same child, and distinct streams yield independent children.
  ///
  /// This is the primitive behind order-independent noise generation: a
  /// loop that draws noise per item must give item i the substream
  /// `base.Fork(i)` instead of sharing one sequential Rng, so the result
  /// is identical whether items run serially, out of order, or on any
  /// number of threads (see exec/parallel.h and DESIGN.md).
  Rng Fork(uint64_t stream) const;

  /// The 64-bit seed `Fork(stream)` expands its child from. Exposed so that
  /// batched samplers (src/kernels) can derive many substream seeds without
  /// materialising intermediate Rng objects; `Rng(ForkSeed(s))` is exactly
  /// `Fork(s)`.
  uint64_t ForkSeed(uint64_t stream) const;

 private:
  uint64_t s_[4];
};

}  // namespace stpt

#endif  // STPT_COMMON_RNG_H_
