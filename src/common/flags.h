#ifndef STPT_COMMON_FLAGS_H_
#define STPT_COMMON_FLAGS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace stpt {

/// Minimal command-line parser for the CLI tools: positional arguments plus
/// `--key=value` / `--flag` options. No registration step — callers query
/// by name with a default.
class Flags {
 public:
  /// Parses argv. Returns InvalidArgument on malformed options (`--=x`).
  static StatusOr<Flags> Parse(int argc, const char* const* argv);

  /// Positional arguments in order (argv[0] excluded).
  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& key) const;

  /// String option or default.
  std::string GetString(const std::string& key, const std::string& def) const;

  /// Integer option or default; returns def on parse failure.
  int64_t GetInt(const std::string& key, int64_t def) const;

  /// Double option or default; returns def on parse failure.
  double GetDouble(const std::string& key, double def) const;

  /// True if `--key` present without value or with value in
  /// {1, true, yes, on}; false for {0, false, no, off}; def otherwise.
  bool GetBool(const std::string& key, bool def) const;

 private:
  struct Option {
    std::string key;
    std::string value;
    bool has_value = false;
  };

  const Option* Find(const std::string& key) const;

  std::vector<std::string> positional_;
  std::vector<Option> options_;
};

}  // namespace stpt

#endif  // STPT_COMMON_FLAGS_H_
