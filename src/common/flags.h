#ifndef STPT_COMMON_FLAGS_H_
#define STPT_COMMON_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace stpt {

/// Registration-based command-line parser for the CLI tools and bench
/// binaries: positional arguments plus `--key=value` / `--flag` options.
///
/// Unlike an ad-hoc query-by-name parser, every flag must be defined (name,
/// type, default, help line) before Parse, and Parse fails with
/// InvalidArgument on an unknown flag or a malformed value instead of
/// silently falling back to a default — a typo like `--theads=4` is an error,
/// not a no-op. Flags whose name matches a registered ignore-prefix (e.g.
/// `benchmark_` for google-benchmark binaries) pass through unvalidated.
///
///   FlagSet flags;
///   flags.DefineInt("port", 0, "server port (0 = ephemeral)");
///   flags.DefineBool("profile", false, "print the timing profile at exit");
///   STPT_RETURN_IF_ERROR(flags.Parse(argc, argv));
///   if (flags.Provided("port")) Connect(flags.GetInt("port"));
class FlagSet {
 public:
  FlagSet() = default;

  /// Registers one flag. Names are matched exactly (no abbreviation);
  /// defining the same name twice is a programming error (asserts).
  void DefineString(const std::string& name, const std::string& def,
                    const std::string& help);
  void DefineInt(const std::string& name, int64_t def, const std::string& help);
  void DefineDouble(const std::string& name, double def, const std::string& help);
  void DefineBool(const std::string& name, bool def, const std::string& help);

  /// Options whose name starts with `prefix` are accepted and ignored
  /// (needed when another library parses part of argv, e.g. `--benchmark_*`).
  void IgnorePrefix(const std::string& prefix);

  /// Parses argv (argv[0] excluded). On error the FlagSet keeps its
  /// defaults; values parsed before the error may already be applied, so
  /// treat a non-OK status as fatal. A repeated flag keeps the last value.
  Status Parse(int argc, const char* const* argv);

  /// Positional arguments in order (argv[0] excluded).
  const std::vector<std::string>& positional() const { return positional_; }

  /// True if the flag appeared on the command line (used for defaults that
  /// depend on runtime data, e.g. "half the time slices").
  bool Provided(const std::string& name) const;

  /// Typed accessors; asserting that the flag was defined with that type.
  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// One "--name=<type> (default ...)  help" line per defined flag, in
  /// definition order — ready to print after a usage error.
  std::string Usage() const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };

  struct Flag {
    std::string name;
    Type type = Type::kString;
    std::string help;
    bool provided = false;
    std::string str_value;
    int64_t int_value = 0;
    double double_value = 0.0;
    bool bool_value = false;
  };

  Flag* Find(const std::string& name);
  const Flag* Find(const std::string& name) const;
  void Define(Flag flag);

  std::vector<Flag> flags_;
  std::vector<std::string> ignore_prefixes_;
  std::vector<std::string> positional_;
};

}  // namespace stpt

#endif  // STPT_COMMON_FLAGS_H_
