#include "common/flags.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <sstream>

namespace stpt {
namespace {

const char* TypeName(int type) {
  switch (type) {
    case 0: return "string";
    case 1: return "int";
    case 2: return "double";
    default: return "bool";
  }
}

}  // namespace

void FlagSet::Define(Flag flag) {
  assert(!flag.name.empty() && "flag name must not be empty");
  assert(Find(flag.name) == nullptr && "flag defined twice");
  flags_.push_back(std::move(flag));
}

void FlagSet::DefineString(const std::string& name, const std::string& def,
                           const std::string& help) {
  Flag f;
  f.name = name;
  f.type = Type::kString;
  f.help = help;
  f.str_value = def;
  Define(std::move(f));
}

void FlagSet::DefineInt(const std::string& name, int64_t def, const std::string& help) {
  Flag f;
  f.name = name;
  f.type = Type::kInt;
  f.help = help;
  f.int_value = def;
  Define(std::move(f));
}

void FlagSet::DefineDouble(const std::string& name, double def,
                           const std::string& help) {
  Flag f;
  f.name = name;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = def;
  Define(std::move(f));
}

void FlagSet::DefineBool(const std::string& name, bool def, const std::string& help) {
  Flag f;
  f.name = name;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = def;
  Define(std::move(f));
}

void FlagSet::IgnorePrefix(const std::string& prefix) {
  ignore_prefixes_.push_back(prefix);
}

FlagSet::Flag* FlagSet::Find(const std::string& name) {
  for (auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const FlagSet::Flag* FlagSet::Find(const std::string& name) const {
  return const_cast<FlagSet*>(this)->Find(name);
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    const std::string key = eq == std::string::npos ? body : body.substr(0, eq);
    const bool has_value = eq != std::string::npos;
    const std::string value = has_value ? body.substr(eq + 1) : std::string();
    if (key.empty()) {
      return Status::InvalidArgument("flags: empty option name in '" + arg + "'");
    }
    const bool ignored =
        std::any_of(ignore_prefixes_.begin(), ignore_prefixes_.end(),
                    [&key](const std::string& p) { return key.rfind(p, 0) == 0; });
    if (ignored) continue;
    Flag* flag = Find(key);
    if (flag == nullptr) {
      return Status::InvalidArgument("flags: unknown flag --" + key);
    }
    switch (flag->type) {
      case Type::kString:
        if (!has_value) {
          return Status::InvalidArgument("flags: --" + key + " requires a value");
        }
        flag->str_value = value;
        break;
      case Type::kInt: {
        if (!has_value || value.empty()) {
          return Status::InvalidArgument("flags: --" + key +
                                         " requires an integer value");
        }
        char* end = nullptr;
        errno = 0;
        const long long v = std::strtoll(value.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || errno == ERANGE) {
          return Status::InvalidArgument("flags: --" + key + "='" + value +
                                         "' is not a representable integer");
        }
        flag->int_value = v;
        break;
      }
      case Type::kDouble: {
        if (!has_value || value.empty()) {
          return Status::InvalidArgument("flags: --" + key +
                                         " requires a numeric value");
        }
        char* end = nullptr;
        errno = 0;
        const double v = std::strtod(value.c_str(), &end);
        if (end == nullptr || *end != '\0' || errno == ERANGE) {
          return Status::InvalidArgument("flags: --" + key + "='" + value +
                                         "' is not a representable number");
        }
        flag->double_value = v;
        break;
      }
      case Type::kBool: {
        if (!has_value) {
          flag->bool_value = true;
          break;
        }
        std::string v = value;
        // Cast through unsigned char: feeding a negative char (any byte
        // >= 0x80) to tolower is undefined behaviour.
        std::transform(v.begin(), v.end(), v.begin(), [](unsigned char c) {
          return static_cast<char>(std::tolower(c));
        });
        if (v == "1" || v == "true" || v == "yes" || v == "on") {
          flag->bool_value = true;
        } else if (v == "0" || v == "false" || v == "no" || v == "off") {
          flag->bool_value = false;
        } else {
          return Status::InvalidArgument("flags: --" + key + "='" + value +
                                         "' is not a boolean");
        }
        break;
      }
    }
    flag->provided = true;
  }
  return Status::OK();
}

bool FlagSet::Provided(const std::string& name) const {
  const Flag* f = Find(name);
  return f != nullptr && f->provided;
}

std::string FlagSet::GetString(const std::string& name) const {
  const Flag* f = Find(name);
  assert(f != nullptr && f->type == Type::kString && "GetString on undefined flag");
  return f->str_value;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  const Flag* f = Find(name);
  assert(f != nullptr && f->type == Type::kInt && "GetInt on undefined flag");
  return f->int_value;
}

double FlagSet::GetDouble(const std::string& name) const {
  const Flag* f = Find(name);
  assert(f != nullptr && f->type == Type::kDouble && "GetDouble on undefined flag");
  return f->double_value;
}

bool FlagSet::GetBool(const std::string& name) const {
  const Flag* f = Find(name);
  assert(f != nullptr && f->type == Type::kBool && "GetBool on undefined flag");
  return f->bool_value;
}

std::string FlagSet::Usage() const {
  std::ostringstream os;
  for (const auto& f : flags_) {
    os << "  --" << f.name << "=<" << TypeName(static_cast<int>(f.type))
       << "> (default ";
    switch (f.type) {
      case Type::kString: os << "\"" << f.str_value << "\""; break;
      case Type::kInt: os << f.int_value; break;
      case Type::kDouble: os << f.double_value; break;
      case Type::kBool: os << (f.bool_value ? "true" : "false"); break;
    }
    os << ")";
    if (!f.help.empty()) os << "  " << f.help;
    os << "\n";
  }
  return os.str();
}

}  // namespace stpt
