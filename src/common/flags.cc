#include "common/flags.h"

#include <algorithm>
#include <cstdlib>

namespace stpt {

StatusOr<Flags> Flags::Parse(int argc, const char* const* argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    Option opt;
    if (eq == std::string::npos) {
      opt.key = body;
    } else {
      opt.key = body.substr(0, eq);
      opt.value = body.substr(eq + 1);
      opt.has_value = true;
    }
    if (opt.key.empty()) {
      return Status::InvalidArgument("Flags: empty option name in '" + arg + "'");
    }
    flags.options_.push_back(std::move(opt));
  }
  return flags;
}

const Flags::Option* Flags::Find(const std::string& key) const {
  for (const auto& o : options_) {
    if (o.key == key) return &o;
  }
  return nullptr;
}

bool Flags::Has(const std::string& key) const { return Find(key) != nullptr; }

std::string Flags::GetString(const std::string& key, const std::string& def) const {
  const Option* o = Find(key);
  return (o != nullptr && o->has_value) ? o->value : def;
}

int64_t Flags::GetInt(const std::string& key, int64_t def) const {
  const Option* o = Find(key);
  if (o == nullptr || !o->has_value) return def;
  char* end = nullptr;
  const long long v = std::strtoll(o->value.c_str(), &end, 10);
  return (end != nullptr && *end == '\0' && !o->value.empty()) ? v : def;
}

double Flags::GetDouble(const std::string& key, double def) const {
  const Option* o = Find(key);
  if (o == nullptr || !o->has_value) return def;
  char* end = nullptr;
  const double v = std::strtod(o->value.c_str(), &end);
  return (end != nullptr && *end == '\0' && !o->value.empty()) ? v : def;
}

bool Flags::GetBool(const std::string& key, bool def) const {
  const Option* o = Find(key);
  if (o == nullptr) return def;
  if (!o->has_value) return true;
  std::string v = o->value;
  std::transform(v.begin(), v.end(), v.begin(), ::tolower);
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  return def;
}

}  // namespace stpt
