#ifndef STPT_CORE_ACCURACY_MODEL_H_
#define STPT_CORE_ACCURACY_MODEL_H_

#include <vector>

#include "common/status.h"
#include "core/quantization.h"
#include "grid/consumption_matrix.h"
#include "query/range_query.h"

namespace stpt::core {

/// Closed-form accuracy predictions for DP releases — the analytical model
/// the paper's §7 lists as future work. All quantities are *noise*
/// variances/errors (approximation error from partition spreading is
/// data-dependent and measured empirically instead).

/// Noise variance of a range query of `volume` cells answered from an
/// Identity release: each cell carries Lap(unit * ct / eps_tot) noise, so
/// the query variance is volume * 2 * (unit * ct / eps_tot)^2.
double IdentityQueryNoiseVariance(int volume, int ct, double eps_tot,
                                  double unit_sensitivity);

/// Noise variance of a range query answered from an STPT release: a query
/// covering `covered[i]` cells of partition i (of size `sizes[i]`, budget
/// `eps[i]`, sensitivity `sens[i]`) inherits (covered/size)^2 of each
/// partition's noise variance 2 (sens/eps)^2.
StatusOr<double> StptQueryNoiseVariance(const std::vector<size_t>& covered,
                                        const std::vector<size_t>& sizes,
                                        const std::vector<double>& sens,
                                        const std::vector<double>& eps);

/// Expected absolute noise error of a Laplace sum: E|X| = b for Lap(b), so
/// for a query with variance v = 2 b^2 (single mechanism) the expected
/// absolute error is sqrt(v / 2). For sums of several independent Laplace
/// contributions this is a sub-additive approximation.
double ExpectedAbsError(double noise_variance);

/// Per-partition coverage of a query under a quantization: covered[i] =
/// number of cells of bucket i inside the query box.
std::vector<size_t> PartitionCoverage(const Quantization& quantization,
                                      const grid::Dims& dims,
                                      const query::RangeQuery& q);

/// Predicted expected |noise| of an STPT release for one query, combining
/// PartitionCoverage and StptQueryNoiseVariance.
StatusOr<double> PredictStptQueryAbsNoise(const Quantization& quantization,
                                          const grid::Dims& dims,
                                          const std::vector<double>& sens,
                                          const std::vector<double>& eps,
                                          const query::RangeQuery& q);

}  // namespace stpt::core

#endif  // STPT_CORE_ACCURACY_MODEL_H_
