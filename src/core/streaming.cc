#include "core/streaming.h"

#include <cmath>

namespace stpt::core {

StatusOr<StreamingPublisher> StreamingPublisher::Create(int cells,
                                                        double unit_sensitivity,
                                                        const Options& options) {
  if (cells <= 0) {
    return Status::InvalidArgument("StreamingPublisher: cells must be > 0");
  }
  if (!(unit_sensitivity > 0.0)) {
    return Status::InvalidArgument("StreamingPublisher: sensitivity must be > 0");
  }
  if (options.window <= 0 || !(options.epsilon > 0.0)) {
    return Status::InvalidArgument("StreamingPublisher: bad window/epsilon");
  }
  if (!(options.dissimilarity_fraction > 0.0) ||
      !(options.dissimilarity_fraction < 1.0)) {
    return Status::InvalidArgument(
        "StreamingPublisher: dissimilarity fraction must be in (0, 1)");
  }
  return StreamingPublisher(cells, unit_sensitivity, options);
}

void StreamingPublisher::EvictExpired() {
  while (!window_.empty() && window_.front().time <= time_ - options_.window) {
    window_.pop_front();
  }
}

double StreamingPublisher::WindowSpend() const {
  double s = 0.0;
  for (const auto& entry : window_) s += entry.epsilon;
  return s;
}

void StreamingPublisher::AttachAccountant(dp::BudgetAccountant* accountant,
                                          std::string stage_prefix) {
  accountant_ = accountant;
  stage_prefix_ = std::move(stage_prefix);
}

Status StreamingPublisher::ChargeAccountant(const char* kind, double epsilon,
                                            double sensitivity) {
  if (accountant_ == nullptr) return Status::OK();
  // One stage per (timestep, kind) pair: never reused, so every streaming
  // charge composes sequentially and the ledger replay is the raw sum —
  // the same arithmetic WindowSpend() uses inside the window.
  return accountant_->Charge(
      stage_prefix_ + "/t" + std::to_string(time_) + "/" + kind, epsilon,
      dp::ChargeDetails{"laplace", sensitivity});
}

StatusOr<std::vector<double>> StreamingPublisher::ProcessSlice(
    const std::vector<double>& slice, Rng& rng) {
  if (static_cast<int>(slice.size()) != cells_) {
    return Status::InvalidArgument("ProcessSlice: slice size mismatch");
  }
  EvictExpired();

  const double eps_dis_total = options_.epsilon * options_.dissimilarity_fraction;
  const double eps_dis = eps_dis_total / options_.window;  // per slice
  const double eps_pub_budget = options_.epsilon - eps_dis_total;

  // Publication budget still unspent inside the current window. Taking half
  // of it for each publication guarantees the window total never exceeds
  // eps_pub_budget regardless of how many publications the data forces.
  double pub_spent = 0.0;
  for (const auto& entry : window_) {
    if (entry.is_publication) pub_spent += entry.epsilon;
  }
  const double eps_pub = (eps_pub_budget - pub_spent) / 2.0;

  // Charges hit the accountant before any noise is drawn or state mutated,
  // so a rejected charge leaves the publisher (and its RNG) untouched.
  auto publish = [&]() -> Status {
    if (Status charged = ChargeAccountant("pub", eps_pub, unit_); !charged.ok()) {
      return charged;
    }
    last_published_.resize(cells_);
    for (int c = 0; c < cells_; ++c) {
      last_published_[c] = slice[c] + rng.Laplace(unit_ / eps_pub);
    }
    window_.push_back({time_, eps_pub, /*is_publication=*/true});
    has_published_ = true;
    return Status::OK();
  };

  if (!has_published_) {
    if (Status published = publish(); !published.ok()) return published;
    ++time_;
    return last_published_;
  }

  // Dissimilarity test: noisy mean absolute deviation from the last
  // release. One user changes one cell per slice by at most unit_, so the
  // mean absolute deviation has sensitivity unit_ / cells.
  if (Status charged = ChargeAccountant("dis", eps_dis, unit_ / cells_);
      !charged.ok()) {
    return charged;
  }
  double mad = 0.0;
  for (int c = 0; c < cells_; ++c) mad += std::fabs(slice[c] - last_published_[c]);
  mad /= static_cast<double>(cells_);
  const double noisy_mad = mad + rng.Laplace(unit_ / cells_ / eps_dis);
  window_.push_back({time_, eps_dis, /*is_publication=*/false});

  // Budget-exhaustion guard: once the window's publication budget has been
  // halved a few times, a fresh release would be noisier than any realistic
  // drift — and, worse, its noise would inflate every later dissimilarity
  // test (a publication death-spiral). Republish until charges expire.
  if (eps_pub < eps_pub_budget / 16.0) {
    ++republish_count_;
    ++time_;
    return last_published_;
  }

  // Publish only if the deviation clearly exceeds the combined noise floor:
  // the dissimilarity test's own noise plus the per-cell noise a fresh
  // release would carry. Below that, the old release is at least as
  // accurate and republishing costs nothing.
  // Two dissimilarity-noise scales keep the spurious-publication rate at
  // P(|Lap(b)| > 2b) = e^-2 ~ 13%.
  const double dis_noise_scale = unit_ / cells_ / eps_dis;
  const double publication_noise_scale =
      eps_pub > 1e-9 ? unit_ / eps_pub / cells_ : 1e300;
  if (noisy_mad <= 2.0 * dis_noise_scale + publication_noise_scale) {
    ++republish_count_;
    ++time_;
    return last_published_;
  }
  if (Status published = publish(); !published.ok()) return published;
  ++time_;
  return last_published_;
}

}  // namespace stpt::core
