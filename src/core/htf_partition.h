#ifndef STPT_CORE_HTF_PARTITION_H_
#define STPT_CORE_HTF_PARTITION_H_

#include "common/status.h"
#include "core/quantization.h"
#include "grid/consumption_matrix.h"

namespace stpt::core {

/// Homogeneity-driven spatial-temporal partitioning of the pattern matrix,
/// inspired by the authors' HTF framework (Shaham et al., SIGSPATIAL 2021,
/// cited in the paper's §6 as the histogram-homogeneity foundation).
///
/// Instead of bucketing cells by value (k-quantization, Definition 4), the
/// 3-D index space is recursively split kd-tree style: at every step the
/// leaf with the largest total squared deviation from its mean (impurity)
/// is cut along the axis/position that minimises the impurity of the two
/// halves. The result is a set of axis-aligned *boxes* — spatially coherent
/// partitions, unlike quantization's scattered level sets.
///
/// Because the input is the (already private) pattern matrix, the
/// partitioning is DP by post-processing, exactly like k-quantization.
///
/// Returns a Quantization whose bucket ids are leaf indices, so the rest of
/// the STPT sanitization pipeline (pillar sensitivities, Theorem-8 budgets,
/// spreading) applies unchanged. `max_partitions` >= 1 bounds the leaf
/// count.
StatusOr<Quantization> HtfPartition(const grid::ConsumptionMatrix& pattern,
                                    int max_partitions);

}  // namespace stpt::core

#endif  // STPT_CORE_HTF_PARTITION_H_
