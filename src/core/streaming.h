#ifndef STPT_CORE_STREAMING_H_
#define STPT_CORE_STREAMING_H_

#include <deque>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dp/budget_accountant.h"

namespace stpt::core {

/// Sliding-window (w-event) DP release for streaming consumption slices —
/// the continuous-publication extension the paper's §7 points toward.
///
/// Guarantee: the total privacy budget spent on any w consecutive slices is
/// at most epsilon (w-event privacy, Kellaris et al., VLDB 2014). The
/// implementation follows the budget-distribution pattern:
///
///  * a fixed fraction of the per-window budget pays, at every slice, for a
///    noisy dissimilarity test between the incoming slice and the last
///    published one;
///  * if the test says "similar", the previous release is republished at
///    zero additional cost;
///  * otherwise the slice is published with half of the publication budget
///    still unspent inside the current window (exponential back-off, so the
///    window budget is never exceeded no matter how many changes occur).
///
/// Each call to ProcessSlice seals one slice: its release (or republish
/// decision) is spent budget and can never be revised, which is why the
/// ingest pipeline holds a slice open — optionally with a backfill grace
/// behind it — until no more readings are expected, and enforces the
/// unit_sensitivity bound by clamping at admission rather than trusting
/// feeders (see ingest::IngestPipeline).
class StreamingPublisher {
 public:
  struct Options {
    int window = 10;          ///< w of the w-event guarantee (slices)
    double epsilon = 1.0;     ///< budget per window
    double dissimilarity_fraction = 0.2;  ///< share reserved for the tests
  };

  /// Creates a publisher for slices of `cells` values whose per-user,
  /// per-slice contribution is bounded by unit_sensitivity. Returns
  /// InvalidArgument for non-positive parameters.
  static StatusOr<StreamingPublisher> Create(int cells, double unit_sensitivity,
                                             const Options& options);

  /// Processes one incoming slice and returns the released slice.
  StatusOr<std::vector<double>> ProcessSlice(const std::vector<double>& slice,
                                             Rng& rng);

  /// Attaches a budget accountant: every subsequent dissimilarity-test and
  /// publication charge is recorded against it (and, through it, any
  /// attached dp::AuditLedger) under the stage name
  /// "<prefix>/t<slice>/dis" or "<prefix>/t<slice>/pub". Stage names are
  /// unique per timestep, so streaming charges compose sequentially and a
  /// ledger replay reproduces the raw sum bitwise. If the accountant
  /// rejects a charge, ProcessSlice returns its error and the slice is not
  /// released. Pass nullptr to detach; the accountant is not owned and must
  /// outlive the publisher.
  void AttachAccountant(dp::BudgetAccountant* accountant,
                        std::string stage_prefix = "stream");

  /// Budget spent inside the trailing window (must stay <= epsilon).
  double WindowSpend() const;

  /// Number of slices processed so far.
  int64_t slices_processed() const { return time_; }

  /// Number of slices that were re-published (skipped) so far.
  int64_t republish_count() const { return republish_count_; }

 private:
  StreamingPublisher(int cells, double unit_sensitivity, const Options& options)
      : cells_(cells), unit_(unit_sensitivity), options_(options) {}

  /// Drops window charges that fell out of the window.
  void EvictExpired();

  /// Records one charge against the attached accountant (no-op when
  /// detached). `kind` is "dis" or "pub".
  Status ChargeAccountant(const char* kind, double epsilon, double sensitivity);

  int cells_;
  double unit_;
  Options options_;
  int64_t time_ = 0;
  int64_t republish_count_ = 0;
  std::vector<double> last_published_;
  bool has_published_ = false;
  struct WindowCharge {
    int64_t time;
    double epsilon;
    bool is_publication;
  };
  /// Charges inside the sliding window (dissimilarity tests + publications).
  /// This is eviction bookkeeping for the w-event arithmetic only — the
  /// auditable record lives in the attached accountant/ledger.
  std::deque<WindowCharge> window_;
  dp::BudgetAccountant* accountant_ = nullptr;  // not owned
  std::string stage_prefix_ = "stream";
};

}  // namespace stpt::core

#endif  // STPT_CORE_STREAMING_H_
