#ifndef STPT_CORE_QUANTIZATION_H_
#define STPT_CORE_QUANTIZATION_H_

#include <vector>

#include "common/status.h"
#include "grid/consumption_matrix.h"

namespace stpt::core {

/// Result of k-quantizing a pattern matrix (Definition 4): every cell is
/// assigned the index of the bucket its value falls into, yielding k
/// non-overlapping (possibly discontiguous) partitions.
struct Quantization {
  int levels = 0;
  double min_value = 0.0;
  double max_value = 0.0;
  /// Bucket index per cell, same linear layout as the matrix data.
  std::vector<int> bucket;

  /// Number of cells in each bucket (size == levels; empty buckets allowed).
  std::vector<size_t> bucket_sizes;
};

/// k-quantizes the matrix value range into k equal buckets. Returns
/// InvalidArgument for k < 1. A constant matrix maps every cell to bucket 0.
StatusOr<Quantization> KQuantize(const grid::ConsumptionMatrix& pattern, int k);

/// Pillar sensitivity of each partition (Theorem 7): the maximum number of
/// cells any single xy-pillar contributes to the partition, in *cell count*
/// units (multiply by the per-reading clipping factor for kWh sensitivity).
std::vector<int> PartitionPillarCounts(const Quantization& quantization,
                                       const grid::Dims& dims);

}  // namespace stpt::core

#endif  // STPT_CORE_QUANTIZATION_H_
