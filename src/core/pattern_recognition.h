#ifndef STPT_CORE_PATTERN_RECOGNITION_H_
#define STPT_CORE_PATTERN_RECOGNITION_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/stpt_config.h"
#include "grid/consumption_matrix.h"
#include "grid/quadtree.h"

namespace stpt::core {

/// Output of the pattern-recognition step (paper §4.2).
struct PatternResult {
  /// Private estimates of the normalised consumption for the *test* region:
  /// dims [Cx, Cy, Ct - t_train]. Safe to post-process (Theorem 3).
  grid::ConsumptionMatrix pattern;
  /// The sanitized quadtree levels used for training (already noisy).
  std::vector<grid::QuadtreeLevel> sanitized_levels;
  /// Trained predictor (kept for inspection / reuse).
  std::unique_ptr<nn::SequencePredictor> predictor;
  /// Per-epoch training losses.
  nn::TrainStats train_stats;
};

/// Sanitizes the representative series of every quadtree level in place:
/// each time point receives Laplace noise with per-point budget
/// eps_pattern / t_train and per-level sensitivity
/// cell_sensitivity_normalized / num_cells (Theorem 6; for square
/// power-of-two grids this is 1 / 4^{log2(Cx) - depth} in normalised units).
///
/// `cell_sensitivity_normalized` is the largest change one household can
/// induce on one normalised matrix cell (clip_factor / value range).
Status SanitizeQuadtreeLevels(std::vector<grid::QuadtreeLevel>* levels,
                              double eps_pattern, int t_train,
                              double cell_sensitivity_normalized, Rng& rng);

/// Runs the full pattern-recognition step on the *normalised* matrix:
/// quadtree construction, hierarchical sanitization, model training, and
/// autoregressive roll-out of C_pattern over [t_train, Ct).
///
/// All data consumed by the model is already sanitized, so the output is
/// DP by post-processing immunity.
StatusOr<PatternResult> RunPatternRecognition(const grid::ConsumptionMatrix& norm,
                                              const StptConfig& config,
                                              double cell_sensitivity_normalized,
                                              Rng& rng);

}  // namespace stpt::core

#endif  // STPT_CORE_PATTERN_RECOGNITION_H_
