#ifndef STPT_CORE_STPT_H_
#define STPT_CORE_STPT_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/pattern_recognition.h"
#include "core/quantization.h"
#include "core/stpt_config.h"
#include "grid/consumption_matrix.h"

namespace stpt::core {

/// Everything STPT produces for one publication run.
struct StptResult {
  /// The eps_tot-DP release: sanitized consumption over the test region,
  /// dims [Cx, Cy, Ct - t_train] (paper publishes the post-training slices).
  grid::ConsumptionMatrix sanitized;
  /// The private normalised pattern estimates driving the partitioning.
  grid::ConsumptionMatrix pattern;
  /// The k-quantization used for partitioning.
  Quantization quantization;
  /// Per-partition privacy budgets (Eq. 11), index-aligned with buckets.
  std::vector<double> partition_epsilons;
  /// Per-partition kWh sensitivities (Theorem 7 x clip factor).
  std::vector<double> partition_sensitivities;
  /// Model-training diagnostics.
  nn::TrainStats train_stats;
  /// Pattern-estimate quality vs the true normalised test data (Figs 8a/8b).
  double pattern_mae = 0.0;
  double pattern_rmse = 0.0;
};

/// The STPT algorithm (paper Algorithm 1): hierarchical DP pattern
/// recognition with a sequence model, k-quantization partitioning, and
/// sensitivity-aware Laplace sanitization.
class Stpt {
 public:
  explicit Stpt(const StptConfig& config) : config_(config) {}

  /// Publishes an (eps_pattern + eps_sanitize)-DP sanitized matrix for the
  /// test region of `cons`. `unit_sensitivity` is the per-reading clipping
  /// factor (Table 2) bounding one household's contribution to one cell in
  /// one slice.
  StatusOr<StptResult> Publish(const grid::ConsumptionMatrix& cons,
                               double unit_sensitivity, Rng& rng) const;

  const StptConfig& config() const { return config_; }

 private:
  StptConfig config_;
};

/// Extracts the test-region sub-matrix [t_train, ct) of a consumption
/// matrix (ground truth counterpart of StptResult::sanitized).
StatusOr<grid::ConsumptionMatrix> TestRegion(const grid::ConsumptionMatrix& cons,
                                             int t_train);

}  // namespace stpt::core

#endif  // STPT_CORE_STPT_H_
