#ifndef STPT_CORE_BUDGET_ALLOCATION_H_
#define STPT_CORE_BUDGET_ALLOCATION_H_

#include <vector>

#include "common/status.h"
#include "core/stpt_config.h"

namespace stpt::core {

/// Splits `eps_total` across partitions given their sensitivities.
///
/// kOptimal implements Theorem 8 (Eq. 11): eps_i = eps * s_i^{2/3} / Σ s_j^{2/3},
/// the minimiser of total Laplace noise variance Σ 2 s_i^2 / eps_i^2 subject
/// to Σ eps_i = eps (sequential composition across partitions).
/// kUniform gives every partition eps / m (ablation).
///
/// Entries with sensitivity 0 (empty partitions) receive no budget and must
/// be skipped by the caller. Returns InvalidArgument if eps_total <= 0, any
/// sensitivity is negative, or all sensitivities are zero.
StatusOr<std::vector<double>> AllocateBudget(const std::vector<double>& sensitivities,
                                             double eps_total,
                                             BudgetAllocation allocation);

/// Total expected Laplace noise variance Σ 2 (s_i / eps_i)^2 for an
/// allocation (used by tests and the ablation bench to verify optimality).
double TotalNoiseVariance(const std::vector<double>& sensitivities,
                          const std::vector<double>& epsilons);

}  // namespace stpt::core

#endif  // STPT_CORE_BUDGET_ALLOCATION_H_
