#ifndef STPT_CORE_STPT_CONFIG_H_
#define STPT_CORE_STPT_CONFIG_H_

#include "nn/predictor.h"

namespace stpt::dp {
class AuditLedger;
}  // namespace stpt::dp

namespace stpt::core {

/// How the sanitization budget is split across partitions.
enum class BudgetAllocation {
  kOptimal,  ///< Theorem 8 / Eq. 11: eps_i ∝ s_i^{2/3}
  kUniform,  ///< ablation: equal eps per partition
};

/// How C_pattern is rolled out over the test region from the trained model.
enum class RolloutMode {
  /// Each cell's window is seeded from its finest sanitized series and the
  /// model feeds on its own predictions. Pure Algorithm-1 reading; in
  /// practice MSE-trained models shrink noisy seeds toward the global mean,
  /// washing out spatial (micro) structure over long horizons.
  kAutoregressive,
  /// The model rolls out the *macro* series (spatial average of the
  /// sanitized quadtree levels) to capture the temporal pattern, and each
  /// cell is anchored at its sanitized finest-level mean (micro pattern):
  /// pattern(c, t) = clamp(level_c * macro(t) / mean(macro)). Both inputs
  /// are sanitized, so the output stays DP by post-processing (Theorem 3).
  /// Default; ablated against kAutoregressive in bench_ablation.
  kLevelAnchored,
};

/// Full configuration of the STPT pipeline (paper Algorithm 1 inputs plus
/// the Appendix C hyper-parameters).
struct StptConfig {
  // --- Privacy budgets (paper defaults: eps_tot = 30 split 10/20). ---
  double eps_pattern = 10.0;
  double eps_sanitize = 20.0;

  // --- Pattern recognition. ---
  int t_train = 100;        ///< training prefix length (time slices)
  int quadtree_depth = -1;  ///< -1 => log2(min(Cx, Cy)) (paper default)
  RolloutMode rollout = RolloutMode::kLevelAnchored;
  nn::ModelKind model = nn::ModelKind::kGru;
  nn::PredictorConfig predictor;
  nn::TrainConfig training;

  // --- Sanitization. ---
  /// How C_pattern is partitioned before the Laplace release.
  enum class PartitionStrategy {
    kQuantize,  ///< value buckets (Definition 4; paper default)
    kHtf,       ///< homogeneity-driven kd-tree boxes (HTF-inspired, §6)
  };
  PartitionStrategy partitioning = PartitionStrategy::kQuantize;
  int quantization_levels = 8;   ///< k of Definition 4
  int htf_max_partitions = 64;   ///< leaf budget for kHtf
  BudgetAllocation allocation = BudgetAllocation::kOptimal;
  /// Ablation: false bypasses partitioning and releases each cell
  /// individually (partition of singletons).
  bool use_quantization = true;

  // --- Observability. ---
  /// When non-null, every BudgetAccountant charge made by Publish is appended
  /// to this ledger (--audit-ledger=<path>). Not owned; must outlive Publish.
  dp::AuditLedger* audit_ledger = nullptr;

  double TotalEpsilon() const { return eps_pattern + eps_sanitize; }
};

}  // namespace stpt::core

#endif  // STPT_CORE_STPT_CONFIG_H_
