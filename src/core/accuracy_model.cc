#include "core/accuracy_model.h"

#include <cmath>

namespace stpt::core {

double IdentityQueryNoiseVariance(int volume, int ct, double eps_tot,
                                  double unit_sensitivity) {
  const double b = unit_sensitivity * static_cast<double>(ct) / eps_tot;
  return static_cast<double>(volume) * 2.0 * b * b;
}

StatusOr<double> StptQueryNoiseVariance(const std::vector<size_t>& covered,
                                        const std::vector<size_t>& sizes,
                                        const std::vector<double>& sens,
                                        const std::vector<double>& eps) {
  if (covered.size() != sizes.size() || sizes.size() != sens.size() ||
      sens.size() != eps.size()) {
    return Status::InvalidArgument("StptQueryNoiseVariance: size mismatch");
  }
  double variance = 0.0;
  for (size_t i = 0; i < covered.size(); ++i) {
    if (covered[i] == 0) continue;
    if (sizes[i] == 0) {
      return Status::InvalidArgument(
          "StptQueryNoiseVariance: covered cells in an empty partition");
    }
    if (!(eps[i] > 0.0)) continue;  // unbudgeted partitions release exactly
    const double fraction =
        static_cast<double>(covered[i]) / static_cast<double>(sizes[i]);
    const double b = sens[i] / eps[i];
    variance += fraction * fraction * 2.0 * b * b;
  }
  return variance;
}

double ExpectedAbsError(double noise_variance) {
  return std::sqrt(noise_variance / 2.0);
}

std::vector<size_t> PartitionCoverage(const Quantization& quantization,
                                      const grid::Dims& dims,
                                      const query::RangeQuery& q) {
  std::vector<size_t> covered(quantization.levels, 0);
  for (int x = q.x0; x <= q.x1; ++x) {
    for (int y = q.y0; y <= q.y1; ++y) {
      const size_t base = (static_cast<size_t>(x) * dims.cy + y) * dims.ct;
      for (int t = q.t0; t <= q.t1; ++t) {
        ++covered[quantization.bucket[base + t]];
      }
    }
  }
  return covered;
}

StatusOr<double> PredictStptQueryAbsNoise(const Quantization& quantization,
                                          const grid::Dims& dims,
                                          const std::vector<double>& sens,
                                          const std::vector<double>& eps,
                                          const query::RangeQuery& q) {
  std::vector<size_t> sizes = quantization.bucket_sizes;
  const std::vector<size_t> covered = PartitionCoverage(quantization, dims, q);
  auto var = StptQueryNoiseVariance(covered, sizes, sens, eps);
  STPT_RETURN_IF_ERROR(var.status());
  return ExpectedAbsError(*var);
}

}  // namespace stpt::core
