#include "core/stpt.h"

#include <algorithm>
#include <cmath>

#include "core/budget_allocation.h"
#include "core/htf_partition.h"
#include "dp/budget_accountant.h"
#include "dp/mechanisms.h"
#include "exec/parallel.h"
#include "exec/timing.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "query/metrics.h"

namespace stpt::core {
namespace {

/// Pipeline instrumentation (process-wide registry), resolved once.
obs::Counter& Publishes() {
  static obs::Counter* c = obs::Registry::Global().GetCounter(
      "stpt_core_publishes_total", "Completed Stpt::Publish pipeline runs");
  return *c;
}

obs::Histogram* StageNs(const char* name, const char* help) {
  return obs::Registry::Global().GetHistogram(name, help, obs::LatencyBucketsNs());
}

obs::Histogram* PatternNs() {
  static obs::Histogram* h = StageNs("stpt_core_pattern_recognition_ns",
                                     "Pattern recognition stage wall time");
  return h;
}

obs::Histogram* PartitionNs() {
  static obs::Histogram* h =
      StageNs("stpt_core_partition_ns", "Quantization / HTF partition wall time");
  return h;
}

obs::Histogram* BudgetNs() {
  static obs::Histogram* h =
      StageNs("stpt_core_budget_allocation_ns", "Budget allocation wall time");
  return h;
}

obs::Histogram* SanitizeNs() {
  static obs::Histogram* h =
      StageNs("stpt_core_sanitize_ns", "Aggregate + noise + spread wall time");
  return h;
}

/// Privacy-budget gauges, refreshed from the accountant after each charge.
void ExportBudget(const dp::BudgetAccountant& accountant) {
  static obs::Gauge* total = obs::Registry::Global().GetGauge(
      "stpt_core_epsilon_total", "Total privacy budget configured for Publish");
  static obs::Gauge* consumed = obs::Registry::Global().GetGauge(
      "stpt_core_epsilon_consumed", "Privacy budget consumed (composed)");
  static obs::Gauge* remaining = obs::Registry::Global().GetGauge(
      "stpt_core_epsilon_remaining", "Privacy budget remaining");
  total->Set(accountant.total_epsilon());
  consumed->Set(accountant.ConsumedEpsilon());
  remaining->Set(accountant.RemainingEpsilon());
  if (obs::TraceEventsEnabled()) {
    obs::TraceCounter("dp/epsilon_consumed", accountant.ConsumedEpsilon());
    obs::TraceCounter("dp/epsilon_remaining", accountant.RemainingEpsilon());
  }
}

}  // namespace

StatusOr<grid::ConsumptionMatrix> TestRegion(const grid::ConsumptionMatrix& cons,
                                             int t_train) {
  const grid::Dims& dims = cons.dims();
  if (t_train < 0 || t_train >= dims.ct) {
    return Status::InvalidArgument("TestRegion: t_train out of range");
  }
  const int test_len = dims.ct - t_train;
  auto out_or = grid::ConsumptionMatrix::Create({dims.cx, dims.cy, test_len});
  STPT_RETURN_IF_ERROR(out_or.status());
  grid::ConsumptionMatrix out = std::move(out_or).value();
  for (int x = 0; x < dims.cx; ++x) {
    for (int y = 0; y < dims.cy; ++y) {
      for (int t = 0; t < test_len; ++t) {
        out.set(x, y, t, cons.at(x, y, t_train + t));
      }
    }
  }
  return out;
}

StatusOr<StptResult> Stpt::Publish(const grid::ConsumptionMatrix& cons,
                                   double unit_sensitivity, Rng& rng) const {
  if (!(unit_sensitivity > 0.0)) {
    return Status::InvalidArgument("Stpt: unit_sensitivity must be > 0");
  }
  if (!(config_.eps_pattern > 0.0) || !(config_.eps_sanitize > 0.0)) {
    return Status::InvalidArgument("Stpt: budgets must be > 0");
  }
  // The accountant composes the two sequential stages (Theorem 1) and backs
  // the stpt_core_epsilon_* gauges; a charge past the configured total is a
  // programming error surfaced as FailedPrecondition.
  auto accountant_or =
      dp::BudgetAccountant::Create(config_.eps_pattern + config_.eps_sanitize);
  STPT_RETURN_IF_ERROR(accountant_or.status());
  dp::BudgetAccountant accountant = std::move(accountant_or).value();
  accountant.AttachLedger(config_.audit_ledger);
  // --- Normalise (Eq. 6) and run pattern recognition on the prefix. ---
  const grid::ConsumptionMatrix norm = cons.Normalized();
  const double range = std::max(cons.MaxValue() - cons.MinValue(), 1e-12);
  const double cell_sens_norm = std::min(1.0, unit_sensitivity / range);

  auto pattern_or = [&] {
    obs::Span span("stpt/pattern_recognition", PatternNs());
    return RunPatternRecognition(norm, config_, cell_sens_norm, rng);
  }();
  STPT_RETURN_IF_ERROR(pattern_or.status());
  PatternResult pattern = std::move(pattern_or).value();
  STPT_RETURN_IF_ERROR(accountant.Charge(
      "pattern", config_.eps_pattern,
      dp::ChargeDetails{"laplace", cell_sens_norm}));
  ExportBudget(accountant);

  StptResult result;
  result.train_stats = std::move(pattern.train_stats);

  // Pattern quality diagnostics against the true normalised test region.
  auto norm_test_or = TestRegion(norm, config_.t_train);
  STPT_RETURN_IF_ERROR(norm_test_or.status());
  result.pattern_mae = query::MatrixMae(*norm_test_or, pattern.pattern);
  result.pattern_rmse = query::MatrixRmse(*norm_test_or, pattern.pattern);

  // --- k-quantize C_pattern into partitions (Alg. 1 line 15). ---
  const int k = config_.use_quantization
                    ? config_.quantization_levels
                    : static_cast<int>(pattern.pattern.size());
  Quantization quant;
  if (config_.use_quantization) {
    auto quant_or = [&] {
      obs::Span span("stpt/partition", PartitionNs());
      return config_.partitioning == StptConfig::PartitionStrategy::kHtf
                 ? HtfPartition(pattern.pattern, config_.htf_max_partitions)
                 : KQuantize(pattern.pattern, k);
    }();
    STPT_RETURN_IF_ERROR(quant_or.status());
    quant = std::move(quant_or).value();
  } else {
    // Ablation: singleton partitions (every cell on its own).
    quant.levels = k;
    quant.min_value = pattern.pattern.MinValue();
    quant.max_value = pattern.pattern.MaxValue();
    quant.bucket.resize(pattern.pattern.size());
    quant.bucket_sizes.assign(k, 1);
    for (size_t i = 0; i < quant.bucket.size(); ++i) {
      quant.bucket[i] = static_cast<int>(i);
    }
  }
  const grid::Dims test_dims = pattern.pattern.dims();

  // --- Partition sensitivities (Theorem 7) and budgets (Eq. 11). ---
  std::vector<double> sens(quant.levels, 0.0);
  if (config_.use_quantization) {
    const std::vector<int> pillar_counts = PartitionPillarCounts(quant, test_dims);
    for (int b = 0; b < quant.levels; ++b) {
      sens[b] = pillar_counts[b] * unit_sensitivity;
    }
  } else {
    // Singleton partitions: each holds one cell of one pillar.
    std::fill(sens.begin(), sens.end(), unit_sensitivity);
  }
  auto eps_or = [&] {
    obs::Span span("stpt/budget_allocation", BudgetNs());
    return AllocateBudget(sens, config_.eps_sanitize, config_.allocation);
  }();
  STPT_RETURN_IF_ERROR(eps_or.status());
  const std::vector<double> eps = std::move(eps_or).value();

  // --- Aggregate, sanitize, and spread (Alg. 1 lines 16-21). ---
  auto truth_test_or = TestRegion(cons, config_.t_train);
  STPT_RETURN_IF_ERROR(truth_test_or.status());
  const grid::ConsumptionMatrix& truth_test = *truth_test_or;

  obs::Span sanitize_span("stpt/sanitize", SanitizeNs());
  std::vector<double> partition_sums(quant.levels, 0.0);
  for (size_t i = 0; i < quant.bucket.size(); ++i) {
    partition_sums[quant.bucket[i]] += truth_test.data()[i];
  }
  // Partition b draws its Laplace noise from the substream Fork(b), not
  // from one shared sequential stream, so the release is independent of
  // sanitization order and bit-identical at any thread count.
  const Rng noise_base = rng.Fork();
  std::vector<double> released_means(quant.levels, 0.0);
  exec::ParallelFor(quant.levels, [&](int64_t b) {
    if (quant.bucket_sizes[b] == 0) return;
    Rng sub = noise_base.Fork(static_cast<uint64_t>(b));
    const double noisy = eps[b] > 0.0
                             ? partition_sums[b] + sub.Laplace(sens[b] / eps[b])
                             : partition_sums[b];
    released_means[b] = noisy / static_cast<double>(quant.bucket_sizes[b]);
  });

  auto sanitized_or = grid::ConsumptionMatrix::Create(test_dims);
  STPT_RETURN_IF_ERROR(sanitized_or.status());
  result.sanitized = std::move(sanitized_or).value();
  exec::ParallelForRange(
      static_cast<int64_t>(quant.bucket.size()), [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          result.sanitized.mutable_data()[i] = released_means[quant.bucket[i]];
        }
      });

  // The per-partition epsilons compose in parallel over disjoint partitions
  // (Theorem 2), so the sanitize stage consumes max(eps) — which AllocateBudget
  // keeps within eps_sanitize by construction. Charging each partition under
  // the one "sanitize" group records every release in the audit ledger while
  // the accountant's per-group max keeps the composed spend at max(eps).
  bool charged_sanitize = false;
  for (int b = 0; b < quant.levels; ++b) {
    if (!(eps[b] > 0.0)) continue;
    STPT_RETURN_IF_ERROR(accountant.Charge(
        "sanitize", eps[b], dp::ChargeDetails{"laplace", sens[b]}));
    charged_sanitize = true;
  }
  if (!charged_sanitize) {
    STPT_RETURN_IF_ERROR(accountant.Charge(
        "sanitize", eps.empty() ? 0.0 : *std::max_element(eps.begin(), eps.end())));
  }
  ExportBudget(accountant);
  Publishes().Increment();

  result.pattern = std::move(pattern.pattern);
  result.quantization = std::move(quant);
  result.partition_epsilons = eps;
  result.partition_sensitivities = std::move(sens);
  return result;
}

}  // namespace stpt::core
