#include "core/htf_partition.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

namespace stpt::core {
namespace {

/// An axis-aligned box of the index space (inclusive bounds).
struct Box {
  int x0, x1, y0, y1, t0, t1;

  int64_t Volume() const {
    return static_cast<int64_t>(x1 - x0 + 1) * (y1 - y0 + 1) * (t1 - t0 + 1);
  }
};

struct BoxStats {
  double sum = 0.0;
  double sum_sq = 0.0;
  int64_t count = 0;

  /// Total squared deviation from the box mean (impurity).
  double Impurity() const {
    if (count == 0) return 0.0;
    return std::max(0.0, sum_sq - sum * sum / static_cast<double>(count));
  }
};

BoxStats Accumulate(const grid::ConsumptionMatrix& m, const Box& b) {
  BoxStats s;
  for (int x = b.x0; x <= b.x1; ++x) {
    for (int y = b.y0; y <= b.y1; ++y) {
      for (int t = b.t0; t <= b.t1; ++t) {
        const double v = m.at(x, y, t);
        s.sum += v;
        s.sum_sq += v * v;
        ++s.count;
      }
    }
  }
  return s;
}

struct Split {
  int axis = -1;      // 0 = x, 1 = y, 2 = t
  int position = 0;   // last index of the low half
  double impurity = 0.0;
  bool valid = false;
};

/// Finds the impurity-minimising cut of `box` by scanning every position of
/// every axis with per-position marginal statistics.
Split BestSplit(const grid::ConsumptionMatrix& m, const Box& box) {
  Split best;
  for (int axis = 0; axis < 3; ++axis) {
    const int lo = axis == 0 ? box.x0 : axis == 1 ? box.y0 : box.t0;
    const int hi = axis == 0 ? box.x1 : axis == 1 ? box.y1 : box.t1;
    if (lo == hi) continue;

    // Marginal sums per slice along the axis.
    const int n = hi - lo + 1;
    std::vector<double> slice_sum(n, 0.0), slice_sq(n, 0.0);
    std::vector<int64_t> slice_cnt(n, 0);
    for (int x = box.x0; x <= box.x1; ++x) {
      for (int y = box.y0; y <= box.y1; ++y) {
        for (int t = box.t0; t <= box.t1; ++t) {
          const int idx = (axis == 0 ? x : axis == 1 ? y : t) - lo;
          const double v = m.at(x, y, t);
          slice_sum[idx] += v;
          slice_sq[idx] += v * v;
          ++slice_cnt[idx];
        }
      }
    }
    BoxStats low;
    BoxStats total;
    for (int i = 0; i < n; ++i) {
      total.sum += slice_sum[i];
      total.sum_sq += slice_sq[i];
      total.count += slice_cnt[i];
    }
    for (int i = 0; i + 1 < n; ++i) {
      low.sum += slice_sum[i];
      low.sum_sq += slice_sq[i];
      low.count += slice_cnt[i];
      const BoxStats high{total.sum - low.sum, total.sum_sq - low.sum_sq,
                          total.count - low.count};
      const double impurity = low.Impurity() + high.Impurity();
      if (!best.valid || impurity < best.impurity) {
        best = {axis, lo + i, impurity, true};
      }
    }
  }
  return best;
}

struct Leaf {
  Box box;
  double impurity;
  bool operator<(const Leaf& other) const { return impurity < other.impurity; }
};

}  // namespace

StatusOr<Quantization> HtfPartition(const grid::ConsumptionMatrix& pattern,
                                    int max_partitions) {
  if (max_partitions < 1) {
    return Status::InvalidArgument("HtfPartition: max_partitions must be >= 1");
  }
  const grid::Dims& dims = pattern.dims();
  const Box root{0, dims.cx - 1, 0, dims.cy - 1, 0, dims.ct - 1};

  std::priority_queue<Leaf> frontier;
  std::vector<Box> leaves;
  frontier.push({root, Accumulate(pattern, root).Impurity()});

  // Greedy best-first splitting: always refine the most heterogeneous leaf.
  while (!frontier.empty() &&
         static_cast<int>(leaves.size()) + static_cast<int>(frontier.size()) <
             max_partitions) {
    const Leaf leaf = frontier.top();
    frontier.pop();
    if (leaf.impurity <= 1e-12 || leaf.box.Volume() <= 1) {
      leaves.push_back(leaf.box);  // homogeneous or atomic: final
      continue;
    }
    const Split split = BestSplit(pattern, leaf.box);
    if (!split.valid) {
      leaves.push_back(leaf.box);
      continue;
    }
    Box low = leaf.box, high = leaf.box;
    switch (split.axis) {
      case 0:
        low.x1 = split.position;
        high.x0 = split.position + 1;
        break;
      case 1:
        low.y1 = split.position;
        high.y0 = split.position + 1;
        break;
      default:
        low.t1 = split.position;
        high.t0 = split.position + 1;
        break;
    }
    frontier.push({low, Accumulate(pattern, low).Impurity()});
    frontier.push({high, Accumulate(pattern, high).Impurity()});
  }
  while (!frontier.empty()) {
    leaves.push_back(frontier.top().box);
    frontier.pop();
  }

  Quantization q;
  q.levels = static_cast<int>(leaves.size());
  q.min_value = pattern.MinValue();
  q.max_value = pattern.MaxValue();
  q.bucket.assign(pattern.size(), -1);
  q.bucket_sizes.assign(leaves.size(), 0);
  for (size_t b = 0; b < leaves.size(); ++b) {
    const Box& box = leaves[b];
    for (int x = box.x0; x <= box.x1; ++x) {
      for (int y = box.y0; y <= box.y1; ++y) {
        for (int t = box.t0; t <= box.t1; ++t) {
          const size_t idx =
              (static_cast<size_t>(x) * dims.cy + y) * dims.ct + t;
          q.bucket[idx] = static_cast<int>(b);
          ++q.bucket_sizes[b];
        }
      }
    }
  }
  // Every cell must be covered exactly once (boxes tile the space).
  for (int b : q.bucket) {
    if (b < 0) return Status::Internal("HtfPartition: uncovered cell");
  }
  return q;
}

}  // namespace stpt::core
