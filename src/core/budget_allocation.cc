#include "core/budget_allocation.h"

#include <cmath>

namespace stpt::core {

StatusOr<std::vector<double>> AllocateBudget(const std::vector<double>& sensitivities,
                                             double eps_total,
                                             BudgetAllocation allocation) {
  if (!(eps_total > 0.0)) {
    return Status::InvalidArgument("AllocateBudget: eps_total must be > 0");
  }
  if (sensitivities.empty()) {
    return Status::InvalidArgument("AllocateBudget: no partitions");
  }
  double weight_sum = 0.0;
  size_t num_active = 0;
  for (double s : sensitivities) {
    if (s < 0.0) {
      return Status::InvalidArgument("AllocateBudget: negative sensitivity");
    }
    if (s > 0.0) {
      weight_sum += std::pow(s, 2.0 / 3.0);
      ++num_active;
    }
  }
  if (num_active == 0) {
    return Status::InvalidArgument("AllocateBudget: all sensitivities are zero");
  }
  std::vector<double> eps(sensitivities.size(), 0.0);
  for (size_t i = 0; i < sensitivities.size(); ++i) {
    if (sensitivities[i] <= 0.0) continue;
    switch (allocation) {
      case BudgetAllocation::kOptimal:
        eps[i] = eps_total * std::pow(sensitivities[i], 2.0 / 3.0) / weight_sum;
        break;
      case BudgetAllocation::kUniform:
        eps[i] = eps_total / static_cast<double>(num_active);
        break;
    }
  }
  return eps;
}

double TotalNoiseVariance(const std::vector<double>& sensitivities,
                          const std::vector<double>& epsilons) {
  double total = 0.0;
  for (size_t i = 0; i < sensitivities.size(); ++i) {
    if (epsilons[i] <= 0.0) continue;
    const double b = sensitivities[i] / epsilons[i];
    total += 2.0 * b * b;
  }
  return total;
}

}  // namespace stpt::core
