#include "core/pattern_recognition.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "dp/mechanisms.h"
#include "exec/parallel.h"
#include "exec/timing.h"
#include "nn/predictor.h"

namespace stpt::core {

Status SanitizeQuadtreeLevels(std::vector<grid::QuadtreeLevel>* levels,
                              double eps_pattern, int t_train,
                              double cell_sensitivity_normalized, Rng& rng) {
  if (!(eps_pattern > 0.0)) {
    return Status::InvalidArgument("SanitizeQuadtreeLevels: eps_pattern must be > 0");
  }
  if (t_train <= 0) {
    return Status::InvalidArgument("SanitizeQuadtreeLevels: t_train must be > 0");
  }
  if (!(cell_sensitivity_normalized > 0.0)) {
    return Status::InvalidArgument(
        "SanitizeQuadtreeLevels: cell sensitivity must be > 0");
  }
  const double eps_per_point = eps_pattern / static_cast<double>(t_train);
  // Each neighborhood draws its noise from the substream Fork(i) of a
  // single base fork, where i is the neighborhood's position in (level,
  // neighborhood) enumeration order. The release is therefore independent
  // of traversal order and bit-identical at any thread count.
  struct NoiseTask {
    std::vector<double>* series;
    double scale;
  };
  std::vector<NoiseTask> tasks;
  for (auto& level : *levels) {
    for (auto& nb : level.neighborhoods) {
      // Theorem 6: averaging over num_cells cells divides the sensitivity.
      const double sens = cell_sensitivity_normalized / nb.num_cells;
      tasks.push_back({&nb.series, sens / eps_per_point});
    }
  }
  const Rng base = rng.Fork();
  exec::ParallelFor(static_cast<int64_t>(tasks.size()), [&](int64_t i) {
    Rng sub = base.Fork(static_cast<uint64_t>(i));
    for (double& v : *tasks[i].series) v += sub.Laplace(tasks[i].scale);
  });
  return Status::OK();
}

StatusOr<PatternResult> RunPatternRecognition(const grid::ConsumptionMatrix& norm,
                                              const StptConfig& config,
                                              double cell_sensitivity_normalized,
                                              Rng& rng) {
  const grid::Dims& dims = norm.dims();
  if (config.t_train <= 0 || config.t_train >= dims.ct) {
    return Status::InvalidArgument(
        "RunPatternRecognition: t_train must be in (0, ct)");
  }
  const int depth = config.quadtree_depth >= 0 ? config.quadtree_depth
                                               : grid::DefaultQuadtreeDepth(dims);

  // 1. Build + sanitize the spatio-temporal quadtree (Alg. 1 lines 5-11).
  auto levels_or = grid::BuildQuadtreeLevels(norm, config.t_train, depth);
  STPT_RETURN_IF_ERROR(levels_or.status());
  std::vector<grid::QuadtreeLevel> levels = std::move(levels_or).value();
  STPT_RETURN_IF_ERROR(SanitizeQuadtreeLevels(&levels, config.eps_pattern,
                                              config.t_train,
                                              cell_sensitivity_normalized, rng));

  // 2. Window the stacked sanitized series and train the predictor
  //    (Alg. 1 lines 12-13). Windows never straddle two series.
  std::vector<std::vector<double>> series;
  for (const auto& level : levels) {
    for (const auto& nb : level.neighborhoods) series.push_back(nb.series);
  }
  const nn::WindowDataset dataset =
      nn::MakeWindows(series, config.predictor.window_size);
  if (dataset.size() == 0) {
    return Status::FailedPrecondition(
        "RunPatternRecognition: quadtree segments shorter than the window; "
        "reduce depth or window size");
  }
  PatternResult result;
  result.predictor = nn::SequencePredictor::Create(config.model, config.predictor, rng);
  auto stats_or = [&] {
    exec::ScopedTimer timer("stpt/train_predictor");
    return nn::TrainPredictor(result.predictor.get(), dataset, config.training, rng);
  }();
  STPT_RETURN_IF_ERROR(stats_or.status());
  result.train_stats = std::move(stats_or).value();

  // 3. Roll out C_pattern autoregressively over the test region
  //    (Alg. 1 line 14), batched across all cells.
  const int ws = config.predictor.window_size;
  const int test_len = dims.ct - config.t_train;
  auto pattern_or = grid::ConsumptionMatrix::Create({dims.cx, dims.cy, test_len});
  STPT_RETURN_IF_ERROR(pattern_or.status());
  result.pattern = std::move(pattern_or).value();

  exec::ScopedTimer rollout_timer("stpt/rollout");
  const int num_cells = dims.cx * dims.cy;
  if (config.rollout == RolloutMode::kAutoregressive) {
    // Seed each cell's window with the tail of the finest sanitized series
    // covering it (the only per-cell-resolution private signal available)
    // and let the model feed on its own predictions.
    const grid::QuadtreeLevel& finest = levels.back();
    std::vector<std::vector<double>> window(num_cells, std::vector<double>(ws, 0.0));
    for (const auto& nb : finest.neighborhoods) {
      std::vector<double> seed(ws);
      const auto& s = nb.series;
      for (int i = 0; i < ws; ++i) {
        const int64_t src = static_cast<int64_t>(s.size()) - ws + i;
        seed[i] = s.empty() ? 0.0 : s[std::max<int64_t>(0, src)];
      }
      for (int x = nb.x0; x <= nb.x1; ++x) {
        for (int y = nb.y0; y <= nb.y1; ++y) window[x * dims.cy + y] = seed;
      }
    }
    for (int t = 0; t < test_len; ++t) {
      std::vector<double> flat(static_cast<size_t>(num_cells) * ws);
      for (int c = 0; c < num_cells; ++c) {
        std::copy(window[c].begin(), window[c].end(),
                  flat.begin() + static_cast<size_t>(c) * ws);
      }
      const nn::Tensor x = nn::Tensor::FromVector({num_cells, ws, 1}, flat);
      const nn::Tensor pred = result.predictor->Forward(x);
      for (int c = 0; c < num_cells; ++c) {
        // Estimates of a min-max-normalised quantity live in [0, 1]; the
        // clamp is post-processing and keeps the autoregression stable.
        const double v = Clamp(pred.data()[c], 0.0, 1.0);
        result.pattern.set(c / dims.cy, c % dims.cy, t, v);
        window[c].erase(window[c].begin());
        window[c].push_back(v);
      }
    }
  } else {
    // Level-anchored roll-out: macro temporal pattern from the model, micro
    // spatial level per cell from the finest sanitized series. Everything
    // consumed here is sanitized, so the output is DP (Theorem 3).
    //
    // Macro series over the training prefix: at each time t, the spatial
    // average of the level owning t equals the average of its neighborhood
    // representatives weighted by cell count.
    std::vector<double> macro(config.t_train, 0.0);
    for (const auto& level : levels) {
      for (int t = level.t_begin; t < level.t_end; ++t) {
        double weighted = 0.0;
        for (const auto& nb : level.neighborhoods) {
          weighted += nb.series[t - level.t_begin] * nb.num_cells;
        }
        macro[t] = weighted / static_cast<double>(num_cells);
      }
    }
    double macro_mean = 0.0;
    for (double v : macro) macro_mean += v;
    macro_mean /= static_cast<double>(config.t_train);
    macro_mean = std::max(macro_mean, 1e-6);

    // Roll the macro series forward with the model.
    std::vector<double> window(macro.end() - std::min<size_t>(ws, macro.size()),
                               macro.end());
    while (static_cast<int>(window.size()) < ws) {
      window.insert(window.begin(), window.empty() ? 0.0 : window.front());
    }
    std::vector<double> macro_test(test_len);
    for (int t = 0; t < test_len; ++t) {
      const nn::Tensor x = nn::Tensor::FromVector({1, ws, 1}, window);
      const double v = Clamp(result.predictor->Forward(x).data()[0], 0.0, 1.0);
      macro_test[t] = v;
      window.erase(window.begin());
      window.push_back(v);
    }

    // Per-cell anchor via hierarchical empirical-Bayes shrinkage across the
    // quadtree. Each level observes every neighborhood's *relative* level
    // (segment mean / macro segment mean) with a known Laplace noise
    // variance; the posterior combines the observation with the parent
    // neighborhood's estimate, weighted by the (sanitized-data) estimate of
    // the between-neighborhood signal variance at that level. Coarse levels
    // have tiny noise and dominate when fine levels are drowned; fine levels
    // take over when their SNR supports it.
    const double eps_per_point = config.eps_pattern / config.t_train;
    std::vector<double> anchor(num_cells, 1.0);  // relative level per cell
    for (const auto& level : levels) {
      // Macro mean over this level's segment.
      double seg_macro = 0.0;
      for (int t = level.t_begin; t < level.t_end; ++t) seg_macro += macro[t];
      seg_macro /= static_cast<double>(std::max(1, level.t_end - level.t_begin));
      seg_macro = std::max(seg_macro, 1e-6);
      const int seg_len = std::max(1, level.t_end - level.t_begin);

      // Per-neighborhood relative observation + its noise variance.
      std::vector<double> obs(level.neighborhoods.size());
      for (size_t i = 0; i < level.neighborhoods.size(); ++i) {
        const auto& nb = level.neighborhoods[i];
        double mean = 0.0;
        for (double v : nb.series) mean += v;
        mean /= static_cast<double>(std::max<size_t>(1, nb.series.size()));
        obs[i] = mean / seg_macro;
      }
      // Laplace(b) variance is 2 b^2 with b matching SanitizeQuadtreeLevels'
      // per-point scale; the segment mean averages seg_len points and the
      // division by seg_macro rescales. Neighborhoods of one level share
      // (near-)equal cell counts, so use the first as representative.
      const double b = cell_sensitivity_normalized *
                       level.neighborhoods[0].sensitivity / eps_per_point;
      const double obs_var =
          2.0 * b * b / static_cast<double>(seg_len) / (seg_macro * seg_macro);

      // Between-neighborhood signal variance at this level, estimated from
      // the sanitized observations themselves (empirical Bayes).
      double obs_mean = 0.0;
      for (double o : obs) obs_mean += o;
      obs_mean /= static_cast<double>(obs.size());
      double emp_var = 0.0;
      for (double o : obs) emp_var += (o - obs_mean) * (o - obs_mean);
      emp_var /= static_cast<double>(std::max<size_t>(1, obs.size() - 1));
      const double tau = std::max(emp_var - obs_var, 1e-6);
      const double w = tau / (tau + obs_var);

      for (size_t i = 0; i < level.neighborhoods.size(); ++i) {
        const auto& nb = level.neighborhoods[i];
        for (int x = nb.x0; x <= nb.x1; ++x) {
          for (int y = nb.y0; y <= nb.y1; ++y) {
            double& a = anchor[x * dims.cy + y];
            a = w * obs[i] + (1.0 - w) * a;
          }
        }
      }
    }

    for (int c = 0; c < num_cells; ++c) {
      const double level_c = std::max(0.0, anchor[c]);
      for (int t = 0; t < test_len; ++t) {
        const double v = Clamp(level_c * macro_test[t], 0.0, 1.0);
        result.pattern.set(c / dims.cy, c % dims.cy, t, v);
      }
    }
  }

  result.sanitized_levels = std::move(levels);
  return result;
}

}  // namespace stpt::core
