#include "core/quantization.h"

#include <algorithm>
#include <cmath>

namespace stpt::core {

StatusOr<Quantization> KQuantize(const grid::ConsumptionMatrix& pattern, int k) {
  if (k < 1) return Status::InvalidArgument("KQuantize: k must be >= 1");
  Quantization q;
  q.levels = k;
  q.min_value = pattern.MinValue();
  q.max_value = pattern.MaxValue();
  q.bucket.resize(pattern.size());
  q.bucket_sizes.assign(k, 0);
  const double range = q.max_value - q.min_value;
  const auto& data = pattern.data();
  for (size_t i = 0; i < data.size(); ++i) {
    int b = 0;
    if (range > 0.0) {
      // Casting a NaN (or out-of-int-range) double to int is undefined
      // behaviour, and min/max comparisons do not reliably propagate NaNs
      // out of the data — so check each element before the cast.
      if (!std::isfinite(data[i])) {
        return Status::InvalidArgument("KQuantize: non-finite cell value");
      }
      b = static_cast<int>((data[i] - q.min_value) / range * k);
      b = std::clamp(b, 0, k - 1);  // max value falls into the last bucket
    }
    q.bucket[i] = b;
    ++q.bucket_sizes[b];
  }
  return q;
}

std::vector<int> PartitionPillarCounts(const Quantization& quantization,
                                       const grid::Dims& dims) {
  std::vector<int> max_counts(quantization.levels, 0);
  // Cells of one pillar are contiguous (time innermost), so scan per pillar.
  std::vector<int> counts(quantization.levels);
  size_t idx = 0;
  for (int x = 0; x < dims.cx; ++x) {
    for (int y = 0; y < dims.cy; ++y) {
      std::fill(counts.begin(), counts.end(), 0);
      for (int t = 0; t < dims.ct; ++t) ++counts[quantization.bucket[idx++]];
      for (int b = 0; b < quantization.levels; ++b) {
        max_counts[b] = std::max(max_counts[b], counts[b]);
      }
    }
  }
  return max_counts;
}

}  // namespace stpt::core
