#include "dp/budget_accountant.h"

#include <algorithm>

namespace stpt::dp {

StatusOr<BudgetAccountant> BudgetAccountant::Create(double total_epsilon) {
  if (!(total_epsilon > 0.0)) {
    return Status::InvalidArgument("BudgetAccountant: total epsilon must be > 0");
  }
  return BudgetAccountant(total_epsilon);
}

BudgetAccountant::Group* BudgetAccountant::FindGroup(const std::string& name) {
  for (auto& g : groups_) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const BudgetAccountant::Group* BudgetAccountant::FindGroup(
    const std::string& name) const {
  for (const auto& g : groups_) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

Status BudgetAccountant::Charge(const std::string& group, double epsilon) {
  return Charge(group, epsilon, ChargeDetails{});
}

Status BudgetAccountant::Charge(const std::string& group, double epsilon,
                                const ChargeDetails& details) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("BudgetAccountant: charge must be > 0");
  }
  const Group* existing = FindGroup(group);
  const double current_group_max = existing != nullptr ? existing->max_epsilon : 0.0;
  const double delta = std::max(0.0, epsilon - current_group_max);
  // Allow a tiny tolerance for floating-point accumulation across many slices.
  constexpr double kTolerance = 1e-9;
  if (ConsumedEpsilon() + delta > total_epsilon_ * (1.0 + kTolerance) + kTolerance) {
    return Status::FailedPrecondition(
        "BudgetAccountant: charge would exceed total privacy budget");
  }
  if (existing != nullptr) {
    FindGroup(group)->max_epsilon = std::max(current_group_max, epsilon);
  } else {
    groups_.push_back(Group{group, epsilon});
  }
  if (ledger_ != nullptr) {
    AuditRecord record;
    record.stage = group;
    record.mechanism = details.mechanism;
    record.epsilon = epsilon;
    record.sensitivity = details.sensitivity;
    record.composition = existing != nullptr ? "parallel" : "sequential";
    record.consumed_after = ConsumedEpsilon();
    ledger_->Append(std::move(record));
  }
  return Status::OK();
}

double BudgetAccountant::ConsumedEpsilon() const {
  double total = 0.0;
  for (const auto& g : groups_) total += g.max_epsilon;
  return total;
}

double BudgetAccountant::RemainingEpsilon() const {
  return std::max(0.0, total_epsilon_ - ConsumedEpsilon());
}

}  // namespace stpt::dp
