#ifndef STPT_DP_BUDGET_ACCOUNTANT_H_
#define STPT_DP_BUDGET_ACCOUNTANT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dp/audit_ledger.h"

namespace stpt::dp {

/// Optional provenance attached to a Charge for audit-ledger records.
struct ChargeDetails {
  std::string mechanism = "laplace";  ///< noise mechanism behind the charge
  double sensitivity = 0.0;           ///< query sensitivity (0 = not applicable)
};

/// Tracks privacy-budget consumption under the composition theorems used by
/// the paper (Theorems 1–3):
///
///  * sequential composition — epsilons of charges against the same data
///    (e.g. different time slices of a user's series) add up;
///  * parallel composition — charges against disjoint partitions of the data
///    (e.g. different spatial cells at one timestamp) count once, at the max.
///
/// The accountant exposes a two-level model that matches the consumption
/// matrix (Theorem 5): charges are grouped by a caller-chosen *sequential
/// group* key (a time slice, a pipeline stage, ...). Within one group,
/// charges compose in parallel (max); across groups they compose
/// sequentially (sum).
class BudgetAccountant {
 public:
  /// Creates an accountant with a hard total budget. Returns InvalidArgument
  /// if total_epsilon <= 0.
  static StatusOr<BudgetAccountant> Create(double total_epsilon);

  /// Records a charge of `epsilon` within the sequential group `group`.
  /// Returns FailedPrecondition if the charge would push the composed total
  /// over the configured budget (the charge is then NOT recorded).
  Status Charge(const std::string& group, double epsilon);

  /// Charge with provenance: identical accounting, but the attached audit
  /// ledger (if any) records the mechanism and sensitivity behind the
  /// charge instead of the defaults.
  Status Charge(const std::string& group, double epsilon,
                const ChargeDetails& details);

  /// Attaches an append-only audit ledger: every subsequent successful
  /// Charge appends one AuditRecord (stage = group, composition =
  /// "sequential" for a group's first charge, "parallel" for repeats).
  /// Rejected charges are not recorded. The ledger must outlive the
  /// accountant (or be detached with nullptr); the accountant does not own
  /// it.
  void AttachLedger(AuditLedger* ledger) { ledger_ = ledger; }

  /// The composed epsilon consumed so far: sum over groups of the max charge
  /// per group.
  double ConsumedEpsilon() const;

  /// Remaining budget (total - consumed, floored at 0).
  double RemainingEpsilon() const;

  double total_epsilon() const { return total_epsilon_; }

  /// Number of distinct sequential groups charged so far.
  size_t NumGroups() const { return groups_.size(); }

 private:
  explicit BudgetAccountant(double total_epsilon) : total_epsilon_(total_epsilon) {}

  struct Group {
    std::string name;
    double max_epsilon = 0.0;
  };

  // Linear scan is fine: group counts are small (hundreds of time slices).
  Group* FindGroup(const std::string& name);
  const Group* FindGroup(const std::string& name) const;

  double total_epsilon_;
  std::vector<Group> groups_;
  AuditLedger* ledger_ = nullptr;  // not owned
};

}  // namespace stpt::dp

#endif  // STPT_DP_BUDGET_ACCOUNTANT_H_
