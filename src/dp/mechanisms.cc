#include "dp/mechanisms.h"

#include <cassert>
#include <cmath>

#include "kernels/backend.h"
#include "obs/metrics.h"

namespace stpt::dp {
namespace {

/// Noise-draw counters (process-wide registry), resolved once. Draw counts
/// are an auditing aid: each draw corresponds to one mechanism invocation
/// against the data, so the counter doubles as a sanity check on the budget
/// accounting.
obs::Counter& LaplaceDraws() {
  static obs::Counter* c = obs::Registry::Global().GetCounter(
      "stpt_dp_laplace_draws_total", "Laplace noise samples drawn");
  return *c;
}

obs::Counter& GeometricDraws() {
  static obs::Counter* c = obs::Registry::Global().GetCounter(
      "stpt_dp_geometric_draws_total", "Two-sided geometric noise samples drawn");
  return *c;
}

}  // namespace

StatusOr<LaplaceMechanism> LaplaceMechanism::Create(double epsilon, double sensitivity) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("LaplaceMechanism: epsilon must be > 0");
  }
  if (!(sensitivity > 0.0)) {
    return Status::InvalidArgument("LaplaceMechanism: sensitivity must be > 0");
  }
  return LaplaceMechanism(epsilon, sensitivity);
}

double LaplaceMechanism::AddNoise(double value, Rng& rng) const {
  LaplaceDraws().Increment();
  return value + rng.Laplace(scale_);
}

std::vector<double> LaplaceMechanism::AddNoise(const std::vector<double>& values,
                                               Rng& rng) const {
  std::vector<double> out(values.size());
  if (values.empty()) return out;
  // Consume one draw from the caller's stream so successive vector calls see
  // independent noise, then fan out order-independent substreams from it.
  const Rng base = rng.Fork(rng.NextUint64());
  kernels::Default()->LaplaceBatch(values.data(), out.data(),
                                   static_cast<int64_t>(values.size()), scale_,
                                   base);
  LaplaceDraws().Increment(values.size());
  return out;
}

StatusOr<GeometricMechanism> GeometricMechanism::Create(double epsilon,
                                                        double sensitivity) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("GeometricMechanism: epsilon must be > 0");
  }
  if (!(sensitivity > 0.0)) {
    return Status::InvalidArgument("GeometricMechanism: sensitivity must be > 0");
  }
  GeometricMechanism m(epsilon, sensitivity);
  m.alpha_ = std::exp(-epsilon / sensitivity);
  return m;
}

int64_t GeometricMechanism::AddNoise(int64_t value, Rng& rng) const {
  GeometricDraws().Increment();
  // Two-sided geometric via difference of two geometric variables, sampled
  // with inverse CDF: G = floor(log(u) / log(alpha)).
  auto sample_geometric = [&]() -> int64_t {
    double u;
    do {
      u = rng.NextDouble();
    } while (u <= 0.0);
    return static_cast<int64_t>(std::floor(std::log(u) / std::log(alpha_)));
  };
  return value + sample_geometric() - sample_geometric();
}

std::vector<int64_t> GeometricMechanism::AddNoise(const std::vector<int64_t>& values,
                                                  Rng& rng) const {
  std::vector<int64_t> out(values.size());
  if (values.empty()) return out;
  const Rng base = rng.Fork(rng.NextUint64());
  kernels::Default()->GeometricBatch(values.data(), out.data(),
                                     static_cast<int64_t>(values.size()), alpha_,
                                     base);
  GeometricDraws().Increment(values.size());
  return out;
}

double ClipReading(double value, double bound) {
  assert(bound > 0.0);
  if (value < 0.0) return 0.0;
  if (value > bound) return bound;
  return value;
}

size_t ClipSeries(std::vector<double>* series, double bound) {
  size_t clipped = 0;
  for (double& v : *series) {
    const double c = ClipReading(v, bound);
    if (c != v) ++clipped;
    v = c;
  }
  return clipped;
}

}  // namespace stpt::dp
