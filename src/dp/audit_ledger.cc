#include "dp/audit_ledger.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

namespace stpt::dp {
namespace {

/// Shortest round-trippable decimal form, so the JSONL ledger preserves the
/// exact doubles the accountant saw.
std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Prefer a shorter representation when it round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == value) return shorter;
  }
  return buf;
}

void AppendJsonEscaped(std::ostringstream& os, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

std::string RecordJson(const AuditRecord& r) {
  std::ostringstream os;
  os << "{\"seq\": " << r.seq << ", \"stage\": \"";
  AppendJsonEscaped(os, r.stage);
  os << "\", \"mechanism\": \"";
  AppendJsonEscaped(os, r.mechanism);
  os << "\", \"epsilon\": " << FormatDouble(r.epsilon)
     << ", \"sensitivity\": " << FormatDouble(r.sensitivity)
     << ", \"composition\": \"";
  AppendJsonEscaped(os, r.composition);
  os << "\", \"consumed_after\": " << FormatDouble(r.consumed_after) << "}";
  return os.str();
}

}  // namespace

AuditLedger::~AuditLedger() {
  if (file_ != nullptr) std::fclose(file_);
}

Status AuditLedger::OpenFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("AuditLedger: cannot open '" + path + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = file;
  // Records appended before the sink opened still belong in the file.
  for (const AuditRecord& record : records_) WriteRecordLocked(record);
  return Status::OK();
}

void AuditLedger::Append(AuditRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = static_cast<uint64_t>(records_.size());
  records_.push_back(std::move(record));
  if (file_ != nullptr) WriteRecordLocked(records_.back());
}

void AuditLedger::WriteRecordLocked(const AuditRecord& record) {
  const std::string line = RecordJson(record) + "\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

std::vector<AuditRecord> AuditLedger::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t AuditLedger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

double AuditLedger::TotalEpsilonRaw() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const AuditRecord& r : records_) total += r.epsilon;
  return total;
}

double AuditLedger::ComposedEpsilon() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Mirror BudgetAccountant exactly: a vector of (stage, running max) in
  // first-charge order, then one left-to-right sum. Using the identical
  // operations in the identical order makes the result bitwise equal to
  // ConsumedEpsilon(), so the audit test can assert exact equality.
  std::vector<std::pair<std::string, double>> groups;
  for (const AuditRecord& r : records_) {
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == r.stage; });
    if (it == groups.end()) {
      groups.emplace_back(r.stage, r.epsilon);
    } else {
      it->second = std::max(it->second, r.epsilon);
    }
  }
  double total = 0.0;
  for (const auto& g : groups) total += g.second;
  return total;
}

std::string AuditLedger::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const AuditRecord& r : records_) {
    out += RecordJson(r);
    out += "\n";
  }
  return out;
}

}  // namespace stpt::dp
