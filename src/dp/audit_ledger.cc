#include "dp/audit_ledger.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

namespace stpt::dp {
namespace {

/// Shortest round-trippable decimal form, so the JSONL ledger preserves the
/// exact doubles the accountant saw.
std::string FormatDouble(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Prefer a shorter representation when it round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
    double parsed = 0.0;
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == value) return shorter;
  }
  return buf;
}

void AppendJsonEscaped(std::ostringstream& os, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

std::string RecordJson(const AuditRecord& r) {
  std::ostringstream os;
  os << "{\"seq\": " << r.seq << ", \"stage\": \"";
  AppendJsonEscaped(os, r.stage);
  os << "\", \"mechanism\": \"";
  AppendJsonEscaped(os, r.mechanism);
  os << "\", \"epsilon\": " << FormatDouble(r.epsilon)
     << ", \"sensitivity\": " << FormatDouble(r.sensitivity)
     << ", \"composition\": \"";
  AppendJsonEscaped(os, r.composition);
  os << "\", \"consumed_after\": " << FormatDouble(r.consumed_after) << "}";
  return os.str();
}

}  // namespace

AuditLedger::~AuditLedger() {
  if (file_ != nullptr) std::fclose(file_);
}

Status AuditLedger::OpenFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("AuditLedger: cannot open '" + path + "'");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = file;
  // Records appended before the sink opened still belong in the file.
  for (const AuditRecord& record : records_) WriteRecordLocked(record);
  return Status::OK();
}

void AuditLedger::Append(AuditRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.seq = static_cast<uint64_t>(records_.size());
  records_.push_back(std::move(record));
  if (file_ != nullptr) WriteRecordLocked(records_.back());
}

void AuditLedger::WriteRecordLocked(const AuditRecord& record) {
  const std::string line = RecordJson(record) + "\n";
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fflush(file_);
}

std::vector<AuditRecord> AuditLedger::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

size_t AuditLedger::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

double AuditLedger::TotalEpsilonRaw() const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = 0.0;
  for (const AuditRecord& r : records_) total += r.epsilon;
  return total;
}

double AuditLedger::ComposedEpsilon() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ComposeRecords(records_);
}

double AuditLedger::ComposeRecords(const std::vector<AuditRecord>& records) {
  // Mirror BudgetAccountant exactly: a vector of (stage, running max) in
  // first-charge order, then one left-to-right sum. Using the identical
  // operations in the identical order makes the result bitwise equal to
  // ConsumedEpsilon(), so the audit test can assert exact equality.
  std::vector<std::pair<std::string, double>> groups;
  for (const AuditRecord& r : records) {
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == r.stage; });
    if (it == groups.end()) {
      groups.emplace_back(r.stage, r.epsilon);
    } else {
      it->second = std::max(it->second, r.epsilon);
    }
  }
  double total = 0.0;
  for (const auto& g : groups) total += g.second;
  return total;
}

namespace {

/// Pulls the value following `"key": ` out of one RecordJson line. The
/// emitter writes a fixed field order and fixed spacing, so a positional
/// scan is exact — no general JSON parser needed to round-trip our own
/// output.
bool FindValue(const std::string& line, const char* key, size_t* pos) {
  const std::string needle = std::string("\"") + key + "\": ";
  const size_t at = line.find(needle);
  if (at == std::string::npos) return false;
  *pos = at + needle.size();
  return true;
}

bool ParseJsonString(const std::string& line, size_t pos, std::string* out) {
  if (pos >= line.size() || line[pos] != '"') return false;
  out->clear();
  for (size_t i = pos + 1; i < line.size(); ++i) {
    const char c = line[i];
    if (c == '"') return true;
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (++i >= line.size()) return false;
    const char esc = line[i];
    if (esc == '"' || esc == '\\') {
      out->push_back(esc);
    } else if (esc == 'u') {
      if (i + 4 >= line.size()) return false;
      unsigned code = 0;
      if (std::sscanf(line.c_str() + i + 1, "%4x", &code) != 1) return false;
      out->push_back(static_cast<char>(code));
      i += 4;
    } else {
      return false;
    }
  }
  return false;
}

bool ParseField(const std::string& line, const char* key, double* out) {
  size_t pos = 0;
  if (!FindValue(line, key, &pos)) return false;
  // The same %lf parse FormatDouble validated against, so the double comes
  // back bitwise.
  return std::sscanf(line.c_str() + pos, "%lf", out) == 1;
}

bool ParseField(const std::string& line, const char* key, uint64_t* out) {
  size_t pos = 0;
  if (!FindValue(line, key, &pos)) return false;
  unsigned long long v = 0;
  if (std::sscanf(line.c_str() + pos, "%llu", &v) != 1) return false;
  *out = v;
  return true;
}

bool ParseField(const std::string& line, const char* key, std::string* out) {
  size_t pos = 0;
  return FindValue(line, key, &pos) && ParseJsonString(line, pos, out);
}

}  // namespace

std::vector<AuditRecord> AuditLedger::ParseJsonl(const std::string& text) {
  std::vector<AuditRecord> records;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    // A line without its newline is a torn tail (the writer appends the
    // record and terminator in one fwrite, but a crashed kernel flush can
    // still split them) — stop cleanly, like the WAL reader does.
    if (end == std::string::npos) break;
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    AuditRecord r;
    if (!ParseField(line, "seq", &r.seq) ||
        !ParseField(line, "stage", &r.stage) ||
        !ParseField(line, "mechanism", &r.mechanism) ||
        !ParseField(line, "epsilon", &r.epsilon) ||
        !ParseField(line, "sensitivity", &r.sensitivity) ||
        !ParseField(line, "composition", &r.composition) ||
        !ParseField(line, "consumed_after", &r.consumed_after)) {
      break;
    }
    records.push_back(std::move(r));
  }
  return records;
}

std::string AuditLedger::ToJsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const AuditRecord& r : records_) {
    out += RecordJson(r);
    out += "\n";
  }
  return out;
}

}  // namespace stpt::dp
