#ifndef STPT_DP_MECHANISMS_H_
#define STPT_DP_MECHANISMS_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace stpt::dp {

/// The Laplace mechanism (Dwork et al., 2006).
///
/// Adds zero-mean Laplace noise with scale sensitivity/epsilon to a
/// real-valued query answer, achieving epsilon-DP for queries with the given
/// L1 sensitivity (paper Eq. 4).
class LaplaceMechanism {
 public:
  /// Creates a mechanism. Returns InvalidArgument if epsilon or sensitivity
  /// is non-positive.
  static StatusOr<LaplaceMechanism> Create(double epsilon, double sensitivity);

  /// Returns value + Lap(sensitivity/epsilon).
  double AddNoise(double value, Rng& rng) const;

  /// Sanitizes a vector element-wise, treating each element as an
  /// independent query of the configured sensitivity under the *same*
  /// epsilon (caller is responsible for composition accounting). Draws are
  /// batched through the kernel backend on order-independent Rng substreams,
  /// so the result is identical at any thread count and on any backend (but
  /// differs from looping the scalar overload, which consumes the caller's
  /// stream sequentially).
  std::vector<double> AddNoise(const std::vector<double>& values, Rng& rng) const;

  /// The Laplace scale b = sensitivity / epsilon.
  double scale() const { return scale_; }
  double epsilon() const { return epsilon_; }
  double sensitivity() const { return sensitivity_; }

  /// Variance of the injected noise: 2 b^2.
  double NoiseVariance() const { return 2.0 * scale_ * scale_; }

 private:
  LaplaceMechanism(double epsilon, double sensitivity)
      : epsilon_(epsilon), sensitivity_(sensitivity), scale_(sensitivity / epsilon) {}

  double epsilon_;
  double sensitivity_;
  double scale_;
};

/// The geometric mechanism: integer-valued analogue of Laplace, suitable for
/// count queries. Adds two-sided geometric noise with parameter
/// alpha = exp(-epsilon / sensitivity).
class GeometricMechanism {
 public:
  /// Creates a mechanism. Returns InvalidArgument if epsilon or sensitivity
  /// is non-positive.
  static StatusOr<GeometricMechanism> Create(double epsilon, double sensitivity);

  /// Returns value + two-sided-geometric noise.
  int64_t AddNoise(int64_t value, Rng& rng) const;

  /// Sanitizes a vector of counts element-wise (same composition caveat as
  /// the Laplace vector overload). Batched through the kernel backend on
  /// order-independent Rng substreams.
  std::vector<int64_t> AddNoise(const std::vector<int64_t>& values, Rng& rng) const;

  double epsilon() const { return epsilon_; }
  double sensitivity() const { return sensitivity_; }

 private:
  GeometricMechanism(double epsilon, double sensitivity)
      : epsilon_(epsilon), sensitivity_(sensitivity),
        alpha_(0.0) {}

  double epsilon_;
  double sensitivity_;
  double alpha_;

  friend class GeometricMechanismTestPeer;
};

/// Clips a value into [0, bound]; used to enforce the per-reading
/// sensitivity-clipping factor of Table 2 before any DP release.
double ClipReading(double value, double bound);

/// Clips a whole series in place and reports how many readings were clipped.
size_t ClipSeries(std::vector<double>* series, double bound);

}  // namespace stpt::dp

#endif  // STPT_DP_MECHANISMS_H_
