#ifndef STPT_DP_AUDIT_LEDGER_H_
#define STPT_DP_AUDIT_LEDGER_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace stpt::dp {

/// One privacy-budget charge, as recorded by BudgetAccountant when a ledger
/// is attached (see BudgetAccountant::AttachLedger).
struct AuditRecord {
  uint64_t seq = 0;          ///< 0-based charge order within the ledger
  std::string stage;         ///< the accountant's sequential-group key
  std::string mechanism;     ///< noise mechanism behind the charge ("laplace", ...)
  double epsilon = 0.0;      ///< the charged epsilon
  double sensitivity = 0.0;  ///< query sensitivity backing the charge (0 = n/a)
  /// Composition rule applied: "sequential" for the first charge of a stage
  /// (it opens a new group that adds to the total), "parallel" for repeat
  /// charges of a stage (they compose at the max within the group).
  std::string composition;
  double consumed_after = 0.0;  ///< accountant's composed total after this charge
};

/// Append-only record of every BudgetAccountant charge — the auditable
/// counterpart of the accountant's single composed number. The ledger keeps
/// records in memory and, when a JSONL sink is opened, also appends each
/// record to the file at charge time, so a crashed pipeline still leaves
/// the charges it made on disk.
///
/// The key invariant (tested end-to-end on a full Stpt::Publish run):
/// ComposedEpsilon() — replaying the records through the paper's
/// composition rules — is EXACTLY equal (bitwise, not within a tolerance)
/// to the accountant's ConsumedEpsilon(), because the replay performs the
/// same per-stage max and same-order summation the accountant performs.
class AuditLedger {
 public:
  AuditLedger() = default;
  ~AuditLedger();

  AuditLedger(const AuditLedger&) = delete;
  AuditLedger& operator=(const AuditLedger&) = delete;

  /// Opens (truncates) a JSONL sink; every subsequent Append is also
  /// written to it. Returns InvalidArgument on an unopenable path.
  Status OpenFile(const std::string& path);

  /// Appends one record (the accountant calls this under its charge path).
  /// record.seq is assigned by the ledger. Thread-safe.
  void Append(AuditRecord record);

  /// Copy of all records, in charge order.
  std::vector<AuditRecord> records() const;

  size_t size() const;

  /// Sum of all epsilon entries (diagnostic; ignores composition).
  double TotalEpsilonRaw() const;

  /// Replays the records through the accountant's composition arithmetic:
  /// per-stage running max, stages summed in first-charge order. Bitwise
  /// equal to BudgetAccountant::ConsumedEpsilon() after the same charges.
  double ComposedEpsilon() const;

  /// All records as JSONL (one object per line), identical to the file
  /// sink's contents.
  std::string ToJsonl() const;

  /// Parses JSONL produced by this ledger (the file sink or ToJsonl) back
  /// into records — the replay entry point for crash recovery, which must
  /// read a dead pipeline's ledger before reopening (and truncating) the
  /// sink. Tolerant of a torn final line; strict about the field layout
  /// WriteRecordLocked emits, so doubles round-trip bitwise.
  static std::vector<AuditRecord> ParseJsonl(const std::string& text);

  /// ComposedEpsilon over an arbitrary record sequence: per-stage running
  /// max, stages summed in first-charge order. Applying it to ParseJsonl's
  /// output reproduces the dead accountant's ConsumedEpsilon bitwise.
  static double ComposeRecords(const std::vector<AuditRecord>& records);

 private:
  void WriteRecordLocked(const AuditRecord& record);

  mutable std::mutex mu_;
  std::vector<AuditRecord> records_;
  std::FILE* file_ = nullptr;  // owned JSONL sink, may be null
};

}  // namespace stpt::dp

#endif  // STPT_DP_AUDIT_LEDGER_H_
