#include "obs/trace_context.h"

#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

#include "common/rng.h"

namespace stpt::obs {
namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

void PutU64Le(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint64_t GetU64Le(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HexU64(uint64_t v) {
  static const char* kHex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[v & 0xF];
    v >>= 4;
  }
  return out;
}

thread_local TraceContext t_current;
thread_local bool t_current_set = false;

}  // namespace

uint64_t TraceFnv1a64(const void* data, size_t size) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = kFnvOffset;
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

bool TraceSampled(uint64_t trace_hi, uint64_t trace_lo, uint32_t period) {
  if (period == 0) return false;
  if (period == 1) return true;
  uint8_t id[16];
  for (int i = 0; i < 8; ++i) id[i] = static_cast<uint8_t>(trace_hi >> (8 * i));
  for (int i = 0; i < 8; ++i) {
    id[8 + i] = static_cast<uint8_t>(trace_lo >> (8 * i));
  }
  return TraceFnv1a64(id, sizeof id) % period == 0;
}

TraceContext MakeTraceContext(const Rng& base, uint64_t stream,
                              uint32_t sample_period) {
  Rng child = base.Fork(stream);
  TraceContext ctx;
  ctx.trace_hi = child.NextUint64();
  ctx.trace_lo = child.NextUint64();
  if (!ctx.valid()) ctx.trace_lo = 1;  // zero id means "untraced" on the wire
  ctx.span_id = child.NextUint64();
  if (ctx.span_id == 0) ctx.span_id = 1;
  ctx.sampled = TraceSampled(ctx.trace_hi, ctx.trace_lo, sample_period);
  return ctx;
}

uint64_t ChildSpanId(uint64_t parent_span_id, uint64_t seq) {
  uint8_t buf[16];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<uint8_t>(parent_span_id >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) buf[8 + i] = static_cast<uint8_t>(seq >> (8 * i));
  const uint64_t h = TraceFnv1a64(buf, sizeof buf);
  return h == 0 ? 1 : h;
}

std::string TraceIdHex(const TraceContext& ctx) {
  return HexU64(ctx.trace_hi) + HexU64(ctx.trace_lo);
}

std::string SpanIdHex(uint64_t span_id) { return HexU64(span_id); }

void AppendTraceField(std::vector<uint8_t>& out, const TraceContext& ctx) {
  if (!ctx.valid()) return;
  out.push_back(static_cast<uint8_t>(kTraceFieldBytes - 1));
  out.push_back(ctx.sampled ? 1 : 0);
  PutU64Le(out, ctx.trace_hi);
  PutU64Le(out, ctx.trace_lo);
  PutU64Le(out, ctx.span_id);
  PutU64Le(out, ctx.start_ns);
}

bool DecodeTraceField(const uint8_t* data, size_t size, TraceContext* out) {
  if (size != kTraceFieldBytes) return false;
  if (data[0] != kTraceFieldBytes - 1) return false;
  const uint8_t flags = data[1];
  if ((flags & ~uint8_t{1}) != 0) return false;
  TraceContext ctx;
  ctx.sampled = (flags & 1) != 0;
  ctx.trace_hi = GetU64Le(data + 2);
  ctx.trace_lo = GetU64Le(data + 10);
  ctx.span_id = GetU64Le(data + 18);
  ctx.start_ns = GetU64Le(data + 26);
  if (!ctx.valid()) return false;  // a present field must carry a real id
  *out = ctx;
  return true;
}

const TraceContext* CurrentTraceContext() {
  return (t_current_set && t_current.valid()) ? &t_current : nullptr;
}

ScopedTraceContext::ScopedTraceContext(const TraceContext& ctx)
    : prev_(t_current), had_prev_(t_current_set) {
  t_current = ctx;
  t_current_set = true;
}

ScopedTraceContext::~ScopedTraceContext() {
  t_current = prev_;
  t_current_set = had_prev_;
}

TraceStore& TraceStore::Global() {
  static TraceStore* store = new TraceStore();
  return *store;
}

void TraceStore::Add(TraceSpan span) {
  if ((span.trace_hi | span.trace_lo) == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
  while (spans_.size() > kMaxSpans) spans_.pop_front();
}

void TraceStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

size_t TraceStore::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<TraceSpan> TraceStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TraceSpan>(spans_.begin(), spans_.end());
}

std::string TraceStore::ToJson(size_t max_traces,
                               const std::string& trace_id_hex) const {
  const std::vector<TraceSpan> spans = Snapshot();
  // Group by trace id, keeping first-seen order of traces.
  std::vector<std::string> order;
  std::map<std::string, std::vector<const TraceSpan*>> by_trace;
  for (const TraceSpan& s : spans) {
    TraceContext id{s.trace_hi, s.trace_lo, 0, 0, false};
    std::string key = TraceIdHex(id);
    if (!trace_id_hex.empty() && key != trace_id_hex) continue;
    auto [it, inserted] = by_trace.try_emplace(std::move(key));
    if (inserted) order.push_back(it->first);
    it->second.push_back(&s);
  }
  size_t first = 0;
  if (max_traces > 0 && order.size() > max_traces) {
    first = order.size() - max_traces;  // most recent N traces
  }
  std::ostringstream os;
  os << "{\"traces\":[";
  for (size_t i = first; i < order.size(); ++i) {
    if (i != first) os << ',';
    os << "{\"trace_id\":\"" << order[i] << "\",\"spans\":[";
    const auto& list = by_trace[order[i]];
    for (size_t j = 0; j < list.size(); ++j) {
      const TraceSpan& s = *list[j];
      if (j != 0) os << ',';
      os << "{\"name\":\"" << JsonEscape(s.name) << "\",\"span_id\":\""
         << SpanIdHex(s.span_id) << "\",\"parent_span_id\":\""
         << SpanIdHex(s.parent_span_id) << "\",\"lane\":\""
         << JsonEscape(s.lane) << "\",\"start_ns\":" << s.start_ns
         << ",\"end_ns\":" << s.end_ns << ",\"attrs\":{";
      for (size_t k = 0; k < s.attrs.size(); ++k) {
        if (k != 0) os << ',';
        os << '"' << JsonEscape(s.attrs[k].first) << "\":\""
           << JsonEscape(s.attrs[k].second) << '"';
      }
      os << "}}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

}  // namespace stpt::obs
