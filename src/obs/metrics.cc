#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace stpt::obs {
namespace {

bool ValidName(const std::string& name) {
  if (name.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_')) {
    return false;
  }
  for (char c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) return false;
  }
  return true;
}

/// Shortest-clean rendering: integral values print without an exponent or
/// trailing digits ("42"), everything else gets full round-trip precision.
std::string FormatDouble(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string ExemplarTraceIdHex(uint64_t hi, uint64_t lo) {
  static const char* kHex = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kHex[hi & 0xF];
    hi >>= 4;
  }
  for (int i = 31; i >= 16; --i) {
    out[static_cast<size_t>(i)] = kHex[lo & 0xF];
    lo >>= 4;
  }
  return out;
}

}  // namespace

std::string PromEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string FormatMetricValue(double v) { return FormatDouble(v); }

/// The OpenMetrics exemplar suffix appended to a `_bucket` line (without the
/// leading space): `# {trace_id="..."} value ts_seconds`.
std::string ExemplarSuffix(const HistogramExemplar& ex) {
  std::ostringstream os;
  os << "# {trace_id=\"" << ExemplarTraceIdHex(ex.trace_hi, ex.trace_lo)
     << "\"} " << FormatDouble(ex.value) << " "
     << FormatDouble(static_cast<double>(ex.ts_ns) * 1e-9);
  return os.str();
}

void Gauge::Add(double delta) {
  uint64_t old = bits_.load(std::memory_order_relaxed);
  while (!bits_.compare_exchange_weak(old, Pack(Unpack(old) + delta),
                                      std::memory_order_relaxed)) {
  }
}

uint64_t Gauge::Pack(double v) { return std::bit_cast<uint64_t>(v); }
double Gauge::Unpack(uint64_t bits) { return std::bit_cast<double>(bits); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]{}) {}

size_t Histogram::BucketIndex(double value) const {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  return static_cast<size_t>(it - bounds_.begin());  // == size: overflow
}

void Histogram::Observe(double value) {
  const size_t idx = BucketIndex(value);
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      old, std::bit_cast<uint64_t>(std::bit_cast<double>(old) + value),
      std::memory_order_relaxed)) {
  }
}

void Histogram::ObserveWithExemplar(double value, uint64_t trace_hi,
                                    uint64_t trace_lo, uint64_t ts_ns) {
  Observe(value);
  if ((trace_hi | trace_lo) == 0) return;
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  if (exemplars_.empty()) exemplars_.resize(bounds_.size() + 1);
  HistogramExemplar& ex = exemplars_[BucketIndex(value)];
  ex.trace_hi = trace_hi;
  ex.trace_lo = trace_lo;
  ex.value = value;
  ex.ts_ns = ts_ns;
  ex.set = true;
}

std::vector<HistogramExemplar> Histogram::Exemplars() const {
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  return exemplars_;
}

double Histogram::Sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<uint64_t> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen > rank) {
      return i < bounds_.size() ? bounds_[i] : bounds_.back();
    }
  }
  return bounds_.back();
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::Reset() {
  for (size_t i = 0; i < bounds_.size() + 1; ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  exemplars_.clear();
}

std::vector<double> ExponentialBuckets(double start, double factor, int count) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(std::max(count, 0)));
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

const std::vector<double>& LatencyBucketsNs() {
  static const std::vector<double> kBuckets = ExponentialBuckets(1.0, 2.0, 33);
  return kBuckets;
}

Registry& Registry::Global() {
  static auto* registry = new Registry();
  return *registry;
}

Counter* Registry::GetCounter(const std::string& name, const std::string& help) {
  if (!ValidName(name)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    return it->second.kind == Kind::kCounter ? it->second.counter.get() : nullptr;
  }
  Metric m;
  m.kind = Kind::kCounter;
  m.help = help;
  m.counter.reset(new Counter());
  return metrics_.emplace(name, std::move(m)).first->second.counter.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& help) {
  if (!ValidName(name)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    return it->second.kind == Kind::kGauge ? it->second.gauge.get() : nullptr;
  }
  Metric m;
  m.kind = Kind::kGauge;
  m.help = help;
  m.gauge.reset(new Gauge());
  return metrics_.emplace(name, std::move(m)).first->second.gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name, const std::string& help,
                                  std::vector<double> bounds) {
  if (!ValidName(name)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    return it->second.kind == Kind::kHistogram ? it->second.histogram.get() : nullptr;
  }
  if (bounds.empty()) return nullptr;
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (!std::isfinite(bounds[i])) return nullptr;
    if (i > 0 && !(bounds[i] > bounds[i - 1])) return nullptr;
  }
  Metric m;
  m.kind = Kind::kHistogram;
  m.help = help;
  m.histogram.reset(new Histogram(std::move(bounds)));
  return metrics_.emplace(name, std::move(m)).first->second.histogram.get();
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, m] : metrics_) {
    switch (m.kind) {
      case Kind::kCounter: m.counter->Reset(); break;
      case Kind::kGauge: m.gauge->Reset(); break;
      case Kind::kHistogram: m.histogram->Reset(); break;
    }
  }
}

size_t Registry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

std::string Registry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, m] : metrics_) {
    if (!m.help.empty()) os << "# HELP " << name << " " << m.help << "\n";
    switch (m.kind) {
      case Kind::kCounter:
        os << "# TYPE " << name << " counter\n";
        os << name << " " << m.counter->Value() << "\n";
        break;
      case Kind::kGauge:
        os << "# TYPE " << name << " gauge\n";
        os << name << " " << FormatDouble(m.gauge->Value()) << "\n";
        break;
      case Kind::kHistogram: {
        os << "# TYPE " << name << " histogram\n";
        const Histogram& h = *m.histogram;
        const std::vector<uint64_t> counts = h.BucketCounts();
        const std::vector<HistogramExemplar> exemplars = h.Exemplars();
        uint64_t cumulative = 0;
        for (size_t i = 0; i <= h.bounds().size(); ++i) {
          cumulative += counts[i];
          os << name << "_bucket{le=\"";
          if (i < h.bounds().size()) {
            os << FormatDouble(h.bounds()[i]);
          } else {
            os << "+Inf";
          }
          os << "\"} " << cumulative;
          if (i < exemplars.size() && exemplars[i].set) {
            os << " " << ExemplarSuffix(exemplars[i]);
          }
          os << "\n";
        }
        os << name << "_sum " << FormatDouble(h.Sum()) << "\n";
        os << name << "_count " << h.Count() << "\n";
        break;
      }
    }
  }
  return os.str();
}

std::string Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream counters, gauges, histograms;
  bool first_c = true, first_g = true, first_h = true;
  for (const auto& [name, m] : metrics_) {
    switch (m.kind) {
      case Kind::kCounter:
        if (!first_c) counters << ", ";
        first_c = false;
        counters << "\"" << name << "\": " << m.counter->Value();
        break;
      case Kind::kGauge:
        if (!first_g) gauges << ", ";
        first_g = false;
        gauges << "\"" << name << "\": " << FormatDouble(m.gauge->Value());
        break;
      case Kind::kHistogram: {
        if (!first_h) histograms << ", ";
        first_h = false;
        const Histogram& h = *m.histogram;
        histograms << "\"" << name << "\": {\"count\": " << h.Count()
                   << ", \"sum\": " << FormatDouble(h.Sum())
                   << ", \"p50\": " << FormatDouble(h.Quantile(0.50))
                   << ", \"p95\": " << FormatDouble(h.Quantile(0.95))
                   << ", \"p99\": " << FormatDouble(h.Quantile(0.99))
                   << ", \"buckets\": [";
        const std::vector<uint64_t> counts = h.BucketCounts();
        for (size_t i = 0; i < counts.size(); ++i) {
          if (i > 0) histograms << ", ";
          histograms << "{\"le\": ";
          if (i < h.bounds().size()) {
            histograms << FormatDouble(h.bounds()[i]);
          } else {
            histograms << "\"+Inf\"";
          }
          histograms << ", \"count\": " << counts[i] << "}";
        }
        histograms << "]";
        const std::vector<HistogramExemplar> exemplars = h.Exemplars();
        bool first_ex = true;
        for (size_t i = 0; i < exemplars.size(); ++i) {
          if (!exemplars[i].set) continue;
          histograms << (first_ex ? ", \"exemplars\": [" : ", ");
          first_ex = false;
          histograms << "{\"le\": ";
          if (i < h.bounds().size()) {
            histograms << FormatDouble(h.bounds()[i]);
          } else {
            histograms << "\"+Inf\"";
          }
          histograms << ", \"trace_id\": \""
                     << ExemplarTraceIdHex(exemplars[i].trace_hi,
                                           exemplars[i].trace_lo)
                     << "\", \"value\": " << FormatDouble(exemplars[i].value)
                     << ", \"ts_ns\": " << exemplars[i].ts_ns << "}";
        }
        if (!first_ex) histograms << "]";
        histograms << "}";
        break;
      }
    }
  }
  std::ostringstream os;
  os << "{\"counters\": {" << counters.str() << "}, \"gauges\": {" << gauges.str()
     << "}, \"histograms\": {" << histograms.str() << "}}";
  return os.str();
}

}  // namespace stpt::obs
