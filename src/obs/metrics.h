#ifndef STPT_OBS_METRICS_H_
#define STPT_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace stpt::obs {

/// --- Metric primitives ----------------------------------------------------
///
/// All three metric types are lock-free on the hot path: one relaxed atomic
/// operation per Increment/Set/Observe. Handles are created once through a
/// Registry (which owns the storage) and are stable for the registry's
/// lifetime, so instrumented code resolves a metric by name exactly once and
/// then touches only the returned pointer.
///
/// Naming convention (enforced lexically by the registry):
/// `stpt_<subsystem>_<name>`, snake_case, counters suffixed `_total`,
/// histograms suffixed with their unit (`_ns`). See DESIGN.md §8.

/// Monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class Registry;
  friend class RedFamily;
  Counter() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (e.g. remaining privacy budget).
class Gauge {
 public:
  void Set(double v) { bits_.store(Pack(v), std::memory_order_relaxed); }
  /// Atomic read-modify-write add (CAS loop; rare-path only).
  void Add(double delta);
  double Value() const { return Unpack(bits_.load(std::memory_order_relaxed)); }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class Registry;
  Gauge() = default;
  void Reset() { Set(0.0); }

  static uint64_t Pack(double v);
  static double Unpack(uint64_t bits);

  std::atomic<uint64_t> bits_{0};
};

/// The most recent sampled-trace observation a histogram bucket has seen,
/// attached OpenMetrics-style to the bucket's exposition line:
///   `name_bucket{le="..."} N # {trace_id="<32 hex>"} value ts_seconds`
/// so a latency outlier in a scrape links straight to a fetchable trace.
struct HistogramExemplar {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  double value = 0.0;
  uint64_t ts_ns = 0;
  bool set = false;
};

/// Fixed-bucket histogram: `bounds` are strictly increasing finite upper
/// bounds (inclusive, Prometheus `le` semantics); one implicit overflow
/// bucket catches everything above the last bound. Recording is a binary
/// search plus two relaxed atomic adds; quantile reads are linear scans over
/// the bucket counters.
class Histogram {
 public:
  void Observe(double value);

  /// Observe() plus exemplar capture: the chosen bucket remembers this
  /// trace id / value / timestamp, replacing any earlier exemplar. Takes a
  /// mutex — callers only use it on sampled requests, so the hot path stays
  /// the lock-free Observe().
  void ObserveWithExemplar(double value, uint64_t trace_hi, uint64_t trace_lo,
                           uint64_t ts_ns);

  /// Per-bucket exemplars (index bounds().size() is overflow). Empty vector
  /// until the first ObserveWithExemplar.
  std::vector<HistogramExemplar> Exemplars() const;

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const;

  /// Upper bound of the bucket containing quantile `q` (clamped to [0, 1]).
  /// Returns 0 when empty. Samples in the overflow bucket report the largest
  /// finite bound (the Prometheus `histogram_quantile` convention), so the
  /// result is always finite.
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts; index bounds_.size() is overflow.
  std::vector<uint64_t> BucketCounts() const;

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class Registry;
  friend class RedFamily;
  explicit Histogram(std::vector<double> bounds);
  void Reset();
  size_t BucketIndex(double value) const;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  ///< bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};  ///< bit-cast double, CAS-accumulated

  mutable std::mutex exemplar_mu_;  ///< sampled-path only; see above
  std::vector<HistogramExemplar> exemplars_;  ///< lazily bounds_.size() + 1
};

/// Power-of-`factor` bucket bounds: start, start*factor, ... (count bounds).
std::vector<double> ExponentialBuckets(double start, double factor, int count);

/// Escapes a Prometheus label value per the exposition format: `\` → `\\`,
/// `"` → `\"`, newline → `\n`. Every exporter that emits `{label="value"}`
/// with a runtime string must route it through here — tenant names are
/// client-controlled.
std::string PromEscapeLabel(const std::string& value);

/// Shortest-clean metric value rendering shared by the exporters: integral
/// values print without an exponent, everything else round-trips.
std::string FormatMetricValue(double v);

/// The OpenMetrics exemplar suffix of a `_bucket` exposition line (without
/// the leading space): `# {trace_id="..."} value ts_seconds`.
std::string ExemplarSuffix(const HistogramExemplar& ex);

/// Default latency buckets in nanoseconds: powers of two from 1 ns to ~4 s.
const std::vector<double>& LatencyBucketsNs();

/// --- Registry -------------------------------------------------------------

/// A named collection of metrics. Registration takes a mutex; returned
/// handles are lock-free and valid for the registry's lifetime. Most code
/// uses the process-wide Registry::Global(); components that need isolated
/// counters (e.g. one serve::QueryServer per snapshot) own an instance.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide default registry.
  static Registry& Global();

  /// Returns the counter registered under `name`, creating it on first use.
  /// Returns nullptr if `name` is not a valid metric name ([a-zA-Z_]
  /// followed by [a-zA-Z0-9_]*) or is already registered as another kind.
  Counter* GetCounter(const std::string& name, const std::string& help);
  Gauge* GetGauge(const std::string& name, const std::string& help);
  /// As above; additionally requires at least one strictly increasing finite
  /// bound. Re-registration ignores `bounds` and returns the original.
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds);

  /// Zeroes every metric's value; registrations and handles stay valid.
  void Reset();

  size_t NumMetrics() const;

  /// Prometheus text exposition format (# HELP / # TYPE / samples), metrics
  /// in lexicographic name order. Histograms emit cumulative `_bucket{le=}`
  /// series plus `_sum` and `_count`.
  std::string ToPrometheusText() const;

  /// The same snapshot as a JSON object:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {count, sum, p50, p95, p99, buckets: [...]}}}
  std::string ToJson() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Metric {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  mutable std::mutex mu_;
  // std::map keeps exporter output stable and diffable across runs.
  std::map<std::string, Metric> metrics_;
};

}  // namespace stpt::obs

#endif  // STPT_OBS_METRICS_H_
