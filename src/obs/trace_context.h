#ifndef STPT_OBS_TRACE_CONTEXT_H_
#define STPT_OBS_TRACE_CONTEXT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace stpt {
class Rng;
}

namespace stpt::obs {

/// --- Request-scoped trace context ------------------------------------------
///
/// A TraceContext identifies one logical request (a query batch, a reading
/// batch, an admin verb) across processes: 128-bit trace id, the sender's
/// 64-bit span id, the sender's span start time, and a head-sampling flag.
/// Ids are drawn deterministically from the `stpt::Rng` fork discipline on
/// the client/feeder side (MakeTraceContext), so a seeded workload replays
/// the identical trace ids. The sampling decision is a pure function of the
/// trace id (TraceSampled) — every hop agrees on it without configuration.
///
/// The context travels on the wire as an optional length-delimited trailing
/// field of the v2 frames (see serve/wire.h §trace); absent means untraced,
/// so pre-trace peers and untraced requests keep their exact byte layout.
struct TraceContext {
  uint64_t trace_hi = 0;  ///< high 64 bits of the 128-bit trace id
  uint64_t trace_lo = 0;  ///< low 64 bits
  uint64_t span_id = 0;   ///< the sender's span covering this request
  uint64_t start_ns = 0;  ///< sender span start, obs::NowNanos clock (0 = unknown)
  bool sampled = false;   ///< head-sampling decision, carried to every hop

  /// A context is on/off by its id: zero id = "no trace" (never encoded).
  bool valid() const { return (trace_hi | trace_lo) != 0; }

  bool operator==(const TraceContext&) const = default;
};

/// FNV-1a over raw bytes; shared by the sampling rule and span-id derivation.
uint64_t TraceFnv1a64(const void* data, size_t size);

/// True iff a trace with this id is kept at sampling period `period`
/// (keep iff Fnv1a(trace_id bytes) % period == 0). period 0 = never sampled,
/// period 1 = always.
bool TraceSampled(uint64_t trace_hi, uint64_t trace_lo, uint32_t period);

/// Builds the context for request number `stream` of a workload seeded by
/// `base`: ids come from `base.Fork(stream)` (order-independent, does not
/// advance `base`, and never touches any noise stream), sampling from
/// TraceSampled with `sample_period`. start_ns is left 0 — stamp it at send.
TraceContext MakeTraceContext(const Rng& base, uint64_t stream,
                              uint32_t sample_period);

/// Deterministic child span id: a hash of (parent span id, seq), never zero.
uint64_t ChildSpanId(uint64_t parent_span_id, uint64_t seq);

/// 32 lowercase hex chars (trace id) / 16 hex chars (span id).
std::string TraceIdHex(const TraceContext& ctx);
std::string SpanIdHex(uint64_t span_id);

/// --- Wire field codec -------------------------------------------------------
///
/// Layout of the optional trailing field (appended only when ctx.valid()):
///   u8  len    == 33 (bytes that follow; strict, future versions bump it)
///   u8  flags  bit0 = sampled, other bits must be zero
///   u64 trace_hi, u64 trace_lo, u64 span_id, u64 start_ns   (little-endian)
/// Decoding is strict so the fuzz canonical-re-encode oracle holds: any
/// accepted field re-encodes byte-identically.
inline constexpr size_t kTraceFieldBytes = 34;

/// Appends the field to `out` iff `ctx.valid()`; no-op otherwise.
void AppendTraceField(std::vector<uint8_t>& out, const TraceContext& ctx);

/// Parses exactly `size` bytes as one trace field. Returns false on any
/// malformation (wrong length, unknown flag bits, zero trace id).
bool DecodeTraceField(const uint8_t* data, size_t size, TraceContext* out);

/// --- Thread-local active context --------------------------------------------
///
/// The serving and ingest tiers set the active context for the duration of a
/// request's execution; exec::ParallelFor re-establishes it on worker lanes,
/// so code arbitrarily deep in a traced request (exemplar observation, slow-
/// request logs, registry swap spans) can name its trace without plumbing.
/// Returns nullptr when no context is active or the active one is invalid.
const TraceContext* CurrentTraceContext();

/// RAII: installs `ctx` as the current thread's active context, restoring
/// the previous one (if any) on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
  bool had_prev_;
};

/// --- Completed-span store ---------------------------------------------------

/// One completed span of a sampled request, as stored for later fetch over
/// kTraceRequest. `lane` names where it ran ("client", "loop", "worker",
/// "ingest", ...); attrs are pre-rendered key/value strings (tenant, tile,
/// epoch, ...).
struct TraceSpan {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;
  std::string name;
  std::string lane;
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Bounded in-memory store of recently completed sampled spans. Writers
/// (loop thread, exec workers, ingest publishers) Add under a mutex — the
/// path is only taken for sampled requests, so contention is bounded by the
/// sampling period. Oldest spans are evicted once kMaxSpans is reached.
class TraceStore {
 public:
  static constexpr size_t kMaxSpans = 8192;

  /// The process-wide store the serve tier exposes over kTraceRequest.
  static TraceStore& Global();

  TraceStore() = default;
  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  void Add(TraceSpan span);
  void Clear();
  size_t span_count() const;

  /// All stored spans, oldest first (for the Chrome-trace flow splice).
  std::vector<TraceSpan> Snapshot() const;

  /// Spans grouped per trace, insertion order:
  ///   {"traces":[{"trace_id":"...","spans":[{name, span_id,
  ///     parent_span_id, lane, start_ns, end_ns, attrs:{...}}, ...]}]}
  /// `max_traces` > 0 keeps only the most recent N traces;
  /// non-empty `trace_id_hex` keeps only the matching trace.
  std::string ToJson(size_t max_traces = 0,
                     const std::string& trace_id_hex = "") const;

 private:
  mutable std::mutex mu_;
  std::deque<TraceSpan> spans_;
};

}  // namespace stpt::obs

#endif  // STPT_OBS_TRACE_CONTEXT_H_
