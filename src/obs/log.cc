#include "obs/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <sstream>

#include "obs/trace.h"

namespace stpt::obs {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

// Sink state: nullptr file means the stderr text sink. The mutex also
// serialises concurrent Log calls so events never interleave mid-line.
std::mutex g_sink_mu;
std::FILE* g_file = nullptr;  // owned; JSONL when non-null

void AppendJsonEscaped(std::ostringstream& os, const std::string& text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  for (const LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn,
                               LogLevel::kError, LogLevel::kOff}) {
    if (text == LogLevelName(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

bool LogEnabled(LogLevel level) {
  return level != LogLevel::kOff &&
         static_cast<int>(level) >= g_level.load(std::memory_order_relaxed);
}

bool SetLogFile(const std::string& path) {
  std::FILE* file = nullptr;
  if (!path.empty()) {
    file = std::fopen(path.c_str(), "w");
    if (file == nullptr) return false;
  }
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_file != nullptr) std::fclose(g_file);
  g_file = file;
  return true;
}

void Log(LogLevel level, const char* component, const std::string& message,
         std::initializer_list<LogField> fields) {
  if (!LogEnabled(level)) return;
  std::ostringstream os;
  std::lock_guard<std::mutex> lock(g_sink_mu);
  if (g_file != nullptr) {
    os << "{\"ts_ns\": " << NowNanos() << ", \"level\": \"" << LogLevelName(level)
       << "\", \"component\": \"";
    AppendJsonEscaped(os, component);
    os << "\", \"message\": \"";
    AppendJsonEscaped(os, message);
    os << "\"";
    for (const LogField& field : fields) {
      os << ", \"";
      AppendJsonEscaped(os, field.first);
      os << "\": \"";
      AppendJsonEscaped(os, field.second);
      os << "\"";
    }
    os << "}\n";
    const std::string line = os.str();
    std::fwrite(line.data(), 1, line.size(), g_file);
    std::fflush(g_file);
  } else {
    os << "[" << LogLevelName(level) << "] " << component << ": " << message;
    bool first = true;
    for (const LogField& field : fields) {
      os << (first ? " (" : ", ") << field.first << "=" << field.second;
      first = false;
    }
    if (!first) os << ")";
    os << "\n";
    const std::string line = os.str();
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
}

}  // namespace stpt::obs
