#ifndef STPT_OBS_TRACE_H_
#define STPT_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace stpt::obs {

/// Monotonic wall clock in nanoseconds (steady_clock). The single time
/// source for all latency measurement in the library: Span below, the
/// serve-layer latency histograms, and the bench load generators all read
/// this clock, so their numbers are directly comparable. (exec::NowNanos is
/// an alias kept for existing call sites.)
uint64_t NowNanos();

/// Aggregated wall-clock statistics for one named trace region.
struct RegionEntry {
  std::string region;
  uint64_t calls = 0;
  uint64_t total_ns = 0;
};

/// Adds one sample to the trace profile. Thread-safe and contention-free on
/// the hot path: each thread accumulates into its own store (guarded by an
/// uncontended per-thread mutex that snapshot readers take), and
/// TraceProfile() merges the per-thread stores on demand. Span calls this on
/// destruction.
void RecordRegion(const char* region, uint64_t ns);

/// Snapshot of the aggregated trace profile (all threads, including exited
/// ones), sorted by descending total time.
std::vector<RegionEntry> TraceProfile();

/// Clears all accumulated region timings (every thread's store).
void ResetTrace();

/// The profile as a JSON array of the `top_n` regions by total time
/// (0 = all): [{"region": ..., "calls": ..., "total_ns": ..., "mean_ns":
/// ...}, ...]. Used by the combined --metrics snapshot and the serve stats
/// endpoint.
std::string TraceProfileJson(size_t top_n = 0);

// --- Event-level tracing ---------------------------------------------------
//
// Opt-in begin/end/counter event capture into per-thread bounded ring
// buffers, exported as Chrome trace-event JSON (load the file in
// chrome://tracing or https://ui.perfetto.dev). Off by default: the only
// cost on the disabled path is one relaxed atomic load per Span
// construction. When enabled, every Span emits a 'B' event at entry and an
// 'E' event at exit on its own thread's buffer, exec pool workers emit
// chunk events labelled with the dispatching span, and TraceCounter turns
// gauge updates into 'C' samples. Capture never touches any Rng, so
// published outputs are bit-identical with tracing on or off.

namespace internal {
extern std::atomic<bool> g_trace_events_enabled;
/// Pushes `region` on the calling thread's span-name stack and buffers a
/// 'B' event. Paired with SpanEnd; Span calls these when capture is on.
void SpanBegin(const char* region, uint64_t ts_ns);
void SpanEnd(const char* region, uint64_t ts_ns);
}  // namespace internal

/// True while event capture is on. Inline relaxed load: cheap enough for
/// per-op call sites.
inline bool TraceEventsEnabled() {
  return internal::g_trace_events_enabled.load(std::memory_order_relaxed);
}

/// Default per-thread event-ring capacity (events, not bytes).
inline constexpr size_t kDefaultTraceCapacity = 1 << 16;

/// Enables event capture. Clears any previously buffered events and sets
/// the per-thread ring capacity; when a ring fills, the oldest events are
/// overwritten (export drops the then-unmatched halves of truncated spans).
void StartTraceEvents(size_t per_thread_capacity = kDefaultTraceCapacity);

/// Disables event capture. Buffered events are retained for export.
void StopTraceEvents();

/// Buffers one raw duration event (phase 'B' or 'E') on the calling
/// thread. No-op when capture is off. Most callers should use Span; this
/// exists for regions whose begin/end are not lexically scoped (exec pool
/// chunk markers).
void EmitTraceEvent(char phase, const char* name, uint64_t ts_ns);

/// Buffers one counter ('C') sample on the calling thread, timestamped
/// now. No-op when capture is off.
void TraceCounter(const char* name, double value);

/// Names the calling thread's lane in exported traces ("main",
/// "stpt-worker-3", ...). Threads that never register export as
/// "thread-<tid>".
void RegisterCurrentThreadName(const std::string& name);

/// Innermost open Span's region on the calling thread, or nullptr. Only
/// maintained while capture is on; ParallelForRange reads it at dispatch to
/// label worker chunk events after the caller's span.
const char* CurrentSpanName();

/// Number of events currently buffered across all threads (diagnostic /
/// test hook; 0 whenever capture was never started).
size_t TraceEventCount();

/// Serialises the buffered events as Chrome trace-event JSON:
/// {"traceEvents": [...], "displayTimeUnit": "ms"}. Every thread gets a
/// thread_name metadata record, timestamps are microseconds relative to
/// StartTraceEvents, and B/E events are balanced per thread (unmatched
/// halves of ring-truncated spans are dropped).
std::string ExportChromeTrace();

/// Writes ExportChromeTrace() to `path`. Returns false if the file cannot
/// be opened or written.
bool WriteChromeTrace(const std::string& path);

/// RAII trace span: on destruction the elapsed wall time is added to the
/// process-wide trace profile under `region`, and — when a histogram handle
/// is supplied — also observed (in nanoseconds) into that metric, making the
/// stage latency distribution available to the exporters. While event
/// capture is on (StartTraceEvents), the span additionally buffers a B/E
/// event pair on its thread's ring. The region string must outlive the span
/// (string literals in practice). Overhead is two clock reads plus one
/// uncontended per-thread map update per span exit, cheap enough for per-op
/// instrumentation (the nn autograd ops are spanned), but still: prefer
/// phases over inner loops.
///
///   {
///     obs::Span span("stpt/pattern_recognition", StageNsHistogram());
///     ...  // phase body
///   }
class Span {
 public:
  explicit Span(const char* region, Histogram* latency_ns = nullptr)
      : region_(region), latency_ns_(latency_ns), start_ns_(NowNanos()) {
    if (TraceEventsEnabled()) {
      traced_ = true;
      internal::SpanBegin(region_, start_ns_);
    }
  }

  ~Span() {
    const uint64_t end_ns = NowNanos();
    const uint64_t ns = end_ns - start_ns_;
    RecordRegion(region_, ns);
    if (latency_ns_ != nullptr) latency_ns_->Observe(static_cast<double>(ns));
    if (traced_) internal::SpanEnd(region_, end_ns);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* region_;
  Histogram* latency_ns_;
  uint64_t start_ns_;
  bool traced_ = false;
};

}  // namespace stpt::obs

#endif  // STPT_OBS_TRACE_H_
