#ifndef STPT_OBS_TRACE_H_
#define STPT_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace stpt::obs {

/// Monotonic wall clock in nanoseconds (steady_clock). The single time
/// source for all latency measurement in the library: Span below, the
/// serve-layer latency histograms, and the bench load generators all read
/// this clock, so their numbers are directly comparable. (exec::NowNanos is
/// an alias kept for existing call sites.)
uint64_t NowNanos();

/// Aggregated wall-clock statistics for one named trace region.
struct RegionEntry {
  std::string region;
  uint64_t calls = 0;
  uint64_t total_ns = 0;
};

/// Adds one sample to the process-wide trace profile. Thread-safe (one
/// mutexed map update); Span calls this on destruction.
void RecordRegion(const char* region, uint64_t ns);

/// Snapshot of the aggregated trace profile, sorted by descending total time.
std::vector<RegionEntry> TraceProfile();

/// Clears all accumulated region timings.
void ResetTrace();

/// RAII trace span: on destruction the elapsed wall time is added to the
/// process-wide trace profile under `region`, and — when a histogram handle
/// is supplied — also observed (in nanoseconds) into that metric, making the
/// stage latency distribution available to the exporters. The region string
/// must outlive the span (string literals in practice). Overhead is one
/// clock read plus one mutexed map update per span exit, so instrument
/// phases (training, sanitization, sweeps), not inner loops.
///
///   {
///     obs::Span span("stpt/pattern_recognition", StageNsHistogram());
///     ...  // phase body
///   }
class Span {
 public:
  explicit Span(const char* region, Histogram* latency_ns = nullptr)
      : region_(region), latency_ns_(latency_ns), start_ns_(NowNanos()) {}

  ~Span() {
    const uint64_t ns = NowNanos() - start_ns_;
    RecordRegion(region_, ns);
    if (latency_ns_ != nullptr) latency_ns_->Observe(static_cast<double>(ns));
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* region_;
  Histogram* latency_ns_;
  uint64_t start_ns_;
};

}  // namespace stpt::obs

#endif  // STPT_OBS_TRACE_H_
