#ifndef STPT_OBS_LOG_H_
#define STPT_OBS_LOG_H_

#include <initializer_list>
#include <string>
#include <utility>

namespace stpt::obs {

/// Severity levels of the process-wide structured logger. The default
/// threshold is kWarn, so an unconfigured process emits nothing on the
/// info/debug paths — flag-free runs stay byte-identical to a build without
/// any Log call sites.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  ///< threshold only; not a valid event level
};

/// Lower-case level name ("debug", "info", "warn", "error", "off").
const char* LogLevelName(LogLevel level);

/// Parses a --log-level value (case-sensitive lower-case names as printed
/// by LogLevelName). Returns false and leaves *out untouched on unknown
/// input.
bool ParseLogLevel(const std::string& text, LogLevel* out);

/// Sets / reads the global severity threshold (events below it are
/// dropped). Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// True when an event at `level` would currently be emitted. Use to skip
/// building expensive field values.
bool LogEnabled(LogLevel level);

/// Redirects log output from the default sink (human-readable lines on
/// stderr) to a JSONL file, one object per event. An empty path restores
/// the stderr sink. Returns false if the file cannot be opened (the sink is
/// then left unchanged).
bool SetLogFile(const std::string& path);

/// One structured key/value attachment; values are emitted as JSON strings.
using LogField = std::pair<const char*, std::string>;

/// Emits one event. `component` names the subsystem ("serve", "nn",
/// "core", ...); fields ride along as key=value (text sink) or extra JSON
/// members (JSONL sink). Thread-safe; events are written atomically per
/// call.
void Log(LogLevel level, const char* component, const std::string& message,
         std::initializer_list<LogField> fields = {});

}  // namespace stpt::obs

#endif  // STPT_OBS_LOG_H_
