#ifndef STPT_OBS_RED_H_
#define STPT_OBS_RED_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace stpt::obs {

/// Per-tenant RED (Rate, Errors, Duration) metric families, labeled by
/// (tenant, tile). The name-keyed Registry cannot carry labels, and encoding
/// tenant names into metric names would both collide and leak; this family
/// keeps one lock-free cell of handles per label pair and renders them as
/// labeled Prometheus series:
///
///   <prefix>_requests_total{tenant="...",tile="..."}
///   <prefix>_errors_total{tenant="...",tile="..."}
///   <prefix>_latency_ns_bucket{tenant="...",tile="...",le="..."} (+_sum/_count)
///
/// Label values are escaped with PromEscapeLabel, and latency buckets carry
/// exemplars when observed via ObserveWithExemplar. Cell creation takes a
/// mutex; the returned handles are stable for the family's lifetime, so the
/// per-request path is a map lookup under a lock only on first use per key
/// (callers cache the Cell next to their connection/shard state when they
/// can). The cell count is capped so hostile tenant names cannot grow the
/// map without bound — past the cap, all overflow keys share one
/// tenant="_overflow" cell.
class RedFamily {
 public:
  struct Cell {
    Counter* requests = nullptr;
    Counter* errors = nullptr;
    Histogram* latency_ns = nullptr;
  };

  explicit RedFamily(std::string prefix = "stpt_tenant",
                     size_t max_cells = 1024);

  RedFamily(const RedFamily&) = delete;
  RedFamily& operator=(const RedFamily&) = delete;

  /// The cell for (tenant, tile), created on first use.
  Cell Get(const std::string& tenant, const std::string& tile);

  size_t cell_count() const;

  /// All three families in exposition format (HELP/TYPE once per family,
  /// one labeled series per cell, bucket exemplars when present).
  std::string ToPrometheusText() const;

 private:
  struct CellStorage {
    std::unique_ptr<Counter> requests;
    std::unique_ptr<Counter> errors;
    std::unique_ptr<Histogram> latency_ns;
  };

  std::string prefix_;
  size_t max_cells_;
  mutable std::mutex mu_;
  // std::map keeps the exposition output stable and diffable.
  std::map<std::pair<std::string, std::string>, CellStorage> cells_;
};

}  // namespace stpt::obs

#endif  // STPT_OBS_RED_H_
