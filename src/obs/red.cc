#include "obs/red.h"

#include <sstream>

namespace stpt::obs {

RedFamily::RedFamily(std::string prefix, size_t max_cells)
    : prefix_(std::move(prefix)), max_cells_(max_cells == 0 ? 1 : max_cells) {}

RedFamily::Cell RedFamily::Get(const std::string& tenant,
                               const std::string& tile) {
  std::lock_guard<std::mutex> lock(mu_);
  std::pair<std::string, std::string> key(tenant, tile);
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    if (cells_.size() >= max_cells_) {
      key = {"_overflow", ""};
      it = cells_.find(key);
    }
    if (it == cells_.end()) {
      CellStorage storage;
      storage.requests.reset(new Counter());
      storage.errors.reset(new Counter());
      storage.latency_ns.reset(new Histogram(LatencyBucketsNs()));
      it = cells_.emplace(std::move(key), std::move(storage)).first;
    }
  }
  return Cell{it->second.requests.get(), it->second.errors.get(),
              it->second.latency_ns.get()};
}

size_t RedFamily::cell_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

std::string RedFamily::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (cells_.empty()) return "";
  std::ostringstream os;
  const auto labels = [](const std::pair<std::string, std::string>& key) {
    return "tenant=\"" + PromEscapeLabel(key.first) + "\",tile=\"" +
           PromEscapeLabel(key.second) + "\"";
  };
  os << "# HELP " << prefix_ << "_requests_total requests served per shard\n";
  os << "# TYPE " << prefix_ << "_requests_total counter\n";
  for (const auto& [key, cell] : cells_) {
    os << prefix_ << "_requests_total{" << labels(key) << "} "
       << cell.requests->Value() << "\n";
  }
  os << "# HELP " << prefix_
     << "_errors_total requests answered with an error per shard\n";
  os << "# TYPE " << prefix_ << "_errors_total counter\n";
  for (const auto& [key, cell] : cells_) {
    os << prefix_ << "_errors_total{" << labels(key) << "} "
       << cell.errors->Value() << "\n";
  }
  os << "# HELP " << prefix_
     << "_latency_ns request wall time per shard, receive to completion\n";
  os << "# TYPE " << prefix_ << "_latency_ns histogram\n";
  for (const auto& [key, cell] : cells_) {
    const Histogram& h = *cell.latency_ns;
    const std::vector<uint64_t> counts = h.BucketCounts();
    const std::vector<HistogramExemplar> exemplars = h.Exemplars();
    uint64_t cumulative = 0;
    for (size_t i = 0; i <= h.bounds().size(); ++i) {
      cumulative += counts[i];
      os << prefix_ << "_latency_ns_bucket{" << labels(key) << ",le=\"";
      if (i < h.bounds().size()) {
        os << FormatMetricValue(h.bounds()[i]);
      } else {
        os << "+Inf";
      }
      os << "\"} " << cumulative;
      if (i < exemplars.size() && exemplars[i].set) {
        os << " " << ExemplarSuffix(exemplars[i]);
      }
      os << "\n";
    }
    os << prefix_ << "_latency_ns_sum{" << labels(key) << "} "
       << FormatMetricValue(h.Sum()) << "\n";
    os << prefix_ << "_latency_ns_count{" << labels(key) << "} " << h.Count()
       << "\n";
  }
  return os.str();
}

}  // namespace stpt::obs
