#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/trace_context.h"

namespace stpt::obs {
namespace {

struct Accumulator {
  uint64_t calls = 0;
  uint64_t total_ns = 0;
};

struct TraceEvent {
  const char* name = nullptr;
  uint64_t ts_ns = 0;
  double value = 0.0;  // counter samples only
  char phase = 0;      // 'B', 'E', 'C'
};

constexpr int kMaxSpanDepth = 64;

/// All trace state owned by one thread. The per-thread mutex is only ever
/// contended by snapshot/export readers; the owning thread's hot path takes
/// it uncontended. The span-name stack is owner-private (no lock).
struct ThreadState {
  std::mutex mu;
  // Keyed by pointer: regions are string literals, and TraceProfile()
  // re-merges by string value, so distinct addresses of one name are fine.
  std::unordered_map<const char*, Accumulator> profile;
  std::vector<TraceEvent> events;  // ring; empty until first event
  size_t head = 0;                 // next write slot
  size_t count = 0;                // valid events, <= events.size()
  uint64_t tid = 0;
  std::string name;
  bool retired = false;  // owning thread has exited

  const char* span_stack[kMaxSpanDepth];
  int span_depth = 0;
};

std::mutex g_registry_mu;  // ordering: registry mutex before any state mutex

std::vector<std::shared_ptr<ThreadState>>& StateRegistry() {
  static auto* states = new std::vector<std::shared_ptr<ThreadState>>();
  return *states;
}

/// Profile entries of threads that have exited, merged at thread exit so
/// TraceProfile() stays complete without keeping every state alive forever.
std::map<std::string, Accumulator>& RetiredProfile() {
  static auto* profile = new std::map<std::string, Accumulator>();
  return *profile;
}

uint64_t g_next_tid = 0;                   // under g_registry_mu
std::atomic<size_t> g_event_capacity{0};   // per-thread ring size
std::atomic<uint64_t> g_trace_epoch_ns{0};  // ts origin for exports

/// Drops retired states that hold no events (their profile is already in
/// RetiredProfile()). Caller holds g_registry_mu.
void PruneRetiredLocked() {
  auto& states = StateRegistry();
  states.erase(std::remove_if(states.begin(), states.end(),
                              [](const std::shared_ptr<ThreadState>& s) {
                                std::lock_guard<std::mutex> lock(s->mu);
                                return s->retired && s->count == 0;
                              }),
               states.end());
}

struct TlsHandle {
  std::shared_ptr<ThreadState> state;

  ~TlsHandle() {
    if (state == nullptr) return;
    std::lock_guard<std::mutex> registry_lock(g_registry_mu);
    {
      std::lock_guard<std::mutex> lock(state->mu);
      for (const auto& [region, acc] : state->profile) {
        Accumulator& merged = RetiredProfile()[region];
        merged.calls += acc.calls;
        merged.total_ns += acc.total_ns;
      }
      state->profile.clear();
      state->retired = true;  // events stay exportable via StateRegistry
    }
    PruneRetiredLocked();
  }
};

ThreadState& Tls() {
  thread_local TlsHandle handle;
  if (handle.state == nullptr) {
    handle.state = std::make_shared<ThreadState>();
    std::lock_guard<std::mutex> lock(g_registry_mu);
    handle.state->tid = g_next_tid++;
    StateRegistry().push_back(handle.state);
  }
  return *handle.state;
}

void PushEvent(ThreadState& state, char phase, const char* name, uint64_t ts_ns,
               double value) {
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.events.empty()) {
    const size_t capacity = g_event_capacity.load(std::memory_order_relaxed);
    if (capacity == 0) return;  // capture stopped before this thread's ring grew
    state.events.resize(capacity);
    state.head = 0;
    state.count = 0;
  }
  state.events[state.head] = TraceEvent{name, ts_ns, value, phase};
  state.head = (state.head + 1) % state.events.size();
  if (state.count < state.events.size()) ++state.count;
}

void AppendJsonEscaped(std::ostringstream& os, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      os << '\\' << c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      os << buf;
    } else {
      os << c;
    }
  }
}

/// One thread's snapshot for export: events in chronological order.
struct ThreadSnapshot {
  uint64_t tid = 0;
  std::string name;
  std::vector<TraceEvent> events;
};

/// Drops the unmatched halves of spans the ring truncated: a stack pass
/// keeps only B/E pairs that nest properly with matching names, so the
/// export is always loadable and golden-testable as balanced.
void BalanceEvents(ThreadSnapshot& snap) {
  std::vector<char> keep(snap.events.size(), 0);
  std::vector<size_t> open;  // indices of pending 'B' events
  for (size_t i = 0; i < snap.events.size(); ++i) {
    const TraceEvent& e = snap.events[i];
    if (e.phase == 'C') {
      keep[i] = 1;
    } else if (e.phase == 'B') {
      open.push_back(i);
    } else if (e.phase == 'E' && !open.empty() &&
               std::strcmp(snap.events[open.back()].name, e.name) == 0) {
      keep[open.back()] = 1;
      keep[i] = 1;
      open.pop_back();
    }
  }
  std::vector<TraceEvent> balanced;
  balanced.reserve(snap.events.size());
  for (size_t i = 0; i < snap.events.size(); ++i) {
    if (keep[i]) balanced.push_back(snap.events[i]);
  }
  snap.events = std::move(balanced);
}

std::vector<ThreadSnapshot> SnapshotEvents() {
  std::vector<ThreadSnapshot> snaps;
  std::lock_guard<std::mutex> registry_lock(g_registry_mu);
  for (const auto& state : StateRegistry()) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->count == 0) continue;
    ThreadSnapshot snap;
    snap.tid = state->tid;
    snap.name = state->name;
    snap.events.reserve(state->count);
    const size_t size = state->events.size();
    const size_t oldest = state->count == size ? state->head : 0;
    for (size_t i = 0; i < state->count; ++i) {
      snap.events.push_back(state->events[(oldest + i) % size]);
    }
    snaps.push_back(std::move(snap));
  }
  return snaps;
}

}  // namespace

namespace internal {

std::atomic<bool> g_trace_events_enabled{false};

void SpanBegin(const char* region, uint64_t ts_ns) {
  ThreadState& state = Tls();
  if (state.span_depth < kMaxSpanDepth) state.span_stack[state.span_depth] = region;
  ++state.span_depth;
  PushEvent(state, 'B', region, ts_ns, 0.0);
}

void SpanEnd(const char* region, uint64_t ts_ns) {
  ThreadState& state = Tls();
  if (state.span_depth > 0) --state.span_depth;
  // Emit even if capture stopped mid-span; export-time balancing drops the
  // pair if its 'B' was never buffered.
  PushEvent(state, 'E', region, ts_ns, 0.0);
}

}  // namespace internal

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RecordRegion(const char* region, uint64_t ns) {
  ThreadState& state = Tls();
  std::lock_guard<std::mutex> lock(state.mu);
  Accumulator& acc = state.profile[region];
  ++acc.calls;
  acc.total_ns += ns;
}

std::vector<RegionEntry> TraceProfile() {
  std::map<std::string, Accumulator> merged;
  {
    std::lock_guard<std::mutex> registry_lock(g_registry_mu);
    merged = RetiredProfile();
    for (const auto& state : StateRegistry()) {
      std::lock_guard<std::mutex> lock(state->mu);
      for (const auto& [region, acc] : state->profile) {
        Accumulator& m = merged[region];
        m.calls += acc.calls;
        m.total_ns += acc.total_ns;
      }
    }
  }
  std::vector<RegionEntry> out;
  out.reserve(merged.size());
  for (const auto& [name, acc] : merged) {
    out.push_back({name, acc.calls, acc.total_ns});
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RegionEntry& a, const RegionEntry& b) {
                     return a.total_ns > b.total_ns;
                   });
  return out;
}

void ResetTrace() {
  std::lock_guard<std::mutex> registry_lock(g_registry_mu);
  RetiredProfile().clear();
  for (const auto& state : StateRegistry()) {
    std::lock_guard<std::mutex> lock(state->mu);
    state->profile.clear();
  }
  PruneRetiredLocked();
}

std::string TraceProfileJson(size_t top_n) {
  std::vector<RegionEntry> profile = TraceProfile();
  if (top_n > 0 && profile.size() > top_n) profile.resize(top_n);
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const auto& e : profile) {
    if (!first) os << ", ";
    first = false;
    const uint64_t mean_ns = e.calls == 0 ? 0 : e.total_ns / e.calls;
    os << "{\"region\": \"";
    AppendJsonEscaped(os, e.region.c_str());
    os << "\", \"calls\": " << e.calls << ", \"total_ns\": " << e.total_ns
       << ", \"mean_ns\": " << mean_ns << "}";
  }
  os << "]";
  return os.str();
}

void StartTraceEvents(size_t per_thread_capacity) {
  if (per_thread_capacity == 0) per_thread_capacity = 1;
  {
    std::lock_guard<std::mutex> registry_lock(g_registry_mu);
    g_event_capacity.store(per_thread_capacity, std::memory_order_relaxed);
    for (const auto& state : StateRegistry()) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->events.clear();
      state->head = 0;
      state->count = 0;
    }
    PruneRetiredLocked();
    g_trace_epoch_ns.store(NowNanos(), std::memory_order_relaxed);
  }
  internal::g_trace_events_enabled.store(true, std::memory_order_release);
}

void StopTraceEvents() {
  internal::g_trace_events_enabled.store(false, std::memory_order_release);
}

void EmitTraceEvent(char phase, const char* name, uint64_t ts_ns) {
  if (!TraceEventsEnabled()) return;
  PushEvent(Tls(), phase, name, ts_ns, 0.0);
}

void TraceCounter(const char* name, double value) {
  if (!TraceEventsEnabled()) return;
  PushEvent(Tls(), 'C', name, NowNanos(), value);
}

void RegisterCurrentThreadName(const std::string& name) {
  ThreadState& state = Tls();
  std::lock_guard<std::mutex> lock(state.mu);
  state.name = name;
}

const char* CurrentSpanName() {
  ThreadState& state = Tls();
  if (state.span_depth <= 0 || state.span_depth > kMaxSpanDepth) return nullptr;
  return state.span_stack[state.span_depth - 1];
}

size_t TraceEventCount() {
  size_t total = 0;
  std::lock_guard<std::mutex> registry_lock(g_registry_mu);
  for (const auto& state : StateRegistry()) {
    std::lock_guard<std::mutex> lock(state->mu);
    total += state->count;
  }
  return total;
}

std::string ExportChromeTrace() {
  std::vector<ThreadSnapshot> snaps = SnapshotEvents();
  const uint64_t epoch_ns = g_trace_epoch_ns.load(std::memory_order_relaxed);

  // Flatten to (snapshot index, event) and sort by timestamp; stable so each
  // thread's B-before-E order survives equal timestamps.
  struct Flat {
    size_t snap;
    const TraceEvent* event;
  };
  std::vector<Flat> flat;
  for (size_t s = 0; s < snaps.size(); ++s) {
    BalanceEvents(snaps[s]);
    for (const TraceEvent& e : snaps[s].events) flat.push_back({s, &e});
  }
  std::stable_sort(flat.begin(), flat.end(), [](const Flat& a, const Flat& b) {
    return a.event->ts_ns < b.event->ts_ns;
  });

  std::ostringstream os;
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const ThreadSnapshot& snap : snaps) {
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " << snap.tid
       << ", \"name\": \"thread_name\", \"args\": {\"name\": \"";
    if (snap.name.empty()) {
      os << "thread-" << snap.tid;
    } else {
      AppendJsonEscaped(os, snap.name.c_str());
    }
    os << "\"}}";
  }
  char ts_buf[32];
  for (const Flat& f : flat) {
    const TraceEvent& e = *f.event;
    const uint64_t rel_ns = e.ts_ns >= epoch_ns ? e.ts_ns - epoch_ns : 0;
    std::snprintf(ts_buf, sizeof(ts_buf), "%.3f",
                  static_cast<double>(rel_ns) * 1e-3);
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\": \"" << e.phase << "\", \"pid\": 1, \"tid\": "
       << snaps[f.snap].tid << ", \"ts\": " << ts_buf << ", \"name\": \"";
    AppendJsonEscaped(os, e.name);
    os << "\", \"cat\": \"stpt\"";
    if (e.phase == 'C') {
      char value_buf[64];
      // Non-finite samples would make the JSON unloadable.
      std::snprintf(value_buf, sizeof(value_buf), "%.17g",
                    std::isfinite(e.value) ? e.value : 0.0);
      os << ", \"args\": {\"value\": " << value_buf << "}";
    }
    os << "}";
  }

  // Splice the completed-span store (sampled request traces) in as its own
  // process: one synthetic lane per span origin ("client", "loop", "worker",
  // "ingest", ...) with 'X' complete events, plus flow events binding each
  // trace's spans together so Perfetto draws cross-lane/cross-process arrows.
  const std::vector<TraceSpan> stored = TraceStore::Global().Snapshot();
  if (!stored.empty()) {
    constexpr int kStorePid = 2;
    std::map<std::string, int> lane_tids;
    for (const TraceSpan& s : stored) {
      lane_tids.emplace(s.lane, static_cast<int>(lane_tids.size()) + 1);
    }
    if (!first) os << ",";
    first = false;
    os << "\n{\"ph\": \"M\", \"pid\": " << kStorePid
       << ", \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": "
          "\"sampled requests\"}}";
    for (const auto& [lane, tid] : lane_tids) {
      os << ",\n{\"ph\": \"M\", \"pid\": " << kStorePid << ", \"tid\": " << tid
         << ", \"name\": \"thread_name\", \"args\": {\"name\": \"";
      AppendJsonEscaped(os, lane.c_str());
      os << "\"}}";
    }
    std::map<std::pair<uint64_t, uint64_t>, size_t> spans_seen;
    for (const TraceSpan& s : stored) {
      const int tid = lane_tids[s.lane];
      const uint64_t start_rel = s.start_ns >= epoch_ns ? s.start_ns - epoch_ns : 0;
      const uint64_t end_rel = s.end_ns >= epoch_ns ? s.end_ns - epoch_ns : 0;
      const uint64_t dur_ns = end_rel >= start_rel ? end_rel - start_rel : 0;
      char start_buf[32], dur_buf[32];
      std::snprintf(start_buf, sizeof(start_buf), "%.3f",
                    static_cast<double>(start_rel) * 1e-3);
      std::snprintf(dur_buf, sizeof(dur_buf), "%.3f",
                    static_cast<double>(dur_ns) * 1e-3);
      TraceContext id{s.trace_hi, s.trace_lo, 0, 0, false};
      os << ",\n{\"ph\": \"X\", \"pid\": " << kStorePid << ", \"tid\": " << tid
         << ", \"ts\": " << start_buf << ", \"dur\": " << dur_buf
         << ", \"name\": \"";
      AppendJsonEscaped(os, s.name.c_str());
      os << "\", \"cat\": \"stpt.trace\", \"args\": {\"trace_id\": \""
         << TraceIdHex(id) << "\", \"span_id\": \"" << SpanIdHex(s.span_id)
         << "\", \"parent_span_id\": \"" << SpanIdHex(s.parent_span_id) << "\"";
      for (const auto& [k, v] : s.attrs) {
        os << ", \"";
        AppendJsonEscaped(os, k.c_str());
        os << "\": \"";
        AppendJsonEscaped(os, v.c_str());
        os << "\"";
      }
      os << "}}";
      // Flow: start on the trace's first stored span, step on every later
      // one; matching ids stitch the arrows.
      const size_t seen = spans_seen[{s.trace_hi, s.trace_lo}]++;
      os << ",\n{\"ph\": \"" << (seen == 0 ? 's' : 'f') << "\", \"pid\": "
         << kStorePid << ", \"tid\": " << tid << ", \"ts\": " << start_buf
         << ", \"name\": \"request\", \"cat\": \"stpt.flow\", \"id\": \""
         << TraceIdHex(id) << "\"";
      if (seen != 0) os << ", \"bp\": \"e\"";
      os << "}";
    }
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

bool WriteChromeTrace(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  const std::string json = ExportChromeTrace();
  const bool ok = std::fwrite(json.data(), 1, json.size(), out) == json.size();
  return std::fclose(out) == 0 && ok;
}

}  // namespace stpt::obs
