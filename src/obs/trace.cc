#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <mutex>

namespace stpt::obs {
namespace {

struct Accumulator {
  uint64_t calls = 0;
  uint64_t total_ns = 0;
};

std::mutex g_mu;
// std::map keeps the profile output stable across runs.
std::map<std::string, Accumulator>& TraceStore() {
  static auto* store = new std::map<std::string, Accumulator>();
  return *store;
}

}  // namespace

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void RecordRegion(const char* region, uint64_t ns) {
  std::lock_guard<std::mutex> lock(g_mu);
  Accumulator& acc = TraceStore()[region];
  ++acc.calls;
  acc.total_ns += ns;
}

std::vector<RegionEntry> TraceProfile() {
  std::vector<RegionEntry> out;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    out.reserve(TraceStore().size());
    for (const auto& [name, acc] : TraceStore()) {
      out.push_back({name, acc.calls, acc.total_ns});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const RegionEntry& a, const RegionEntry& b) {
                     return a.total_ns > b.total_ns;
                   });
  return out;
}

void ResetTrace() {
  std::lock_guard<std::mutex> lock(g_mu);
  TraceStore().clear();
}

}  // namespace stpt::obs
