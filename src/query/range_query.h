#ifndef STPT_QUERY_RANGE_QUERY_H_
#define STPT_QUERY_RANGE_QUERY_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "grid/consumption_matrix.h"

namespace stpt::query {

/// A 3-orthotope range query over the consumption matrix (Definition 3):
/// inclusive bounds in x, y and t.
struct RangeQuery {
  int x0 = 0, x1 = 0;
  int y0 = 0, y1 = 0;
  int t0 = 0, t1 = 0;

  /// Number of cells covered by the box. 64-bit: an `int` product overflows
  /// already at 2048^3 cells, well inside the dims this library supports.
  int64_t VolumeCells() const {
    return static_cast<int64_t>(x1 - x0 + 1) * static_cast<int64_t>(y1 - y0 + 1) *
           static_cast<int64_t>(t1 - t0 + 1);
  }

  bool operator==(const RangeQuery&) const = default;
};

/// Validates that a query lies inside the given dims with ordered bounds.
Status ValidateQuery(const RangeQuery& q, const grid::Dims& dims);

/// The three workload categories of §5.1.
enum class WorkloadKind {
  kRandom,  ///< random shape & size
  kSmall,   ///< 1 x 1 x 1
  kLarge,   ///< 10 x 10 x 10 (clamped to the matrix if smaller)
};

const char* WorkloadKindToString(WorkloadKind k);

/// A batch of range queries.
using Workload = std::vector<RangeQuery>;

/// Generates `count` queries of the given kind, uniformly placed.
/// Random-kind extents are uniform over each full axis.
StatusOr<Workload> MakeWorkload(WorkloadKind kind, const grid::Dims& dims, int count,
                                Rng& rng);

}  // namespace stpt::query

#endif  // STPT_QUERY_RANGE_QUERY_H_
