#include "query/metrics.h"

#include <cassert>
#include <cmath>

#include "exec/parallel.h"

namespace stpt::query {

double RelativeErrorPercent(double truth, double noisy, const MreOptions& options) {
  const double denom = std::max(truth, options.denominator_floor);
  return std::fabs(truth - noisy) / denom * 100.0;
}

double MeanRelativeError(const grid::ConsumptionMatrix& truth,
                         const grid::ConsumptionMatrix& sanitized,
                         const Workload& workload, const MreOptions& options) {
  const grid::PrefixSum3D pt(truth);
  const grid::PrefixSum3D ps(sanitized);
  return MeanRelativeError(pt, ps, workload, options);
}

double MeanRelativeError(const grid::PrefixSum3D& truth,
                         const grid::PrefixSum3D& sanitized,
                         const Workload& workload, const MreOptions& options) {
  assert(truth.dims() == sanitized.dims());
  if (workload.empty()) return 0.0;
  // Per-query errors are computed in parallel into a slot per query, then
  // reduced serially in index order so the floating-point sum is identical
  // at any thread count.
  std::vector<double> errors(workload.size());
  exec::ParallelForRange(
      static_cast<int64_t>(workload.size()), [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          const RangeQuery& q = workload[i];
          const double p = truth.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1);
          const double pn = sanitized.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1);
          errors[i] = RelativeErrorPercent(p, pn, options);
        }
      });
  double total = 0.0;
  for (double e : errors) total += e;
  return total / static_cast<double>(workload.size());
}

double MatrixMae(const grid::ConsumptionMatrix& a, const grid::ConsumptionMatrix& b) {
  assert(a.dims() == b.dims());
  double s = 0.0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    s += std::fabs(a.data()[i] - b.data()[i]);
  }
  return s / static_cast<double>(a.data().size());
}

double MatrixRmse(const grid::ConsumptionMatrix& a, const grid::ConsumptionMatrix& b) {
  assert(a.dims() == b.dims());
  double s = 0.0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    const double d = a.data()[i] - b.data()[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.data().size()));
}

}  // namespace stpt::query
