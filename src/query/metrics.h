#ifndef STPT_QUERY_METRICS_H_
#define STPT_QUERY_METRICS_H_

#include "grid/consumption_matrix.h"
#include "query/range_query.h"

namespace stpt::query {

/// Options for MRE evaluation. The paper's MRE (Eq. 5) divides by the true
/// answer; queries whose true answer is near zero would blow up the metric,
/// so — following standard practice in the DP-histogram literature — the
/// denominator is floored at `denominator_floor` (in the matrix's units).
struct MreOptions {
  double denominator_floor = 1.0;
};

/// Mean relative error (percent) of the sanitized matrix against the truth
/// over one query: |p - p̄| / max(p, floor) * 100.
double RelativeErrorPercent(double truth, double noisy, const MreOptions& options);

/// Average MRE (percent) over a workload, evaluated with prefix sums.
double MeanRelativeError(const grid::ConsumptionMatrix& truth,
                         const grid::ConsumptionMatrix& sanitized,
                         const Workload& workload, const MreOptions& options = {});

/// Same, reusing prebuilt prefix sums (preferred inside experiment loops).
double MeanRelativeError(const grid::PrefixSum3D& truth,
                         const grid::PrefixSum3D& sanitized,
                         const Workload& workload, const MreOptions& options = {});

/// Mean absolute error between two matrices, element-wise.
double MatrixMae(const grid::ConsumptionMatrix& a, const grid::ConsumptionMatrix& b);

/// Root mean squared error between two matrices, element-wise.
double MatrixRmse(const grid::ConsumptionMatrix& a, const grid::ConsumptionMatrix& b);

}  // namespace stpt::query

#endif  // STPT_QUERY_METRICS_H_
