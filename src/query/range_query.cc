#include "query/range_query.h"

#include <algorithm>

#include "exec/parallel.h"

namespace stpt::query {
namespace {

/// Samples an inclusive interval of the given length inside [0, n).
void PlaceInterval(int n, int length, Rng& rng, int* lo, int* hi) {
  length = std::min(length, n);
  const int start = static_cast<int>(rng.UniformInt(0, n - length));
  *lo = start;
  *hi = start + length - 1;
}

}  // namespace

Status ValidateQuery(const RangeQuery& q, const grid::Dims& dims) {
  if (q.x0 < 0 || q.x0 > q.x1 || q.x1 >= dims.cx ||
      q.y0 < 0 || q.y0 > q.y1 || q.y1 >= dims.cy ||
      q.t0 < 0 || q.t0 > q.t1 || q.t1 >= dims.ct) {
    return Status::InvalidArgument("RangeQuery: bounds out of range or unordered");
  }
  return Status::OK();
}

const char* WorkloadKindToString(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::kRandom:
      return "Random";
    case WorkloadKind::kSmall:
      return "Small";
    case WorkloadKind::kLarge:
      return "Large";
  }
  return "UNKNOWN";
}

StatusOr<Workload> MakeWorkload(WorkloadKind kind, const grid::Dims& dims, int count,
                                Rng& rng) {
  if (count <= 0) {
    return Status::InvalidArgument("MakeWorkload: count must be positive");
  }
  if (dims.cx <= 0 || dims.cy <= 0 || dims.ct <= 0) {
    return Status::InvalidArgument("MakeWorkload: invalid dims");
  }
  Workload wl;
  wl.resize(count);
  // Query i is drawn from the substream Fork(i) of a single base fork, so
  // query generation is order-independent: the workload is identical at any
  // thread count, and rejecting/keeping one query cannot shift the stream
  // of the next. The parent rng advances once per call, so successive
  // workloads from one rng still differ.
  const Rng base = rng.Fork();
  exec::ParallelFor(count, [&](int64_t i) {
    Rng qrng = base.Fork(static_cast<uint64_t>(i));
    RangeQuery& q = wl[i];
    int lx = 1, ly = 1, lt = 1;
    switch (kind) {
      case WorkloadKind::kSmall:
        break;  // 1 x 1 x 1
      case WorkloadKind::kLarge:
        lx = 10;
        ly = 10;
        lt = 10;
        break;
      case WorkloadKind::kRandom:
        lx = static_cast<int>(qrng.UniformInt(1, dims.cx));
        ly = static_cast<int>(qrng.UniformInt(1, dims.cy));
        lt = static_cast<int>(qrng.UniformInt(1, dims.ct));
        break;
    }
    PlaceInterval(dims.cx, lx, qrng, &q.x0, &q.x1);
    PlaceInterval(dims.cy, ly, qrng, &q.y0, &q.y1);
    PlaceInterval(dims.ct, lt, qrng, &q.t0, &q.t1);
  });
  return wl;
}

}  // namespace stpt::query
