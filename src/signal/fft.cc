#include "signal/fft.h"

#include <cmath>

#include "common/math_util.h"
#include "kernels/backend.h"

namespace stpt::signal {
namespace {

using Complex = std::complex<double>;

/// Radix-2 core via the process-default kernel backend. Sizes are
/// power-of-two by construction here, so the Status is always OK.
void FftPow2(std::vector<Complex>& a, bool inverse) {
  const Status s = kernels::Default()->FftPow2(a.data(), a.size(), inverse);
  (void)s;
}

}  // namespace

std::vector<Complex> Dft(const std::vector<Complex>& input, bool inverse) {
  const size_t n = input.size();
  if (n == 0) return {};
  if (IsPowerOfTwo(n)) {
    std::vector<Complex> a = input;
    FftPow2(a, inverse);
    return a;
  }
  // Bluestein: X[k] = b*[k] (a·b convolved)[k], with chirp b[n] = e^{iπn²/N}.
  const double dir = inverse ? 1.0 : -1.0;
  const size_t m = NextPowerOfTwo(2 * n + 1);
  std::vector<Complex> chirp(n);
  for (size_t i = 0; i < n; ++i) {
    // i*i may overflow for huge n; mod 2n keeps the angle exact.
    const uint64_t sq = (static_cast<uint64_t>(i) * i) % (2 * n);
    const double ang = M_PI * static_cast<double>(sq) / static_cast<double>(n) * dir;
    chirp[i] = Complex(std::cos(ang), std::sin(ang));
  }
  std::vector<Complex> a(m, Complex(0, 0)), b(m, Complex(0, 0));
  for (size_t i = 0; i < n; ++i) a[i] = input[i] * chirp[i];
  b[0] = std::conj(chirp[0]);
  for (size_t i = 1; i < n; ++i) b[i] = b[m - i] = std::conj(chirp[i]);
  FftPow2(a, false);
  FftPow2(b, false);
  for (size_t i = 0; i < m; ++i) a[i] *= b[i];
  FftPow2(a, true);
  std::vector<Complex> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = a[i] * chirp[i];
  if (inverse) {
    for (Complex& x : out) x /= static_cast<double>(n);
  }
  return out;
}

std::vector<Complex> RealDft(const std::vector<double>& input) {
  std::vector<Complex> c(input.size());
  for (size_t i = 0; i < input.size(); ++i) c[i] = Complex(input[i], 0.0);
  return Dft(c, /*inverse=*/false);
}

std::vector<double> InverseDftReal(const std::vector<Complex>& input) {
  const std::vector<Complex> c = Dft(input, /*inverse=*/true);
  std::vector<double> out(c.size());
  for (size_t i = 0; i < c.size(); ++i) out[i] = c[i].real();
  return out;
}

}  // namespace stpt::signal
