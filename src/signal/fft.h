#ifndef STPT_SIGNAL_FFT_H_
#define STPT_SIGNAL_FFT_H_

#include <complex>
#include <vector>

#include "common/status.h"

namespace stpt::signal {

// The raw radix-2 transform lives behind kernels::Backend::FftPow2 (select
// an implementation via kernels::Registry / --kernel-backend); this header
// keeps only the Bluestein orchestration for arbitrary lengths.

/// DFT of arbitrary length via Bluestein's chirp-z algorithm (internally uses
/// the radix-2 FFT kernel on padded buffers). Returns the transformed
/// sequence.
std::vector<std::complex<double>> Dft(const std::vector<std::complex<double>>& input,
                                      bool inverse);

/// Forward real-input DFT convenience wrapper: X[k] = sum_n x[n] e^{-2πi kn/N}.
std::vector<std::complex<double>> RealDft(const std::vector<double>& input);

/// Inverse DFT returning only the real parts (imaginary residue from numeric
/// error is dropped).
std::vector<double> InverseDftReal(const std::vector<std::complex<double>>& input);

}  // namespace stpt::signal

#endif  // STPT_SIGNAL_FFT_H_
