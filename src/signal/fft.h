#ifndef STPT_SIGNAL_FFT_H_
#define STPT_SIGNAL_FFT_H_

#include <complex>
#include <vector>

#include "common/status.h"

namespace stpt::signal {

/// In-place iterative radix-2 Cooley–Tukey FFT. Size must be a power of two.
/// `inverse` applies the conjugate transform and divides by N.
Status Fft(std::vector<std::complex<double>>* data, bool inverse);

/// DFT of arbitrary length via Bluestein's chirp-z algorithm (internally uses
/// the radix-2 FFT on padded buffers). Returns the transformed sequence.
std::vector<std::complex<double>> Dft(const std::vector<std::complex<double>>& input,
                                      bool inverse);

/// Forward real-input DFT convenience wrapper: X[k] = sum_n x[n] e^{-2πi kn/N}.
std::vector<std::complex<double>> RealDft(const std::vector<double>& input);

/// Inverse DFT returning only the real parts (imaginary residue from numeric
/// error is dropped).
std::vector<double> InverseDftReal(const std::vector<std::complex<double>>& input);

}  // namespace stpt::signal

#endif  // STPT_SIGNAL_FFT_H_
