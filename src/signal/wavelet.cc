#include "signal/wavelet.h"

#include "common/math_util.h"

namespace stpt::signal {

std::vector<double> PadToPowerOfTwo(const std::vector<double>& input) {
  if (input.empty()) return {0.0};
  const size_t target = NextPowerOfTwo(input.size());
  std::vector<double> out = input;
  out.resize(target, 0.0);
  return out;
}

}  // namespace stpt::signal
