#include "signal/wavelet.h"

#include <cmath>

#include "common/math_util.h"

namespace stpt::signal {
namespace {
const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
}  // namespace

StatusOr<std::vector<double>> HaarForward(const std::vector<double>& input) {
  const size_t n = input.size();
  if (n == 0 || !IsPowerOfTwo(n)) {
    return Status::InvalidArgument("HaarForward: size must be a nonzero power of two");
  }
  std::vector<double> out = input;
  std::vector<double> tmp(n);
  for (size_t len = n; len > 1; len /= 2) {
    for (size_t i = 0; i < len / 2; ++i) {
      tmp[i] = (out[2 * i] + out[2 * i + 1]) * kInvSqrt2;            // approximation
      tmp[len / 2 + i] = (out[2 * i] - out[2 * i + 1]) * kInvSqrt2;  // detail
    }
    for (size_t i = 0; i < len; ++i) out[i] = tmp[i];
  }
  return out;
}

StatusOr<std::vector<double>> HaarInverse(const std::vector<double>& coeffs) {
  const size_t n = coeffs.size();
  if (n == 0 || !IsPowerOfTwo(n)) {
    return Status::InvalidArgument("HaarInverse: size must be a nonzero power of two");
  }
  std::vector<double> out = coeffs;
  std::vector<double> tmp(n);
  for (size_t len = 2; len <= n; len *= 2) {
    for (size_t i = 0; i < len / 2; ++i) {
      tmp[2 * i] = (out[i] + out[len / 2 + i]) * kInvSqrt2;
      tmp[2 * i + 1] = (out[i] - out[len / 2 + i]) * kInvSqrt2;
    }
    for (size_t i = 0; i < len; ++i) out[i] = tmp[i];
  }
  return out;
}

std::vector<double> PadToPowerOfTwo(const std::vector<double>& input) {
  if (input.empty()) return {0.0};
  const size_t target = NextPowerOfTwo(input.size());
  std::vector<double> out = input;
  out.resize(target, 0.0);
  return out;
}

}  // namespace stpt::signal
