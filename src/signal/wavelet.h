#ifndef STPT_SIGNAL_WAVELET_H_
#define STPT_SIGNAL_WAVELET_H_

#include <vector>

#include "common/status.h"

namespace stpt::signal {

/// Forward discrete Haar wavelet transform (orthonormal convention:
/// avg = (a+b)/√2, diff = (a−b)/√2, applied recursively to the averages).
/// Input length must be a power of two. Output layout: [approximation,
/// detail level 1, detail level 2, ...] — standard pyramidal ordering.
StatusOr<std::vector<double>> HaarForward(const std::vector<double>& input);

/// Inverse of HaarForward. Input length must be a power of two.
StatusOr<std::vector<double>> HaarInverse(const std::vector<double>& coeffs);

/// Zero-pads a series to the next power of two (no-op if already one).
std::vector<double> PadToPowerOfTwo(const std::vector<double>& input);

}  // namespace stpt::signal

#endif  // STPT_SIGNAL_WAVELET_H_
