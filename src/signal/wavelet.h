#ifndef STPT_SIGNAL_WAVELET_H_
#define STPT_SIGNAL_WAVELET_H_

#include <vector>

#include "common/status.h"

namespace stpt::signal {

// The Haar transform pair lives behind kernels::Backend::HaarForward /
// HaarInverse (orthonormal convention: avg = (a+b)/√2, diff = (a−b)/√2,
// applied recursively to the averages; pyramidal output ordering). Select
// an implementation via kernels::Registry / --kernel-backend. This header
// keeps only the padding helper.

/// Zero-pads a series to the next power of two (no-op if already one).
std::vector<double> PadToPowerOfTwo(const std::vector<double>& input);

}  // namespace stpt::signal

#endif  // STPT_SIGNAL_WAVELET_H_
