#ifndef STPT_INGEST_PIPELINE_H_
#define STPT_INGEST_PIPELINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "dp/audit_ledger.h"
#include "dp/budget_accountant.h"
#include "grid/consumption_matrix.h"
#include "ingest/clock.h"
#include "ingest/incremental_prefix.h"
#include "ingest/wal.h"
#include "core/streaming.h"
#include "obs/metrics.h"
#include "serve/event_loop.h"
#include "serve/registry.h"

namespace stpt::ingest {

/// Validated by IngestPipeline::Create.
struct IngestOptions {
  /// Accumulator dimensions of every shard this pipeline creates.
  grid::Dims dims{8, 8, 64};

  /// Publish after this many accepted readings per shard (0 = no
  /// count-based boundary). Checked at batch granularity so a fixed batch
  /// sequence always triggers at the same points. Count/tick epochs
  /// release only completed timesteps — the newest slice stays open until
  /// a later reading moves past it or a flush arrives.
  int64_t epoch_readings = 4096;

  /// Publish when the injected clock advanced this much since the shard's
  /// last publication (0 = no tick-based boundary). Only fires when the
  /// shard has unpublished data.
  int64_t epoch_ticks_ns = 0;

  /// w-event publisher knobs (see core::StreamingPublisher::Options).
  /// unit_sensitivity is also ENFORCED at admission: per (meter, cell,
  /// timestep), admitted contribution is clamped into
  /// [-unit_sensitivity, +unit_sensitivity], so the sensitivity the noise
  /// is calibrated for is the sensitivity the accumulator actually has.
  int window = 10;
  double epsilon = 1.0;
  double dissimilarity_fraction = 0.2;
  double unit_sensitivity = 1.0;

  /// Backfill grace: count/tick epochs keep this many additional completed
  /// slices open behind the newest (they seal at
  /// high_water - 1 - backfill_grace), so late-but-in-grace readings still
  /// clamp-admit before their slice's release is spent. A flush always
  /// seals through high_water. 0 = only the newest slice stays open.
  int backfill_grace = 0;

  /// Cap on tracked (meter, cell, timestep) contribution keys per shard —
  /// the clamp map's memory bound. At the cap, readings that would
  /// introduce a new key are rejected: admitting untracked contributions
  /// could breach the sensitivity contract. 0 = unlimited.
  int64_t contribution_cap = 1 << 20;

  /// Directory for per-shard reading WALs
  /// ("<safe tenant>.<safe tile>.wal"); enables Recover(). Empty = no WAL,
  /// no crash recovery.
  std::string wal_dir;

  /// Hard budget for each shard's BudgetAccountant. 0 auto-sizes to
  /// epsilon * (ct / window + 2), which upper-bounds the worst-case w-event
  /// spend over the full horizon (per window the publisher spends at most
  /// epsilon, and ct slices span at most ct/window + 1 windows).
  double accountant_epsilon = 0.0;

  /// Seed for per-shard noise streams: shard (tenant, tile) draws from
  /// Rng(seed).Fork(fnv1a(tenant, tile)), so shards are independent and a
  /// replayed reading sequence reproduces every snapshot bit for bit.
  uint64_t seed = 0x5EEDu;

  /// Directory for the .stpt container written on every publication
  /// (empty = keep epochs in memory only, still hot-swapped into the
  /// registry).
  std::string snapshot_dir;

  /// JSONL audit-ledger sink. The default shard appends to this path,
  /// shard (tenant, tile) to "<path>.<tenant>.<tile>". Empty = in-memory
  /// ledgers only.
  std::string ledger_path;

  /// Hard cap on shards this pipeline will create; batches addressed to
  /// new shards beyond it are rejected wholesale.
  int max_shards = 64;
};

/// Live ingestion: reading batches in, DP-republished epochs out.
///
/// One pipeline owns per-shard state keyed like the SnapshotRegistry:
/// a raw ConsumptionMatrix accumulator, an IncrementalPrefix over the
/// *sanitized* matrix, a w-event StreamingPublisher charged through a
/// BudgetAccountant + AuditLedger, and a forked noise stream. Apply runs
/// on exec pool workers (dispatched by the event loop's kReadingBatch
/// handler) or directly from tests; shards are independently locked, so
/// distinct tenants ingest concurrently while one shard's epoch pipeline
/// — accumulate, publish slices, incremental prefix flush, snapshot
/// encode, registry hot swap — stays strictly ordered.
///
/// Epoch boundaries come from accepted-reading counts and/or the injected
/// Clock, never ambient time. An empty batch forces a boundary (flush) for
/// its shard, which is how feeders drain a trailing partial epoch.
///
/// The accumulator is a RING over dims.ct logical timesteps: a reading at
/// logical t lands in physical slot t % ct, slots are recycled (zeroed)
/// when their slice seals, and admission accepts exactly the open window
/// [next_slice, next_slice + ct). Admission also enforces the declared
/// sensitivity: per (meter, cell, timestep) contributions are clamped to
/// ±unit_sensitivity (see IngestOptions), so a hostile feeder replaying
/// one meter's reading forever moves no published cell by more than
/// unit_sensitivity of pre-noise signal. With a wal_dir configured, every
/// batch is write-ahead-logged and Recover() rebuilds crashed shards
/// bit-for-bit by deterministic replay.
class IngestPipeline final : public serve::IngestSink {
 public:
  /// Validates options. `registry` and `clock` are not owned and must
  /// outlive the pipeline.
  static StatusOr<std::unique_ptr<IngestPipeline>> Create(
      serve::SnapshotRegistry* registry, Clock* clock, IngestOptions options);

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;
  ~IngestPipeline() override;

  /// serve::IngestSink: applies one batch, possibly publishing an epoch.
  serve::ReadingAck Apply(const serve::ReadingBatch& batch) override;

  /// serve::IngestSink: {"shards": [...], "batches": N} (see .cc).
  std::string StatsJson() const override;

  /// serve::IngestSink: the stpt_ingest_* families in Prometheus text.
  std::string MetricsText() const override;

  /// serve::IngestSink: the timer-driven epoch sweep. Publishes the
  /// completed slices (through high_water - 1 - backfill_grace) of every
  /// shard whose tick deadline has passed — or of every shard with
  /// completed unpublished slices when epoch_ticks_ns is 0, making the
  /// caller's period the deadline. This is what lets an idle shard meet
  /// its epoch deadline without waiting for another batch to arrive.
  /// Returns the number of shards that published.
  int PublishAll() override;

  /// Forces a full flush: seals every shard through its high_water,
  /// including the in-progress newest slice. Equivalent to an empty batch
  /// per shard. Returns the number of shards that published.
  int FlushAll();

  /// Crash recovery: rebuilds every shard logged under options.wal_dir by
  /// replaying its WAL from genesis through the normal admission path and
  /// republishing at each epoch marker. Because admission, noise draws and
  /// budget charges are all deterministic functions of the reading
  /// sequence, the rebuilt shard — accumulator, publisher window, Rng
  /// position, accountant and ledger — is bitwise identical to the
  /// pre-crash shard at its last marker. Verifies that bit-identity
  /// against what the dead process left behind: the replayed ledger must
  /// be a prefix-match of the on-disk JSONL at `ledger_path` (a torn
  /// publish may have charged without reaching its marker, so the old
  /// ledger may run longer), and the re-written last container must equal
  /// the bytes previously at `snapshot_dir` when both exist. Call after
  /// Create and before serving; no-op when wal_dir is empty.
  Status Recover(const std::string& snapshot_dir,
                 const std::string& ledger_path);

  /// This pipeline's metric registry (stpt_ingest_* families).
  obs::Registry& metrics() const { return metrics_; }

  /// Read-only view of one shard's privacy spend, for tests and audits:
  /// the accountant's composed epsilon and the ledger replay (bitwise
  /// equal by construction). NotFound for unknown shards.
  struct ShardAudit {
    uint64_t epoch = 0;
    double consumed_epsilon = 0.0;
    double ledger_composed_epsilon = 0.0;
    size_t ledger_records = 0;
    int64_t republish_count = 0;
    uint64_t accepted = 0;
    uint64_t clamped = 0;
    uint64_t rejected = 0;
    size_t contribution_keys = 0;
  };
  StatusOr<ShardAudit> Audit(const std::string& tenant,
                             const std::string& tile) const;

 private:
  struct Shard;

  IngestPipeline(serve::SnapshotRegistry* registry, Clock* clock,
                 IngestOptions options);

  /// Finds or creates the shard for (tenant, tile). Returns null (and
  /// counts the rejection) at max_shards; never creates for `create` =
  /// false.
  Shard* FindShard(const std::string& tenant, const std::string& tile,
                   bool create);

  /// The shared admission path: bounds/seal/ring checks, per-meter
  /// contribution clamping, raw-ring accumulation, and shard + metric
  /// accounting for one reading sequence. Used by Apply and by WAL replay,
  /// so a replayed sequence makes byte-identical decisions. Caller holds
  /// the shard mutex.
  void AdmitLocked(Shard& shard,
                   const std::vector<serve::MeterReading>& readings,
                   serve::ReadingAck& ack);

  /// Publishes logical slices [next_slice, through] of one shard: w-event
  /// release per slice, raw ring-slot recycle, clamp-map eviction,
  /// incremental prefix flush, snapshot encode, registry load-or-swap, and
  /// (when a WAL is attached) the fsynced epoch marker. Count/tick epochs
  /// pass high_water - 1 - backfill_grace (in-grace slices stay open for
  /// more readings); a flush passes high_water. Caller holds the shard
  /// mutex and guarantees through >= next_slice.
  Status PublishLocked(Shard& shard, int64_t through);

  /// Replays one WAL file into a fresh shard and verifies bit-identity
  /// against the dead process's ledger and last container.
  Status RecoverShardLog(const std::string& wal_path,
                         const std::string& snapshot_dir,
                         const std::string& ledger_path);

  serve::SnapshotRegistry* registry_;
  Clock* clock_;
  IngestOptions options_;

  /// True while Recover replays WALs: suppresses WAL creation in FindShard
  /// so replayed batches are not re-logged. Only touched single-threaded,
  /// between Create and serving.
  bool recovering_ = false;

  mutable std::mutex shards_mu_;  ///< guards the shard map topology
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable obs::Registry metrics_;
  obs::Counter* batches_ctr_ = nullptr;
  obs::Counter* readings_ctr_ = nullptr;
  obs::Counter* clamped_ctr_ = nullptr;
  obs::Counter* rejected_ctr_ = nullptr;
  obs::Counter* epochs_ctr_ = nullptr;
  obs::Counter* flush_timesteps_ctr_ = nullptr;
  obs::Counter* publish_errors_ctr_ = nullptr;
  obs::Counter* wal_errors_ctr_ = nullptr;
  obs::Gauge* shards_gauge_ = nullptr;
  obs::Histogram* republish_latency_ = nullptr;
};

}  // namespace stpt::ingest

#endif  // STPT_INGEST_PIPELINE_H_
