#ifndef STPT_INGEST_WAL_H_
#define STPT_INGEST_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/wire.h"

namespace stpt::ingest {

/// Per-shard append-only write-ahead log of reading batches, the durability
/// half of crash-safe ingest recovery (IngestPipeline::Recover).
///
/// The pipeline's noise stream (common/rng.h) has no serializable state, so
/// the only way to rebuild a shard bit-for-bit is to replay the exact
/// reading sequence through the same admission path from genesis. The WAL
/// records that sequence: every batch as received (pre-admission, so replay
/// re-runs the same clamp/reject decisions), plus an epoch marker after
/// every successful publication carrying the logical `through` timestep —
/// replay publishes at markers instead of re-evaluating count/tick
/// boundaries, which keeps recovery independent of wall time.
///
/// File format — a sequence of CRC-framed records:
///
///   u32 LE  payload length L (1 <= L <= kMaxWalRecordBytes)
///   u32 LE  CRC-32 (IEEE 802.3, serve::Crc32) of the L payload bytes
///   u8      record type (WalRecordType)
///   ...     body, little-endian fixed width:
///     kHeader    u32 tenant length + bytes, u32 tile length + bytes
///                (exact wire names — the snapshot/ledger SafeName rendering
///                is lossy, so the header is what maps a .wal file back to
///                its shard)
///     kBatch     u32 count, count x { u64 meter_id, i32 x, i32 y, i32 t,
///                f64 kwh } — the kReadingBatch body as received
///     kEpochMark i64 through (last logical timestep published),
///                u64 publish_seq after the publication
///
/// Durability contract: batches are flushed to the OS (fflush) at append
/// time — they survive a SIGKILL of the process — and every epoch marker is
/// additionally fsync()ed, so a power loss rolls a shard back to at most
/// its last published epoch plus whatever batch tail the disk retained.
/// The reader stops cleanly at the first torn or CRC-corrupt record, which
/// is exactly the crash-truncated tail.
class Wal {
 public:
  enum class RecordType : uint8_t {
    kHeader = 1,
    kBatch = 2,
    kEpochMark = 3,
  };

  /// One decoded record; fields beyond `type` are valid per the table above.
  struct Record {
    RecordType type = RecordType::kHeader;
    std::string tenant;  ///< kHeader
    std::string tile;    ///< kHeader
    std::vector<serve::MeterReading> readings;  ///< kBatch
    int64_t through = 0;                        ///< kEpochMark
    uint64_t publish_seq = 0;                   ///< kEpochMark
  };

  /// Hard cap on one record's payload, matching the wire frame cap so a
  /// corrupt length field cannot trigger a giant allocation.
  static constexpr uint32_t kMaxRecordBytes = 64u << 20;

  /// Opens `path` for appending (created if absent). Existing records are
  /// preserved — reopening after a crash continues the same log.
  static StatusOr<Wal> Open(const std::string& path);

  Wal() = default;
  Wal(Wal&& other) noexcept;
  Wal& operator=(Wal&& other) noexcept;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;
  ~Wal();

  bool open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Appends the shard-identity header. Written once, first, by the shard
  /// that creates the log.
  Status AppendHeader(const std::string& tenant, const std::string& tile);

  /// Appends one reading batch as received (flushed, not fsynced).
  Status AppendBatch(const std::vector<serve::MeterReading>& readings);

  /// Appends an epoch marker and fsync()s the log — the durability point.
  Status AppendEpochMark(int64_t through, uint64_t publish_seq);

  /// Reads every intact record of `path` in order, stopping cleanly at the
  /// first torn or CRC-corrupt record (the crash-truncated tail). NotFound
  /// when the file does not exist.
  static StatusOr<std::vector<Record>> ReadAll(const std::string& path);

  /// The ".wal" files directly inside `dir` (full paths, sorted by name);
  /// empty when the directory is missing or holds none.
  static std::vector<std::string> ListLogs(const std::string& dir);

 private:
  Status AppendRecord(const std::vector<uint8_t>& payload, bool sync);

  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace stpt::ingest

#endif  // STPT_INGEST_WAL_H_
