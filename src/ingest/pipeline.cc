#include "ingest/pipeline.h"

#include <cmath>
#include <cstdio>
#include <optional>
#include <sstream>
#include <utility>

#include "obs/trace.h"
#include "obs/trace_context.h"
#include "serve/snapshot.h"

namespace stpt::ingest {
namespace {

// FNV-1a, the repo's conventional cheap stable hash (see fuzz/fuzz_util.h).
// Keyed per shard so noise streams never collide across tenants.
uint64_t Fnv1a64(const std::string& text) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t ShardStream(const std::string& tenant, const std::string& tile) {
  // Length-prefixed concatenation, so ("ab", "c") and ("a", "bc") hash to
  // different streams even though names are arbitrary bytes.
  std::string key = std::to_string(tenant.size());
  key.push_back(':');
  key += tenant;
  key += tile;
  return Fnv1a64(key);
}

/// File-system-safe rendering of a wire name: tenant/tile come off the wire
/// as arbitrary bytes, and they become snapshot/ledger path components.
/// Anything outside [A-Za-z0-9_-] is replaced, and a replaced or empty name
/// gets an FNV suffix so distinct hostile names cannot collide onto one
/// path.
std::string SafeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  bool replaced = name.empty();
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (ok && out.size() < 64) {
      out.push_back(c);
    } else {
      replaced = true;
      if (out.size() < 64) out.push_back('_');
    }
  }
  if (replaced) {
    char suffix[20];
    std::snprintf(suffix, sizeof(suffix), "-%08llx",
                  static_cast<unsigned long long>(Fnv1a64(name) & 0xFFFFFFFFull));
    out += suffix;
  }
  return out;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\u00";
      constexpr const char* kHex = "0123456789abcdef";
      out.push_back(kHex[(c >> 4) & 0xF]);
      out.push_back(kHex[c & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Shortest round-trip double rendering (%.17g survives a bitwise
/// parse-back, which the CI ledger check relies on).
std::string JsonDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Child-span stages of a traced ingest request under the serve tier's exec
// span: apply covers the whole batch, publish the w-event republish it
// triggered (the registry records its own swap span under publish).
constexpr uint64_t kStageApply = 1;
constexpr uint64_t kStagePublish = 2;

obs::TraceContext ChildContext(const obs::TraceContext& parent, uint64_t seq) {
  obs::TraceContext child = parent;
  child.span_id = obs::ChildSpanId(parent.span_id, seq);
  return child;
}

void RecordIngestSpan(const obs::TraceContext& ctx, uint64_t parent_span_id,
                      uint64_t start_ns, const char* name,
                      std::vector<std::pair<std::string, std::string>> attrs) {
  obs::TraceSpan span;
  span.trace_hi = ctx.trace_hi;
  span.trace_lo = ctx.trace_lo;
  span.span_id = ctx.span_id;
  span.parent_span_id = parent_span_id;
  span.start_ns = start_ns;
  span.end_ns = obs::NowNanos();
  span.name = name;
  span.lane = "ingest";
  span.attrs = std::move(attrs);
  obs::TraceStore::Global().Add(std::move(span));
}

}  // namespace

/// All mutable per-shard state, guarded by `mu`. Shards are heap-pinned
/// (unique_ptr in the map), so the accountant→ledger and
/// publisher→accountant back-pointers below stay valid for the shard's
/// lifetime.
struct IngestPipeline::Shard {
  std::mutex mu;
  std::string tenant;
  std::string tile;

  grid::ConsumptionMatrix raw;               ///< readings as they arrived
  std::optional<IncrementalPrefix> sanitized;  ///< DP-released matrix + prefix
  std::optional<core::StreamingPublisher> publisher;
  std::optional<dp::BudgetAccountant> accountant;
  dp::AuditLedger ledger;
  Rng rng{0};

  int next_slice = 0;    ///< first unpublished timestep
  int high_water = -1;   ///< max timestep that received a reading
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  int64_t readings_since_publish = 0;
  int64_t last_publish_ns = 0;
  uint64_t epoch = 0;      ///< registry epoch currently published (0 = none)
  uint64_t publish_seq = 0;
};

IngestPipeline::IngestPipeline(serve::SnapshotRegistry* registry, Clock* clock,
                               IngestOptions options)
    : registry_(registry), clock_(clock), options_(std::move(options)) {
  batches_ctr_ = metrics_.GetCounter("stpt_ingest_batches_total",
                                     "Reading batches applied");
  readings_ctr_ = metrics_.GetCounter("stpt_ingest_readings_total",
                                      "Meter readings accepted");
  rejected_ctr_ = metrics_.GetCounter(
      "stpt_ingest_rejected_total",
      "Readings rejected (out of bounds, late, or shard limit)");
  epochs_ctr_ = metrics_.GetCounter("stpt_ingest_epochs_total",
                                    "Epochs published into the registry");
  flush_timesteps_ctr_ = metrics_.GetCounter(
      "stpt_ingest_flush_timesteps_total",
      "Timesteps rescanned by incremental prefix flushes");
  publish_errors_ctr_ = metrics_.GetCounter("stpt_ingest_publish_errors_total",
                                            "Failed publication attempts");
  shards_gauge_ =
      metrics_.GetGauge("stpt_ingest_shards", "Shards with ingest state");
  republish_latency_ = metrics_.GetHistogram(
      "stpt_ingest_republish_latency_ns",
      "End-to-end publication latency: DP release to registry swap",
      obs::LatencyBucketsNs());
}

IngestPipeline::~IngestPipeline() = default;

StatusOr<std::unique_ptr<IngestPipeline>> IngestPipeline::Create(
    serve::SnapshotRegistry* registry, Clock* clock, IngestOptions options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("ingest: registry must not be null");
  }
  if (clock == nullptr) {
    return Status::InvalidArgument("ingest: clock must not be null");
  }
  if (options.dims.cx <= 0 || options.dims.cy <= 0 || options.dims.ct <= 0) {
    return Status::InvalidArgument("ingest: dims must be positive");
  }
  if (options.epoch_readings < 0 || options.epoch_ticks_ns < 0) {
    return Status::InvalidArgument("ingest: epoch thresholds must be >= 0");
  }
  if (options.max_shards < 1) {
    return Status::InvalidArgument("ingest: max_shards must be >= 1");
  }
  if (options.accountant_epsilon < 0.0) {
    return Status::InvalidArgument("ingest: accountant_epsilon must be >= 0");
  }
  // Publisher knobs are validated once here by a dry run, so FindShard can
  // treat per-shard construction as infallible-by-options.
  core::StreamingPublisher::Options pub;
  pub.window = options.window;
  pub.epsilon = options.epsilon;
  pub.dissimilarity_fraction = options.dissimilarity_fraction;
  auto probe = core::StreamingPublisher::Create(
      options.dims.cx * options.dims.cy, options.unit_sensitivity, pub);
  if (!probe.ok()) return probe.status();
  return std::unique_ptr<IngestPipeline>(
      new IngestPipeline(registry, clock, std::move(options)));
}

IngestPipeline::Shard* IngestPipeline::FindShard(const std::string& tenant,
                                                 const std::string& tile,
                                                 bool create) {
  std::lock_guard<std::mutex> lock(shards_mu_);
  for (const auto& shard : shards_) {
    if (shard->tenant == tenant && shard->tile == tile) return shard.get();
  }
  if (!create) return nullptr;
  if (shards_.size() >= static_cast<size_t>(options_.max_shards)) return nullptr;
  if (tenant.size() > serve::kMaxShardNameBytes ||
      tile.size() > serve::kMaxShardNameBytes) {
    return nullptr;
  }

  auto shard = std::make_unique<Shard>();
  shard->tenant = tenant;
  shard->tile = tile;
  shard->raw = *grid::ConsumptionMatrix::Create(options_.dims);
  shard->sanitized = *IncrementalPrefix::Create(options_.dims);

  const double accountant_epsilon =
      options_.accountant_epsilon > 0.0
          ? options_.accountant_epsilon
          : options_.epsilon * (static_cast<double>(options_.dims.ct) /
                                    options_.window +
                                2.0);
  shard->accountant = *dp::BudgetAccountant::Create(accountant_epsilon);
  if (!options_.ledger_path.empty()) {
    std::string path = options_.ledger_path;
    if (tenant != serve::kDefaultTenant || tile != serve::kDefaultTile) {
      path += "." + SafeName(tenant) + "." + SafeName(tile);
    }
    if (!shard->ledger.OpenFile(path).ok()) return nullptr;
  }
  shard->accountant->AttachLedger(&shard->ledger);

  core::StreamingPublisher::Options pub;
  pub.window = options_.window;
  pub.epsilon = options_.epsilon;
  pub.dissimilarity_fraction = options_.dissimilarity_fraction;
  shard->publisher = *core::StreamingPublisher::Create(
      options_.dims.cx * options_.dims.cy, options_.unit_sensitivity, pub);
  shard->publisher->AttachAccountant(&*shard->accountant, "stream");

  shard->rng = Rng(options_.seed).Fork(ShardStream(tenant, tile));
  shard->last_publish_ns = clock_->NowNanos();

  shards_.push_back(std::move(shard));
  shards_gauge_->Set(static_cast<double>(shards_.size()));
  return shards_.back().get();
}

serve::ReadingAck IngestPipeline::Apply(const serve::ReadingBatch& batch) {
  batches_ctr_->Increment();
  // A sampled batch gets an ingest/apply span chained under the caller's
  // active span; it is installed as the active context so the publish it
  // triggers (and the registry swap under that) link to the same trace.
  const obs::TraceContext* req_ctx = obs::CurrentTraceContext();
  const bool traced = req_ctx != nullptr && req_ctx->sampled;
  const uint64_t apply_start_ns = obs::NowNanos();
  obs::TraceContext apply_ctx;
  uint64_t apply_parent = 0;
  std::optional<obs::ScopedTraceContext> scoped;
  if (traced) {
    apply_parent = req_ctx->span_id;
    apply_ctx = ChildContext(*req_ctx, kStageApply);
    scoped.emplace(apply_ctx);
  }
  const std::string tenant =
      batch.tenant.empty() ? serve::kDefaultTenant : batch.tenant;
  const std::string tile = batch.tile.empty() ? serve::kDefaultTile : batch.tile;
  serve::ReadingAck ack;
  const bool flush = batch.readings.empty();
  Shard* shard = FindShard(tenant, tile, /*create=*/!flush);
  if (shard == nullptr) {
    ack.rejected = batch.readings.size();
    rejected_ctr_->Increment(ack.rejected);
    return ack;
  }

  std::lock_guard<std::mutex> lock(shard->mu);
  const grid::Dims& dims = options_.dims;
  for (const serve::MeterReading& r : batch.readings) {
    const bool in_bounds = r.x >= 0 && r.x < dims.cx && r.y >= 0 &&
                           r.y < dims.cy && r.t >= 0 && r.t < dims.ct;
    // Late readings (t already published) are rejected, not silently
    // absorbed: the DP release for that slice is immutable once spent.
    if (!in_bounds || r.t < shard->next_slice || !std::isfinite(r.kwh)) {
      ++ack.rejected;
      continue;
    }
    shard->raw.add(r.x, r.y, r.t, r.kwh);
    if (r.t > shard->high_water) shard->high_water = r.t;
    ++ack.accepted;
  }
  shard->accepted += ack.accepted;
  shard->rejected += ack.rejected;
  shard->readings_since_publish += static_cast<int64_t>(ack.accepted);
  if (ack.accepted > 0) readings_ctr_->Increment(ack.accepted);
  if (ack.rejected > 0) rejected_ctr_->Increment(ack.rejected);

  // Epoch boundary: count- or tick-based, checked at batch granularity so
  // a replayed batch sequence republishes at identical points; an empty
  // batch is an explicit flush.
  bool due = flush;
  if (options_.epoch_readings > 0 &&
      shard->readings_since_publish >= options_.epoch_readings) {
    due = true;
  }
  if (options_.epoch_ticks_ns > 0 &&
      clock_->NowNanos() - shard->last_publish_ns >= options_.epoch_ticks_ns) {
    due = true;
  }
  // A count/tick epoch releases only *completed* timesteps — the newest
  // slice stays open for more readings (its w-event release is immutable
  // once spent, so publishing it early would reject the slice's tail as
  // late). A flush is the explicit "no more data is coming" signal and
  // publishes through the newest slice.
  const int through = flush ? shard->high_water : shard->high_water - 1;
  if (due && through >= shard->next_slice) {
    if (!PublishLocked(*shard, through).ok()) publish_errors_ctr_->Increment();
  }
  ack.epoch = shard->epoch;
  if (traced) {
    RecordIngestSpan(apply_ctx, apply_parent, apply_start_ns, "ingest/apply",
                     {{"tenant", tenant},
                      {"tile", tile},
                      {"accepted", std::to_string(ack.accepted)},
                      {"epoch", std::to_string(ack.epoch)}});
  }
  return ack;
}

Status IngestPipeline::PublishLocked(Shard& shard, int through) {
  obs::Span span("ingest/publish", republish_latency_);
  const obs::TraceContext* parent_ctx = obs::CurrentTraceContext();
  const bool traced = parent_ctx != nullptr && parent_ctx->sampled;
  const uint64_t publish_start_ns = obs::NowNanos();
  obs::TraceContext publish_ctx;
  uint64_t publish_parent = 0;
  std::optional<obs::ScopedTraceContext> scoped;
  if (traced) {
    publish_parent = parent_ctx->span_id;
    publish_ctx = ChildContext(*parent_ctx, kStagePublish);
    scoped.emplace(publish_ctx);  // the registry's swap span chains here
  }
  const grid::Dims& dims = options_.dims;
  const int cells = dims.cx * dims.cy;

  // w-event release slice by slice, in time order. The publisher draws its
  // noise serially from the shard's forked stream under the shard lock, so
  // the release depends only on the reading sequence — never on thread
  // count or concurrent tenants.
  std::vector<double> slice(static_cast<size_t>(cells));
  for (int t = shard.next_slice; t <= through; ++t) {
    size_t i = 0;
    for (int x = 0; x < dims.cx; ++x) {
      for (int y = 0; y < dims.cy; ++y) slice[i++] = shard.raw.at(x, y, t);
    }
    auto released = shard.publisher->ProcessSlice(slice, shard.rng);
    if (!released.ok()) return released.status();
    STPT_RETURN_IF_ERROR(shard.sanitized->SetSlice(t, *released));
  }
  shard.next_slice = through + 1;

  // Incremental prefix maintenance on the exec pool: only the republished
  // t-suffix is rescanned (bit-identical to a from-scratch build).
  flush_timesteps_ctr_->Increment(
      static_cast<uint64_t>(shard.sanitized->Flush()));

  serve::Snapshot snapshot;
  snapshot.meta.algorithm = "stream-w-event";
  snapshot.meta.eps_total = shard.accountant->ConsumedEpsilon();
  snapshot.meta.eps_sanitize = snapshot.meta.eps_total;
  snapshot.sanitized = shard.sanitized->matrix();
  snapshot.prefix = shard.sanitized->prefix();
  snapshot.meta.norm_min = snapshot.sanitized.MinValue();
  snapshot.meta.norm_max = snapshot.sanitized.MaxValue();

  ++shard.publish_seq;
  if (!options_.snapshot_dir.empty()) {
    const std::string path = options_.snapshot_dir + "/" +
                             SafeName(shard.tenant) + "." + SafeName(shard.tile) +
                             ".p" + std::to_string(shard.publish_seq) +
                             serve::kSnapshotExtension;
    STPT_RETURN_IF_ERROR(serve::WriteSnapshot(snapshot, path));
  }

  // Zero-downtime flip: Load on the first publication of a shard the
  // registry has never seen, Swap (RCU hot swap) afterwards — including
  // over a generation someone else loaded (e.g. the server's startup
  // snapshot for the default shard).
  const serve::ShardKey key{shard.tenant, shard.tile};
  StatusOr<uint64_t> epoch = registry_->Route(shard.tenant, shard.tile).ok()
                                 ? registry_->Swap(key, std::move(snapshot))
                                 : registry_->Load(key, std::move(snapshot));
  if (!epoch.ok()) return epoch.status();
  shard.epoch = *epoch;
  epochs_ctr_->Increment();
  shard.readings_since_publish = 0;
  shard.last_publish_ns = clock_->NowNanos();
  if (traced) {
    RecordIngestSpan(publish_ctx, publish_parent, publish_start_ns,
                     "ingest/publish",
                     {{"tenant", shard.tenant},
                      {"tile", shard.tile},
                      {"epoch", std::to_string(shard.epoch)}});
  }
  return Status::OK();
}

int IngestPipeline::PublishAll() {
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards.reserve(shards_.size());
    for (const auto& shard : shards_) shards.push_back(shard.get());
  }
  int published = 0;
  for (Shard* shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->high_water < shard->next_slice) continue;
    if (PublishLocked(*shard, shard->high_water).ok()) {
      ++published;
    } else {
      publish_errors_ctr_->Increment();
    }
  }
  return published;
}

StatusOr<IngestPipeline::ShardAudit> IngestPipeline::Audit(
    const std::string& tenant, const std::string& tile) const {
  Shard* shard =
      const_cast<IngestPipeline*>(this)->FindShard(tenant, tile, false);
  if (shard == nullptr) {
    return Status::NotFound("ingest: no such shard: " + tenant + "/" + tile);
  }
  std::lock_guard<std::mutex> lock(shard->mu);
  ShardAudit audit;
  audit.epoch = shard->epoch;
  audit.consumed_epsilon = shard->accountant->ConsumedEpsilon();
  audit.ledger_composed_epsilon = shard->ledger.ComposedEpsilon();
  audit.ledger_records = shard->ledger.size();
  audit.republish_count = shard->publisher->republish_count();
  return audit;
}

std::string IngestPipeline::StatsJson() const {
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards.reserve(shards_.size());
    for (const auto& shard : shards_) shards.push_back(shard.get());
  }
  std::ostringstream os;
  os << "{\"shards\": [";
  bool first = true;
  for (Shard* shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (!first) os << ", ";
    first = false;
    os << "{\"tenant\": \"" << JsonEscape(shard->tenant) << "\", \"tile\": \""
       << JsonEscape(shard->tile) << "\", \"epoch\": " << shard->epoch
       << ", \"accepted\": " << shard->accepted
       << ", \"rejected\": " << shard->rejected
       << ", \"next_slice\": " << shard->next_slice
       << ", \"pending_timesteps\": "
       << (shard->high_water >= shard->next_slice
               ? shard->high_water - shard->next_slice + 1
               : 0)
       << ", \"republish_count\": " << shard->publisher->republish_count()
       << ", \"consumed_epsilon\": "
       << JsonDouble(shard->accountant->ConsumedEpsilon())
       << ", \"ledger_composed_epsilon\": "
       << JsonDouble(shard->ledger.ComposedEpsilon())
       << ", \"ledger_records\": " << shard->ledger.size() << "}";
  }
  os << "], \"batches\": " << batches_ctr_->Value()
     << ", \"epochs\": " << epochs_ctr_->Value() << "}";
  return os.str();
}

std::string IngestPipeline::MetricsText() const {
  return metrics_.ToPrometheusText();
}

}  // namespace stpt::ingest
