#include "ingest/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <optional>
#include <sstream>
#include <utility>

#include "ingest/contribution_map.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "serve/snapshot.h"

namespace stpt::ingest {
namespace {

// FNV-1a, the repo's conventional cheap stable hash (see fuzz/fuzz_util.h).
// Keyed per shard so noise streams never collide across tenants.
uint64_t Fnv1a64(const std::string& text) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : text) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t ShardStream(const std::string& tenant, const std::string& tile) {
  // Length-prefixed concatenation, so ("ab", "c") and ("a", "bc") hash to
  // different streams even though names are arbitrary bytes.
  std::string key = std::to_string(tenant.size());
  key.push_back(':');
  key += tenant;
  key += tile;
  return Fnv1a64(key);
}

/// File-system-safe rendering of a wire name: tenant/tile come off the wire
/// as arbitrary bytes, and they become snapshot/ledger path components.
/// Anything outside [A-Za-z0-9_-] is replaced, and a replaced or empty name
/// gets an FNV suffix so distinct hostile names cannot collide onto one
/// path.
std::string SafeName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  bool replaced = name.empty();
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    if (ok && out.size() < 64) {
      out.push_back(c);
    } else {
      replaced = true;
      if (out.size() < 64) out.push_back('_');
    }
  }
  if (replaced) {
    char suffix[20];
    std::snprintf(suffix, sizeof(suffix), "-%08llx",
                  static_cast<unsigned long long>(Fnv1a64(name) & 0xFFFFFFFFull));
    out += suffix;
  }
  return out;
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\u00";
      constexpr const char* kHex = "0123456789abcdef";
      out.push_back(kHex[(c >> 4) & 0xF]);
      out.push_back(kHex[c & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Shortest round-trip double rendering (%.17g survives a bitwise
/// parse-back, which the CI ledger check relies on).
std::string JsonDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// The default shard appends to ledger_path itself; every other shard gets
/// a per-shard suffix. Recovery recomputes the same path to read the dead
/// process's ledger before the new shard truncates it.
std::string ShardLedgerPath(const std::string& ledger_path,
                            const std::string& tenant,
                            const std::string& tile) {
  std::string path = ledger_path;
  if (tenant != serve::kDefaultTenant || tile != serve::kDefaultTile) {
    path += "." + SafeName(tenant) + "." + SafeName(tile);
  }
  return path;
}

std::string ShardWalPath(const std::string& wal_dir, const std::string& tenant,
                         const std::string& tile) {
  return wal_dir + "/" + SafeName(tenant) + "." + SafeName(tile) + ".wal";
}

std::string ShardSnapshotPath(const std::string& snapshot_dir,
                              const std::string& tenant,
                              const std::string& tile, uint64_t publish_seq) {
  return snapshot_dir + "/" + SafeName(tenant) + "." + SafeName(tile) + ".p" +
         std::to_string(publish_seq) + serve::kSnapshotExtension;
}

/// Whole-file read for recovery verification; nullopt when unreadable.
std::optional<std::string> ReadFileBytes(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) return std::nullopt;
  std::string bytes;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) bytes.append(buf, n);
  std::fclose(file);
  return bytes;
}

// Child-span stages of a traced ingest request under the serve tier's exec
// span: apply covers the whole batch, publish the w-event republish it
// triggered (the registry records its own swap span under publish).
constexpr uint64_t kStageApply = 1;
constexpr uint64_t kStagePublish = 2;

obs::TraceContext ChildContext(const obs::TraceContext& parent, uint64_t seq) {
  obs::TraceContext child = parent;
  child.span_id = obs::ChildSpanId(parent.span_id, seq);
  return child;
}

void RecordIngestSpan(const obs::TraceContext& ctx, uint64_t parent_span_id,
                      uint64_t start_ns, const char* name,
                      std::vector<std::pair<std::string, std::string>> attrs) {
  obs::TraceSpan span;
  span.trace_hi = ctx.trace_hi;
  span.trace_lo = ctx.trace_lo;
  span.span_id = ctx.span_id;
  span.parent_span_id = parent_span_id;
  span.start_ns = start_ns;
  span.end_ns = obs::NowNanos();
  span.name = name;
  span.lane = "ingest";
  span.attrs = std::move(attrs);
  obs::TraceStore::Global().Add(std::move(span));
}

}  // namespace

/// All mutable per-shard state, guarded by `mu`. Shards are heap-pinned
/// (unique_ptr in the map), so the accountant→ledger and
/// publisher→accountant back-pointers below stay valid for the shard's
/// lifetime.
struct IngestPipeline::Shard {
  std::mutex mu;
  std::string tenant;
  std::string tile;

  grid::ConsumptionMatrix raw;  ///< ring accumulator: slice at slot t % ct
  std::optional<IncrementalPrefix> sanitized;  ///< DP-released matrix + prefix
  std::optional<core::StreamingPublisher> publisher;
  std::optional<dp::BudgetAccountant> accountant;
  dp::AuditLedger ledger;
  Rng rng{0};

  /// Admitted contribution per (meter, cell), one map per ring slot — the
  /// state that enforces the ±unit_sensitivity clamp. A slice's keys die
  /// wholesale with its publication (an O(1) Clear of its map), so the
  /// ring holds at most the open window's meters.
  std::vector<ContributionMap> contribution;
  /// Cleared maps from sealed slices, buffers intact. A virgin ring slot
  /// adopts one instead of growing from scratch: map capacity ramps once
  /// per shard (to the open window's depth), not once per slice — the
  /// fresh-allocation page faults of per-slice ramps dominated admission
  /// cost on the live path.
  std::vector<ContributionMap> contribution_pool;
  /// Live keys across the ring — the contribution_cap denominator.
  int64_t contribution_keys = 0;

  /// Reading WAL, attached when options.wal_dir is set (and not replaying).
  std::optional<Wal> wal;

  int64_t next_slice = 0;   ///< first unpublished logical timestep
  int64_t high_water = -1;  ///< max logical timestep that received a reading
  uint64_t accepted = 0;
  uint64_t clamped = 0;
  uint64_t rejected = 0;
  int64_t readings_since_publish = 0;
  int64_t last_publish_ns = 0;
  uint64_t epoch = 0;      ///< registry epoch currently published (0 = none)
  uint64_t publish_seq = 0;
};

IngestPipeline::IngestPipeline(serve::SnapshotRegistry* registry, Clock* clock,
                               IngestOptions options)
    : registry_(registry), clock_(clock), options_(std::move(options)) {
  batches_ctr_ = metrics_.GetCounter("stpt_ingest_batches_total",
                                     "Reading batches applied");
  readings_ctr_ = metrics_.GetCounter("stpt_ingest_readings_total",
                                      "Meter readings accepted");
  clamped_ctr_ = metrics_.GetCounter(
      "stpt_ingest_clamped_total",
      "Readings whose contribution was clamped to the sensitivity bound");
  rejected_ctr_ = metrics_.GetCounter(
      "stpt_ingest_rejected_total",
      "Readings rejected (out of bounds, late, or shard limit)");
  epochs_ctr_ = metrics_.GetCounter("stpt_ingest_epochs_total",
                                    "Epochs published into the registry");
  flush_timesteps_ctr_ = metrics_.GetCounter(
      "stpt_ingest_flush_timesteps_total",
      "Timesteps rescanned by incremental prefix flushes");
  publish_errors_ctr_ = metrics_.GetCounter("stpt_ingest_publish_errors_total",
                                            "Failed publication attempts");
  wal_errors_ctr_ = metrics_.GetCounter(
      "stpt_ingest_wal_errors_total",
      "WAL append failures (ingest continues, recovery coverage degrades)");
  shards_gauge_ =
      metrics_.GetGauge("stpt_ingest_shards", "Shards with ingest state");
  republish_latency_ = metrics_.GetHistogram(
      "stpt_ingest_republish_latency_ns",
      "End-to-end publication latency: DP release to registry swap",
      obs::LatencyBucketsNs());
}

IngestPipeline::~IngestPipeline() = default;

StatusOr<std::unique_ptr<IngestPipeline>> IngestPipeline::Create(
    serve::SnapshotRegistry* registry, Clock* clock, IngestOptions options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("ingest: registry must not be null");
  }
  if (clock == nullptr) {
    return Status::InvalidArgument("ingest: clock must not be null");
  }
  if (options.dims.cx <= 0 || options.dims.cy <= 0 || options.dims.ct <= 0) {
    return Status::InvalidArgument("ingest: dims must be positive");
  }
  if (options.epoch_readings < 0 || options.epoch_ticks_ns < 0) {
    return Status::InvalidArgument("ingest: epoch thresholds must be >= 0");
  }
  if (options.max_shards < 1) {
    return Status::InvalidArgument("ingest: max_shards must be >= 1");
  }
  if (options.accountant_epsilon < 0.0) {
    return Status::InvalidArgument("ingest: accountant_epsilon must be >= 0");
  }
  if (options.backfill_grace < 0 || options.backfill_grace >= options.dims.ct) {
    return Status::InvalidArgument(
        "ingest: backfill_grace must be in [0, ct)");
  }
  if (options.contribution_cap < 0) {
    return Status::InvalidArgument("ingest: contribution_cap must be >= 0");
  }
  // Publisher knobs are validated once here by a dry run, so FindShard can
  // treat per-shard construction as infallible-by-options.
  core::StreamingPublisher::Options pub;
  pub.window = options.window;
  pub.epsilon = options.epsilon;
  pub.dissimilarity_fraction = options.dissimilarity_fraction;
  auto probe = core::StreamingPublisher::Create(
      options.dims.cx * options.dims.cy, options.unit_sensitivity, pub);
  if (!probe.ok()) return probe.status();
  return std::unique_ptr<IngestPipeline>(
      new IngestPipeline(registry, clock, std::move(options)));
}

IngestPipeline::Shard* IngestPipeline::FindShard(const std::string& tenant,
                                                 const std::string& tile,
                                                 bool create) {
  std::lock_guard<std::mutex> lock(shards_mu_);
  for (const auto& shard : shards_) {
    if (shard->tenant == tenant && shard->tile == tile) return shard.get();
  }
  if (!create) return nullptr;
  if (shards_.size() >= static_cast<size_t>(options_.max_shards)) return nullptr;
  if (tenant.size() > serve::kMaxShardNameBytes ||
      tile.size() > serve::kMaxShardNameBytes) {
    return nullptr;
  }

  auto shard = std::make_unique<Shard>();
  shard->tenant = tenant;
  shard->tile = tile;
  shard->raw = *grid::ConsumptionMatrix::Create(options_.dims);
  shard->contribution.resize(static_cast<size_t>(options_.dims.ct));
  shard->sanitized = *IncrementalPrefix::Create(options_.dims);

  const double accountant_epsilon =
      options_.accountant_epsilon > 0.0
          ? options_.accountant_epsilon
          : options_.epsilon * (static_cast<double>(options_.dims.ct) /
                                    options_.window +
                                2.0);
  shard->accountant = *dp::BudgetAccountant::Create(accountant_epsilon);
  if (!options_.ledger_path.empty()) {
    const std::string path =
        ShardLedgerPath(options_.ledger_path, tenant, tile);
    if (!shard->ledger.OpenFile(path).ok()) return nullptr;
  }
  shard->accountant->AttachLedger(&shard->ledger);

  core::StreamingPublisher::Options pub;
  pub.window = options_.window;
  pub.epsilon = options_.epsilon;
  pub.dissimilarity_fraction = options_.dissimilarity_fraction;
  shard->publisher = *core::StreamingPublisher::Create(
      options_.dims.cx * options_.dims.cy, options_.unit_sensitivity, pub);
  shard->publisher->AttachAccountant(&*shard->accountant, "stream");

  shard->rng = Rng(options_.seed).Fork(ShardStream(tenant, tile));
  shard->last_publish_ns = clock_->NowNanos();

  // WAL genesis: open append-mode and stamp the header carrying the exact
  // wire names (SafeName is lossy; recovery needs the originals to rebuild
  // the same noise stream). Suppressed during replay — Recover re-attaches
  // the log itself, without a second header.
  if (!options_.wal_dir.empty() && !recovering_) {
    auto wal = Wal::Open(ShardWalPath(options_.wal_dir, tenant, tile));
    if (wal.ok() && wal->AppendHeader(tenant, tile).ok()) {
      shard->wal.emplace(std::move(*wal));
    } else {
      wal_errors_ctr_->Increment();
    }
  }

  shards_.push_back(std::move(shard));
  shards_gauge_->Set(static_cast<double>(shards_.size()));
  return shards_.back().get();
}

serve::ReadingAck IngestPipeline::Apply(const serve::ReadingBatch& batch) {
  batches_ctr_->Increment();
  // A sampled batch gets an ingest/apply span chained under the caller's
  // active span; it is installed as the active context so the publish it
  // triggers (and the registry swap under that) link to the same trace.
  const obs::TraceContext* req_ctx = obs::CurrentTraceContext();
  const bool traced = req_ctx != nullptr && req_ctx->sampled;
  const uint64_t apply_start_ns = obs::NowNanos();
  obs::TraceContext apply_ctx;
  uint64_t apply_parent = 0;
  std::optional<obs::ScopedTraceContext> scoped;
  if (traced) {
    apply_parent = req_ctx->span_id;
    apply_ctx = ChildContext(*req_ctx, kStageApply);
    scoped.emplace(apply_ctx);
  }
  const std::string tenant =
      batch.tenant.empty() ? serve::kDefaultTenant : batch.tenant;
  const std::string tile = batch.tile.empty() ? serve::kDefaultTile : batch.tile;
  serve::ReadingAck ack;
  const bool flush = batch.readings.empty();
  Shard* shard = FindShard(tenant, tile, /*create=*/!flush);
  if (shard == nullptr) {
    ack.rejected = batch.readings.size();
    rejected_ctr_->Increment(ack.rejected);
    return ack;
  }

  std::lock_guard<std::mutex> lock(shard->mu);
  // Log first, admit second: the WAL records the batch as received, so
  // replay re-runs the same admission decisions instead of trusting them.
  // An append failure degrades recovery coverage but never drops readings.
  if (!batch.readings.empty() && shard->wal.has_value()) {
    if (!shard->wal->AppendBatch(batch.readings).ok()) {
      wal_errors_ctr_->Increment();
    }
  }
  AdmitLocked(*shard, batch.readings, ack);

  // Epoch boundary: count- or tick-based, checked at batch granularity so
  // a replayed batch sequence republishes at identical points; an empty
  // batch is an explicit flush.
  bool due = flush;
  if (options_.epoch_readings > 0 &&
      shard->readings_since_publish >= options_.epoch_readings) {
    due = true;
  }
  if (options_.epoch_ticks_ns > 0 &&
      clock_->NowNanos() - shard->last_publish_ns >= options_.epoch_ticks_ns) {
    due = true;
  }
  // A count/tick epoch releases only *completed* timesteps, minus the
  // backfill grace — the newest slice plus `backfill_grace` behind it stay
  // open for late readings (each slice's w-event release is immutable once
  // spent, so sealing early would reject its tail). A flush is the explicit
  // "no more data is coming" signal and publishes through the newest slice.
  const int64_t through =
      flush ? shard->high_water
            : shard->high_water - 1 - options_.backfill_grace;
  if (due && through >= shard->next_slice) {
    if (!PublishLocked(*shard, through).ok()) publish_errors_ctr_->Increment();
  }
  ack.epoch = shard->epoch;
  if (traced) {
    RecordIngestSpan(apply_ctx, apply_parent, apply_start_ns, "ingest/apply",
                     {{"tenant", tenant},
                      {"tile", tile},
                      {"accepted", std::to_string(ack.accepted)},
                      {"epoch", std::to_string(ack.epoch)}});
  }
  return ack;
}

void IngestPipeline::AdmitLocked(
    Shard& shard, const std::vector<serve::MeterReading>& readings,
    serve::ReadingAck& ack) {
  const grid::Dims& dims = options_.dims;
  const double unit = options_.unit_sensitivity;
  uint64_t accepted = 0;
  uint64_t clamped = 0;
  uint64_t rejected = 0;
  // Ring slot of logical timestep t is t % ct, but t is confined to
  // [next_slice, next_slice + ct) here, so one add and a conditional
  // subtract replace the hardware divide — several per reading, and the
  // divider is the slowest ALU op on the whole admission path.
  const int64_t ct = dims.ct;
  const int64_t ring_base = shard.next_slice % ct;
  const auto ring_slot = [&](int64_t t) {
    const int64_t slot = ring_base + (t - shard.next_slice);
    return slot < ct ? slot : slot - ct;
  };
  constexpr size_t kPrefetchAhead = 16;
  for (size_t ri = 0; ri < readings.size(); ++ri) {
    const serve::MeterReading& r = readings[ri];
    // The contribution probe and the raw-cell bump are dependent loads into
    // tables the batch's own wire traffic usually evicted; issue reading
    // ri+16's lines now so they are in flight while this one is processed.
    if (ri + kPrefetchAhead < readings.size()) {
      const serve::MeterReading& q = readings[ri + kPrefetchAhead];
      const int64_t qt = q.t;
      if (q.x >= 0 && q.x < dims.cx && q.y >= 0 && q.y < dims.cy &&
          qt >= shard.next_slice && qt < shard.next_slice + ct) {
        const int64_t qslot = ring_slot(qt);
        shard.contribution[static_cast<size_t>(qslot)].Prefetch(
            q.meter_id, q.x * dims.cy + q.y);
        __builtin_prefetch(&shard.raw.data()[static_cast<size_t>(
            (q.x * dims.cy + q.y) * ct + qslot)]);
      }
    }
    const int64_t t = r.t;
    // Ring admission: exactly the open window [next_slice, next_slice + ct)
    // is writable. Earlier slices are sealed (their DP release is immutable
    // once spent) and later ones have no ring slot yet. next_slice >= 0, so
    // negative t is rejected here too.
    const bool in_bounds =
        r.x >= 0 && r.x < dims.cx && r.y >= 0 && r.y < dims.cy;
    if (!in_bounds || t < shard.next_slice || t >= shard.next_slice + ct ||
        !std::isfinite(r.kwh)) {
      ++rejected;
      continue;
    }
    // Sensitivity clamp: this meter's *total* admitted contribution to the
    // cell stays in [-unit, +unit], so replaying one reading forever — or
    // duplicating it within a batch — moves the pre-noise cell by at most
    // the sensitivity the noise is calibrated for.
    const int64_t tslot = ring_slot(t);
    ContributionMap& cmap = shard.contribution[static_cast<size_t>(tslot)];
    if (cmap.capacity() == 0 && !shard.contribution_pool.empty()) {
      cmap = std::move(shard.contribution_pool.back());
      shard.contribution_pool.pop_back();
    }
    const bool may_insert =
        options_.contribution_cap <= 0 ||
        shard.contribution_keys < options_.contribution_cap;
    const size_t keys_before = cmap.size();
    double* slot =
        cmap.FindOrInsert(r.meter_id, r.x * dims.cy + r.y, may_insert);
    if (slot == nullptr) {
      // Admitting an untracked contribution could breach the contract.
      ++rejected;
      continue;
    }
    shard.contribution_keys +=
        static_cast<int64_t>(cmap.size() != keys_before);
    const double prev = *slot;
    const double total = std::clamp(prev + r.kwh, -unit, unit);
    const double delta = total - prev;
    *slot = total;
    // Unconditional: a zero delta (meter already saturated) is rare, and
    // the cell line is already here — a branch would just mispredict.
    shard.raw.add(r.x, r.y, static_cast<int>(tslot), delta);
    shard.high_water = std::max(shard.high_water, t);
    const bool in_full = delta == r.kwh;
    accepted += static_cast<uint64_t>(in_full);
    clamped += static_cast<uint64_t>(!in_full);
  }
  shard.accepted += accepted;
  shard.clamped += clamped;
  shard.rejected += rejected;
  // Clamped readings still count toward the epoch boundary: they carry
  // fresh (if truncated) signal, and boundary placement must be a pure
  // function of the reading sequence for replay to be deterministic.
  shard.readings_since_publish += static_cast<int64_t>(accepted + clamped);
  if (accepted > 0) readings_ctr_->Increment(accepted);
  if (clamped > 0) clamped_ctr_->Increment(clamped);
  if (rejected > 0) rejected_ctr_->Increment(rejected);
  ack.accepted += accepted;
  ack.clamped += clamped;
  ack.rejected += rejected;
}

Status IngestPipeline::PublishLocked(Shard& shard, int64_t through) {
  obs::Span span("ingest/publish", republish_latency_);
  const obs::TraceContext* parent_ctx = obs::CurrentTraceContext();
  const bool traced = parent_ctx != nullptr && parent_ctx->sampled;
  const uint64_t publish_start_ns = obs::NowNanos();
  obs::TraceContext publish_ctx;
  uint64_t publish_parent = 0;
  std::optional<obs::ScopedTraceContext> scoped;
  if (traced) {
    publish_parent = parent_ctx->span_id;
    publish_ctx = ChildContext(*parent_ctx, kStagePublish);
    scoped.emplace(publish_ctx);  // the registry's swap span chains here
  }
  const grid::Dims& dims = options_.dims;
  const int cells = dims.cx * dims.cy;

  // w-event release slice by slice, in time order. The publisher draws its
  // noise serially from the shard's forked stream under the shard lock, so
  // the release depends only on the reading sequence — never on thread
  // count or concurrent tenants.
  std::vector<double> slice(static_cast<size_t>(cells));
  for (int64_t t = shard.next_slice; t <= through; ++t) {
    const int slot = static_cast<int>(t % dims.ct);
    size_t i = 0;
    for (int x = 0; x < dims.cx; ++x) {
      for (int y = 0; y < dims.cy; ++y) slice[i++] = shard.raw.at(x, y, slot);
    }
    auto released = shard.publisher->ProcessSlice(slice, shard.rng);
    if (!released.ok()) return released.status();
    STPT_RETURN_IF_ERROR(shard.sanitized->SetSliceLogical(t, *released));
    // Sealing logical slice t recycles its ring slot for t + ct.
    for (int x = 0; x < dims.cx; ++x) {
      for (int y = 0; y < dims.cy; ++y) shard.raw.set(x, y, slot, 0.0);
    }
    // Sealed slices can no longer admit, so their clamp keys are dead
    // weight; clearing per seal is what bounds the ring to the open window.
    ContributionMap& cmap = shard.contribution[static_cast<size_t>(slot)];
    shard.contribution_keys -= static_cast<int64_t>(cmap.size());
    cmap.Clear();
    if (cmap.capacity() != 0) {
      shard.contribution_pool.push_back(std::move(cmap));
      cmap = ContributionMap();
    }
  }
  shard.next_slice = through + 1;

  // Incremental prefix maintenance on the exec pool: only the republished
  // t-suffix is rescanned (bit-identical to a from-scratch build).
  flush_timesteps_ctr_->Increment(
      static_cast<uint64_t>(shard.sanitized->Flush()));

  serve::Snapshot snapshot;
  snapshot.meta.algorithm = "stream-w-event";
  snapshot.meta.eps_total = shard.accountant->ConsumedEpsilon();
  snapshot.meta.eps_sanitize = snapshot.meta.eps_total;
  snapshot.sanitized = shard.sanitized->matrix();
  snapshot.prefix = shard.sanitized->prefix();
  snapshot.meta.norm_min = snapshot.sanitized.MinValue();
  snapshot.meta.norm_max = snapshot.sanitized.MaxValue();

  ++shard.publish_seq;
  if (!options_.snapshot_dir.empty()) {
    STPT_RETURN_IF_ERROR(serve::WriteSnapshot(
        snapshot, ShardSnapshotPath(options_.snapshot_dir, shard.tenant,
                                    shard.tile, shard.publish_seq)));
  }

  // Zero-downtime flip: Load on the first publication of a shard the
  // registry has never seen, Swap (RCU hot swap) afterwards — including
  // over a generation someone else loaded (e.g. the server's startup
  // snapshot for the default shard).
  const serve::ShardKey key{shard.tenant, shard.tile};
  StatusOr<uint64_t> epoch = registry_->Route(shard.tenant, shard.tile).ok()
                                 ? registry_->Swap(key, std::move(snapshot))
                                 : registry_->Load(key, std::move(snapshot));
  if (!epoch.ok()) return epoch.status();
  shard.epoch = *epoch;
  epochs_ctr_->Increment();
  shard.readings_since_publish = 0;
  shard.last_publish_ns = clock_->NowNanos();
  // Durable commit point: the fsynced marker tells recovery this epoch's
  // budget charges, snapshot and ledger lines all reached their sinks. A
  // crash after the charge but before the marker leaves a torn publish,
  // which replay repeats deterministically.
  if (shard.wal.has_value() &&
      !shard.wal->AppendEpochMark(through, shard.publish_seq).ok()) {
    wal_errors_ctr_->Increment();
  }
  if (traced) {
    RecordIngestSpan(publish_ctx, publish_parent, publish_start_ns,
                     "ingest/publish",
                     {{"tenant", shard.tenant},
                      {"tile", shard.tile},
                      {"epoch", std::to_string(shard.epoch)}});
  }
  return Status::OK();
}

int IngestPipeline::PublishAll() {
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards.reserve(shards_.size());
    for (const auto& shard : shards_) shards.push_back(shard.get());
  }
  int published = 0;
  for (Shard* shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // Same seal rule as a count/tick epoch: completed slices minus grace.
    const int64_t through =
        shard->high_water - 1 - options_.backfill_grace;
    if (through < shard->next_slice) continue;
    if (options_.epoch_ticks_ns > 0 &&
        clock_->NowNanos() - shard->last_publish_ns <
            options_.epoch_ticks_ns) {
      continue;  // deadline not yet due; the next timer fire will catch it
    }
    if (PublishLocked(*shard, through).ok()) {
      ++published;
    } else {
      publish_errors_ctr_->Increment();
    }
  }
  return published;
}

int IngestPipeline::FlushAll() {
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards.reserve(shards_.size());
    for (const auto& shard : shards_) shards.push_back(shard.get());
  }
  int published = 0;
  for (Shard* shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (shard->high_water < shard->next_slice) continue;
    if (PublishLocked(*shard, shard->high_water).ok()) {
      ++published;
    } else {
      publish_errors_ctr_->Increment();
    }
  }
  return published;
}

Status IngestPipeline::Recover(const std::string& snapshot_dir,
                               const std::string& ledger_path) {
  if (options_.wal_dir.empty()) return Status::OK();
  recovering_ = true;
  Status status = Status::OK();
  for (const std::string& wal_path : Wal::ListLogs(options_.wal_dir)) {
    status = RecoverShardLog(wal_path, snapshot_dir, ledger_path);
    if (!status.ok()) break;
  }
  recovering_ = false;
  return status;
}

Status IngestPipeline::RecoverShardLog(const std::string& wal_path,
                                       const std::string& snapshot_dir,
                                       const std::string& ledger_path) {
  auto records = Wal::ReadAll(wal_path);
  if (!records.ok()) return records.status();
  if (records->empty()) return Status::OK();
  const Wal::Record& header = records->front();
  if (header.type != Wal::RecordType::kHeader) {
    return Status::InvalidArgument("ingest recover: '" + wal_path +
                                   "' does not start with a header record");
  }
  const std::string tenant = header.tenant;
  const std::string tile = header.tile;

  // Capture what the dead process left behind BEFORE the new shard opens
  // (and truncates) its ledger sink: the old ledger lines for the
  // prefix-match check, and the last marked container for byte identity.
  std::vector<dp::AuditRecord> old_ledger;
  bool have_old_ledger = false;
  if (!ledger_path.empty()) {
    if (auto bytes =
            ReadFileBytes(ShardLedgerPath(ledger_path, tenant, tile))) {
      old_ledger = dp::AuditLedger::ParseJsonl(*bytes);
      have_old_ledger = true;
    }
  }
  uint64_t last_marked_seq = 0;
  for (const Wal::Record& r : *records) {
    if (r.type == Wal::RecordType::kEpochMark) last_marked_seq = r.publish_seq;
  }
  std::optional<std::string> old_snapshot;
  if (!snapshot_dir.empty() && last_marked_seq > 0) {
    old_snapshot = ReadFileBytes(
        ShardSnapshotPath(snapshot_dir, tenant, tile, last_marked_seq));
  }

  Shard* shard = FindShard(tenant, tile, /*create=*/true);
  if (shard == nullptr) {
    return Status::ResourceExhausted("ingest recover: cannot create shard '" +
                                     tenant + "/" + tile + "'");
  }

  std::lock_guard<std::mutex> lock(shard->mu);
  // Replay from genesis through the normal admission/publication path. All
  // of it — clamp decisions, noise draws, budget charges — is a pure
  // function of the logged sequence, so the rebuilt shard lands bitwise on
  // the pre-crash state at its last marker. Readings logged after the last
  // marker re-enter the open window, exactly as if the crash never
  // happened.
  for (size_t i = 1; i < records->size(); ++i) {
    const Wal::Record& r = (*records)[i];
    if (r.type == Wal::RecordType::kBatch) {
      serve::ReadingAck ack;
      AdmitLocked(*shard, r.readings, ack);
    } else if (r.type == Wal::RecordType::kEpochMark) {
      if (r.through < shard->next_slice) {
        return Status::Internal("ingest recover: non-monotone epoch mark in '" +
                                wal_path + "'");
      }
      STPT_RETURN_IF_ERROR(PublishLocked(*shard, r.through));
      if (shard->publish_seq != r.publish_seq) {
        return Status::Internal(
            "ingest recover: publish_seq diverged replaying '" + wal_path +
            "' (replayed " + std::to_string(shard->publish_seq) +
            ", logged " + std::to_string(r.publish_seq) + ")");
      }
    }
  }

  // Bit-identity verification against the dead process's artifacts. The
  // old ledger may run LONGER than the replay (a torn publish charges the
  // accountant before reaching its marker); it must never disagree on the
  // shared prefix.
  if (have_old_ledger) {
    const std::vector<dp::AuditRecord> replayed = shard->ledger.records();
    if (replayed.size() > old_ledger.size()) {
      return Status::Internal(
          "ingest recover: replayed ledger for '" + tenant + "/" + tile +
          "' outran the on-disk ledger (" + std::to_string(replayed.size()) +
          " > " + std::to_string(old_ledger.size()) + " records)");
    }
    for (size_t i = 0; i < replayed.size(); ++i) {
      const dp::AuditRecord& a = replayed[i];
      const dp::AuditRecord& b = old_ledger[i];
      if (a.seq != b.seq || a.stage != b.stage || a.mechanism != b.mechanism ||
          a.epsilon != b.epsilon || a.sensitivity != b.sensitivity ||
          a.composition != b.composition ||
          a.consumed_after != b.consumed_after) {
        return Status::Internal(
            "ingest recover: ledger record " + std::to_string(i) +
            " diverged from the on-disk ledger for '" + tenant + "/" + tile +
            "'");
      }
    }
  }
  if (old_snapshot.has_value()) {
    const auto rewritten = ReadFileBytes(
        ShardSnapshotPath(snapshot_dir, tenant, tile, last_marked_seq));
    if (!rewritten.has_value() || *rewritten != *old_snapshot) {
      return Status::Internal(
          "ingest recover: rewritten container diverged from the pre-crash "
          "bytes for '" +
          tenant + "/" + tile + "'");
    }
  }

  // Resume logging in place: append-mode, no second header — the genesis
  // header is still the first record, so repeated kill/recover cycles keep
  // replaying one coherent log.
  auto wal = Wal::Open(wal_path);
  if (wal.ok()) {
    shard->wal.emplace(std::move(*wal));
  } else {
    wal_errors_ctr_->Increment();
  }
  return Status::OK();
}

StatusOr<IngestPipeline::ShardAudit> IngestPipeline::Audit(
    const std::string& tenant, const std::string& tile) const {
  Shard* shard =
      const_cast<IngestPipeline*>(this)->FindShard(tenant, tile, false);
  if (shard == nullptr) {
    return Status::NotFound("ingest: no such shard: " + tenant + "/" + tile);
  }
  std::lock_guard<std::mutex> lock(shard->mu);
  ShardAudit audit;
  audit.epoch = shard->epoch;
  audit.consumed_epsilon = shard->accountant->ConsumedEpsilon();
  audit.ledger_composed_epsilon = shard->ledger.ComposedEpsilon();
  audit.ledger_records = shard->ledger.size();
  audit.republish_count = shard->publisher->republish_count();
  audit.accepted = shard->accepted;
  audit.clamped = shard->clamped;
  audit.rejected = shard->rejected;
  audit.contribution_keys = static_cast<size_t>(shard->contribution_keys);
  return audit;
}

std::string IngestPipeline::StatsJson() const {
  std::vector<Shard*> shards;
  {
    std::lock_guard<std::mutex> lock(shards_mu_);
    shards.reserve(shards_.size());
    for (const auto& shard : shards_) shards.push_back(shard.get());
  }
  std::ostringstream os;
  os << "{\"shards\": [";
  bool first = true;
  for (Shard* shard : shards) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (!first) os << ", ";
    first = false;
    os << "{\"tenant\": \"" << JsonEscape(shard->tenant) << "\", \"tile\": \""
       << JsonEscape(shard->tile) << "\", \"epoch\": " << shard->epoch
       << ", \"accepted\": " << shard->accepted
       << ", \"clamped\": " << shard->clamped
       << ", \"rejected\": " << shard->rejected
       << ", \"contribution_keys\": " << shard->contribution_keys
       << ", \"next_slice\": " << shard->next_slice
       << ", \"pending_timesteps\": "
       << (shard->high_water >= shard->next_slice
               ? shard->high_water - shard->next_slice + 1
               : 0)
       << ", \"republish_count\": " << shard->publisher->republish_count()
       << ", \"consumed_epsilon\": "
       << JsonDouble(shard->accountant->ConsumedEpsilon())
       << ", \"ledger_composed_epsilon\": "
       << JsonDouble(shard->ledger.ComposedEpsilon())
       << ", \"ledger_records\": " << shard->ledger.size() << "}";
  }
  os << "], \"batches\": " << batches_ctr_->Value()
     << ", \"epochs\": " << epochs_ctr_->Value() << "}";
  return os.str();
}

std::string IngestPipeline::MetricsText() const {
  return metrics_.ToPrometheusText();
}

}  // namespace stpt::ingest
