#ifndef STPT_INGEST_INCREMENTAL_PREFIX_H_
#define STPT_INGEST_INCREMENTAL_PREFIX_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "grid/consumption_matrix.h"

namespace stpt::ingest {

/// Incrementally maintained 3-D inclusive prefix sums over a consumption
/// matrix whose mutations are concentrated in a trailing time range — the
/// streaming-ingest access pattern, where each epoch appends or republishes
/// a few time slices and everything before them is already final.
///
/// grid::PrefixSum3D builds with three separable in-place scans (t per
/// pillar, then y per x-slab, then x across the (y, t) plane). The y and x
/// passes are elementwise in t, so a slice at time t only ever influences
/// prefix entries with the same or a later t. IncrementalPrefix keeps the
/// two intermediate scan stages alongside the final table and, on Flush,
/// re-runs just the dirty t-suffix of each pass through the kernel
/// backend's ScanT/ScanY/ScanX — the same kernels the full build uses,
/// restricted to [dirty_lo, ct).
///
/// Bit-identity contract: after Flush, prefix() equals what
/// `grid::PrefixSum3D(matrix()).raw()` would produce, bitwise, at any
/// thread count — IEEE-754 addition is commutative and the accumulation
/// order per element is the same, so incrementality is unobservable in the
/// output — and every kernel backend honors the same contract, so the
/// table is also identical across backends. Property tests enforce this
/// against randomized mutation sequences at 1 and 8 threads and across
/// naive/AVX2.
///
/// Cost: O(cx * cy * (ct - dirty_lo)) per Flush instead of O(cx * cy * ct),
/// for 3 extra arrays of matrix size. Not thread-safe; callers (the ingest
/// pipeline) serialize access per shard.
class IncrementalPrefix {
 public:
  /// Creates a zeroed accumulator. Returns InvalidArgument for non-positive
  /// dimensions.
  static StatusOr<IncrementalPrefix> Create(grid::Dims dims);

  /// Adds `v` to element (x, y, t) and marks timestep t dirty. Returns
  /// InvalidArgument for out-of-bounds coordinates.
  Status Add(int x, int y, int t, double v);

  /// Overwrites the whole time slice t. `values` holds cx*cy entries in
  /// (x, y) row-major order. Returns InvalidArgument on a bad t or size.
  Status SetSlice(int t, const std::vector<double>& values);

  /// Ring write: overwrites the slice at physical slot `t % ct` for a
  /// logical timestep t >= 0 that may exceed the horizon. The streaming
  /// pipeline's accumulator is a ring over ct timesteps — once the stream
  /// outlives the grid, each publication of logical slice t replaces the
  /// release of t - ct, and the prefix table keeps covering the most recent
  /// lap. Returns InvalidArgument for negative t or a bad size.
  Status SetSliceLogical(int64_t t, const std::vector<double>& values);

  /// The physical slot a logical timestep lands in (t % ct; t >= 0).
  int SlotFor(int64_t t) const { return static_cast<int>(t % dims_.ct); }

  /// Recomputes the dirty t-suffix of the prefix table (no-op when clean).
  /// Returns the number of timesteps rescanned.
  int64_t Flush();

  /// True when mutations since the last Flush left prefix() stale.
  bool dirty() const { return dirty_lo_ < dims_.ct; }

  const grid::Dims& dims() const { return dims_; }

  /// The base matrix (always current).
  const grid::ConsumptionMatrix& matrix() const { return matrix_; }

  /// The inclusive prefix table, (x, y, t) row-major. Valid after Flush;
  /// stale for dirty timesteps until then.
  const std::vector<double>& prefix() const { return prefix_; }

 private:
  explicit IncrementalPrefix(grid::Dims dims);

  grid::Dims dims_;
  grid::ConsumptionMatrix matrix_;
  std::vector<double> scan_t_;   ///< pass 1: t-scanned per pillar
  std::vector<double> scan_ty_;  ///< pass 2: additionally y-scanned
  std::vector<double> prefix_;   ///< pass 3: fully scanned
  int dirty_lo_;                 ///< first dirty timestep (ct = clean)
};

}  // namespace stpt::ingest

#endif  // STPT_INGEST_INCREMENTAL_PREFIX_H_
