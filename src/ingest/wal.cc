#include "ingest/wal.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "serve/snapshot.h"

namespace stpt::ingest {
namespace {

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutF64(std::vector<uint8_t>& out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

/// Bounds-checked little-endian reader over one record payload.
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - off_; }

  bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = data_[off_++];
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = static_cast<uint32_t>(data_[off_]) |
         static_cast<uint32_t>(data_[off_ + 1]) << 8 |
         static_cast<uint32_t>(data_[off_ + 2]) << 16 |
         static_cast<uint32_t>(data_[off_ + 3]) << 24;
    off_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(hi) << 32 | lo;
    return true;
  }

  bool ReadI32(int32_t* v) {
    uint32_t u = 0;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool ReadI64(int64_t* v) {
    uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool ReadF64(double* v) {
    uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }

  bool ReadString(std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len) || len > remaining()) return false;
    out->assign(reinterpret_cast<const char*>(data_ + off_), len);
    off_ += len;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
};

/// Decodes one CRC-verified payload. False = structurally invalid (the
/// reader then treats the rest of the file as unusable tail).
bool DecodeRecord(const std::vector<uint8_t>& payload, Wal::Record* out) {
  Cursor cur(payload.data(), payload.size());
  uint8_t type = 0;
  if (!cur.ReadU8(&type)) return false;
  switch (static_cast<Wal::RecordType>(type)) {
    case Wal::RecordType::kHeader: {
      out->type = Wal::RecordType::kHeader;
      return cur.ReadString(&out->tenant) && cur.ReadString(&out->tile) &&
             cur.remaining() == 0;
    }
    case Wal::RecordType::kBatch: {
      out->type = Wal::RecordType::kBatch;
      uint32_t count = 0;
      if (!cur.ReadU32(&count)) return false;
      if (static_cast<size_t>(count) * 28 != cur.remaining()) return false;
      out->readings.resize(count);
      for (serve::MeterReading& r : out->readings) {
        if (!cur.ReadU64(&r.meter_id) || !cur.ReadI32(&r.x) ||
            !cur.ReadI32(&r.y) || !cur.ReadI32(&r.t) || !cur.ReadF64(&r.kwh)) {
          return false;
        }
      }
      return true;
    }
    case Wal::RecordType::kEpochMark: {
      out->type = Wal::RecordType::kEpochMark;
      return cur.ReadI64(&out->through) && cur.ReadU64(&out->publish_seq) &&
             cur.remaining() == 0;
    }
  }
  return false;
}

}  // namespace

Wal::Wal(Wal&& other) noexcept
    : file_(std::exchange(other.file_, nullptr)),
      path_(std::move(other.path_)) {}

Wal& Wal::operator=(Wal&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = std::exchange(other.file_, nullptr);
    path_ = std::move(other.path_);
  }
  return *this;
}

Wal::~Wal() {
  if (file_ != nullptr) std::fclose(file_);
}

StatusOr<Wal> Wal::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::InvalidArgument("wal: cannot open '" + path + "'");
  }
  Wal wal;
  wal.file_ = file;
  wal.path_ = path;
  return wal;
}

Status Wal::AppendRecord(const std::vector<uint8_t>& payload, bool sync) {
  if (file_ == nullptr) return Status::FailedPrecondition("wal: not open");
  if (payload.empty() || payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument("wal: record payload size out of range");
  }
  std::vector<uint8_t> frame;
  frame.reserve(8 + payload.size());
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  PutU32(frame, serve::Crc32(payload.data(), payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return Status::Internal("wal: short write to '" + path_ + "'");
  }
  // fflush hands the bytes to the OS: they survive a SIGKILL. fsync at
  // epoch markers additionally survives power loss — the durability point.
  if (std::fflush(file_) != 0) {
    return Status::Internal("wal: flush failed for '" + path_ + "'");
  }
  if (sync && ::fsync(::fileno(file_)) != 0) {
    return Status::Internal("wal: fsync failed for '" + path_ + "'");
  }
  return Status::OK();
}

Status Wal::AppendHeader(const std::string& tenant, const std::string& tile) {
  std::vector<uint8_t> payload;
  payload.reserve(9 + tenant.size() + tile.size());
  payload.push_back(static_cast<uint8_t>(RecordType::kHeader));
  PutU32(payload, static_cast<uint32_t>(tenant.size()));
  payload.insert(payload.end(), tenant.begin(), tenant.end());
  PutU32(payload, static_cast<uint32_t>(tile.size()));
  payload.insert(payload.end(), tile.begin(), tile.end());
  return AppendRecord(payload, /*sync=*/true);
}

Status Wal::AppendBatch(const std::vector<serve::MeterReading>& readings) {
  std::vector<uint8_t> payload;
  payload.reserve(5 + readings.size() * 28);
  payload.push_back(static_cast<uint8_t>(RecordType::kBatch));
  PutU32(payload, static_cast<uint32_t>(readings.size()));
  for (const serve::MeterReading& r : readings) {
    PutU64(payload, r.meter_id);
    PutU32(payload, static_cast<uint32_t>(r.x));
    PutU32(payload, static_cast<uint32_t>(r.y));
    PutU32(payload, static_cast<uint32_t>(r.t));
    PutF64(payload, r.kwh);
  }
  return AppendRecord(payload, /*sync=*/false);
}

Status Wal::AppendEpochMark(int64_t through, uint64_t publish_seq) {
  std::vector<uint8_t> payload;
  payload.reserve(17);
  payload.push_back(static_cast<uint8_t>(RecordType::kEpochMark));
  PutU64(payload, static_cast<uint64_t>(through));
  PutU64(payload, publish_seq);
  return AppendRecord(payload, /*sync=*/true);
}

StatusOr<std::vector<Wal::Record>> Wal::ReadAll(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("wal: no log at '" + path + "'");
  }
  std::vector<Record> records;
  std::vector<uint8_t> payload;
  while (true) {
    uint8_t header[8];
    if (std::fread(header, 1, sizeof(header), file) != sizeof(header)) break;
    const uint32_t length = static_cast<uint32_t>(header[0]) |
                            static_cast<uint32_t>(header[1]) << 8 |
                            static_cast<uint32_t>(header[2]) << 16 |
                            static_cast<uint32_t>(header[3]) << 24;
    const uint32_t crc = static_cast<uint32_t>(header[4]) |
                         static_cast<uint32_t>(header[5]) << 8 |
                         static_cast<uint32_t>(header[6]) << 16 |
                         static_cast<uint32_t>(header[7]) << 24;
    if (length == 0 || length > kMaxRecordBytes) break;  // corrupt tail
    payload.resize(length);
    if (std::fread(payload.data(), 1, length, file) != length) break;  // torn
    if (serve::Crc32(payload.data(), payload.size()) != crc) break;
    Record record;
    if (!DecodeRecord(payload, &record)) break;
    records.push_back(std::move(record));
  }
  std::fclose(file);
  return records;
}

std::vector<std::string> Wal::ListLogs(const std::string& dir) {
  std::vector<std::string> logs;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return logs;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    constexpr const char* kExt = ".wal";
    if (name.size() > 4 && name.compare(name.size() - 4, 4, kExt) == 0) {
      logs.push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(logs.begin(), logs.end());
  return logs;
}

}  // namespace stpt::ingest
