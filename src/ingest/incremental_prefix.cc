#include "ingest/incremental_prefix.h"

#include <utility>

#include "exec/parallel.h"

namespace stpt::ingest {

IncrementalPrefix::IncrementalPrefix(grid::Dims dims)
    : dims_(dims),
      matrix_(*grid::ConsumptionMatrix::Create(dims)),
      scan_t_(dims.NumCells(), 0.0),
      scan_ty_(dims.NumCells(), 0.0),
      prefix_(dims.NumCells(), 0.0),
      dirty_lo_(dims.ct) {}

StatusOr<IncrementalPrefix> IncrementalPrefix::Create(grid::Dims dims) {
  if (dims.cx <= 0 || dims.cy <= 0 || dims.ct <= 0) {
    return Status::InvalidArgument(
        "IncrementalPrefix: dimensions must be positive");
  }
  return IncrementalPrefix(dims);
}

Status IncrementalPrefix::Add(int x, int y, int t, double v) {
  if (x < 0 || x >= dims_.cx || y < 0 || y >= dims_.cy || t < 0 ||
      t >= dims_.ct) {
    return Status::InvalidArgument("IncrementalPrefix::Add: out of bounds");
  }
  matrix_.add(x, y, t, v);
  if (t < dirty_lo_) dirty_lo_ = t;
  return Status::OK();
}

Status IncrementalPrefix::SetSlice(int t, const std::vector<double>& values) {
  if (t < 0 || t >= dims_.ct) {
    return Status::InvalidArgument("IncrementalPrefix::SetSlice: bad timestep");
  }
  if (values.size() != static_cast<size_t>(dims_.cx) * dims_.cy) {
    return Status::InvalidArgument(
        "IncrementalPrefix::SetSlice: values size must be cx*cy");
  }
  size_t i = 0;
  for (int x = 0; x < dims_.cx; ++x) {
    for (int y = 0; y < dims_.cy; ++y) matrix_.set(x, y, t, values[i++]);
  }
  if (t < dirty_lo_) dirty_lo_ = t;
  return Status::OK();
}

int64_t IncrementalPrefix::Flush() {
  if (dirty_lo_ >= dims_.ct) return 0;
  const int cx = dims_.cx;
  const int cy = dims_.cy;
  const int ct = dims_.ct;
  const int lo = dirty_lo_;
  const int nt = ct - lo;
  const size_t plane = static_cast<size_t>(cy) * ct;
  const std::vector<double>& base = matrix_.data();

  // The three passes mirror grid::PrefixSum3D element for element; only the
  // t range shrinks. Each recurrence reads the clean value at t = lo - 1
  // that the previous Flush left behind, so the value chain — and therefore
  // every rounding step — is the one a from-scratch build performs.

  // Pass 1, scan along t: one task per (x, y) pillar.
  exec::ParallelForRange(
      static_cast<int64_t>(cx) * cy, [&](int64_t begin, int64_t end) {
        for (int64_t p = begin; p < end; ++p) {
          const double* src = base.data() + static_cast<size_t>(p) * ct;
          double* dst = scan_t_.data() + static_cast<size_t>(p) * ct;
          for (int t = lo; t < ct; ++t) {
            dst[t] = t == 0 ? src[t] : src[t] + dst[t - 1];
          }
        }
      });

  // Pass 2, scan along y: one task per x-slab; elementwise in t, so only
  // the dirty suffix of each row needs touching.
  exec::ParallelForRange(cx, [&](int64_t begin, int64_t end) {
    for (int64_t x = begin; x < end; ++x) {
      const double* src_slab = scan_t_.data() + static_cast<size_t>(x) * plane;
      double* dst_slab = scan_ty_.data() + static_cast<size_t>(x) * plane;
      for (int t = lo; t < ct; ++t) dst_slab[t] = src_slab[t];
      for (int y = 1; y < cy; ++y) {
        const double* src = src_slab + static_cast<size_t>(y) * ct;
        double* dst = dst_slab + static_cast<size_t>(y) * ct;
        const double* prev = dst - ct;
        for (int t = lo; t < ct; ++t) dst[t] = src[t] + prev[t];
      }
    }
  });

  // Pass 3, scan along x: tasks partition the dirty (y, t) sub-plane;
  // sequential in x per element, exactly like the full build.
  exec::ParallelForRange(
      static_cast<int64_t>(cy) * nt, [&](int64_t begin, int64_t end) {
        for (int64_t q = begin; q < end; ++q) {
          const size_t off =
              static_cast<size_t>(q / nt) * ct + lo + static_cast<size_t>(q % nt);
          prefix_[off] = scan_ty_[off];
          for (int x = 1; x < cx; ++x) {
            const size_t cur = static_cast<size_t>(x) * plane + off;
            prefix_[cur] = scan_ty_[cur] + prefix_[cur - plane];
          }
        }
      });

  dirty_lo_ = ct;
  return nt;
}

}  // namespace stpt::ingest
