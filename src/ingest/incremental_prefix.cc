#include "ingest/incremental_prefix.h"

#include <utility>

#include "kernels/backend.h"

namespace stpt::ingest {

IncrementalPrefix::IncrementalPrefix(grid::Dims dims)
    : dims_(dims),
      matrix_(*grid::ConsumptionMatrix::Create(dims)),
      scan_t_(dims.NumCells(), 0.0),
      scan_ty_(dims.NumCells(), 0.0),
      prefix_(dims.NumCells(), 0.0),
      dirty_lo_(dims.ct) {}

StatusOr<IncrementalPrefix> IncrementalPrefix::Create(grid::Dims dims) {
  if (dims.cx <= 0 || dims.cy <= 0 || dims.ct <= 0) {
    return Status::InvalidArgument(
        "IncrementalPrefix: dimensions must be positive");
  }
  return IncrementalPrefix(dims);
}

Status IncrementalPrefix::Add(int x, int y, int t, double v) {
  if (x < 0 || x >= dims_.cx || y < 0 || y >= dims_.cy || t < 0 ||
      t >= dims_.ct) {
    return Status::InvalidArgument("IncrementalPrefix::Add: out of bounds");
  }
  matrix_.add(x, y, t, v);
  if (t < dirty_lo_) dirty_lo_ = t;
  return Status::OK();
}

Status IncrementalPrefix::SetSlice(int t, const std::vector<double>& values) {
  if (t < 0 || t >= dims_.ct) {
    return Status::InvalidArgument("IncrementalPrefix::SetSlice: bad timestep");
  }
  if (values.size() != static_cast<size_t>(dims_.cx) * dims_.cy) {
    return Status::InvalidArgument(
        "IncrementalPrefix::SetSlice: values size must be cx*cy");
  }
  size_t i = 0;
  for (int x = 0; x < dims_.cx; ++x) {
    for (int y = 0; y < dims_.cy; ++y) matrix_.set(x, y, t, values[i++]);
  }
  if (t < dirty_lo_) dirty_lo_ = t;
  return Status::OK();
}

Status IncrementalPrefix::SetSliceLogical(int64_t t,
                                          const std::vector<double>& values) {
  if (t < 0) {
    return Status::InvalidArgument(
        "IncrementalPrefix::SetSliceLogical: negative timestep");
  }
  return SetSlice(SlotFor(t), values);
}

int64_t IncrementalPrefix::Flush() {
  if (dirty_lo_ >= dims_.ct) return 0;
  const int cx = dims_.cx;
  const int cy = dims_.cy;
  const int ct = dims_.ct;
  const int lo = dirty_lo_;

  // The three backend passes mirror grid::PrefixSum3D element for element;
  // only the t range shrinks. Each recurrence reads the clean value at
  // t = lo - 1 that the previous Flush left behind, so the value chain —
  // and therefore every rounding step — is the one a from-scratch build
  // performs, on every backend.
  const kernels::Backend* backend = kernels::Default();
  backend->ScanT(matrix_.data().data(), scan_t_.data(),
                 static_cast<int64_t>(cx) * cy, ct, lo);
  backend->ScanY(scan_t_.data(), scan_ty_.data(), cx, cy, ct, lo);
  backend->ScanX(scan_ty_.data(), prefix_.data(), cx, cy, ct, lo);

  dirty_lo_ = ct;
  return ct - lo;
}

}  // namespace stpt::ingest
