#ifndef STPT_INGEST_CLOCK_H_
#define STPT_INGEST_CLOCK_H_

#include <atomic>
#include <cstdint>

#include "exec/timing.h"

namespace stpt::ingest {

/// Injected time source for wall-tick epoch boundaries. The pipeline never
/// reads ambient time directly: production wires a SystemClock, tests wire a
/// ManualClock and advance it explicitly, so epoch triggers are exactly as
/// deterministic as the reading sequence that drives them.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic nanoseconds. Only differences are meaningful.
  virtual int64_t NowNanos() = 0;
};

/// Production clock: the same steady-clock source all latency measurement
/// uses (obs::NowNanos via exec::NowNanos).
class SystemClock final : public Clock {
 public:
  int64_t NowNanos() override { return static_cast<int64_t>(exec::NowNanos()); }
};

/// Test clock: starts at zero and moves only when told to. Thread-safe so a
/// test can advance it while the pipeline reads it from pool workers.
class ManualClock final : public Clock {
 public:
  int64_t NowNanos() override { return now_.load(std::memory_order_relaxed); }

  void Advance(int64_t ns) { now_.fetch_add(ns, std::memory_order_relaxed); }
  void Set(int64_t ns) { now_.store(ns, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_{0};
};

}  // namespace stpt::ingest

#endif  // STPT_INGEST_CLOCK_H_
