#ifndef STPT_INGEST_CONTRIBUTION_MAP_H_
#define STPT_INGEST_CONTRIBUTION_MAP_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace stpt::ingest {

/// Admitted contribution per (meter, cell) within ONE open time slice — the
/// state behind the ingest pipeline's ±unit_sensitivity clamp, and the only
/// per-reading lookup on the admission hot path. The pipeline keeps a ring
/// of these, one per open ring slot, so "evict everything the seal just
/// retired" is Clear() on the sealed slice's map instead of a rebuild of
/// one big (meter, cell, t) table. That rebuild — two full-table passes per
/// seal — once cost more than every probe the table ever served.
///
/// Open-addressed linear probing over a power-of-two slot array at <= 50%
/// load, so the common case is one cache-line probe and inserts never
/// allocate (std::unordered_map's per-node allocation roughly doubled
/// sustained ingest cost at 100k-reading scale). Clear() is O(1): slots
/// carry the generation that wrote them and a bumped generation makes every
/// slot stale at once. Capacity is retained across Clear(), so a slice that
/// refills to its predecessor's population (the steady state) never grows
/// again.
class ContributionMap {
 public:
  /// Returns the contribution slot for (meter, cell), inserting a zero
  /// entry if the key is new. When `may_insert` is false a new key returns
  /// nullptr and nothing is inserted (existing keys are always found) —
  /// the pipeline's contribution_cap check. The pointer is valid only
  /// until the next FindOrInsert.
  double* FindOrInsert(uint64_t meter, int32_t cell, bool may_insert) {
    if (slots_.empty() || (size_ + 1) * 2 > slots_.size()) Grow();
    const uint64_t tag = (gen_ << 32) | static_cast<uint32_t>(cell);
    const size_t mask = slots_.size() - 1;
    size_t i = Hash(meter, cell) & mask;
    while (true) {
      Slot& s = slots_[i];
      if ((s.tag >> 32) != gen_) {  // stale or never written: insertable
        if (!may_insert) return nullptr;
        s.meter = meter;
        s.tag = tag;
        s.value = 0.0;
        ++size_;
        return &s.value;
      }
      if (s.tag == tag && s.meter == meter) return &s.value;
      i = (i + 1) & mask;
    }
  }

  /// Hints the cache that (meter, cell)'s home slot is about to be probed.
  /// The admission loop calls this a few readings ahead of FindOrInsert so
  /// the slot line — usually evicted by the batch's wire traffic between
  /// Apply calls — is already in flight when the probe issues. Purely a
  /// hint; a Grow between the two calls costs nothing but a wasted fetch.
  void Prefetch(uint64_t meter, int32_t cell) const {
    if (!slots_.empty()) {
      __builtin_prefetch(&slots_[Hash(meter, cell) & (slots_.size() - 1)]);
    }
  }

  /// Drops every entry in O(1) by advancing the generation; stale slots are
  /// overwritten lazily by later inserts. Capacity is retained.
  void Clear() {
    size_ = 0;
    if (++gen_ == kGenLimit) {
      // Tag aliasing horizon: entries written exactly 2^32 generations ago
      // would read as live again. Scrub once and restart — this is one
      // memset per four billion seals.
      std::fill(slots_.begin(), slots_.end(), Slot{});
      gen_ = 1;
    }
  }

  size_t size() const { return size_; }

  /// Slot-array capacity; 0 until the first insert. The pipeline uses this
  /// to hand a virgin ring slot a recycled buffer from a sealed slice
  /// instead of letting it re-ramp through every power of two.
  size_t capacity() const { return slots_.size(); }

 private:
  /// tag packs (generation << 32 | cell): one compare checks both "live in
  /// the current generation" and "same cell". Generation 0 is never
  /// current, so zero-initialised slots read as empty.
  struct alignas(32) Slot {
    uint64_t meter = 0;
    uint64_t tag = 0;
    double value = 0.0;
  };

  static uint64_t Hash(uint64_t meter, int32_t cell) {
    uint64_t h = 1469598103934665603ull;  // FNV-1a over the two key words
    for (const uint64_t v :
         {meter, static_cast<uint64_t>(static_cast<uint32_t>(cell))}) {
      h ^= v;
      h *= 1099511628211ull;
    }
    return h;
  }

  /// Doubles capacity and rehashes the live entries. Amortised O(1) per
  /// insert, and quiescent once capacity reaches the slice's steady-state
  /// population.
  void Grow() {
    const size_t capacity = slots_.empty() ? kMinSlots : slots_.size() * 2;
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(capacity, Slot{});
    const size_t mask = capacity - 1;
    for (const Slot& s : old) {
      if ((s.tag >> 32) != gen_) continue;
      size_t i = Hash(s.meter, static_cast<int32_t>(s.tag)) & mask;
      while ((slots_[i].tag >> 32) == gen_) i = (i + 1) & mask;
      slots_[i] = s;
    }
  }

  static constexpr size_t kMinSlots = 256;
  static constexpr uint64_t kGenLimit = 1ull << 32;

  std::vector<Slot> slots_;
  uint64_t gen_ = 1;
  size_t size_ = 0;
};

}  // namespace stpt::ingest

#endif  // STPT_INGEST_CONTRIBUTION_MAP_H_
