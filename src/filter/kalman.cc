#include "filter/kalman.h"

#include <numeric>
#include <vector>

namespace stpt::filter {

StatusOr<ScalarKalmanFilter> ScalarKalmanFilter::Create(double process_variance,
                                                        double measurement_variance,
                                                        double initial_estimate,
                                                        double initial_variance) {
  if (!(process_variance > 0.0)) {
    return Status::InvalidArgument("KalmanFilter: process variance must be > 0");
  }
  if (!(measurement_variance > 0.0)) {
    return Status::InvalidArgument("KalmanFilter: measurement variance must be > 0");
  }
  if (initial_variance < 0.0) {
    return Status::InvalidArgument("KalmanFilter: initial variance must be >= 0");
  }
  return ScalarKalmanFilter(process_variance, measurement_variance, initial_estimate,
                            initial_variance);
}

double ScalarKalmanFilter::Predict() {
  variance_ += q_;
  return estimate_;
}

double ScalarKalmanFilter::Correct(double z) {
  gain_ = variance_ / (variance_ + r_);
  estimate_ += gain_ * (z - estimate_);
  variance_ *= (1.0 - gain_);
  return estimate_;
}

PidController::PidController(double kp, double ki, double kd, int integral_window)
    : kp_(kp), ki_(ki), kd_(kd), window_(integral_window) {}

double PidController::Update(double error) {
  recent_.push_back(error);
  if (static_cast<int>(recent_.size()) > window_) {
    recent_.erase(recent_.begin());
  }
  const double integral =
      std::accumulate(recent_.begin(), recent_.end(), 0.0) /
      static_cast<double>(recent_.size());
  const double derivative = has_prev_ ? (error - prev_error_) : 0.0;
  prev_error_ = error;
  has_prev_ = true;
  return kp_ * error + ki_ * integral + kd_ * derivative;
}

void PidController::Reset() {
  recent_.clear();
  prev_error_ = 0.0;
  has_prev_ = false;
}

}  // namespace stpt::filter
