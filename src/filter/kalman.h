#ifndef STPT_FILTER_KALMAN_H_
#define STPT_FILTER_KALMAN_H_

#include <vector>

#include "common/status.h"

namespace stpt::filter {

/// Scalar Kalman filter with a constant-state process model
/// (x_t = x_{t-1} + w_t, z_t = x_t + v_t), the model used by FAST
/// (Fan & Xiong, 2013) for DP time-series posterior estimation.
class ScalarKalmanFilter {
 public:
  /// Creates a filter. `process_variance` (Q) models drift between steps;
  /// `measurement_variance` (R) is the perturbation noise variance (for a
  /// Laplace(b) mechanism, R = 2 b^2). Returns InvalidArgument for
  /// non-positive variances.
  static StatusOr<ScalarKalmanFilter> Create(double process_variance,
                                             double measurement_variance,
                                             double initial_estimate,
                                             double initial_variance);

  /// Time update: propagates the prior one step (adds Q to the variance).
  /// Returns the prior estimate.
  double Predict();

  /// Measurement update with a (noisy) observation z. Returns the posterior
  /// estimate.
  double Correct(double z);

  double estimate() const { return estimate_; }
  double variance() const { return variance_; }
  double gain() const { return gain_; }

 private:
  ScalarKalmanFilter(double q, double r, double x0, double p0)
      : q_(q), r_(r), estimate_(x0), variance_(p0) {}

  double q_;
  double r_;
  double estimate_;
  double variance_;
  double gain_ = 0.0;
};

/// Discrete PID controller used by FAST's adaptive-sampling loop to adjust
/// the sampling interval from the observed feedback error.
class PidController {
 public:
  /// Standard PID gains and an integral window; errors are accumulated over
  /// at most `integral_window` most recent updates.
  PidController(double kp, double ki, double kd, int integral_window = 5);

  /// Feeds one error observation; returns the control signal.
  double Update(double error);

  void Reset();

 private:
  double kp_, ki_, kd_;
  int window_;
  double prev_error_ = 0.0;
  bool has_prev_ = false;
  // Ring buffer of recent errors for the windowed integral term.
  std::vector<double> recent_;
};

}  // namespace stpt::filter

#endif  // STPT_FILTER_KALMAN_H_
