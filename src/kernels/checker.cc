#include "kernels/checker.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"

namespace stpt::kernels {
namespace {

std::vector<double> RandomVector(size_t n, Rng& rng, double lo = -1.0,
                                 double hi = 1.0) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.Uniform(lo, hi);
  return v;
}

bool BitEqual(double a, double b) {
  uint64_t ab, bb;
  std::memcpy(&ab, &a, sizeof(ab));
  std::memcpy(&bb, &b, sizeof(bb));
  return ab == bb;
}

Status CompareBits(const std::vector<double>& ref,
                   const std::vector<double>& test, const std::string& what) {
  if (ref.size() != test.size()) {
    return Status::Internal(what + ": size mismatch");
  }
  for (size_t i = 0; i < ref.size(); ++i) {
    if (!BitEqual(ref[i], test[i])) {
      return Status::Internal(what + ": bit mismatch at [" +
                              std::to_string(i) + "] ref=" +
                              std::to_string(ref[i]) + " test=" +
                              std::to_string(test[i]));
    }
  }
  return Status::OK();
}

Status CompareEps(const double* ref, const double* test, size_t n,
                  double epsilon, const std::string& what) {
  for (size_t i = 0; i < n; ++i) {
    const double denom =
        std::max({1.0, std::fabs(ref[i]), std::fabs(test[i])});
    const double err = std::fabs(ref[i] - test[i]) / denom;
    if (!(err <= epsilon)) {
      return Status::Internal(what + ": error " + std::to_string(err) +
                              " > eps at [" + std::to_string(i) + "] ref=" +
                              std::to_string(ref[i]) + " test=" +
                              std::to_string(test[i]));
    }
  }
  return Status::OK();
}

}  // namespace

Status Checker::CheckMatMul(const MatMulShape& s, uint64_t seed,
                            double epsilon) const {
  if (!s.Valid()) return Status::InvalidArgument("CheckMatMul: bad shape");
  Rng rng(seed);
  const size_t an = static_cast<size_t>(s.batch) * s.m * s.k;
  const size_t bn = (s.b_batched ? s.batch : 1) * static_cast<size_t>(s.k) * s.n;
  const size_t cn = static_cast<size_t>(s.batch) * s.m * s.n;
  const std::vector<double> a = RandomVector(an, rng);
  const std::vector<double> b = RandomVector(bn, rng);
  const std::vector<double> g = RandomVector(cn, rng);

  std::vector<double> c_ref(cn, 0.0), c_test(cn, 0.0);
  ref_->MatMulFwd(a.data(), b.data(), c_ref.data(), s);
  test_->MatMulFwd(a.data(), b.data(), c_test.data(), s);
  STPT_RETURN_IF_ERROR(
      CompareEps(c_ref.data(), c_test.data(), cn, epsilon, "MatMulFwd"));

  // Prefilled accumulators exercise the += contract of the backward pair.
  const std::vector<double> ga0 = RandomVector(an, rng);
  std::vector<double> ga_ref = ga0, ga_test = ga0;
  ref_->MatMulBwdA(g.data(), b.data(), ga_ref.data(), s);
  test_->MatMulBwdA(g.data(), b.data(), ga_test.data(), s);
  STPT_RETURN_IF_ERROR(
      CompareEps(ga_ref.data(), ga_test.data(), an, epsilon, "MatMulBwdA"));

  const std::vector<double> gb0 = RandomVector(bn, rng);
  std::vector<double> gb_ref = gb0, gb_test = gb0;
  ref_->MatMulBwdB(g.data(), a.data(), gb_ref.data(), s);
  test_->MatMulBwdB(g.data(), a.data(), gb_test.data(), s);
  return CompareEps(gb_ref.data(), gb_test.data(), bn, epsilon, "MatMulBwdB");
}

Status Checker::CheckFft(size_t n, uint64_t seed, double epsilon) const {
  Rng rng(seed);
  std::vector<std::complex<double>> fwd_ref(n), fwd_test(n);
  for (size_t i = 0; i < n; ++i) {
    fwd_ref[i] = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0)};
    fwd_test[i] = fwd_ref[i];
  }
  STPT_RETURN_IF_ERROR(ref_->FftPow2(fwd_ref.data(), n, /*inverse=*/false));
  STPT_RETURN_IF_ERROR(test_->FftPow2(fwd_test.data(), n, /*inverse=*/false));
  STPT_RETURN_IF_ERROR(
      CompareEps(reinterpret_cast<const double*>(fwd_ref.data()),
                 reinterpret_cast<const double*>(fwd_test.data()), 2 * n,
                 epsilon, "FftPow2(fwd)"));
  STPT_RETURN_IF_ERROR(ref_->FftPow2(fwd_ref.data(), n, /*inverse=*/true));
  STPT_RETURN_IF_ERROR(test_->FftPow2(fwd_test.data(), n, /*inverse=*/true));
  STPT_RETURN_IF_ERROR(
      CompareEps(reinterpret_cast<const double*>(fwd_ref.data()),
                 reinterpret_cast<const double*>(fwd_test.data()), 2 * n,
                 epsilon, "FftPow2(inv)"));
  // Both backends must reject invalid sizes the same way.
  std::complex<double> junk[3] = {};
  for (const Backend* backend : {ref_, test_}) {
    if (backend->FftPow2(junk, 3, false).ok() ||
        backend->FftPow2(junk, 0, false).ok()) {
      return Status::Internal("FftPow2 accepted a non-power-of-two size");
    }
  }
  return Status::OK();
}

Status Checker::CheckHaar(size_t n, uint64_t seed) const {
  Rng rng(seed);
  const std::vector<double> input = RandomVector(n, rng);
  auto fwd_ref = ref_->HaarForward(input);
  auto fwd_test = test_->HaarForward(input);
  STPT_RETURN_IF_ERROR(fwd_ref.status());
  STPT_RETURN_IF_ERROR(fwd_test.status());
  STPT_RETURN_IF_ERROR(CompareBits(*fwd_ref, *fwd_test, "HaarForward"));
  auto inv_ref = ref_->HaarInverse(*fwd_ref);
  auto inv_test = test_->HaarInverse(*fwd_ref);
  STPT_RETURN_IF_ERROR(inv_ref.status());
  STPT_RETURN_IF_ERROR(inv_test.status());
  return CompareBits(*inv_ref, *inv_test, "HaarInverse");
}

Status Checker::CheckScan(int cx, int cy, int ct, int t_lo,
                          uint64_t seed) const {
  if (cx < 1 || cy < 1 || ct < 1 || t_lo < 0 || t_lo >= ct) {
    return Status::InvalidArgument("CheckScan: bad dims");
  }
  Rng rng(seed);
  const size_t cells = static_cast<size_t>(cx) * cy * ct;
  const int64_t pillars = static_cast<int64_t>(cx) * cy;
  const std::vector<double> src0 = RandomVector(cells, rng);

  // ScanT takes (pillars, ct) rather than (cx, cy, ct), so dispatch per
  // pass index instead of via member pointers.
  const auto run_pass = [&](const Backend* backend, int pass,
                            const double* src, double* dst, int lo) {
    switch (pass) {
      case 0:
        backend->ScanT(src, dst, pillars, ct, lo);
        break;
      case 1:
        backend->ScanY(src, dst, cx, cy, ct, lo);
        break;
      default:
        backend->ScanX(src, dst, cx, cy, ct, lo);
        break;
    }
  };
  static const char* kPassNames[3] = {"ScanT", "ScanY", "ScanX"};

  for (int pass = 0; pass < 3; ++pass) {
    const std::string what = kPassNames[pass];
    // Staged full build (src -> dst, t_lo = 0).
    std::vector<double> full_ref(cells, -7.0), full_test(cells, -7.0);
    run_pass(ref_, pass, src0.data(), full_ref.data(), 0);
    run_pass(test_, pass, src0.data(), full_test.data(), 0);
    STPT_RETURN_IF_ERROR(CompareBits(full_ref, full_test, what + "(full)"));

    // Aliased in-place build must match the staged result bitwise.
    std::vector<double> inplace_ref = src0, inplace_test = src0;
    run_pass(ref_, pass, inplace_ref.data(), inplace_ref.data(), 0);
    run_pass(test_, pass, inplace_test.data(), inplace_test.data(), 0);
    STPT_RETURN_IF_ERROR(
        CompareBits(inplace_ref, inplace_test, what + "(in-place)"));
    STPT_RETURN_IF_ERROR(
        CompareBits(full_ref, inplace_ref, what + "(in-place vs staged)"));

    if (t_lo == 0) continue;
    // Dirty-suffix rescan: perturb src on [t_lo, ct), keep the clean full
    // result below t_lo in dst, and require the incremental rescan to equal
    // a from-scratch pass over the perturbed volume — on both backends.
    std::vector<double> src1 = src0;
    for (size_t p = 0; p < static_cast<size_t>(pillars); ++p) {
      for (int t = t_lo; t < ct; ++t) {
        src1[p * ct + t] += rng.Uniform(-1.0, 1.0);
      }
    }
    std::vector<double> scratch_ref(cells, -7.0);
    run_pass(ref_, pass, src1.data(), scratch_ref.data(), 0);
    std::vector<double> incr_ref = full_ref, incr_test = full_test;
    run_pass(ref_, pass, src1.data(), incr_ref.data(), t_lo);
    run_pass(test_, pass, src1.data(), incr_test.data(), t_lo);
    STPT_RETURN_IF_ERROR(
        CompareBits(scratch_ref, incr_ref, what + "(incremental vs scratch)"));
    STPT_RETURN_IF_ERROR(
        CompareBits(incr_ref, incr_test, what + "(incremental)"));
  }
  return Status::OK();
}

Status Checker::CheckLaplace(size_t n, double scale, uint64_t seed) const {
  Rng rng(seed);
  const std::vector<double> in = RandomVector(n, rng, -10.0, 10.0);
  const Rng base = rng.Fork();
  std::vector<double> out_ref(n, 0.0), out_test(n, 0.0);
  ref_->LaplaceBatch(in.data(), out_ref.data(), n, scale, base);
  test_->LaplaceBatch(in.data(), out_test.data(), n, scale, base);
  STPT_RETURN_IF_ERROR(CompareBits(out_ref, out_test, "LaplaceBatch"));
  // In-place aliasing must not change the draws.
  std::vector<double> inplace = in;
  test_->LaplaceBatch(inplace.data(), inplace.data(), n, scale, base);
  return CompareBits(out_test, inplace, "LaplaceBatch(in-place)");
}

Status Checker::CheckGeometric(size_t n, double alpha, uint64_t seed) const {
  Rng rng(seed);
  std::vector<int64_t> in(n);
  for (int64_t& v : in) v = rng.UniformInt(-1000, 1000);
  const Rng base = rng.Fork();
  std::vector<int64_t> out_ref(n, 0), out_test(n, 0);
  ref_->GeometricBatch(in.data(), out_ref.data(), n, alpha, base);
  test_->GeometricBatch(in.data(), out_test.data(), n, alpha, base);
  for (size_t i = 0; i < n; ++i) {
    if (out_ref[i] != out_test[i]) {
      return Status::Internal("GeometricBatch: mismatch at [" +
                              std::to_string(i) + "] ref=" +
                              std::to_string(out_ref[i]) + " test=" +
                              std::to_string(out_test[i]));
    }
  }
  return Status::OK();
}

}  // namespace stpt::kernels
