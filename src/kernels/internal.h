#ifndef STPT_KERNELS_INTERNAL_H_
#define STPT_KERNELS_INTERNAL_H_

// Implementation-shared declarations for the kernel backends. Not part of
// the public API — consumers use backend.h (Registry / Default / GetBackend).

#include "kernels/backend.h"

namespace stpt::kernels {

/// The scalar reference implementation — the oracle every optimized backend
/// is checked against. The loop bodies are the pre-backend scalar code from
/// nn/ops.cc, signal/fft.cc, signal/wavelet.cc, grid/consumption_matrix.cc,
/// ingest/incremental_prefix.cc, and dp/mechanisms.cc, moved verbatim so the
/// numeric history of the repo is unchanged.
class NaiveBackend : public Backend {
 public:
  const std::string& name() const override;

  void MatMulFwd(const double* a, const double* b, double* c,
                 const MatMulShape& s) const override;
  void MatMulBwdA(const double* g, const double* b, double* ga,
                  const MatMulShape& s) const override;
  void MatMulBwdB(const double* g, const double* a, double* gb,
                  const MatMulShape& s) const override;
  Status FftPow2(std::complex<double>* data, size_t n,
                 bool inverse) const override;
  void HaarLevelFwd(const double* in, double* out, size_t half) const override;
  void HaarLevelInv(const double* in, double* out, size_t half) const override;
  void ScanT(const double* src, double* dst, int64_t pillars, int ct,
             int t_lo) const override;
  void ScanY(const double* src, double* dst, int cx, int cy, int ct,
             int t_lo) const override;
  void ScanX(const double* src, double* dst, int cx, int cy, int ct,
             int t_lo) const override;
  void LaplaceBatch(const double* in, double* out, size_t n, double scale,
                    const Rng& base) const override;
  void GeometricBatch(const int64_t* in, int64_t* out, size_t n, double alpha,
                      const Rng& base) const override;
};

/// The naive singleton (always available).
const Backend* NaiveBackendInstance();

/// The AVX2/FMA singleton, or nullptr when the build targets a non-x86-64
/// architecture or the running CPU lacks AVX2/FMA (checked once via CPUID).
const Backend* Avx2BackendInstance();

/// Products below this many flops run inline instead of on the exec pool
/// (moved from nn/ops.cc; shared by both backends so dispatch behaviour is
/// part of the oracle contract, not an implementation detail).
inline constexpr int64_t kMatMulParallelFlops = 32 * 1024;

}  // namespace stpt::kernels

#endif  // STPT_KERNELS_INTERNAL_H_
