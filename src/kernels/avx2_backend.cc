#include <cmath>
#include <utility>
#include <vector>

#include "common/math_util.h"
#include "exec/parallel.h"
#include "kernels/internal.h"

// AVX2/FMA backend. This translation unit is compiled with
// -mavx2 -mfma -ffp-contract=off (see src/kernels/CMakeLists.txt):
// the vector math is explicit intrinsics, and contraction is disabled so
// the scalar tails and the sampler transform keep the exact rounding steps
// of the naive oracle (bit-exact families must not pick up implicit FMAs).
//
// Tolerance contract recap (backend.h): MatMul and FFT reassociate sums
// (FMA + vector accumulators) and are epsilon-checked; Haar levels, the
// three scan passes, and the samplers perform the naive per-element op
// chain in vector registers and are bitwise-checked.

#if defined(__x86_64__)

#include <immintrin.h>

namespace stpt::kernels {
namespace {

const double kInvSqrt2 = 1.0 / std::sqrt(2.0);
constexpr size_t kSamplerParallelMin = 4096;

// ---- 64-bit integer helpers (AVX2 has no native 64x64 multiply) ----------

inline __m256i Mul64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i ah = _mm256_srli_epi64(a, 32);
  const __m256i bh = _mm256_srli_epi64(b, 32);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(ah, b), _mm256_mul_epu32(a, bh));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

inline __m256i Rotl64(__m256i x, int k) {
  return _mm256_or_si256(_mm256_slli_epi64(x, k), _mm256_srli_epi64(x, 64 - k));
}

// splitmix64 constants (mirrors common/rng.cc).
constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
constexpr uint64_t kMixA = 0xBF58476D1CE4E5B9ULL;
constexpr uint64_t kMixB = 0x94D049BB133111EBULL;
constexpr uint64_t kStreamSalt = 0xD1B54A32D192ED03ULL;

/// The mixing body of SplitMix64 (everything after the += golden step),
/// four lanes at a time. Pure mod-2^64 integer arithmetic, so the lanes are
/// bit-identical to the scalar rng.cc pipeline.
inline __m256i SplitMixBody(__m256i z) {
  z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 30));
  z = Mul64(z, _mm256_set1_epi64x(static_cast<long long>(kMixA)));
  z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 27));
  z = Mul64(z, _mm256_set1_epi64x(static_cast<long long>(kMixB)));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

inline uint64_t SplitMix64Scalar(uint64_t* state) {
  uint64_t z = (*state += kGolden);
  z = (z ^ (z >> 30)) * kMixA;
  z = (z ^ (z >> 27)) * kMixB;
  return z ^ (z >> 31);
}

// ---- dense dot product (4 accumulators, FMA) ------------------------------

inline double DotContig(const double* x, const double* y, int len) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  int i = 0;
  for (; i + 16 <= len; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4),
                           acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 8), _mm256_loadu_pd(y + i + 8),
                           acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 12),
                           _mm256_loadu_pd(y + i + 12), acc3);
  }
  for (; i + 4 <= len; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i), acc0);
  }
  const __m256d acc =
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  const __m128d lo = _mm256_castpd256_pd128(acc);
  const __m128d hi = _mm256_extractf128_pd(acc, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double s = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < len; ++i) s += x[i] * y[i];
  return s;
}

/// B-panel depth kept resident across a task's output rows (cache blocking
/// for the non-transposed forward axpy kernel).
constexpr int kPanelK = 256;

class Avx2Backend : public NaiveBackend {
 public:
  const std::string& name() const override {
    static const std::string kName = "avx2";
    return kName;
  }

  // ---- MatMul (epsilon family) -------------------------------------------

  void MatMulFwd(const double* a, const double* b, double* c,
                 const MatMulShape& s) const override {
    const int m = s.m, n = s.n, k = s.k;
    const size_t a_stride = s.a_stride();
    const size_t b_stride = s.b_stride();
    const size_t c_stride = s.c_stride();
    const int64_t rows = s.rows();
    const auto forward_rows = [&](int64_t begin, int64_t end) {
      if (s.transpose_b) {
        // B rows are contiguous in kk: one dense dot per output element.
        for (int64_t r = begin; r < end; ++r) {
          const int bt = static_cast<int>(r / m);
          const int i = static_cast<int>(r % m);
          const double* A = a + bt * a_stride + static_cast<size_t>(i) * k;
          const double* B = b + bt * b_stride;
          double* C = c + bt * c_stride + static_cast<size_t>(i) * n;
          for (int j = 0; j < n; ++j) {
            C[j] = DotContig(A, B + static_cast<size_t>(j) * k, k);
          }
        }
      } else {
        // axpy form: C[i,:] accumulates broadcast(A[i,kk]) * B[kk,:], with
        // the kk loop split into panels so the B panel stays hot across the
        // task's rows.
        for (int64_t r = begin; r < end; ++r) {
          double* C = c + (r / m) * c_stride +
                      static_cast<size_t>(r % m) * n;
          for (int j = 0; j < n; ++j) C[j] = 0.0;
        }
        for (int kk0 = 0; kk0 < k; kk0 += kPanelK) {
          const int kk1 = kk0 + kPanelK < k ? kk0 + kPanelK : k;
          for (int64_t r = begin; r < end; ++r) {
            const int bt = static_cast<int>(r / m);
            const int i = static_cast<int>(r % m);
            const double* A = a + bt * a_stride + static_cast<size_t>(i) * k;
            const double* B = b + bt * b_stride;
            double* C = c + bt * c_stride + static_cast<size_t>(i) * n;
            for (int kk = kk0; kk < kk1; ++kk) {
              const __m256d av = _mm256_set1_pd(A[kk]);
              const double* Brow = B + static_cast<size_t>(kk) * n;
              int j = 0;
              for (; j + 4 <= n; j += 4) {
                _mm256_storeu_pd(
                    C + j, _mm256_fmadd_pd(av, _mm256_loadu_pd(Brow + j),
                                           _mm256_loadu_pd(C + j)));
              }
              for (; j < n; ++j) C[j] += A[kk] * Brow[j];
            }
          }
        }
      }
    };
    if (s.flops() >= kMatMulParallelFlops) {
      exec::ParallelForRange(rows, forward_rows);
    } else {
      forward_rows(0, rows);
    }
  }

  void MatMulBwdA(const double* g, const double* b, double* ga,
                  const MatMulShape& s) const override {
    const int m = s.m, n = s.n, k = s.k;
    const size_t a_stride = s.a_stride();
    const size_t b_stride = s.b_stride();
    const size_t c_stride = s.c_stride();
    const int64_t rows = s.rows();
    const auto backward_a = [&](int64_t begin, int64_t end) {
      for (int64_t r = begin; r < end; ++r) {
        const int bt = static_cast<int>(r / m);
        const int i = static_cast<int>(r % m);
        const double* G = g + bt * c_stride + static_cast<size_t>(i) * n;
        const double* B = b + bt * b_stride;
        double* GA = ga + bt * a_stride + static_cast<size_t>(i) * k;
        if (!s.transpose_b) {
          // GA[kk] += G[i,:] . B[kk,:], both stride-1.
          for (int kk = 0; kk < k; ++kk) {
            GA[kk] += DotContig(G, B + static_cast<size_t>(kk) * n, n);
          }
        } else {
          // B rows are contiguous in kk: axpy broadcast(G[j]) * B[j,:].
          for (int j = 0; j < n; ++j) {
            const __m256d gv = _mm256_set1_pd(G[j]);
            const double* Brow = B + static_cast<size_t>(j) * k;
            int kk = 0;
            for (; kk + 4 <= k; kk += 4) {
              _mm256_storeu_pd(
                  GA + kk, _mm256_fmadd_pd(gv, _mm256_loadu_pd(Brow + kk),
                                           _mm256_loadu_pd(GA + kk)));
            }
            for (; kk < k; ++kk) GA[kk] += G[j] * Brow[kk];
          }
        }
      }
    };
    if (s.flops() >= kMatMulParallelFlops) {
      exec::ParallelForRange(rows, backward_a);
    } else {
      backward_a(0, rows);
    }
  }

  void MatMulBwdB(const double* g, const double* a, double* gb,
                  const MatMulShape& s) const override {
    const int batch = s.batch, m = s.m, n = s.n, k = s.k;
    const size_t a_stride = s.a_stride();
    const size_t b_stride = s.b_stride();
    const size_t c_stride = s.c_stride();
    const bool parallel = s.flops() >= kMatMulParallelFlops;
    // Vector accumulator over the contiguous GB row axis; the reduction over
    // i stays inside so each GB element still receives one add per bt.
    const auto gb_row_plain = [&](const double* G, const double* A, double* GB,
                                  int kk) {
      int j = 0;
      for (; j + 4 <= n; j += 4) {
        __m256d acc = _mm256_setzero_pd();
        for (int i = 0; i < m; ++i) {
          acc = _mm256_fmadd_pd(_mm256_set1_pd(A[i * k + kk]),
                                _mm256_loadu_pd(G + static_cast<size_t>(i) * n + j),
                                acc);
        }
        double* out = GB + static_cast<size_t>(kk) * n + j;
        _mm256_storeu_pd(out, _mm256_add_pd(_mm256_loadu_pd(out), acc));
      }
      for (; j < n; ++j) {
        double sum = 0.0;
        for (int i = 0; i < m; ++i) sum += A[i * k + kk] * G[i * n + j];
        GB[static_cast<size_t>(kk) * n + j] += sum;
      }
    };
    const auto gb_row_transposed = [&](const double* G, const double* A,
                                       double* GB, int j) {
      int kk = 0;
      for (; kk + 4 <= k; kk += 4) {
        __m256d acc = _mm256_setzero_pd();
        for (int i = 0; i < m; ++i) {
          acc = _mm256_fmadd_pd(_mm256_set1_pd(G[i * n + j]),
                                _mm256_loadu_pd(A + static_cast<size_t>(i) * k + kk),
                                acc);
        }
        double* out = GB + static_cast<size_t>(j) * k + kk;
        _mm256_storeu_pd(out, _mm256_add_pd(_mm256_loadu_pd(out), acc));
      }
      for (; kk < k; ++kk) {
        double sum = 0.0;
        for (int i = 0; i < m; ++i) sum += A[i * k + kk] * G[i * n + j];
        GB[static_cast<size_t>(j) * k + kk] += sum;
      }
    };
    if (s.b_batched) {
      const auto backward_b_batched = [&](int64_t begin, int64_t end) {
        for (int64_t bt = begin; bt < end; ++bt) {
          const double* G = g + bt * c_stride;
          const double* A = a + bt * a_stride;
          double* GB = gb + bt * b_stride;
          if (!s.transpose_b) {
            for (int kk = 0; kk < k; ++kk) gb_row_plain(G, A, GB, kk);
          } else {
            for (int j = 0; j < n; ++j) gb_row_transposed(G, A, GB, j);
          }
        }
      };
      if (parallel) {
        exec::ParallelForRange(batch, backward_b_batched);
      } else {
        backward_b_batched(0, batch);
      }
    } else {
      const int gb_rows = s.transpose_b ? n : k;
      const auto backward_b_shared = [&](int64_t begin, int64_t end) {
        for (int64_t row = begin; row < end; ++row) {
          for (int bt = 0; bt < batch; ++bt) {
            const double* G = g + bt * c_stride;
            const double* A = a + bt * a_stride;
            if (!s.transpose_b) {
              gb_row_plain(G, A, gb, static_cast<int>(row));
            } else {
              gb_row_transposed(G, A, gb, static_cast<int>(row));
            }
          }
        }
      };
      if (parallel) {
        exec::ParallelForRange(gb_rows, backward_b_shared);
      } else {
        backward_b_shared(0, gb_rows);
      }
    }
  }

  // ---- FFT (epsilon family) ----------------------------------------------

  Status FftPow2(std::complex<double>* a, size_t n,
                 bool inverse) const override {
    if (n < 4) return NaiveBackend::FftPow2(a, n, inverse);
    if (!IsPowerOfTwo(n)) {
      return Status::InvalidArgument(
          "FftPow2: size must be a nonzero power of two");
    }
    using Complex = std::complex<double>;
    // Bit-reversal permutation (scalar, identical to naive).
    for (size_t i = 1, j = 0; i < n; ++i) {
      size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) std::swap(a[i], a[j]);
    }
    // len == 2 stage has unit twiddles: plain butterflies.
    for (size_t i = 0; i < n; i += 2) {
      const Complex u = a[i];
      const Complex v = a[i + 1];
      a[i] = u + v;
      a[i + 1] = u - v;
    }
    // Stages len >= 4: per-stage twiddle table filled with the same scalar
    // w *= wlen recurrence as naive, butterflies two complexes per ymm.
    std::vector<Complex> tw(n / 2);
    for (size_t len = 4; len <= n; len <<= 1) {
      const size_t half = len / 2;
      const double ang =
          2.0 * M_PI / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
      const Complex wlen(std::cos(ang), std::sin(ang));
      Complex w(1.0, 0.0);
      for (size_t k = 0; k < half; ++k) {
        tw[k] = w;
        w *= wlen;
      }
      const double* twd = reinterpret_cast<const double*>(tw.data());
      for (size_t i = 0; i < n; i += len) {
        double* base = reinterpret_cast<double*>(a + i);
        double* mid = reinterpret_cast<double*>(a + i + half);
        for (size_t k = 0; k < half; k += 2) {
          const __m256d u = _mm256_loadu_pd(base + 2 * k);
          const __m256d v = _mm256_loadu_pd(mid + 2 * k);
          const __m256d wv = _mm256_loadu_pd(twd + 2 * k);
          const __m256d wr = _mm256_movedup_pd(wv);
          const __m256d wi = _mm256_permute_pd(wv, 0xF);
          const __m256d vswap = _mm256_permute_pd(v, 0x5);
          // (vr*wr - vi*wi, vi*wr + vr*wi) per complex lane.
          const __m256d vw =
              _mm256_fmaddsub_pd(v, wr, _mm256_mul_pd(vswap, wi));
          _mm256_storeu_pd(base + 2 * k, _mm256_add_pd(u, vw));
          _mm256_storeu_pd(mid + 2 * k, _mm256_sub_pd(u, vw));
        }
      }
    }
    if (inverse) {
      const __m256d inv = _mm256_set1_pd(1.0 / static_cast<double>(n));
      double* d = reinterpret_cast<double*>(a);
      for (size_t i = 0; i < 2 * n; i += 4) {
        _mm256_storeu_pd(d + i, _mm256_mul_pd(_mm256_loadu_pd(d + i), inv));
      }
    }
    return Status::OK();
  }

  // ---- Haar levels (bit-exact: add/sub then mul, never FMA) --------------

  void HaarLevelFwd(const double* in, double* out,
                    size_t half) const override {
    const __m256d inv = _mm256_set1_pd(kInvSqrt2);
    size_t i = 0;
    for (; i + 4 <= half; i += 4) {
      const __m256d x0 = _mm256_loadu_pd(in + 2 * i);      // e0 o0 e1 o1
      const __m256d x1 = _mm256_loadu_pd(in + 2 * i + 4);  // e2 o2 e3 o3
      __m256d ev = _mm256_unpacklo_pd(x0, x1);             // e0 e2 e1 e3
      __m256d od = _mm256_unpackhi_pd(x0, x1);             // o0 o2 o1 o3
      ev = _mm256_permute4x64_pd(ev, 0xD8);                // e0 e1 e2 e3
      od = _mm256_permute4x64_pd(od, 0xD8);
      _mm256_storeu_pd(out + i, _mm256_mul_pd(_mm256_add_pd(ev, od), inv));
      _mm256_storeu_pd(out + half + i,
                       _mm256_mul_pd(_mm256_sub_pd(ev, od), inv));
    }
    for (; i < half; ++i) {
      out[i] = (in[2 * i] + in[2 * i + 1]) * kInvSqrt2;
      out[half + i] = (in[2 * i] - in[2 * i + 1]) * kInvSqrt2;
    }
  }

  void HaarLevelInv(const double* in, double* out,
                    size_t half) const override {
    const __m256d inv = _mm256_set1_pd(kInvSqrt2);
    size_t i = 0;
    for (; i + 4 <= half; i += 4) {
      const __m256d av = _mm256_loadu_pd(in + i);
      const __m256d dv = _mm256_loadu_pd(in + half + i);
      const __m256d sum = _mm256_mul_pd(_mm256_add_pd(av, dv), inv);
      const __m256d dif = _mm256_mul_pd(_mm256_sub_pd(av, dv), inv);
      const __m256d lo = _mm256_unpacklo_pd(sum, dif);  // s0 f0 s2 f2
      const __m256d hi = _mm256_unpackhi_pd(sum, dif);  // s1 f1 s3 f3
      _mm256_storeu_pd(out + 2 * i, _mm256_permute2f128_pd(lo, hi, 0x20));
      _mm256_storeu_pd(out + 2 * i + 4, _mm256_permute2f128_pd(lo, hi, 0x31));
    }
    for (; i < half; ++i) {
      out[2 * i] = (in[i] + in[half + i]) * kInvSqrt2;
      out[2 * i + 1] = (in[i] - in[half + i]) * kInvSqrt2;
    }
  }

  // ---- scan stages (bit-exact) -------------------------------------------

  void ScanT(const double* src, double* dst, int64_t pillars, int ct,
             int t_lo) const override {
    // Four pillars per task: a 4x4 in-register transpose turns four
    // latency-bound serial chains into one vector chain; each element still
    // receives exactly its naive add d[t] = s[t] + d[t-1].
    const int64_t groups = pillars / 4;
    exec::ParallelForRange(groups, [&](int64_t begin, int64_t end) {
      for (int64_t gr = begin; gr < end; ++gr) {
        const double* s0 = src + static_cast<size_t>(4 * gr) * ct;
        const double* s1 = s0 + ct;
        const double* s2 = s1 + ct;
        const double* s3 = s2 + ct;
        double* d0 = dst + static_cast<size_t>(4 * gr) * ct;
        double* d1 = d0 + ct;
        double* d2 = d1 + ct;
        double* d3 = d2 + ct;
        int t = t_lo;
        __m256d carry;
        if (t == 0) {
          d0[0] = s0[0];
          d1[0] = s1[0];
          d2[0] = s2[0];
          d3[0] = s3[0];
          carry = _mm256_set_pd(d3[0], d2[0], d1[0], d0[0]);
          t = 1;
        } else {
          carry = _mm256_set_pd(d3[t - 1], d2[t - 1], d1[t - 1], d0[t - 1]);
        }
        for (; t + 4 <= ct; t += 4) {
          const __m256d r0 = _mm256_loadu_pd(s0 + t);
          const __m256d r1 = _mm256_loadu_pd(s1 + t);
          const __m256d r2 = _mm256_loadu_pd(s2 + t);
          const __m256d r3 = _mm256_loadu_pd(s3 + t);
          const __m256d t0 = _mm256_unpacklo_pd(r0, r1);
          const __m256d t1 = _mm256_unpackhi_pd(r0, r1);
          const __m256d t2 = _mm256_unpacklo_pd(r2, r3);
          const __m256d t3 = _mm256_unpackhi_pd(r2, r3);
          // c_j holds src[pillar 0..3] at time t + j.
          const __m256d c0in = _mm256_permute2f128_pd(t0, t2, 0x20);
          const __m256d c1in = _mm256_permute2f128_pd(t1, t3, 0x20);
          const __m256d c2in = _mm256_permute2f128_pd(t0, t2, 0x31);
          const __m256d c3in = _mm256_permute2f128_pd(t1, t3, 0x31);
          const __m256d c0 = _mm256_add_pd(c0in, carry);
          const __m256d c1 = _mm256_add_pd(c1in, c0);
          const __m256d c2 = _mm256_add_pd(c2in, c1);
          const __m256d c3 = _mm256_add_pd(c3in, c2);
          carry = c3;
          const __m256d u0 = _mm256_unpacklo_pd(c0, c1);
          const __m256d u1 = _mm256_unpackhi_pd(c0, c1);
          const __m256d u2 = _mm256_unpacklo_pd(c2, c3);
          const __m256d u3 = _mm256_unpackhi_pd(c2, c3);
          _mm256_storeu_pd(d0 + t, _mm256_permute2f128_pd(u0, u2, 0x20));
          _mm256_storeu_pd(d1 + t, _mm256_permute2f128_pd(u1, u3, 0x20));
          _mm256_storeu_pd(d2 + t, _mm256_permute2f128_pd(u0, u2, 0x31));
          _mm256_storeu_pd(d3 + t, _mm256_permute2f128_pd(u1, u3, 0x31));
        }
        if (t < ct) {
          alignas(32) double cbuf[4];
          _mm256_store_pd(cbuf, carry);
          const double* srcs[4] = {s0, s1, s2, s3};
          double* dsts[4] = {d0, d1, d2, d3};
          for (int lane = 0; lane < 4; ++lane) {
            double c = cbuf[lane];
            for (int tt = t; tt < ct; ++tt) {
              c = srcs[lane][tt] + c;
              dsts[lane][tt] = c;
            }
          }
        }
      }
    });
    // Remainder pillars: the naive serial chain.
    for (int64_t p = groups * 4; p < pillars; ++p) {
      const double* s = src + static_cast<size_t>(p) * ct;
      double* d = dst + static_cast<size_t>(p) * ct;
      for (int t = t_lo; t < ct; ++t) {
        d[t] = t == 0 ? s[t] : s[t] + d[t - 1];
      }
    }
  }

  void ScanY(const double* src, double* dst, int cx, int cy, int ct,
             int t_lo) const override {
    const size_t plane = static_cast<size_t>(cy) * ct;
    exec::ParallelForRange(cx, [&](int64_t begin, int64_t end) {
      for (int64_t x = begin; x < end; ++x) {
        const double* src_slab = src + static_cast<size_t>(x) * plane;
        double* dst_slab = dst + static_cast<size_t>(x) * plane;
        int t = t_lo;
        for (; t + 4 <= ct; t += 4) {
          _mm256_storeu_pd(dst_slab + t, _mm256_loadu_pd(src_slab + t));
        }
        for (; t < ct; ++t) dst_slab[t] = src_slab[t];
        for (int y = 1; y < cy; ++y) {
          const double* s = src_slab + static_cast<size_t>(y) * ct;
          double* d = dst_slab + static_cast<size_t>(y) * ct;
          const double* prev = d - ct;
          t = t_lo;
          for (; t + 4 <= ct; t += 4) {
            _mm256_storeu_pd(d + t, _mm256_add_pd(_mm256_loadu_pd(s + t),
                                                  _mm256_loadu_pd(prev + t)));
          }
          for (; t < ct; ++t) d[t] = s[t] + prev[t];
        }
      }
    });
  }

  void ScanX(const double* src, double* dst, int cx, int cy, int ct,
             int t_lo) const override {
    // x outer / contiguous t inner (the naive pass walks x innermost with a
    // plane-sized stride). Chains run along x per (y, t) element, so any
    // partition over y rows keeps the naive add order.
    const size_t plane = static_cast<size_t>(cy) * ct;
    exec::ParallelForRange(cy, [&](int64_t begin, int64_t end) {
      for (int64_t y = begin; y < end; ++y) {
        const size_t rowoff = static_cast<size_t>(y) * ct;
        int t = t_lo;
        for (; t + 4 <= ct; t += 4) {
          _mm256_storeu_pd(dst + rowoff + t, _mm256_loadu_pd(src + rowoff + t));
        }
        for (; t < ct; ++t) dst[rowoff + t] = src[rowoff + t];
        for (int x = 1; x < cx; ++x) {
          const size_t cur = static_cast<size_t>(x) * plane + rowoff;
          const size_t prev = cur - plane;
          t = t_lo;
          for (; t + 4 <= ct; t += 4) {
            _mm256_storeu_pd(dst + cur + t,
                             _mm256_add_pd(_mm256_loadu_pd(src + cur + t),
                                           _mm256_loadu_pd(dst + prev + t)));
          }
          for (; t < ct; ++t) dst[cur + t] = src[cur + t] + dst[prev + t];
        }
      }
    });
  }

  // ---- Laplace sampler (bit-exact) ---------------------------------------
  // The integer pipeline — ForkSeed stream hashing, the four splitmix64
  // state expansions, and the single xoshiro output — runs four elements
  // per ymm; the double transform stays scalar so every rounding step
  // matches rng.cc. GeometricBatch is NOT overridden: its rejection loop
  // has data-dependent length, so it inherits the scalar oracle.

  void LaplaceBatch(const double* in, double* out, size_t n, double scale,
                    const Rng& base) const override {
    // ForkSeed(i) = state_hash ^ mix(i ^ salt + golden); recover state_hash
    // from ForkSeed(0) so the per-lane seeds need only the vector mix.
    uint64_t t0 = 0 ^ kStreamSalt;
    const uint64_t state_hash = base.ForkSeed(0) ^ SplitMix64Scalar(&t0);
    const __m256i vstate = _mm256_set1_epi64x(static_cast<long long>(state_hash));
    const __m256i vsalt = _mm256_set1_epi64x(static_cast<long long>(kStreamSalt));
    const auto sample_range = [&](int64_t begin, int64_t end) {
      alignas(32) uint64_t ubuf[4];
      int64_t i = begin;
      for (; i + 4 <= end; i += 4) {
        const __m256i idx = _mm256_set_epi64x(i + 3, i + 2, i + 1, i);
        __m256i z = _mm256_xor_si256(idx, vsalt);
        z = _mm256_add_epi64(z, _mm256_set1_epi64x(static_cast<long long>(kGolden)));
        const __m256i seed = _mm256_xor_si256(vstate, SplitMixBody(z));
        const __m256i s0 = SplitMixBody(_mm256_add_epi64(
            seed, _mm256_set1_epi64x(static_cast<long long>(1 * kGolden))));
        const __m256i s3 = SplitMixBody(_mm256_add_epi64(
            seed, _mm256_set1_epi64x(static_cast<long long>(4 * kGolden))));
        // First xoshiro256++ output: rotl(s0 + s3, 23) + s0. (s1/s2 only
        // matter for later draws; Laplace consumes a single uniform.)
        const __m256i u =
            _mm256_add_epi64(Rotl64(_mm256_add_epi64(s0, s3), 23), s0);
        _mm256_store_si256(reinterpret_cast<__m256i*>(ubuf), u);
        for (int lane = 0; lane < 4; ++lane) {
          const double nd = static_cast<double>(ubuf[lane] >> 11) * 0x1.0p-53;
          const double uu = nd - 0.5;
          const double sign = (uu < 0.0) ? -1.0 : 1.0;
          out[i + lane] =
              in[i + lane] +
              -scale * sign * std::log(1.0 - 2.0 * std::fabs(uu));
        }
      }
      for (; i < end; ++i) {
        Rng r = base.Fork(static_cast<uint64_t>(i));
        out[i] = in[i] + r.Laplace(scale);
      }
    };
    if (n >= kSamplerParallelMin) {
      exec::ParallelForRange(static_cast<int64_t>(n), sample_range);
    } else {
      sample_range(0, static_cast<int64_t>(n));
    }
  }
};

}  // namespace

const Backend* Avx2BackendInstance() {
  if (!CpuHasAvx2()) return nullptr;
  static const Avx2Backend backend;
  return &backend;
}

}  // namespace stpt::kernels

#else  // !defined(__x86_64__)

namespace stpt::kernels {
const Backend* Avx2BackendInstance() { return nullptr; }
}  // namespace stpt::kernels

#endif
