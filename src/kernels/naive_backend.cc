#include <cmath>
#include <utility>

#include "common/math_util.h"
#include "exec/parallel.h"
#include "kernels/internal.h"

// The scalar reference backend. Loop bodies here are the pre-backend code
// from nn/ops.cc (MatMul fwd/bwd), signal/fft.cc (radix-2 core),
// signal/wavelet.cc (Haar levels), grid/consumption_matrix.cc +
// ingest/incremental_prefix.cc (scan passes), and dp/mechanisms.cc
// (samplers), moved without numeric changes: this backend defines the bit
// patterns every optimized backend is checked against.

namespace stpt::kernels {
namespace {

const double kInvSqrt2 = 1.0 / std::sqrt(2.0);

/// Batches below this many elements are sampled inline; Fork(i) substreams
/// make the parallel split bit-identical to the serial loop either way.
constexpr size_t kSamplerParallelMin = 4096;

}  // namespace

const std::string& NaiveBackend::name() const {
  static const std::string kName = "naive";
  return kName;
}

// ---- MatMul ---------------------------------------------------------------

void NaiveBackend::MatMulFwd(const double* a, const double* b, double* c,
                             const MatMulShape& s) const {
  const int m = s.m, n = s.n, k = s.k;
  const bool transpose_b = s.transpose_b;
  const size_t a_stride = s.a_stride();
  const size_t b_stride = s.b_stride();
  const size_t c_stride = s.c_stride();
  // Row-blocked parallel forward: output row (bt, i) is a pure function of
  // A's row and B, so any thread count produces bit-identical results. Tiny
  // products run inline to avoid dispatch overhead.
  const int64_t rows = s.rows();
  const auto forward_rows = [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const int bt = static_cast<int>(r / m);
      const int i = static_cast<int>(r % m);
      const double* A = a + bt * a_stride + static_cast<size_t>(i) * k;
      const double* B = b + bt * b_stride;
      double* C = c + bt * c_stride + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) {
        double sum = 0.0;
        if (!transpose_b) {
          for (int kk = 0; kk < k; ++kk) sum += A[kk] * B[kk * n + j];
        } else {
          for (int kk = 0; kk < k; ++kk) sum += A[kk] * B[j * k + kk];
        }
        C[j] = sum;
      }
    }
  };
  if (s.flops() >= kMatMulParallelFlops) {
    exec::ParallelForRange(rows, forward_rows);
  } else {
    forward_rows(0, rows);
  }
}

void NaiveBackend::MatMulBwdA(const double* g, const double* b, double* ga,
                              const MatMulShape& s) const {
  const int m = s.m, n = s.n, k = s.k;
  const bool transpose_b = s.transpose_b;
  const size_t a_stride = s.a_stride();
  const size_t b_stride = s.b_stride();
  const size_t c_stride = s.c_stride();
  const int64_t rows = s.rows();
  // dA[i,kk] += sum_j G[i,j] * B(kk,j). Each task owns whole rows of GA,
  // and every GA element receives exactly one add, so the result is
  // bit-identical at any thread count.
  const auto backward_a = [&](int64_t begin, int64_t end) {
    for (int64_t r = begin; r < end; ++r) {
      const int bt = static_cast<int>(r / m);
      const int i = static_cast<int>(r % m);
      const double* G = g + bt * c_stride + static_cast<size_t>(i) * n;
      const double* B = b + bt * b_stride;
      double* GA = ga + bt * a_stride + static_cast<size_t>(i) * k;
      for (int kk = 0; kk < k; ++kk) {
        double sum = 0.0;
        if (!transpose_b) {
          for (int j = 0; j < n; ++j) sum += G[j] * B[kk * n + j];
        } else {
          for (int j = 0; j < n; ++j) sum += G[j] * B[j * k + kk];
        }
        GA[kk] += sum;
      }
    }
  };
  if (s.flops() >= kMatMulParallelFlops) {
    exec::ParallelForRange(rows, backward_a);
  } else {
    backward_a(0, rows);
  }
}

void NaiveBackend::MatMulBwdB(const double* g, const double* a, double* gb,
                              const MatMulShape& s) const {
  const int batch = s.batch, m = s.m, n = s.n, k = s.k;
  const bool transpose_b = s.transpose_b;
  const size_t a_stride = s.a_stride();
  const size_t b_stride = s.b_stride();
  const size_t c_stride = s.c_stride();
  const bool parallel = s.flops() >= kMatMulParallelFlops;
  // dB. Batched: each bt owns a disjoint GB block. Shared: GB accumulates
  // across the batch, so parallelise over GB *rows* (kk, or j when
  // transposed) and keep the bt accumulation loop inside — per-element add
  // order stays (bt ascending), bit-identical to the serial schedule.
  if (s.b_batched) {
    const auto backward_b_batched = [&](int64_t begin, int64_t end) {
      for (int64_t bt = begin; bt < end; ++bt) {
        const double* G = g + bt * c_stride;
        const double* A = a + bt * a_stride;
        double* GB = gb + bt * b_stride;
        for (int kk = 0; kk < k; ++kk) {
          for (int j = 0; j < n; ++j) {
            double sum = 0.0;
            for (int i = 0; i < m; ++i) sum += A[i * k + kk] * G[i * n + j];
            if (!transpose_b) {
              GB[kk * n + j] += sum;
            } else {
              GB[j * k + kk] += sum;
            }
          }
        }
      }
    };
    if (parallel) {
      exec::ParallelForRange(batch, backward_b_batched);
    } else {
      backward_b_batched(0, batch);
    }
  } else {
    const int gb_rows = transpose_b ? n : k;
    const auto backward_b_shared = [&](int64_t begin, int64_t end) {
      for (int64_t row = begin; row < end; ++row) {
        for (int bt = 0; bt < batch; ++bt) {
          const double* G = g + bt * c_stride;
          const double* A = a + bt * a_stride;
          double* GB = gb;
          if (!transpose_b) {
            const int kk = static_cast<int>(row);
            for (int j = 0; j < n; ++j) {
              double sum = 0.0;
              for (int i = 0; i < m; ++i) sum += A[i * k + kk] * G[i * n + j];
              GB[kk * n + j] += sum;
            }
          } else {
            const int j = static_cast<int>(row);
            for (int kk = 0; kk < k; ++kk) {
              double sum = 0.0;
              for (int i = 0; i < m; ++i) sum += A[i * k + kk] * G[i * n + j];
              GB[j * k + kk] += sum;
            }
          }
        }
      }
    };
    if (parallel) {
      exec::ParallelForRange(gb_rows, backward_b_shared);
    } else {
      backward_b_shared(0, gb_rows);
    }
  }
}

// ---- FFT ------------------------------------------------------------------

Status NaiveBackend::FftPow2(std::complex<double>* a, size_t n,
                             bool inverse) const {
  if (n == 0 || !IsPowerOfTwo(n)) {
    return Status::InvalidArgument(
        "FftPow2: size must be a nonzero power of two");
  }
  using Complex = std::complex<double>;
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * M_PI / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (size_t i = 0; i < n; ++i) a[i] /= static_cast<double>(n);
  }
  return Status::OK();
}

// ---- Haar DWT levels ------------------------------------------------------

void NaiveBackend::HaarLevelFwd(const double* in, double* out,
                                size_t half) const {
  for (size_t i = 0; i < half; ++i) {
    out[i] = (in[2 * i] + in[2 * i + 1]) * kInvSqrt2;          // approximation
    out[half + i] = (in[2 * i] - in[2 * i + 1]) * kInvSqrt2;   // detail
  }
}

void NaiveBackend::HaarLevelInv(const double* in, double* out,
                                size_t half) const {
  for (size_t i = 0; i < half; ++i) {
    out[2 * i] = (in[i] + in[half + i]) * kInvSqrt2;
    out[2 * i + 1] = (in[i] - in[half + i]) * kInvSqrt2;
  }
}

// ---- 3-D prefix-sum scan stages ------------------------------------------
// Each pass generalises the full in-place build (src == dst, t_lo == 0) and
// the ingest dirty-suffix rescan (separate stage arrays, t_lo > 0) with one
// per-element recurrence, so both callers perform the exact value chain a
// from-scratch grid::PrefixSum3D build performs.

void NaiveBackend::ScanT(const double* src, double* dst, int64_t pillars,
                         int ct, int t_lo) const {
  // One independent chain per (x, y) pillar.
  exec::ParallelForRange(pillars, [&](int64_t begin, int64_t end) {
    for (int64_t p = begin; p < end; ++p) {
      const double* s = src + static_cast<size_t>(p) * ct;
      double* d = dst + static_cast<size_t>(p) * ct;
      for (int t = t_lo; t < ct; ++t) {
        d[t] = t == 0 ? s[t] : s[t] + d[t - 1];
      }
    }
  });
}

void NaiveBackend::ScanY(const double* src, double* dst, int cx, int cy,
                         int ct, int t_lo) const {
  const size_t plane = static_cast<size_t>(cy) * ct;
  // One task per x-slab; elementwise in t, so only [t_lo, ct) is touched.
  exec::ParallelForRange(cx, [&](int64_t begin, int64_t end) {
    for (int64_t x = begin; x < end; ++x) {
      const double* src_slab = src + static_cast<size_t>(x) * plane;
      double* dst_slab = dst + static_cast<size_t>(x) * plane;
      for (int t = t_lo; t < ct; ++t) dst_slab[t] = src_slab[t];
      for (int y = 1; y < cy; ++y) {
        const double* s = src_slab + static_cast<size_t>(y) * ct;
        double* d = dst_slab + static_cast<size_t>(y) * ct;
        const double* prev = d - ct;
        for (int t = t_lo; t < ct; ++t) d[t] = s[t] + prev[t];
      }
    }
  });
}

void NaiveBackend::ScanX(const double* src, double* dst, int cx, int cy,
                         int ct, int t_lo) const {
  const size_t plane = static_cast<size_t>(cy) * ct;
  const int nt = ct - t_lo;
  // Tasks partition the (y, t) sub-plane; sequential in x per element. The
  // x-ascending add order per element matches the full build exactly.
  exec::ParallelForRange(
      static_cast<int64_t>(cy) * nt, [&](int64_t begin, int64_t end) {
        for (int64_t q = begin; q < end; ++q) {
          const size_t off = static_cast<size_t>(q / nt) * ct + t_lo +
                             static_cast<size_t>(q % nt);
          dst[off] = src[off];
          for (int x = 1; x < cx; ++x) {
            const size_t cur = static_cast<size_t>(x) * plane + off;
            dst[cur] = src[cur] + dst[cur - plane];
          }
        }
      });
}

// ---- DP noise sampling ----------------------------------------------------

void NaiveBackend::LaplaceBatch(const double* in, double* out, size_t n,
                                double scale, const Rng& base) const {
  const auto sample_range = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      Rng r = base.Fork(static_cast<uint64_t>(i));
      out[i] = in[i] + r.Laplace(scale);
    }
  };
  if (n >= kSamplerParallelMin) {
    exec::ParallelForRange(static_cast<int64_t>(n), sample_range);
  } else {
    sample_range(0, static_cast<int64_t>(n));
  }
}

void NaiveBackend::GeometricBatch(const int64_t* in, int64_t* out, size_t n,
                                  double alpha, const Rng& base) const {
  const auto sample_range = [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      Rng r = base.Fork(static_cast<uint64_t>(i));
      // Two-sided geometric via difference of two geometric variables,
      // sampled with inverse CDF: G = floor(log(u) / log(alpha)).
      const auto sample_geometric = [&]() -> int64_t {
        double u;
        do {
          u = r.NextDouble();
        } while (u <= 0.0);
        return static_cast<int64_t>(std::floor(std::log(u) / std::log(alpha)));
      };
      out[i] = in[i] + sample_geometric() - sample_geometric();
    }
  };
  if (n >= kSamplerParallelMin) {
    exec::ParallelForRange(static_cast<int64_t>(n), sample_range);
  } else {
    sample_range(0, static_cast<int64_t>(n));
  }
}

const Backend* NaiveBackendInstance() {
  static const NaiveBackend backend;
  return &backend;
}

}  // namespace stpt::kernels
