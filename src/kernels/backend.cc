#include "kernels/backend.h"

#include <atomic>
#include <cstdlib>

#include "common/math_util.h"
#include "kernels/internal.h"
#include "obs/log.h"

namespace stpt::kernels {

// ---- Shared Haar driver (validation + pyramid loop; levels are virtual) ----

StatusOr<std::vector<double>> Backend::HaarForward(
    const std::vector<double>& input) const {
  const size_t n = input.size();
  if (n == 0 || !IsPowerOfTwo(n)) {
    return Status::InvalidArgument(
        "HaarForward: size must be a nonzero power of two");
  }
  std::vector<double> out = input;
  std::vector<double> tmp(n);
  for (size_t len = n; len > 1; len /= 2) {
    HaarLevelFwd(out.data(), tmp.data(), len / 2);
    for (size_t i = 0; i < len; ++i) out[i] = tmp[i];
  }
  return out;
}

StatusOr<std::vector<double>> Backend::HaarInverse(
    const std::vector<double>& coeffs) const {
  const size_t n = coeffs.size();
  if (n == 0 || !IsPowerOfTwo(n)) {
    return Status::InvalidArgument(
        "HaarInverse: size must be a nonzero power of two");
  }
  std::vector<double> out = coeffs;
  std::vector<double> tmp(n);
  for (size_t len = 2; len <= n; len *= 2) {
    HaarLevelInv(out.data(), tmp.data(), len / 2);
    for (size_t i = 0; i < len; ++i) out[i] = tmp[i];
  }
  return out;
}

// ---- CPUID dispatch ----

bool CpuHasAvx2() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

const Backend* GetBackend(BackendKind kind) {
  switch (kind) {
    case BackendKind::kNaive:
      return NaiveBackendInstance();
    case BackendKind::kAvx2:
      return Avx2BackendInstance();
  }
  return nullptr;
}

std::vector<std::string> Registry::Names() {
  std::vector<std::string> names = {NaiveBackendInstance()->name()};
  if (const Backend* avx2 = Avx2BackendInstance()) names.push_back(avx2->name());
  return names;
}

StatusOr<const Backend*> Registry::Create(const std::string& spec) {
  if (spec == "naive") return NaiveBackendInstance();
  if (spec == "avx2") {
    const Backend* avx2 = Avx2BackendInstance();
    if (avx2 == nullptr) {
      return Status::FailedPrecondition(
          "kernel backend 'avx2' is unavailable: CPU lacks AVX2/FMA "
          "(or non-x86-64 build)");
    }
    return avx2;
  }
  if (spec == "auto") {
    const Backend* avx2 = Avx2BackendInstance();
    return avx2 != nullptr ? avx2 : NaiveBackendInstance();
  }
  return Status::InvalidArgument("unknown kernel backend '" + spec +
                                 "' (expected naive, avx2, or auto)");
}

namespace {

std::atomic<const Backend*>& DefaultSlot() {
  static std::atomic<const Backend*> slot{nullptr};
  return slot;
}

/// Resolves the initial default from STPT_KERNEL_BACKEND. Unlike the flag
/// path this degrades gracefully: a bad or unusable value logs a warning
/// and falls back to auto dispatch, so a blanket env setting (e.g. a CI
/// matrix) works on machines without AVX2 too.
const Backend* InitialDefault() {
  const char* env = std::getenv("STPT_KERNEL_BACKEND");
  if (env != nullptr && env[0] != '\0') {
    auto resolved = Registry::Create(env);
    if (resolved.ok()) return *resolved;
    obs::Log(obs::LogLevel::kWarn, "kernels",
             "ignoring STPT_KERNEL_BACKEND: " + resolved.status().ToString() +
                 "; using auto dispatch");
  }
  return *Registry::Create("auto");
}

}  // namespace

const Backend* Default() {
  const Backend* cur = DefaultSlot().load(std::memory_order_acquire);
  if (cur != nullptr) return cur;
  // Two threads may both resolve; they resolve to the same singleton.
  const Backend* resolved = InitialDefault();
  DefaultSlot().store(resolved, std::memory_order_release);
  return resolved;
}

Status SetDefault(const std::string& spec) {
  auto resolved = Registry::Create(spec);
  STPT_RETURN_IF_ERROR(resolved.status());
  DefaultSlot().store(*resolved, std::memory_order_release);
  return Status::OK();
}

void SetDefault(const Backend* backend) {
  DefaultSlot().store(backend, std::memory_order_release);
}

}  // namespace stpt::kernels
