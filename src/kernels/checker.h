#ifndef STPT_KERNELS_CHECKER_H_
#define STPT_KERNELS_CHECKER_H_

#include <cstdint>

#include "kernels/backend.h"

namespace stpt::kernels {

/// Differential test harness: runs one kernel on a reference backend and a
/// backend under test over identical RNG-filled inputs and compares the
/// outputs under that kernel family's contract (backend.h) — bitwise for
/// Haar levels, scan passes, and samplers; relative-epsilon for MatMul and
/// FFT. Modeled on the InferLLM CheckerHelper (naive device as oracle).
///
/// Every Check* method returns OK on agreement and Internal with the first
/// offending index, both values, and the error magnitude on mismatch, so a
/// failing test names the exact divergent element.
class Checker {
 public:
  Checker(const Backend* reference, const Backend* test)
      : ref_(reference), test_(test) {}

  /// MatMul forward, backward-A, and backward-B over one shape. Gradient
  /// accumulators are prefilled with RNG values so the += contract is
  /// exercised. Epsilon-bounded (FMA/vector accumulators reassociate).
  Status CheckMatMul(const MatMulShape& s, uint64_t seed, double epsilon) const;

  /// Forward-then-inverse radix-2 FFT on an RNG-filled complex vector.
  /// Epsilon-bounded. Also verifies both backends reject non-power-of-two
  /// and zero sizes with InvalidArgument.
  Status CheckFft(size_t n, uint64_t seed, double epsilon) const;

  /// Haar forward + inverse on an RNG-filled vector. Bit-exact.
  Status CheckHaar(size_t n, uint64_t seed) const;

  /// All three scan passes over an RNG-filled (cx, cy, ct) volume with the
  /// given dirty bound, both in the staged src->dst form (the ingest rescan)
  /// and the aliased in-place form (the full build). Bit-exact.
  Status CheckScan(int cx, int cy, int ct, int t_lo, uint64_t seed) const;

  /// Laplace batch sampling from a shared base Rng. Bit-exact: Fork(i)
  /// substreams pin every element's draw regardless of backend.
  Status CheckLaplace(size_t n, double scale, uint64_t seed) const;

  /// Two-sided geometric batch sampling. Bit-exact.
  Status CheckGeometric(size_t n, double alpha, uint64_t seed) const;

 private:
  const Backend* ref_;
  const Backend* test_;
};

}  // namespace stpt::kernels

#endif  // STPT_KERNELS_CHECKER_H_
