#ifndef STPT_KERNELS_BACKEND_H_
#define STPT_KERNELS_BACKEND_H_

#include <complex>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace stpt::kernels {

/// Problem descriptor for the MatMul kernel family. All buffers are dense
/// row-major double. With transpose_b == false the right operand is [k, n]
/// (or [batch, k, n] when b_batched); with transpose_b == true it is [n, k].
struct MatMulShape {
  int batch = 1;             ///< leading batch dim (1 for a rank-2 product)
  int m = 0;                 ///< output rows per batch
  int n = 0;                 ///< output cols
  int k = 0;                 ///< inner dim
  bool transpose_b = false;  ///< B given as [n, k] instead of [k, n]
  bool b_batched = false;    ///< B carries its own batch dim ([batch, ...])

  int64_t rows() const { return static_cast<int64_t>(batch) * m; }
  int64_t flops() const { return rows() * n * k; }
  size_t a_stride() const { return static_cast<size_t>(m) * k; }
  size_t b_stride() const {
    return b_batched ? static_cast<size_t>(k) * n : 0;
  }
  size_t c_stride() const { return static_cast<size_t>(m) * n; }
  bool Valid() const {
    return batch >= 1 && m >= 1 && n >= 1 && k >= 1;
  }
};

/// A kernel backend: one implementation of the five hot kernel families
/// (MatMul fwd/bwd, radix-2 FFT, Haar DWT levels, 3-D prefix-sum scan
/// stages, Laplace/geometric batch sampling).
///
/// Contract, enforced by kernels::Checker (tests/kernels_test.cc):
///
///  * Within one backend every kernel is bit-identical at any exec thread
///    count (parallel partitions never change per-element accumulation
///    order — the stpt::exec determinism contract).
///  * Across backends, prefix-sum scans, Haar DWT levels, and the batch
///    samplers are BIT-EXACT against the naive oracle: their per-element
///    operation chains are fixed, so an optimized implementation may
///    reorganise memory traffic but not floating-point association.
///  * MatMul and FFT are EPSILON-BOUNDED against the oracle: vector
///    accumulators and FMA contraction reassociate sums, so results agree
///    to a small relative tolerance instead of bitwise.
///
/// Implementations dispatch large problems onto the stpt::exec pool
/// themselves; callers never split work before calling a kernel.
class Backend {
 public:
  virtual ~Backend() = default;

  /// Registry key: "naive" or "avx2".
  virtual const std::string& name() const = 0;

  // ---- MatMul family ------------------------------------------------------
  /// C = A x B(ᵀ). C is overwritten.
  virtual void MatMulFwd(const double* a, const double* b, double* c,
                         const MatMulShape& s) const = 0;
  /// GA += dL/dA given the upstream gradient G (shape of C) and operand B.
  virtual void MatMulBwdA(const double* g, const double* b, double* ga,
                          const MatMulShape& s) const = 0;
  /// GB += dL/dB given the upstream gradient G (shape of C) and operand A.
  virtual void MatMulBwdB(const double* g, const double* a, double* gb,
                          const MatMulShape& s) const = 0;

  // ---- FFT ----------------------------------------------------------------
  /// In-place iterative radix-2 Cooley–Tukey transform. `n` must be a
  /// nonzero power of two (validated). `inverse` conjugates and scales 1/n.
  virtual Status FftPow2(std::complex<double>* data, size_t n,
                         bool inverse) const = 0;

  // ---- Haar DWT -----------------------------------------------------------
  /// Forward orthonormal Haar transform (pyramidal layout). Input length
  /// must be a nonzero power of two. Shared driver; levels are virtual.
  StatusOr<std::vector<double>> HaarForward(
      const std::vector<double>& input) const;
  /// Inverse of HaarForward.
  StatusOr<std::vector<double>> HaarInverse(
      const std::vector<double>& coeffs) const;
  /// One forward pyramid level over 2*half inputs:
  /// out[i] = (in[2i] + in[2i+1])/√2, out[half+i] = (in[2i] - in[2i+1])/√2.
  virtual void HaarLevelFwd(const double* in, double* out,
                            size_t half) const = 0;
  /// One inverse pyramid level:
  /// out[2i] = (in[i] + in[half+i])/√2, out[2i+1] = (in[i] - in[half+i])/√2.
  virtual void HaarLevelInv(const double* in, double* out,
                            size_t half) const = 0;

  // ---- 3-D prefix-sum scan stages ----------------------------------------
  // The three separable passes of grid::PrefixSum3D, shared with the
  // incremental t-suffix rescans of stpt::ingest. `t_lo` restricts each
  // pass to timesteps [t_lo, ct) — entries below t_lo in `dst` must already
  // hold the previous pass result (clean prefix). `src` may alias `dst`
  // (the in-place full build). All passes are elementwise in t above the
  // recurrence axis, so per-element accumulation order is fixed.
  /// Pass 1 — inclusive scan along t, one independent chain per pillar:
  /// dst[p*ct + t] = src[p*ct + t] + dst[p*ct + t - 1]  (t = 0: copy).
  virtual void ScanT(const double* src, double* dst, int64_t pillars, int ct,
                     int t_lo) const = 0;
  /// Pass 2 — scan along y inside each x-slab:
  /// dst[x,y,t] = src[x,y,t] + dst[x,y-1,t]  (y = 0: copy).
  virtual void ScanY(const double* src, double* dst, int cx, int cy, int ct,
                     int t_lo) const = 0;
  /// Pass 3 — scan along x across slabs:
  /// dst[x,y,t] = src[x,y,t] + dst[x-1,y,t]  (x = 0: copy).
  virtual void ScanX(const double* src, double* dst, int cx, int cy, int ct,
                     int t_lo) const = 0;

  // ---- DP noise sampling --------------------------------------------------
  /// out[i] = in[i] + Laplace(scale), element i drawing its uniform from
  /// base.Fork(i) — the repo's order-independent substream idiom, so the
  /// result is bit-exact across backends, batch splits, and thread counts.
  /// The caller advances its own Rng (e.g. base = rng.Fork()) so repeated
  /// batches draw fresh noise. `in` may alias `out`. Requires scale > 0.
  virtual void LaplaceBatch(const double* in, double* out, size_t n,
                            double scale, const Rng& base) const = 0;
  /// out[i] = in[i] + G - G' with G, G' ~ Geometric(alpha) sampled by
  /// inverse CDF from base.Fork(i). Requires 0 < alpha < 1.
  virtual void GeometricBatch(const int64_t* in, int64_t* out, size_t n,
                              double alpha, const Rng& base) const = 0;
};

enum class BackendKind { kNaive, kAvx2 };

/// True when the running CPU supports AVX2 and FMA (runtime CPUID probe).
bool CpuHasAvx2();

/// Singleton accessor. kNaive always exists; kAvx2 returns nullptr when the
/// binary targets a non-x86-64 architecture or the CPU lacks AVX2/FMA.
const Backend* GetBackend(BackendKind kind);

/// The process-wide backend registry. Exactly one instance per available
/// implementation; "avx2" is listed only when usable on this machine.
class Registry {
 public:
  /// Names of the available backends, naive first.
  static std::vector<std::string> Names();

  /// Resolves a backend spec — "naive", "avx2", or "auto" (AVX2 when the
  /// CPU supports it, scalar fallback otherwise). Returns InvalidArgument
  /// for an unknown name and FailedPrecondition for "avx2" on a machine
  /// without AVX2/FMA.
  static StatusOr<const Backend*> Create(const std::string& spec);
};

/// The process default used by consumers that do not take an explicit
/// backend (nn ops, signal transforms, prefix builds, dp mechanisms).
/// Initialised on first use from the STPT_KERNEL_BACKEND environment
/// variable ("naive" | "avx2" | "auto"); unset or invalid values fall back
/// to auto dispatch (a warning is logged for invalid/unusable values —
/// the env path degrades gracefully so blanket CI settings work on any
/// runner; the --kernel-backend flag path is strict).
const Backend* Default();

/// Strictly overrides the process default (the --kernel-backend flag path):
/// unknown names and "avx2" without CPU support are errors.
Status SetDefault(const std::string& spec);

/// Test hook: installs a specific backend as the process default.
void SetDefault(const Backend* backend);

}  // namespace stpt::kernels

#endif  // STPT_KERNELS_BACKEND_H_
