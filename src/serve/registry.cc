#include "serve/registry.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/trace.h"
#include "obs/trace_context.h"

namespace stpt::serve {

size_t ShardKeyHash::operator()(const ShardKey& k) const {
  // FNV-1a over tenant, a separator that cannot appear in either name's
  // length prefix role, then tile.
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 0x100000001B3ULL;
    }
    h ^= 0xFF;
    h *= 0x100000001B3ULL;
  };
  mix(k.tenant);
  mix(k.tile);
  return static_cast<size_t>(h);
}

/// The generation pointer is the RCU hot path: Route loads it with a
/// single atomic shared_ptr load; Swap stores a freshly built generation.
struct SnapshotRegistry::Shard {
  std::atomic<std::shared_ptr<const ShardGeneration>> generation;
};

namespace {

Status ValidateName(const char* what, const std::string& name) {
  if (name.empty()) {
    return Status::InvalidArgument(std::string("registry: ") + what +
                                   " must not be empty");
  }
  if (name.size() > kMaxShardNameBytes) {
    return Status::InvalidArgument(std::string("registry: ") + what +
                                   " exceeds " +
                                   std::to_string(kMaxShardNameBytes) + " bytes");
  }
  return Status::OK();
}

Status ValidateKey(const ShardKey& key) {
  STPT_RETURN_IF_ERROR(ValidateName("tenant", key.tenant));
  return ValidateName("tile", key.tile);
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += "\\u00";
      constexpr const char* kHex = "0123456789abcdef";
      out.push_back(kHex[(c >> 4) & 0xF]);
      out.push_back(kHex[c & 0xF]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// Records the registry half of a traced admin chain (load or swap) when the
/// caller holds a sampled context: the span chains the published epoch to the
/// ingest/publish (or admin-frame) span driving it.
void RecordAdminSpan(const char* name, const ShardKey& key, uint64_t epoch,
                     uint64_t start_ns) {
  const obs::TraceContext* ctx = obs::CurrentTraceContext();
  if (ctx == nullptr || !ctx->sampled) return;
  obs::TraceSpan span;
  span.trace_hi = ctx->trace_hi;
  span.trace_lo = ctx->trace_lo;
  span.span_id = obs::ChildSpanId(ctx->span_id, 1);
  span.parent_span_id = ctx->span_id;
  span.start_ns = start_ns;
  span.end_ns = obs::NowNanos();
  span.name = name;
  span.lane = "registry";
  span.attrs = {{"tenant", key.tenant},
                {"tile", key.tile},
                {"epoch", std::to_string(epoch)}};
  obs::TraceStore::Global().Add(std::move(span));
}

}  // namespace

SnapshotRegistry::SnapshotRegistry(SnapshotRegistryOptions options)
    : options_(std::move(options)) {
  shards_gauge_ =
      registry_.GetGauge("stpt_registry_shards", "Currently loaded shards");
  loads_ = registry_.GetCounter("stpt_registry_loads_total",
                                "Shards loaded since startup");
  swaps_ = registry_.GetCounter("stpt_registry_swaps_total",
                                "Generation hot-swaps since startup");
  unloads_ = registry_.GetCounter("stpt_registry_unloads_total",
                                  "Shards unloaded since startup");
  swap_latency_ = registry_.GetHistogram(
      "stpt_registry_swap_latency_ns",
      "Wall time of Swap/SwapFile, engine build included",
      obs::LatencyBucketsNs());
}

SnapshotRegistry::~SnapshotRegistry() = default;

StatusOr<std::unique_ptr<SnapshotRegistry>> SnapshotRegistry::Create(
    SnapshotRegistryOptions options) {
  if (options.max_shards < 1) {
    return Status::InvalidArgument("registry: max_shards must be >= 1, got " +
                                   std::to_string(options.max_shards));
  }
  if (options.engine_options.cache_shards < 1) {
    return Status::InvalidArgument(
        "registry: engine_options.cache_shards must be >= 1");
  }
  return std::unique_ptr<SnapshotRegistry>(
      new SnapshotRegistry(std::move(options)));
}

StatusOr<std::shared_ptr<QueryServer>> SnapshotRegistry::BuildEngine(
    Snapshot snapshot) const {
  auto engine = QueryServer::Create(std::move(snapshot), options_.engine_options);
  if (!engine.ok()) return engine.status();
  return std::make_shared<QueryServer>(std::move(*engine));
}

StatusOr<uint64_t> SnapshotRegistry::Load(const ShardKey& key, Snapshot snapshot) {
  STPT_RETURN_IF_ERROR(ValidateKey(key));
  std::lock_guard<std::mutex> admin(admin_mu_);
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    if (shards_.contains(key)) {
      return Status::FailedPrecondition("registry: shard '" + key.tenant + "/" +
                                        key.tile + "' already loaded (use swap)");
    }
    if (shards_.size() >= static_cast<size_t>(options_.max_shards)) {
      return Status::ResourceExhausted(
          "registry: max_shards (" + std::to_string(options_.max_shards) +
          ") reached");
    }
  }
  const uint64_t start_ns = obs::NowNanos();
  auto engine = BuildEngine(std::move(snapshot));
  if (!engine.ok()) return engine.status();
  auto gen = std::make_shared<ShardGeneration>();
  gen->key = key;
  gen->epoch = 1;
  gen->engine = std::move(*engine);
  gen->engine->SetShardIdentity(key.tenant, key.tile, gen->epoch);
  auto shard = std::make_shared<Shard>();
  shard->generation.store(std::move(gen), std::memory_order_release);
  {
    std::unique_lock<std::shared_mutex> lock(map_mu_);
    shards_.emplace(key, std::move(shard));
    shards_gauge_->Set(static_cast<double>(shards_.size()));
  }
  loads_->Increment();
  RecordAdminSpan("registry/load", key, uint64_t{1}, start_ns);
  return uint64_t{1};
}

StatusOr<uint64_t> SnapshotRegistry::LoadFile(const ShardKey& key,
                                              const std::string& path) {
  auto snapshot = ReadSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();
  return Load(key, std::move(*snapshot));
}

StatusOr<uint64_t> SnapshotRegistry::Swap(const ShardKey& key, Snapshot snapshot) {
  STPT_RETURN_IF_ERROR(ValidateKey(key));
  std::lock_guard<std::mutex> admin(admin_mu_);
  const uint64_t start_ns = obs::NowNanos();
  std::shared_ptr<Shard> shard;
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    auto it = shards_.find(key);
    if (it == shards_.end()) {
      return Status::NotFound("registry: shard '" + key.tenant + "/" + key.tile +
                              "' not loaded (use load)");
    }
    shard = it->second;
  }
  // Build the replacement engine with no data-plane lock held; queries keep
  // flowing against the old generation the whole time.
  auto engine = BuildEngine(std::move(snapshot));
  if (!engine.ok()) return engine.status();
  auto current = shard->generation.load(std::memory_order_acquire);
  auto gen = std::make_shared<ShardGeneration>();
  gen->key = key;
  gen->epoch = current->epoch + 1;
  gen->engine = std::move(*engine);
  gen->engine->SetShardIdentity(key.tenant, key.tile, gen->epoch);
  const uint64_t epoch = gen->epoch;
  // The RCU flip: one atomic store publishes the new generation. Batches
  // that already captured `current` finish on it; its engine is destroyed
  // when the last such reference drops.
  shard->generation.store(std::move(gen), std::memory_order_release);
  swaps_->Increment();
  swap_latency_->Observe(static_cast<double>(obs::NowNanos() - start_ns));
  RecordAdminSpan("registry/swap", key, epoch, start_ns);
  return epoch;
}

StatusOr<uint64_t> SnapshotRegistry::SwapFile(const ShardKey& key,
                                              const std::string& path) {
  auto snapshot = ReadSnapshot(path);
  if (!snapshot.ok()) return snapshot.status();
  return Swap(key, std::move(*snapshot));
}

Status SnapshotRegistry::Unload(const ShardKey& key) {
  STPT_RETURN_IF_ERROR(ValidateKey(key));
  std::lock_guard<std::mutex> admin(admin_mu_);
  std::unique_lock<std::shared_mutex> lock(map_mu_);
  auto it = shards_.find(key);
  if (it == shards_.end()) {
    return Status::NotFound("registry: shard '" + key.tenant + "/" + key.tile +
                            "' not loaded");
  }
  shards_.erase(it);
  shards_gauge_->Set(static_cast<double>(shards_.size()));
  unloads_->Increment();
  return Status::OK();
}

StatusOr<std::shared_ptr<const ShardGeneration>> SnapshotRegistry::Route(
    const std::string& tenant, const std::string& tile, uint64_t epoch) const {
  std::shared_ptr<Shard> shard;
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    auto it = shards_.find(ShardKey{tenant, tile});
    if (it == shards_.end()) {
      return Status::NotFound("registry: no shard for tenant '" + tenant +
                              "' tile '" + tile + "'");
    }
    shard = it->second;
  }
  auto gen = shard->generation.load(std::memory_order_acquire);
  if (epoch != 0 && epoch != gen->epoch) {
    return Status::NotFound("registry: epoch " + std::to_string(epoch) +
                            " of '" + tenant + "/" + tile +
                            "' is no longer published (current " +
                            std::to_string(gen->epoch) + ")");
  }
  return gen;
}

std::vector<ShardInfo> SnapshotRegistry::List() const {
  std::vector<std::shared_ptr<Shard>> shards;
  {
    std::shared_lock<std::shared_mutex> lock(map_mu_);
    shards.reserve(shards_.size());
    for (const auto& [key, shard] : shards_) shards.push_back(shard);
  }
  std::vector<ShardInfo> out;
  out.reserve(shards.size());
  for (const auto& shard : shards) {
    auto gen = shard->generation.load(std::memory_order_acquire);
    ShardInfo info;
    info.key = gen->key;
    info.epoch = gen->epoch;
    info.dims = gen->engine->dims();
    info.meta = gen->engine->meta();
    info.stats = gen->engine->stats();
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(), [](const ShardInfo& a, const ShardInfo& b) {
    return a.key.tenant != b.key.tenant ? a.key.tenant < b.key.tenant
                                        : a.key.tile < b.key.tile;
  });
  return out;
}

std::string SnapshotRegistry::StatsJson(const std::string& tenant,
                                        const std::string& tile) const {
  std::ostringstream os;
  os << "{\"shards\": [";
  bool first = true;
  for (const ShardInfo& info : List()) {
    if (!tenant.empty() && info.key.tenant != tenant) continue;
    if (!tile.empty() && info.key.tile != tile) continue;
    if (!first) os << ", ";
    first = false;
    os << "{\"tenant\": \"" << JsonEscape(info.key.tenant) << "\", \"tile\": \""
       << JsonEscape(info.key.tile) << "\", \"epoch\": " << info.epoch
       << ", \"dims\": [" << info.dims.cx << ", " << info.dims.cy << ", "
       << info.dims.ct << "], \"algorithm\": \""
       << JsonEscape(info.meta.algorithm)
       << "\", \"eps_total\": " << info.meta.eps_total
       << ", \"stats\": " << info.stats.ToJson() << "}";
  }
  os << "], \"loads_total\": " << loads_->Value()
     << ", \"swaps_total\": " << swaps_->Value()
     << ", \"unloads_total\": " << unloads_->Value() << "}";
  return os.str();
}

std::string SnapshotRegistry::ToPrometheusText() const {
  std::ostringstream os;
  os << registry_.ToPrometheusText();
  const std::vector<ShardInfo> shards = List();
  auto emit =[&os, &shards](const char* name, const char* help,
                             auto value_of) {
    os << "# HELP " << name << " " << help << "\n# TYPE " << name
       << " counter\n";
    for (const ShardInfo& info : shards) {
      // Tenant/tile names are client-controlled; escape them so a hostile
      // name cannot break out of the label quoting in the exposition text.
      os << name << "{tenant=\"" << obs::PromEscapeLabel(info.key.tenant)
         << "\",tile=\"" << obs::PromEscapeLabel(info.key.tile) << "\"} "
         << value_of(info) << "\n";
    }
  };
  emit("stpt_shard_epoch", "Currently published epoch per shard",
       [](const ShardInfo& i) { return i.epoch; });
  emit("stpt_shard_queries_total", "Queries answered per shard",
       [](const ShardInfo& i) { return i.stats.queries; });
  emit("stpt_shard_invalid_total", "Queries rejected per shard",
       [](const ShardInfo& i) { return i.stats.invalid; });
  emit("stpt_shard_cache_hits_total", "Cache hits per shard",
       [](const ShardInfo& i) { return i.stats.cache_hits; });
  emit("stpt_shard_cache_misses_total", "Cache misses per shard",
       [](const ShardInfo& i) { return i.stats.cache_misses; });
  return os.str();
}

size_t SnapshotRegistry::shard_count() const {
  std::shared_lock<std::shared_mutex> lock(map_mu_);
  return shards_.size();
}

obs::Registry& SnapshotRegistry::metrics() const { return registry_; }

}  // namespace stpt::serve
