#include "serve/client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

#include "obs/trace.h"

namespace stpt::serve {

StatusOr<Client> Client::Connect(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &result) != 0) {
    return Status::NotFound("client: cannot resolve '" + host + "'");
  }
  int fd = -1;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    return Status::Internal("client: cannot connect to " + host + ":" + service);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<Frame> Client::Call(MsgType request, const std::vector<uint8_t>& payload,
                             MsgType expected_response) {
  if (fd_ < 0) return Status::FailedPrecondition("client: not connected");
  STPT_RETURN_IF_ERROR(WriteFrame(fd_, request, payload));
  auto frame = ReadFrame(fd_);
  if (!frame.ok()) return frame.status();
  if (frame->type == MsgType::kError) {
    auto message = DecodeString(frame->payload);
    return Status::Internal("server error: " +
                            (message.ok() ? *message : std::string("<unreadable>")));
  }
  if (frame->type != expected_response) {
    return Status::Internal("client: unexpected response type");
  }
  return frame;
}

StatusOr<QueryResponse> Client::Query(const query::Workload& batch) {
  auto frame = Call(MsgType::kQueryRequest, EncodeQueryRequest(batch),
                    MsgType::kQueryResponse);
  if (!frame.ok()) return frame.status();
  auto answers = DecodeQueryResponse(frame->payload);
  if (!answers.ok()) return answers.status();
  if (answers->size() != batch.size()) {
    return Status::Internal("client: answer count does not match batch");
  }
  return answers;
}

StatusOr<TenantQueryResponse> Client::QueryTenant(const std::string& tenant,
                                                  const std::string& tile,
                                                  const query::Workload& batch,
                                                  uint64_t epoch,
                                                  obs::TraceContext trace) {
  TenantQueryRequest request;
  request.tenant = tenant;
  request.tile = tile;
  request.epoch = epoch;
  request.batch = batch;
  if (trace.valid() && trace.start_ns == 0) trace.start_ns = obs::NowNanos();
  request.trace = trace;
  auto frame = Call(MsgType::kQueryRequestV2, EncodeTenantQueryRequest(request),
                    MsgType::kQueryResponseV2);
  if (!frame.ok()) return frame.status();
  auto response = DecodeTenantQueryResponse(frame->payload);
  if (!response.ok()) return response.status();
  if (response->answers.size() != batch.size()) {
    return Status::Internal("client: answer count does not match batch");
  }
  return response;
}

StatusOr<uint64_t> Client::Admin(AdminVerb verb, const std::string& tenant,
                                 const std::string& tile,
                                 const std::string& path) {
  AdminRequest request;
  request.verb = verb;
  request.tenant = tenant;
  request.tile = tile;
  request.path = path;
  auto frame = Call(MsgType::kAdminRequest, EncodeAdminRequest(request),
                    MsgType::kAdminResponse);
  if (!frame.ok()) return frame.status();
  auto response = DecodeAdminResponse(frame->payload);
  if (!response.ok()) return response.status();
  if (response->verb != verb) {
    return Status::Internal("client: admin response echoes wrong verb");
  }
  return response->epoch;
}

StatusOr<uint64_t> Client::Load(const std::string& tenant,
                                const std::string& tile,
                                const std::string& path) {
  return Admin(AdminVerb::kLoad, tenant, tile, path);
}

StatusOr<uint64_t> Client::Swap(const std::string& tenant,
                                const std::string& tile,
                                const std::string& path) {
  return Admin(AdminVerb::kSwap, tenant, tile, path);
}

Status Client::Unload(const std::string& tenant, const std::string& tile) {
  auto epoch = Admin(AdminVerb::kUnload, tenant, tile, "");
  return epoch.ok() ? Status::OK() : epoch.status();
}

StatusOr<ReadingAck> Client::Ingest(const std::string& tenant,
                                    const std::string& tile,
                                    const std::vector<MeterReading>& readings,
                                    obs::TraceContext trace) {
  ReadingBatch batch;
  batch.tenant = tenant;
  batch.tile = tile;
  batch.readings = readings;
  if (trace.valid() && trace.start_ns == 0) trace.start_ns = obs::NowNanos();
  batch.trace = trace;
  auto frame =
      Call(MsgType::kReadingBatch, EncodeReadingBatch(batch), MsgType::kReadingAck);
  if (!frame.ok()) return frame.status();
  return DecodeReadingAck(frame->payload);
}

StatusOr<std::string> Client::ShardStats(const std::string& tenant,
                                         const std::string& tile) {
  ShardStatsRequest request;
  request.tenant = tenant;
  request.tile = tile;
  auto frame = Call(MsgType::kShardStatsRequest,
                    EncodeShardStatsRequest(request),
                    MsgType::kShardStatsResponse);
  if (!frame.ok()) return frame.status();
  return DecodeString(frame->payload);
}

StatusOr<WireMeta> Client::Meta() {
  auto frame = Call(MsgType::kMetaRequest, {}, MsgType::kMetaResponse);
  if (!frame.ok()) return frame.status();
  return DecodeMetaResponse(frame->payload);
}

StatusOr<std::string> Client::Stats() {
  auto frame = Call(MsgType::kStatsRequest, {}, MsgType::kStatsResponse);
  if (!frame.ok()) return frame.status();
  return DecodeString(frame->payload);
}

StatusOr<std::string> Client::Metrics() {
  auto frame = Call(MsgType::kMetricsRequest, {}, MsgType::kMetricsResponse);
  if (!frame.ok()) return frame.status();
  return DecodeString(frame->payload);
}

StatusOr<std::string> Client::FetchTraces(uint32_t limit,
                                          const std::string& trace_id) {
  TraceFetchRequest request;
  request.limit = limit;
  request.trace_id = trace_id;
  auto frame = Call(MsgType::kTraceRequest, EncodeTraceFetchRequest(request),
                    MsgType::kTraceResponse);
  if (!frame.ok()) return frame.status();
  return DecodeString(frame->payload);
}

Status Client::Shutdown() {
  auto frame = Call(MsgType::kShutdown, {}, MsgType::kShutdown);
  return frame.ok() ? Status::OK() : frame.status();
}

}  // namespace stpt::serve
