#ifndef STPT_SERVE_REGISTRY_H_
#define STPT_SERVE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "serve/query_server.h"
#include "serve/snapshot.h"

namespace stpt::serve {

/// Tenant/tile names a v1 client is routed to when it speaks the
/// unaddressed protocol against a multi-tenant server.
inline constexpr const char* kDefaultTenant = "default";
inline constexpr const char* kDefaultTile = "0";

/// Upper bound on tenant/tile name length, shared with the wire codecs so
/// hostile frames cannot make the registry key arbitrarily large.
inline constexpr size_t kMaxShardNameBytes = 255;

/// Routing key for one served grid: which utility (tenant) and which
/// spatial tile of its fleet. The publication epoch is addressed
/// separately (see Route), because it changes on every hot-swap while the
/// key does not.
struct ShardKey {
  std::string tenant;
  std::string tile;

  bool operator==(const ShardKey&) const = default;
};

struct ShardKeyHash {
  size_t operator()(const ShardKey& k) const;
};

/// One immutable published generation of a shard. Queries capture a
/// shared_ptr to a generation once per batch, so a concurrent hot-swap can
/// never change (or free) the data under a batch that is already running:
/// the old generation stays alive until its last in-flight batch drops the
/// reference.
struct ShardGeneration {
  ShardKey key;
  uint64_t epoch = 0;  ///< monotonically increasing per shard, starts at 1
  std::shared_ptr<QueryServer> engine;
};

/// Summary row for List()/StatsJson().
struct ShardInfo {
  ShardKey key;
  uint64_t epoch = 0;
  grid::Dims dims;
  SnapshotMeta meta;
  ServerStats stats;
};

/// Validated by SnapshotRegistry::Create.
struct SnapshotRegistryOptions {
  /// Engine options applied to every generation the registry constructs.
  QueryServerOptions engine_options;
  /// Hard cap on concurrently loaded shards; Load fails with
  /// ResourceExhausted beyond it.
  int max_shards = 1024;
};

/// A multi-tenant shard router: maps (tenant, tile, epoch) to the query
/// engine serving that published grid.
///
/// Two planes with different locking:
///
/// * The **admin plane** (Load/Swap/Unload) is serialized by a mutex and
///   may do file I/O. Swap builds the replacement engine *outside* any
///   lock the data plane takes, then publishes it with a single atomic
///   shared_ptr store — an RCU-style flip. No query is ever dropped or
///   blocked by a swap: in-flight batches finish on the generation they
///   captured, later batches see the new one.
/// * The **data plane** (Route) takes a shared lock only to find the
///   shard, then loads the generation pointer lock-free. All engine state
///   (cache, counters) lives in the generation, so routing is wait-free
///   with respect to other readers.
///
/// The registry's own obs::Registry carries the admin/topology metrics
/// (shard count, load/swap/unload counters, swap-latency histogram);
/// per-shard serving counters live in each generation's engine registry
/// as before.
class SnapshotRegistry {
 public:
  static StatusOr<std::unique_ptr<SnapshotRegistry>> Create(
      SnapshotRegistryOptions options = {});

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Publishes `snapshot` as epoch 1 of a new shard. Fails with
  /// FailedPrecondition if the key is already loaded (use Swap), with
  /// InvalidArgument for empty/oversized names, and with ResourceExhausted
  /// at max_shards. Returns the epoch (always 1).
  StatusOr<uint64_t> Load(const ShardKey& key, Snapshot snapshot);
  StatusOr<uint64_t> LoadFile(const ShardKey& key, const std::string& path);

  /// Hot-swaps the current generation of an existing shard for `snapshot`,
  /// returning the new epoch (previous + 1). The flip itself is a single
  /// atomic store; concurrent queries are never dropped. Fails with
  /// NotFound if the shard is not loaded (use Load).
  StatusOr<uint64_t> Swap(const ShardKey& key, Snapshot snapshot);
  StatusOr<uint64_t> SwapFile(const ShardKey& key, const std::string& path);

  /// Removes a shard. In-flight batches on the final generation still
  /// finish (they hold the reference); new Route calls fail.
  Status Unload(const ShardKey& key);

  /// Resolves (tenant, tile, epoch) to the generation serving it.
  /// epoch 0 means "current". A nonzero epoch must match the currently
  /// published one — older epochs are gone once swapped out — otherwise
  /// NotFound describes whether the shard or the epoch is missing.
  StatusOr<std::shared_ptr<const ShardGeneration>> Route(
      const std::string& tenant, const std::string& tile,
      uint64_t epoch = 0) const;

  /// Shorthand for the v1 protocol's implicit addressing.
  StatusOr<std::shared_ptr<const ShardGeneration>> RouteDefault() const {
    return Route(kDefaultTenant, kDefaultTile, 0);
  }

  /// All loaded shards, sorted by (tenant, tile), with live counters.
  std::vector<ShardInfo> List() const;

  /// Registry-wide stats JSON: a "shards" array (one object per shard with
  /// key, epoch, dims, meta, and serving counters) plus admin totals.
  /// Pass non-empty `tenant` (and optionally `tile`) to filter.
  std::string StatsJson(const std::string& tenant = "",
                        const std::string& tile = "") const;

  /// Admin/topology metrics plus per-shard serving counters rendered as
  /// labeled Prometheus families (stpt_shard_*{tenant=...,tile=...}), so
  /// one scrape sees every tenant without name collisions between the
  /// per-engine registries.
  std::string ToPrometheusText() const;

  size_t shard_count() const;

  /// The admin-plane metric registry (valid for the registry's lifetime).
  obs::Registry& metrics() const;

  ~SnapshotRegistry();

 private:
  struct Shard;
  explicit SnapshotRegistry(SnapshotRegistryOptions options);

  StatusOr<std::shared_ptr<QueryServer>> BuildEngine(Snapshot snapshot) const;

  SnapshotRegistryOptions options_;

  mutable std::shared_mutex map_mu_;  ///< guards shards_ topology only
  std::unordered_map<ShardKey, std::shared_ptr<Shard>, ShardKeyHash> shards_;
  std::mutex admin_mu_;  ///< serializes Load/Swap/Unload end to end

  mutable obs::Registry registry_;
  obs::Gauge* shards_gauge_ = nullptr;
  obs::Counter* loads_ = nullptr;
  obs::Counter* swaps_ = nullptr;
  obs::Counter* unloads_ = nullptr;
  obs::Histogram* swap_latency_ = nullptr;
};

}  // namespace stpt::serve

#endif  // STPT_SERVE_REGISTRY_H_
