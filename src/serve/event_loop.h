#ifndef STPT_SERVE_EVENT_LOOP_H_
#define STPT_SERVE_EVENT_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/red.h"
#include "obs/trace_context.h"
#include "serve/registry.h"
#include "serve/wire.h"

namespace stpt::serve {

/// Listener + flow-control configuration. Validated by
/// EventLoopServer::Create.
struct EventLoopOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 picks an ephemeral port; read it back via port()
  int listen_backlog = 128;
  /// Per-connection pending-response budget. A connection whose unsent
  /// bytes exceed this stops being read (and parsed) until the peer drains
  /// its socket — the bounded-memory half of backpressure.
  size_t write_budget_bytes = 8u << 20;
  /// Server-wide cap on dispatched-but-unanswered query batches. Beyond
  /// it, further connections are not read until the backlog drains — the
  /// bounded-work half of backpressure.
  int max_inflight_batches = 64;
  /// SO_SNDBUF for accepted connections (0 = kernel default with
  /// autotuning). Setting it bounds how much the kernel absorbs before the
  /// user-space write budget engages — useful for tests and for keeping
  /// slow readers' memory on a leash.
  int so_sndbuf = 0;
  /// Shutdown drain budget: in-flight batches finish and their responses
  /// flush within this window; connections still pending afterwards are
  /// force-closed so Stop() always terminates.
  int drain_timeout_ms = 5000;
  /// Period of the ingest publish timer (0 = no timer). When set and an
  /// ingest sink is attached, a timerfd fires every interval and drives
  /// IngestSink::PublishAll(), so idle shards meet their tick-epoch
  /// deadlines without waiting for another batch to arrive.
  int64_t ingest_publish_interval_ms = 0;
};

/// Where kReadingBatch frames go. The serving tier stays ignorant of how
/// ingestion works (stpt::ingest depends on stpt::serve, not the reverse);
/// it only routes decoded batches to the sink on the exec pool and frames
/// the ack back. Implementations must be thread-safe: batches from
/// different connections can run concurrently on pool workers.
class IngestSink {
 public:
  virtual ~IngestSink() = default;

  /// Applies one decoded reading batch and returns admission counts plus
  /// the currently published epoch of the addressed shard.
  virtual ReadingAck Apply(const ReadingBatch& batch) = 0;

  /// JSON object describing live ingest state (spliced into stats).
  virtual std::string StatsJson() const = 0;

  /// Prometheus text for the stpt_ingest_* families (appended to the
  /// metrics frame).
  virtual std::string MetricsText() const = 0;

  /// Timer-driven epoch sweep: publish every shard whose epoch deadline
  /// has passed. Called periodically by the server's publish timer (see
  /// EventLoopOptions::ingest_publish_interval_ms); the default is a
  /// no-op so sinks without epoch state need not care. Returns the number
  /// of shards published.
  virtual int PublishAll() { return 0; }
};

/// Non-blocking epoll front end over a SnapshotRegistry.
///
/// One event-loop thread owns every connection: it accepts, reads
/// level-triggered readiness into per-connection FrameDecoders, answers
/// light frames (stats/meta/metrics/admin) inline, and dispatches query
/// batches onto the stpt::exec pool. Workers never touch sockets: they
/// push encoded responses onto a completion queue and wake the loop
/// through an eventfd, so all socket and connection state is single-
/// threaded by construction.
///
/// Flow control: each connection has at most one dispatched batch in
/// flight (responses therefore stay in request order), a pending-byte
/// write budget, and the server defers reads entirely once the global
/// dispatch backlog hits max_inflight_batches. The pause/resume state is
/// visible through stpt_serve_backpressure_paused (gauge) and
/// stpt_serve_backpressure_pauses_total.
///
/// Shutdown (Stop() or a client kShutdown frame) drains: accepting and
/// reading cease immediately, in-flight batches complete, their responses
/// are flushed, and only then are connections closed — bounded by
/// drain_timeout_ms. After Stop() returns, every fd the server opened
/// (listener, epoll, eventfd, connections) is closed;
/// open_connections() reads 0.
class EventLoopServer {
 public:
  /// Validates `options` and builds a server over `registry` (not owned;
  /// must outlive the server). Returned stopped; call Start().
  static StatusOr<std::unique_ptr<EventLoopServer>> Create(
      SnapshotRegistry* registry, EventLoopOptions options);

  EventLoopServer(const EventLoopServer&) = delete;
  EventLoopServer& operator=(const EventLoopServer&) = delete;

  /// Stops and joins if still running.
  ~EventLoopServer();

  /// Binds, listens, and spawns the loop thread. kInternal if the address
  /// cannot be bound.
  Status Start();

  /// The actual bound port (useful with options.port == 0).
  int port() const { return port_; }

  /// Blocks until Stop() is called or a client sends kShutdown.
  void Wait();

  /// Requests shutdown, drains, joins the loop thread, closes every fd.
  /// Idempotent; safe to call while Wait() blocks elsewhere.
  void Stop();

  /// Total connections accepted since Start().
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

  /// Currently open client connections (0 after Stop()).
  int open_connections() const {
    return open_conns_.load(std::memory_order_relaxed);
  }

  /// This server's metric registry (connections, frames, protocol errors,
  /// backpressure gauge/counter, dispatch gauge). Exported by the
  /// kMetricsRequest wire command next to the registry and shard metrics.
  obs::Registry& metrics() const { return registry_metrics_; }

  /// Attaches the ingest sink that kReadingBatch frames dispatch to (not
  /// owned; must outlive the server). Call before Start(); without a sink
  /// the server answers reading batches with a FailedPrecondition error.
  void set_ingest_sink(IngestSink* sink) { ingest_ = sink; }

 private:
  struct Conn;
  struct Completion {
    uint64_t conn_id = 0;
    MsgType type = MsgType::kError;
    std::vector<uint8_t> payload;
    bool close_after = false;
    // RED + tracing bookkeeping, filled for dispatched work (queries,
    // ingest). Empty tenant = inline response, no RED update.
    std::string tenant;
    std::string tile;
    bool error = false;
    uint64_t req_recv_ns = 0;  ///< socket-read time of the request frame
    obs::TraceContext trace;   ///< request context; sampled ⇒ write span
  };

  EventLoopServer(SnapshotRegistry* registry, EventLoopOptions options);

  void LoopThread();
  void AcceptReady();
  void ReadReady(Conn& conn);
  void WriteReady(Conn& conn);
  void ParseFrames(Conn& conn);
  /// Handles one frame; returns false when parsing must stop (a query was
  /// dispatched or the connection is winding down).
  bool HandleFrame(Conn& conn, Frame frame);
  void DispatchQuery(Conn& conn, std::shared_ptr<const ShardGeneration> gen,
                     query::Workload batch, bool v2,
                     const obs::TraceContext& trace);
  void DispatchIngest(Conn& conn, ReadingBatch batch);
  /// Records the loop-side lifecycle spans of a sampled request: the
  /// client's send span (carried start_ns → socket read), the queue wait
  /// (read → parse start) and the parse itself.
  void RecordRequestSpans(const Conn& conn, const obs::TraceContext& ctx,
                          uint64_t parse_start_ns, uint64_t parse_end_ns);
  void HandleAdmin(Conn& conn, const std::vector<uint8_t>& payload);
  std::string MetricsText() const;
  std::string StatsText() const;

  void EnqueueFrame(Conn& conn, MsgType type, const std::vector<uint8_t>& payload);
  void EnqueueError(Conn& conn, const Status& status, bool close_after);
  void FlushWrites(Conn& conn);
  void UpdateInterest(Conn& conn);
  void UpdatePauseAccounting(Conn& conn);
  void CloseConn(uint64_t id);
  void ProcessCompletions();
  void ResumeDeferred();
  void PushCompletion(Completion completion);
  void RequestStop();
  void BeginDrain();
  bool DrainComplete() const;
  void CloseAllConns();

  SnapshotRegistry* registry_;
  EventLoopOptions options_;
  IngestSink* ingest_ = nullptr;  // not owned, may be null

  mutable obs::Registry registry_metrics_;
  /// Per-(tenant,tile) RED families, updated when a dispatched completion
  /// is written back; exported by MetricsText next to the loop metrics.
  obs::RedFamily red_;
  obs::Counter* connections_ctr_ = nullptr;
  obs::Counter* protocol_errors_ctr_ = nullptr;
  obs::Counter* frames_ctr_ = nullptr;
  obs::Counter* dispatches_ctr_ = nullptr;
  obs::Counter* pauses_ctr_ = nullptr;
  obs::Gauge* paused_gauge_ = nullptr;
  obs::Gauge* inflight_gauge_ = nullptr;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int timer_fd_ = -1;  ///< ingest publish timer, -1 when disabled
  int port_ = 0;

  std::atomic<bool> stop_requested_{false};
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<int> open_conns_{0};
  std::atomic<int> inflight_{0};

  mutable std::mutex completions_mu_;
  std::vector<Completion> completions_;

  std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stop_flagged_ = false;
  bool started_ = false;
  std::thread loop_thread_;

  // Loop-thread-only state below (no locking needed).
  std::unordered_map<uint64_t, std::unique_ptr<Conn>> conns_;
  std::deque<uint64_t> deferred_;
  uint64_t next_conn_id_ = 3;  // 0-2 tag the listener, eventfd and timerfd
  bool draining_ = false;
  uint64_t drain_deadline_ns_ = 0;
  int paused_count_ = 0;
};

}  // namespace stpt::serve

#endif  // STPT_SERVE_EVENT_LOOP_H_
