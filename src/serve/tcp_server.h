#ifndef STPT_SERVE_TCP_SERVER_H_
#define STPT_SERVE_TCP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "serve/query_server.h"
#include "serve/wire.h"

namespace stpt::serve {

/// Listener configuration. Validated by TcpServer::Create.
struct TcpServerOptions {
  std::string bind_address = "127.0.0.1";
  int port = 0;  ///< 0 picks an ephemeral port; read it back via port()
  int listen_backlog = 64;
};

/// Thread-per-connection TCP front end over one QueryServer.
///
/// Each accepted connection gets a handler thread that answers framed
/// requests (wire.h) until the peer closes, a frame is malformed, or the
/// server stops. Malformed frames are answered with a kError frame (when
/// the socket still accepts writes) and the connection is dropped; the
/// listener and all other connections keep running. A kShutdown frame asks
/// the whole server to stop, which unblocks Wait().
///
/// Connection and protocol-error counters live in the engine's registry
/// (stpt_serve_connections_total, stpt_serve_protocol_errors_total), so the
/// `metrics` wire command reports them next to the query counters.
class TcpServer {
 public:
  /// Validates `options` and builds a server bound to `engine` (which must
  /// outlive it). Returns InvalidArgument for a null engine, a port outside
  /// [0, 65535], a backlog < 1, or an unparseable IPv4 bind address. The
  /// server is returned stopped; call Start() to bind and accept.
  static StatusOr<std::unique_ptr<TcpServer>> Create(QueryServer* engine,
                                                     TcpServerOptions options);

  /// Not copyable or movable: handler threads capture `this`.
  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Stops and joins if still running.
  ~TcpServer();

  /// Binds, listens, and spawns the accept loop. Fails with kInternal if
  /// the address cannot be bound (e.g. port in use).
  Status Start();

  /// The actual bound port (useful with options.port == 0).
  int port() const { return port_; }

  /// Blocks until Stop() is called or a client sends kShutdown.
  void Wait();

  /// Closes the listener and every open connection, then joins all
  /// threads. Idempotent; safe to call while Wait() blocks elsewhere.
  void Stop();

  /// Total connections accepted since Start().
  uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }

 private:
  TcpServer(QueryServer* engine, TcpServerOptions options);

  void AcceptLoop();
  void HandleConnection(int fd);
  /// Serves one decoded frame; returns false when the connection (or the
  /// whole server, for kShutdown) should wind down.
  bool ServeFrame(int fd, MsgType type, const std::vector<uint8_t>& payload);
  void RequestStop();

  QueryServer* engine_;
  TcpServerOptions options_;
  obs::Counter* connections_ctr_;     ///< engine-registry handles, never null
  obs::Counter* protocol_errors_ctr_;
  int listen_fd_ = -1;
  int port_ = 0;

  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> connections_accepted_{0};

  std::mutex mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool started_ = false;
  std::thread accept_thread_;
  std::vector<std::thread> handlers_;
  std::vector<int> open_fds_;
};

}  // namespace stpt::serve

#endif  // STPT_SERVE_TCP_SERVER_H_
