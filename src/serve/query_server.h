#ifndef STPT_SERVE_QUERY_SERVER_H_
#define STPT_SERVE_QUERY_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "grid/consumption_matrix.h"
#include "obs/metrics.h"
#include "query/range_query.h"
#include "serve/snapshot.h"
#include "serve/wire.h"

namespace stpt::serve {

/// Tuning knobs for the in-process query engine. Validated by
/// QueryServer::Create; invalid combinations fail construction instead of
/// being silently clamped.
struct QueryServerOptions {
  /// Number of independent cache shards; must be >= 1, rounded up to a power
  /// of two. Each shard has its own mutex, so concurrent batches contend
  /// only when they hash to the same shard.
  int cache_shards = 16;
  /// Total cached answers across all shards; 0 disables the cache.
  size_t cache_capacity = 1 << 16;
  /// Batches whose wall time exceeds this threshold are counted in
  /// stpt_serve_slow_batches_total and logged at warn level (the serve-layer
  /// slow-query log). 0 disables slow-batch detection.
  uint64_t slow_batch_ns = 50'000'000;  // 50 ms
};

/// Point-in-time serving counters. Latency percentiles come from a
/// log-scaled histogram of per-query Answer() wall times (obs::NowNanos),
/// so they are approximate to one power-of-two bucket.
struct ServerStats {
  uint64_t queries = 0;       ///< answered successfully
  uint64_t invalid = 0;       ///< rejected by validation
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t p50_ns = 0;        ///< median per-query latency (bucket upper bound)
  uint64_t p99_ns = 0;        ///< 99th percentile per-query latency

  double hit_rate() const {
    const uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }

  /// Renders the stats as a small JSON object (used by the wire protocol).
  std::string ToJson() const;
};

/// Read-only range-query engine over one published snapshot.
///
/// Answers are O(1) per query via the snapshot's 3-D prefix sums and are
/// bit-identical to grid::PrefixSum3D::BoxSum over the sanitized matrix —
/// cached or not, batched or not, at any thread count. Batches fan out on
/// the stpt::exec pool. All methods are thread-safe; one generation of a
/// SnapshotRegistry shard owns one engine, and the event-loop server's
/// workers drive it concurrently.
///
/// Each engine owns a private obs::Registry (`stpt_serve_*` metrics) so that
/// several engines in one process — or in one test — never mix counters;
/// stats() is a typed view over the same registry handles, which keeps the
/// `stats` and `metrics` wire commands consistent by construction.
class QueryServer {
 public:
  /// Loads a snapshot container from disk and builds the engine.
  static StatusOr<QueryServer> Open(const std::string& snapshot_path,
                                    const QueryServerOptions& options = {});

  /// Builds the engine from an in-memory snapshot (no file round-trip).
  /// Returns InvalidArgument if `options` is malformed (cache_shards < 1).
  static StatusOr<QueryServer> Create(Snapshot snapshot,
                                      const QueryServerOptions& options = {});

  QueryServer(QueryServer&&) noexcept;
  QueryServer& operator=(QueryServer&&) noexcept;
  ~QueryServer();

  const grid::Dims& dims() const;
  const SnapshotMeta& meta() const;

  /// Answers one query: validates bounds, consults the cache, computes the
  /// range sum on miss. Returns InvalidArgument for out-of-range bounds.
  StatusOr<double> Answer(const query::RangeQuery& q);

  /// Answers a batch in index order, in parallel on the exec pool. The
  /// whole batch is validated first; an invalid query fails the batch with
  /// InvalidArgument naming the offending index.
  StatusOr<QueryResponse> AnswerBatch(const query::Workload& batch);

  /// Names the shard this engine serves (tenant/tile/epoch). Set by the
  /// SnapshotRegistry right after construction, before the generation is
  /// published, so slow-batch logs and traces can identify the shard. An
  /// engine used standalone keeps empty identity and logs as before.
  void SetShardIdentity(const std::string& tenant, const std::string& tile,
                        uint64_t epoch);

  /// Snapshot of the serving counters.
  ServerStats stats() const;

  /// Zeroes all counters and the latency histogram (not the cache).
  void ResetStats();

  /// This engine's private metric registry (thread-safe; valid for the
  /// engine's lifetime). Exported by the `metrics` wire command and by
  /// stpt_cli --metrics alongside the process-wide registry.
  obs::Registry& metrics() const;

 private:
  class Impl;
  explicit QueryServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace stpt::serve

#endif  // STPT_SERVE_QUERY_SERVER_H_
