#include "serve/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>

namespace stpt::serve {
namespace {

constexpr const char* kClosedMessage = "connection closed";

// Byte-wise append; see the matching note in snapshot.cc on why this is
// not vector::insert over a char* range.
void PutBytes(std::vector<uint8_t>& out, const void* src, size_t n) {
  const auto* p = static_cast<const uint8_t*>(src);
  for (size_t i = 0; i < n; ++i) out.push_back(p[i]);
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void PutI32(std::vector<uint8_t>& out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF64(std::vector<uint8_t>& out, double v) {
  const uint64_t u = std::bit_cast<uint64_t>(v);
  PutU32(out, static_cast<uint32_t>(u));
  PutU32(out, static_cast<uint32_t>(u >> 32));
}

/// Bounds-checked reader over a payload (mirrors the snapshot Cursor).
class Cursor {
 public:
  explicit Cursor(const std::vector<uint8_t>& bytes) : data_(bytes.data()), size_(bytes.size()) {}

  size_t remaining() const { return size_ - off_; }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = static_cast<uint32_t>(data_[off_]) |
         static_cast<uint32_t>(data_[off_ + 1]) << 8 |
         static_cast<uint32_t>(data_[off_ + 2]) << 16 |
         static_cast<uint32_t>(data_[off_ + 3]) << 24;
    off_ += 4;
    return true;
  }

  bool ReadI32(int32_t* v) {
    uint32_t u = 0;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool ReadF64(double* v) {
    uint32_t lo = 0, hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = std::bit_cast<double>(static_cast<uint64_t>(hi) << 32 | lo);
    return true;
  }

  bool ReadBytes(void* dst, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(dst, data_ + off_, n);
    off_ += n;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
};

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("wire: malformed ") + what);
}

/// Loops a full read over partial recv()s. Returns the number of bytes
/// read: n on success, 0 on clean close before the first byte, and -1 on
/// error or mid-buffer close.
ssize_t ReadFully(int fd, uint8_t* dst, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, dst + got, n - got, 0);
    if (r == 0) return got == 0 ? 0 : -1;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

Status WriteFully(int fd, const uint8_t* src, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, src + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("wire: connection closed by peer during write");
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeQueryRequest(const query::Workload& batch) {
  std::vector<uint8_t> out;
  out.reserve(4 + batch.size() * 24);
  PutU32(out, static_cast<uint32_t>(batch.size()));
  for (const query::RangeQuery& q : batch) {
    PutI32(out, q.x0);
    PutI32(out, q.x1);
    PutI32(out, q.y0);
    PutI32(out, q.y1);
    PutI32(out, q.t0);
    PutI32(out, q.t1);
  }
  return out;
}

StatusOr<query::Workload> DecodeQueryRequest(const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  uint32_t count = 0;
  if (!cur.ReadU32(&count)) return Malformed("query request header");
  if (static_cast<size_t>(count) * 24 != cur.remaining()) {
    return Malformed("query request length");
  }
  query::Workload batch(count);
  for (query::RangeQuery& q : batch) {
    if (!cur.ReadI32(&q.x0) || !cur.ReadI32(&q.x1) || !cur.ReadI32(&q.y0) ||
        !cur.ReadI32(&q.y1) || !cur.ReadI32(&q.t0) || !cur.ReadI32(&q.t1)) {
      return Malformed("query request body");
    }
  }
  return batch;
}

std::vector<uint8_t> EncodeQueryResponse(const std::vector<double>& answers) {
  std::vector<uint8_t> out;
  out.reserve(4 + answers.size() * 8);
  PutU32(out, static_cast<uint32_t>(answers.size()));
  for (double a : answers) PutF64(out, a);
  return out;
}

StatusOr<std::vector<double>> DecodeQueryResponse(const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  uint32_t count = 0;
  if (!cur.ReadU32(&count)) return Malformed("query response header");
  if (static_cast<size_t>(count) * 8 != cur.remaining()) {
    return Malformed("query response length");
  }
  std::vector<double> answers(count);
  for (double& a : answers) {
    if (!cur.ReadF64(&a)) return Malformed("query response body");
  }
  return answers;
}

std::vector<uint8_t> EncodeString(const std::string& text) {
  std::vector<uint8_t> out;
  out.reserve(4 + text.size());
  PutU32(out, static_cast<uint32_t>(text.size()));
  PutBytes(out, text.data(), text.size());
  return out;
}

StatusOr<std::string> DecodeString(const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  uint32_t len = 0;
  if (!cur.ReadU32(&len)) return Malformed("string header");
  if (len != cur.remaining()) return Malformed("string length");
  std::string text(len, '\0');
  if (len > 0 && !cur.ReadBytes(text.data(), len)) return Malformed("string body");
  return text;
}

std::vector<uint8_t> EncodeMetaResponse(const WireMeta& meta) {
  std::vector<uint8_t> out;
  PutI32(out, meta.dims.cx);
  PutI32(out, meta.dims.cy);
  PutI32(out, meta.dims.ct);
  PutU32(out, static_cast<uint32_t>(meta.meta.algorithm.size()));
  PutBytes(out, meta.meta.algorithm.data(), meta.meta.algorithm.size());
  PutF64(out, meta.meta.eps_total);
  PutF64(out, meta.meta.eps_pattern);
  PutF64(out, meta.meta.eps_sanitize);
  PutF64(out, meta.meta.norm_min);
  PutF64(out, meta.meta.norm_max);
  PutI32(out, meta.meta.t_train);
  return out;
}

StatusOr<WireMeta> DecodeMetaResponse(const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  WireMeta meta;
  if (!cur.ReadI32(&meta.dims.cx) || !cur.ReadI32(&meta.dims.cy) ||
      !cur.ReadI32(&meta.dims.ct)) {
    return Malformed("meta dims");
  }
  uint32_t algo_len = 0;
  if (!cur.ReadU32(&algo_len)) return Malformed("meta header");
  if (algo_len > cur.remaining()) return Malformed("meta algorithm length");
  meta.meta.algorithm.resize(algo_len);
  if (algo_len > 0 && !cur.ReadBytes(meta.meta.algorithm.data(), algo_len)) {
    return Malformed("meta algorithm");
  }
  if (!cur.ReadF64(&meta.meta.eps_total) || !cur.ReadF64(&meta.meta.eps_pattern) ||
      !cur.ReadF64(&meta.meta.eps_sanitize) || !cur.ReadF64(&meta.meta.norm_min) ||
      !cur.ReadF64(&meta.meta.norm_max) || !cur.ReadI32(&meta.meta.t_train)) {
    return Malformed("meta body");
  }
  if (cur.remaining() != 0) return Malformed("meta trailing bytes");
  return meta;
}

Status WriteFrame(int fd, MsgType type, const std::vector<uint8_t>& payload) {
  const uint64_t length = 1 + payload.size();
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument("wire: frame exceeds kMaxFrameBytes");
  }
  std::vector<uint8_t> frame;
  frame.reserve(4 + length);
  PutU32(frame, static_cast<uint32_t>(length));
  frame.push_back(static_cast<uint8_t>(type));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return WriteFully(fd, frame.data(), frame.size());
}

StatusOr<Frame> ReadFrame(int fd) {
  uint8_t header[4];
  const ssize_t got = ReadFully(fd, header, sizeof(header));
  if (got == 0) return Status::NotFound(kClosedMessage);
  if (got < 0) return Malformed("frame header (connection error or mid-frame close)");
  const uint32_t length = static_cast<uint32_t>(header[0]) |
                          static_cast<uint32_t>(header[1]) << 8 |
                          static_cast<uint32_t>(header[2]) << 16 |
                          static_cast<uint32_t>(header[3]) << 24;
  if (length < 1 || length > kMaxFrameBytes) return Malformed("frame length");
  uint8_t type = 0;
  if (ReadFully(fd, &type, 1) != 1) return Malformed("frame type");
  if (type < static_cast<uint8_t>(MsgType::kQueryRequest) ||
      type > static_cast<uint8_t>(MsgType::kMetricsResponse)) {
    return Malformed("frame type value");
  }
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.resize(length - 1);
  if (!frame.payload.empty() &&
      ReadFully(fd, frame.payload.data(), frame.payload.size()) !=
          static_cast<ssize_t>(frame.payload.size())) {
    return Malformed("frame payload (truncated)");
  }
  return frame;
}

bool IsConnectionClosed(const Status& status) {
  return status.code() == StatusCode::kNotFound && status.message() == kClosedMessage;
}

}  // namespace stpt::serve
