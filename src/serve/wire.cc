#include "serve/wire.h"

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cmath>
#include <cstring>

namespace stpt::serve {
namespace {

constexpr const char* kClosedMessage = "connection closed";

// Byte-wise append; see the matching note in snapshot.cc on why this is
// not vector::insert over a char* range.
void PutBytes(std::vector<uint8_t>& out, const void* src, size_t n) {
  const auto* p = static_cast<const uint8_t*>(src);
  for (size_t i = 0; i < n; ++i) out.push_back(p[i]);
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void PutI32(std::vector<uint8_t>& out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF64(std::vector<uint8_t>& out, double v) {
  const uint64_t u = std::bit_cast<uint64_t>(v);
  PutU32(out, static_cast<uint32_t>(u));
  PutU32(out, static_cast<uint32_t>(u >> 32));
}

/// Bounds-checked reader over a payload (mirrors the snapshot Cursor).
class Cursor {
 public:
  explicit Cursor(const std::vector<uint8_t>& bytes) : data_(bytes.data()), size_(bytes.size()) {}

  size_t remaining() const { return size_ - off_; }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = static_cast<uint32_t>(data_[off_]) |
         static_cast<uint32_t>(data_[off_ + 1]) << 8 |
         static_cast<uint32_t>(data_[off_ + 2]) << 16 |
         static_cast<uint32_t>(data_[off_ + 3]) << 24;
    off_ += 4;
    return true;
  }

  bool ReadI32(int32_t* v) {
    uint32_t u = 0;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool ReadF64(double* v) {
    uint32_t lo = 0, hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = std::bit_cast<double>(static_cast<uint64_t>(hi) << 32 | lo);
    return true;
  }

  bool ReadBytes(void* dst, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(dst, data_ + off_, n);
    off_ += n;
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
};

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("wire: malformed ") + what);
}

/// Loops a full read over partial recv()s. Returns the number of bytes
/// read: n on success, 0 on clean close before the first byte, and -1 on
/// error or mid-buffer close.
ssize_t ReadFully(int fd, uint8_t* dst, size_t n) {
  size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd, dst + got, n - got, 0);
    if (r == 0) return got == 0 ? 0 : -1;
    if (r < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    got += static_cast<size_t>(r);
  }
  return static_cast<ssize_t>(got);
}

Status WriteFully(int fd, const uint8_t* src, size_t n) {
  size_t sent = 0;
  while (sent < n) {
    const ssize_t w = ::send(fd, src + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("wire: connection closed by peer during write");
    }
    sent += static_cast<size_t>(w);
  }
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeQueryRequest(const query::Workload& batch) {
  std::vector<uint8_t> out;
  out.reserve(4 + batch.size() * 24);
  PutU32(out, static_cast<uint32_t>(batch.size()));
  for (const query::RangeQuery& q : batch) {
    PutI32(out, q.x0);
    PutI32(out, q.x1);
    PutI32(out, q.y0);
    PutI32(out, q.y1);
    PutI32(out, q.t0);
    PutI32(out, q.t1);
  }
  return out;
}

StatusOr<query::Workload> DecodeQueryRequest(const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  uint32_t count = 0;
  if (!cur.ReadU32(&count)) return Malformed("query request header");
  if (static_cast<size_t>(count) * 24 != cur.remaining()) {
    return Malformed("query request length");
  }
  query::Workload batch(count);
  for (query::RangeQuery& q : batch) {
    if (!cur.ReadI32(&q.x0) || !cur.ReadI32(&q.x1) || !cur.ReadI32(&q.y0) ||
        !cur.ReadI32(&q.y1) || !cur.ReadI32(&q.t0) || !cur.ReadI32(&q.t1)) {
      return Malformed("query request body");
    }
  }
  return batch;
}

std::vector<uint8_t> EncodeQueryResponse(const std::vector<double>& answers) {
  std::vector<uint8_t> out;
  out.reserve(4 + answers.size() * 8);
  PutU32(out, static_cast<uint32_t>(answers.size()));
  for (double a : answers) PutF64(out, a);
  return out;
}

StatusOr<std::vector<double>> DecodeQueryResponse(const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  uint32_t count = 0;
  if (!cur.ReadU32(&count)) return Malformed("query response header");
  if (static_cast<size_t>(count) * 8 != cur.remaining()) {
    return Malformed("query response length");
  }
  std::vector<double> answers(count);
  for (double& a : answers) {
    if (!cur.ReadF64(&a)) return Malformed("query response body");
  }
  return answers;
}

std::vector<uint8_t> EncodeString(const std::string& text) {
  std::vector<uint8_t> out;
  out.reserve(4 + text.size());
  PutU32(out, static_cast<uint32_t>(text.size()));
  PutBytes(out, text.data(), text.size());
  return out;
}

StatusOr<std::string> DecodeString(const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  uint32_t len = 0;
  if (!cur.ReadU32(&len)) return Malformed("string header");
  if (len != cur.remaining()) return Malformed("string length");
  std::string text(len, '\0');
  if (len > 0 && !cur.ReadBytes(text.data(), len)) return Malformed("string body");
  return text;
}

std::vector<uint8_t> EncodeMetaResponse(const WireMeta& meta) {
  std::vector<uint8_t> out;
  PutI32(out, meta.dims.cx);
  PutI32(out, meta.dims.cy);
  PutI32(out, meta.dims.ct);
  PutU32(out, static_cast<uint32_t>(meta.meta.algorithm.size()));
  PutBytes(out, meta.meta.algorithm.data(), meta.meta.algorithm.size());
  PutF64(out, meta.meta.eps_total);
  PutF64(out, meta.meta.eps_pattern);
  PutF64(out, meta.meta.eps_sanitize);
  PutF64(out, meta.meta.norm_min);
  PutF64(out, meta.meta.norm_max);
  PutI32(out, meta.meta.t_train);
  return out;
}

StatusOr<WireMeta> DecodeMetaResponse(const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  WireMeta meta;
  if (!cur.ReadI32(&meta.dims.cx) || !cur.ReadI32(&meta.dims.cy) ||
      !cur.ReadI32(&meta.dims.ct)) {
    return Malformed("meta dims");
  }
  uint32_t algo_len = 0;
  if (!cur.ReadU32(&algo_len)) return Malformed("meta header");
  if (algo_len > cur.remaining()) return Malformed("meta algorithm length");
  meta.meta.algorithm.resize(algo_len);
  if (algo_len > 0 && !cur.ReadBytes(meta.meta.algorithm.data(), algo_len)) {
    return Malformed("meta algorithm");
  }
  if (!cur.ReadF64(&meta.meta.eps_total) || !cur.ReadF64(&meta.meta.eps_pattern) ||
      !cur.ReadF64(&meta.meta.eps_sanitize) || !cur.ReadF64(&meta.meta.norm_min) ||
      !cur.ReadF64(&meta.meta.norm_max) || !cur.ReadI32(&meta.meta.t_train)) {
    return Malformed("meta body");
  }
  if (cur.remaining() != 0) return Malformed("meta trailing bytes");
  return meta;
}

namespace {

// Shared helpers for the v2 codecs: length-prefixed strings with a hard
// cap, so hostile frames cannot smuggle oversized names into the registry.
void PutString(std::vector<uint8_t>& out, const std::string& text) {
  PutU32(out, static_cast<uint32_t>(text.size()));
  PutBytes(out, text.data(), text.size());
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

bool ReadU64(Cursor& cur, uint64_t* v) {
  uint32_t lo = 0, hi = 0;
  if (!cur.ReadU32(&lo) || !cur.ReadU32(&hi)) return false;
  *v = static_cast<uint64_t>(hi) << 32 | lo;
  return true;
}

bool ReadCappedString(Cursor& cur, uint32_t cap, std::string* out) {
  uint32_t len = 0;
  if (!cur.ReadU32(&len)) return false;
  if (len > cap || len > cur.remaining()) return false;
  out->resize(len);
  return len == 0 || cur.ReadBytes(out->data(), len);
}

bool ReadQueryBody(Cursor& cur, query::Workload* batch) {
  uint32_t count = 0;
  if (!cur.ReadU32(&count)) return false;
  // The body may be followed only by an optional trace-context field, so the
  // count still cannot lie: anything else trailing fails ReadTrailingTrace.
  if (static_cast<size_t>(count) * 24 > cur.remaining()) return false;
  batch->resize(count);
  for (query::RangeQuery& q : *batch) {
    if (!cur.ReadI32(&q.x0) || !cur.ReadI32(&q.x1) || !cur.ReadI32(&q.y0) ||
        !cur.ReadI32(&q.y1) || !cur.ReadI32(&q.t0) || !cur.ReadI32(&q.t1)) {
      return false;
    }
  }
  return true;
}

/// Consumes the rest of the payload as the optional trace-context field:
/// zero remaining bytes = untraced, exactly one well-formed field = traced,
/// anything else = malformed. Strictness keeps the codecs canonical — every
/// accepted payload re-encodes byte-identically.
bool ReadTrailingTrace(Cursor& cur, obs::TraceContext* out) {
  *out = obs::TraceContext{};
  if (cur.remaining() == 0) return true;
  if (cur.remaining() != obs::kTraceFieldBytes) return false;
  uint8_t buf[obs::kTraceFieldBytes];
  if (!cur.ReadBytes(buf, sizeof buf)) return false;
  return obs::DecodeTraceField(buf, sizeof buf, out);
}

}  // namespace

std::vector<uint8_t> EncodeTenantQueryRequest(const TenantQueryRequest& request) {
  std::vector<uint8_t> out;
  out.reserve(24 + request.tenant.size() + request.tile.size() +
              request.batch.size() * 24);
  PutString(out, request.tenant);
  PutString(out, request.tile);
  PutU64(out, request.epoch);
  PutU32(out, static_cast<uint32_t>(request.batch.size()));
  for (const query::RangeQuery& q : request.batch) {
    PutI32(out, q.x0);
    PutI32(out, q.x1);
    PutI32(out, q.y0);
    PutI32(out, q.y1);
    PutI32(out, q.t0);
    PutI32(out, q.t1);
  }
  obs::AppendTraceField(out, request.trace);
  return out;
}

StatusOr<TenantQueryRequest> DecodeTenantQueryRequest(
    const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  TenantQueryRequest request;
  if (!ReadCappedString(cur, kMaxWireNameBytes, &request.tenant)) {
    return Malformed("v2 query tenant");
  }
  if (!ReadCappedString(cur, kMaxWireNameBytes, &request.tile)) {
    return Malformed("v2 query tile");
  }
  if (!ReadU64(cur, &request.epoch)) return Malformed("v2 query epoch");
  if (!ReadQueryBody(cur, &request.batch)) return Malformed("v2 query body");
  if (!ReadTrailingTrace(cur, &request.trace)) {
    return Malformed("v2 query trace field");
  }
  return request;
}

std::vector<uint8_t> EncodeTenantQueryResponse(const TenantQueryResponse& response) {
  std::vector<uint8_t> out;
  out.reserve(12 + response.answers.size() * 8);
  PutU64(out, response.epoch);
  PutU32(out, static_cast<uint32_t>(response.answers.size()));
  for (double a : response.answers) PutF64(out, a);
  obs::AppendTraceField(out, response.trace);
  return out;
}

StatusOr<TenantQueryResponse> DecodeTenantQueryResponse(
    const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  TenantQueryResponse response;
  if (!ReadU64(cur, &response.epoch)) return Malformed("v2 response epoch");
  uint32_t count = 0;
  if (!cur.ReadU32(&count)) return Malformed("v2 response header");
  if (static_cast<size_t>(count) * 8 > cur.remaining()) {
    return Malformed("v2 response length");
  }
  response.answers.resize(count);
  for (double& a : response.answers) {
    if (!cur.ReadF64(&a)) return Malformed("v2 response body");
  }
  if (!ReadTrailingTrace(cur, &response.trace)) {
    return Malformed("v2 response trace field");
  }
  return response;
}

std::vector<uint8_t> EncodeAdminRequest(const AdminRequest& request) {
  std::vector<uint8_t> out;
  out.reserve(13 + request.tenant.size() + request.tile.size() +
              request.path.size());
  out.push_back(static_cast<uint8_t>(request.verb));
  PutString(out, request.tenant);
  PutString(out, request.tile);
  PutString(out, request.path);
  obs::AppendTraceField(out, request.trace);
  return out;
}

StatusOr<AdminRequest> DecodeAdminRequest(const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  uint8_t verb = 0;
  if (!cur.ReadBytes(&verb, 1)) return Malformed("admin verb");
  if (verb < static_cast<uint8_t>(AdminVerb::kLoad) ||
      verb > static_cast<uint8_t>(AdminVerb::kUnload)) {
    return Malformed("admin verb value");
  }
  AdminRequest request;
  request.verb = static_cast<AdminVerb>(verb);
  if (!ReadCappedString(cur, kMaxWireNameBytes, &request.tenant)) {
    return Malformed("admin tenant");
  }
  if (!ReadCappedString(cur, kMaxWireNameBytes, &request.tile)) {
    return Malformed("admin tile");
  }
  if (!ReadCappedString(cur, kMaxWirePathBytes, &request.path)) {
    return Malformed("admin path");
  }
  if (!ReadTrailingTrace(cur, &request.trace)) {
    return Malformed("admin trace field");
  }
  if (request.verb == AdminVerb::kUnload && !request.path.empty()) {
    return Malformed("admin unload path (must be empty)");
  }
  if (request.verb != AdminVerb::kUnload && request.path.empty()) {
    return Malformed("admin path (must not be empty)");
  }
  return request;
}

std::vector<uint8_t> EncodeAdminResponse(const AdminResponse& response) {
  std::vector<uint8_t> out;
  out.reserve(13 + response.message.size());
  out.push_back(static_cast<uint8_t>(response.verb));
  PutU64(out, response.epoch);
  PutString(out, response.message);
  obs::AppendTraceField(out, response.trace);
  return out;
}

StatusOr<AdminResponse> DecodeAdminResponse(const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  uint8_t verb = 0;
  if (!cur.ReadBytes(&verb, 1)) return Malformed("admin response verb");
  if (verb < static_cast<uint8_t>(AdminVerb::kLoad) ||
      verb > static_cast<uint8_t>(AdminVerb::kUnload)) {
    return Malformed("admin response verb value");
  }
  AdminResponse response;
  response.verb = static_cast<AdminVerb>(verb);
  if (!ReadU64(cur, &response.epoch)) return Malformed("admin response epoch");
  uint32_t len = 0;
  if (!cur.ReadU32(&len)) return Malformed("admin response header");
  if (len > cur.remaining()) return Malformed("admin response length");
  response.message.resize(len);
  if (len > 0 && !cur.ReadBytes(response.message.data(), len)) {
    return Malformed("admin response body");
  }
  if (!ReadTrailingTrace(cur, &response.trace)) {
    return Malformed("admin response trace field");
  }
  return response;
}

std::vector<uint8_t> EncodeShardStatsRequest(const ShardStatsRequest& request) {
  std::vector<uint8_t> out;
  out.reserve(8 + request.tenant.size() + request.tile.size());
  PutString(out, request.tenant);
  PutString(out, request.tile);
  return out;
}

StatusOr<ShardStatsRequest> DecodeShardStatsRequest(
    const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  ShardStatsRequest request;
  if (!ReadCappedString(cur, kMaxWireNameBytes, &request.tenant)) {
    return Malformed("shard stats tenant");
  }
  if (!ReadCappedString(cur, kMaxWireNameBytes, &request.tile)) {
    return Malformed("shard stats tile");
  }
  if (cur.remaining() != 0) return Malformed("shard stats trailing bytes");
  return request;
}

std::vector<uint8_t> EncodeReadingBatch(const ReadingBatch& batch) {
  std::vector<uint8_t> out;
  out.reserve(12 + batch.tenant.size() + batch.tile.size() +
              batch.readings.size() * 28);
  PutString(out, batch.tenant);
  PutString(out, batch.tile);
  PutU32(out, static_cast<uint32_t>(batch.readings.size()));
  for (const MeterReading& r : batch.readings) {
    PutU64(out, r.meter_id);
    PutI32(out, r.x);
    PutI32(out, r.y);
    PutI32(out, r.t);
    PutF64(out, r.kwh);
  }
  obs::AppendTraceField(out, batch.trace);
  return out;
}

StatusOr<ReadingBatch> DecodeReadingBatch(const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  ReadingBatch batch;
  if (!ReadCappedString(cur, kMaxWireNameBytes, &batch.tenant)) {
    return Malformed("reading batch tenant");
  }
  if (!ReadCappedString(cur, kMaxWireNameBytes, &batch.tile)) {
    return Malformed("reading batch tile");
  }
  uint32_t count = 0;
  if (!cur.ReadU32(&count)) return Malformed("reading batch header");
  if (static_cast<size_t>(count) * 28 > cur.remaining()) {
    return Malformed("reading batch length");
  }
  batch.readings.resize(count);
  for (MeterReading& r : batch.readings) {
    if (!ReadU64(cur, &r.meter_id) || !cur.ReadI32(&r.x) ||
        !cur.ReadI32(&r.y) || !cur.ReadI32(&r.t) || !cur.ReadF64(&r.kwh)) {
      return Malformed("reading batch body");
    }
    // Non-finite consumption would poison every prefix sum it touches;
    // reject it at the codec so hostile feeders cannot corrupt a shard.
    if (!std::isfinite(r.kwh)) return Malformed("reading batch kwh (non-finite)");
  }
  if (!ReadTrailingTrace(cur, &batch.trace)) {
    return Malformed("reading batch trace field");
  }
  return batch;
}

namespace {

/// Length byte of the optional trailing clamped-count field on kReadingAck.
/// Distinct from obs::kTraceFieldBytes - 1 (= 33), so a decoder can tell the
/// two optional fields apart by their first byte.
constexpr uint8_t kClampedFieldLen = 8;

}  // namespace

std::vector<uint8_t> EncodeReadingAck(const ReadingAck& ack) {
  std::vector<uint8_t> out;
  out.reserve(33);
  PutU64(out, ack.accepted);
  PutU64(out, ack.rejected);
  PutU64(out, ack.epoch);
  // Optional field, emitted only when nonzero so a clamp-free ack keeps the
  // pre-change byte layout and old peers interoperate unchanged.
  if (ack.clamped != 0) {
    out.push_back(kClampedFieldLen);
    PutU64(out, ack.clamped);
  }
  obs::AppendTraceField(out, ack.trace);
  return out;
}

StatusOr<ReadingAck> DecodeReadingAck(const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  ReadingAck ack;
  if (!ReadU64(cur, &ack.accepted) || !ReadU64(cur, &ack.rejected) ||
      !ReadU64(cur, &ack.epoch)) {
    return Malformed("reading ack body");
  }
  // The optional clamped field precedes the optional trace field, so the
  // only valid remainders are 0 (neither), 9 (clamped), 34 (trace), and 43
  // (both) — the sizes alone say whether a clamped field is present.
  const size_t clamped_bytes = 1 + sizeof(uint64_t);
  if (cur.remaining() == clamped_bytes ||
      cur.remaining() == clamped_bytes + obs::kTraceFieldBytes) {
    uint8_t len = 0;
    if (!cur.ReadBytes(&len, 1) || len != kClampedFieldLen ||
        !ReadU64(cur, &ack.clamped)) {
      return Malformed("reading ack clamped field");
    }
    // A present-but-zero field would re-encode without the field; reject it
    // so every accepted payload stays canonical.
    if (ack.clamped == 0) return Malformed("reading ack clamped field (zero)");
  }
  if (!ReadTrailingTrace(cur, &ack.trace)) {
    return Malformed("reading ack trace field");
  }
  return ack;
}

std::vector<uint8_t> EncodeTraceFetchRequest(const TraceFetchRequest& request) {
  std::vector<uint8_t> out;
  out.reserve(8 + request.trace_id.size());
  PutU32(out, request.limit);
  PutString(out, request.trace_id);
  return out;
}

StatusOr<TraceFetchRequest> DecodeTraceFetchRequest(
    const std::vector<uint8_t>& payload) {
  Cursor cur(payload);
  TraceFetchRequest request;
  if (!cur.ReadU32(&request.limit)) return Malformed("trace request limit");
  if (!ReadCappedString(cur, kMaxWireTraceIdBytes, &request.trace_id)) {
    return Malformed("trace request id");
  }
  if (cur.remaining() != 0) return Malformed("trace request trailing bytes");
  return request;
}

void FrameDecoder::Append(const uint8_t* data, size_t n) {
  // Compact lazily: only when the dead prefix dominates, so steady-state
  // appends are amortized O(n).
  if (off_ > 0 && off_ >= buf_.size() / 2) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(off_));
    off_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

StatusOr<bool> FrameDecoder::Next(Frame* out) {
  if (poisoned_) return Malformed("frame stream (already poisoned)");
  if (buffered() < 4) return false;
  const uint8_t* p = buf_.data() + off_;
  const uint32_t length = static_cast<uint32_t>(p[0]) |
                          static_cast<uint32_t>(p[1]) << 8 |
                          static_cast<uint32_t>(p[2]) << 16 |
                          static_cast<uint32_t>(p[3]) << 24;
  if (length < 1 || length > kMaxFrameBytes) {
    poisoned_ = true;
    return Malformed("frame length");
  }
  if (buffered() < 4 + static_cast<size_t>(length)) return false;
  const uint8_t type = p[4];
  if (type < static_cast<uint8_t>(MsgType::kQueryRequest) ||
      type > static_cast<uint8_t>(MsgType::kTraceResponse)) {
    poisoned_ = true;
    return Malformed("frame type value");
  }
  out->type = static_cast<MsgType>(type);
  out->payload.assign(p + 5, p + 4 + length);
  off_ += 4 + static_cast<size_t>(length);
  return true;
}

Status WriteFrame(int fd, MsgType type, const std::vector<uint8_t>& payload) {
  const uint64_t length = 1 + payload.size();
  if (length > kMaxFrameBytes) {
    return Status::InvalidArgument("wire: frame exceeds kMaxFrameBytes");
  }
  std::vector<uint8_t> frame;
  frame.reserve(4 + length);
  PutU32(frame, static_cast<uint32_t>(length));
  frame.push_back(static_cast<uint8_t>(type));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return WriteFully(fd, frame.data(), frame.size());
}

StatusOr<Frame> ReadFrame(int fd) {
  uint8_t header[4];
  const ssize_t got = ReadFully(fd, header, sizeof(header));
  if (got == 0) return Status::NotFound(kClosedMessage);
  if (got < 0) return Malformed("frame header (connection error or mid-frame close)");
  const uint32_t length = static_cast<uint32_t>(header[0]) |
                          static_cast<uint32_t>(header[1]) << 8 |
                          static_cast<uint32_t>(header[2]) << 16 |
                          static_cast<uint32_t>(header[3]) << 24;
  if (length < 1 || length > kMaxFrameBytes) return Malformed("frame length");
  uint8_t type = 0;
  if (ReadFully(fd, &type, 1) != 1) return Malformed("frame type");
  if (type < static_cast<uint8_t>(MsgType::kQueryRequest) ||
      type > static_cast<uint8_t>(MsgType::kTraceResponse)) {
    return Malformed("frame type value");
  }
  Frame frame;
  frame.type = static_cast<MsgType>(type);
  frame.payload.resize(length - 1);
  if (!frame.payload.empty() &&
      ReadFully(fd, frame.payload.data(), frame.payload.size()) !=
          static_cast<ssize_t>(frame.payload.size())) {
    return Malformed("frame payload (truncated)");
  }
  return frame;
}

bool IsConnectionClosed(const Status& status) {
  return status.code() == StatusCode::kNotFound && status.message() == kClosedMessage;
}

}  // namespace stpt::serve
