#include "serve/event_loop.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/timerfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <optional>
#include <utility>

#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "obs/trace.h"

namespace stpt::serve {
namespace {

// epoll user-data tags for the three non-connection fds; connection ids
// start above them.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kTimerTag = 2;

// Per-event read cap: level-triggered epoll re-notifies, so bounding one
// visit keeps a firehose connection from starving the others.
constexpr size_t kMaxReadPerVisit = 256u << 10;

void CloseQuietly(int fd) {
  if (fd >= 0) ::close(fd);
}

// Stage indices for ChildSpanId: every lifecycle span of one request derives
// its id from the client's span id and the stage number, so two hops never
// collide and a reader can recompute the chain.
constexpr uint64_t kStageQueue = 1;
constexpr uint64_t kStageParse = 2;
constexpr uint64_t kStageDispatchWait = 3;
constexpr uint64_t kStageExec = 4;
constexpr uint64_t kStageWrite = 5;

void RecordSpan(const obs::TraceContext& ctx, uint64_t span_id,
                uint64_t parent_span_id, uint64_t start_ns, uint64_t end_ns,
                const char* name, const char* lane,
                std::vector<std::pair<std::string, std::string>> attrs = {}) {
  obs::TraceSpan span;
  span.trace_hi = ctx.trace_hi;
  span.trace_lo = ctx.trace_lo;
  span.span_id = span_id;
  span.parent_span_id = parent_span_id;
  span.start_ns = start_ns;
  span.end_ns = end_ns;
  span.name = name;
  span.lane = lane;
  span.attrs = std::move(attrs);
  obs::TraceStore::Global().Add(std::move(span));
}

}  // namespace

/// All connection state is owned by the loop thread; nothing here is
/// touched from workers (they only see the connection id).
struct EventLoopServer::Conn {
  int fd = -1;
  uint64_t id = 0;
  FrameDecoder decoder;
  std::deque<std::vector<uint8_t>> wqueue;  ///< encoded frames, FIFO
  size_t front_off = 0;       ///< bytes of wqueue.front() already sent
  size_t pending_bytes = 0;   ///< total unsent bytes across wqueue
  uint32_t last_events = 0;   ///< epoll interest currently registered
  bool busy = false;          ///< one dispatched batch in flight
  bool deferred = false;      ///< paused by the global dispatch backlog
  bool closing = false;       ///< flush wqueue, then close
  bool dead = false;          ///< reaped at the next safe point
  bool pause_counted = false; ///< contributes to the backpressure gauge
  uint64_t last_read_ns = 0;  ///< when the socket last yielded bytes
};

EventLoopServer::EventLoopServer(SnapshotRegistry* registry,
                                 EventLoopOptions options)
    : registry_(registry), options_(std::move(options)) {
  connections_ctr_ = registry_metrics_.GetCounter(
      "stpt_serve_connections_total", "TCP connections accepted");
  protocol_errors_ctr_ = registry_metrics_.GetCounter(
      "stpt_serve_protocol_errors_total",
      "Malformed or unexpected frames received");
  frames_ctr_ = registry_metrics_.GetCounter("stpt_serve_frames_total",
                                             "Request frames parsed");
  dispatches_ctr_ = registry_metrics_.GetCounter(
      "stpt_serve_dispatches_total", "Query batches dispatched to the exec pool");
  pauses_ctr_ = registry_metrics_.GetCounter(
      "stpt_serve_backpressure_pauses_total",
      "Connections paused for backpressure (budget or backlog)");
  paused_gauge_ = registry_metrics_.GetGauge(
      "stpt_serve_backpressure_paused",
      "Connections currently paused for backpressure");
  inflight_gauge_ = registry_metrics_.GetGauge(
      "stpt_serve_dispatch_inflight", "Dispatched batches not yet answered");
}

EventLoopServer::~EventLoopServer() { Stop(); }

StatusOr<std::unique_ptr<EventLoopServer>> EventLoopServer::Create(
    SnapshotRegistry* registry, EventLoopOptions options) {
  if (registry == nullptr) {
    return Status::InvalidArgument("event_loop: registry must not be null");
  }
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("event_loop: port must be in [0, 65535], got " +
                                   std::to_string(options.port));
  }
  if (options.listen_backlog < 1) {
    return Status::InvalidArgument("event_loop: listen_backlog must be >= 1");
  }
  if (options.write_budget_bytes < 4096) {
    return Status::InvalidArgument(
        "event_loop: write_budget_bytes must be >= 4096");
  }
  if (options.max_inflight_batches < 1) {
    return Status::InvalidArgument(
        "event_loop: max_inflight_batches must be >= 1");
  }
  if (options.so_sndbuf < 0) {
    return Status::InvalidArgument("event_loop: so_sndbuf must be >= 0");
  }
  if (options.drain_timeout_ms < 0) {
    return Status::InvalidArgument("event_loop: drain_timeout_ms must be >= 0");
  }
  if (options.ingest_publish_interval_ms < 0) {
    return Status::InvalidArgument(
        "event_loop: ingest_publish_interval_ms must be >= 0");
  }
  in_addr parsed{};
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &parsed) != 1) {
    return Status::InvalidArgument("event_loop: bad bind address '" +
                                   options.bind_address + "'");
  }
  return std::unique_ptr<EventLoopServer>(
      new EventLoopServer(registry, std::move(options)));
}

Status EventLoopServer::Start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::Internal("event_loop: cannot create socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  ::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseQuietly(fd);
    return Status::Internal("event_loop: cannot bind " + options_.bind_address +
                            ":" + std::to_string(options_.port) + " (" +
                            std::strerror(errno) + ")");
  }
  if (::listen(fd, options_.listen_backlog) != 0) {
    CloseQuietly(fd);
    return Status::Internal("event_loop: listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    CloseQuietly(fd);
    return Status::Internal("event_loop: getsockname failed");
  }

  const int epfd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd < 0) {
    CloseQuietly(fd);
    return Status::Internal("event_loop: epoll_create1 failed");
  }
  const int wfd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wfd < 0) {
    CloseQuietly(fd);
    CloseQuietly(epfd);
    return Status::Internal("event_loop: eventfd failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  ::epoll_ctl(epfd, EPOLL_CTL_ADD, fd, &ev);
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epfd, EPOLL_CTL_ADD, wfd, &ev);

  // Periodic ingest publish timer: an idle shard has no batch arrival to
  // carry its tick-epoch deadline, so the loop drives the sweep itself.
  int tfd = -1;
  if (options_.ingest_publish_interval_ms > 0 && ingest_ != nullptr) {
    tfd = ::timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
    if (tfd < 0) {
      CloseQuietly(fd);
      CloseQuietly(epfd);
      CloseQuietly(wfd);
      return Status::Internal("event_loop: timerfd_create failed");
    }
    itimerspec spec{};
    spec.it_interval.tv_sec = options_.ingest_publish_interval_ms / 1000;
    spec.it_interval.tv_nsec =
        (options_.ingest_publish_interval_ms % 1000) * 1'000'000L;
    spec.it_value = spec.it_interval;
    ::timerfd_settime(tfd, 0, &spec, nullptr);
    ev.data.u64 = kTimerTag;
    ::epoll_ctl(epfd, EPOLL_CTL_ADD, tfd, &ev);
  }

  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  epoll_fd_ = epfd;
  wake_fd_ = wfd;
  timer_fd_ = tfd;
  stop_requested_.store(false, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stop_flagged_ = false;
  }
  loop_thread_ = std::thread([this] { LoopThread(); });
  return Status::OK();
}

void EventLoopServer::LoopThread() {
  obs::RegisterCurrentThreadName("stpt-loop");
  std::vector<epoll_event> events(128);
  std::vector<uint64_t> dead;
  auto reap = [this, &dead] {
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (it->second->dead) {
        dead.push_back(it->first);
      }
      ++it;
    }
    for (uint64_t id : dead) CloseConn(id);
    dead.clear();
  };
  while (true) {
    const int timeout_ms = draining_ ? 10 : -1;
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd closed or fatal
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.u64 == kListenTag) {
        AcceptReady();
        continue;
      }
      if (ev.data.u64 == kWakeTag) {
        uint64_t drainv = 0;
        while (::read(wake_fd_, &drainv, sizeof(drainv)) > 0) {
        }
        continue;
      }
      if (ev.data.u64 == kTimerTag) {
        uint64_t expirations = 0;
        (void)!::read(timer_fd_, &expirations, sizeof(expirations));
        // Runs on the loop thread: the sweep only takes per-shard locks
        // (never loop state), ticks missed while it runs coalesce into the
        // drained expiration count, and nothing can outlive Stop().
        if (ingest_ != nullptr && !draining_) ingest_->PublishAll();
        continue;
      }
      auto it = conns_.find(ev.data.u64);
      if (it == conns_.end() || it->second->dead) continue;
      Conn& conn = *it->second;
      if (ev.events & (EPOLLHUP | EPOLLERR)) {
        conn.dead = true;
        continue;
      }
      if (ev.events & EPOLLOUT) WriteReady(conn);
      if (!conn.dead && (ev.events & EPOLLIN)) ReadReady(conn);
    }
    ProcessCompletions();
    reap();
    if (!draining_ && stop_requested_.load(std::memory_order_acquire)) {
      BeginDrain();
    }
    if (draining_ &&
        (DrainComplete() || obs::NowNanos() >= drain_deadline_ns_)) {
      CloseAllConns();
      break;
    }
  }
}

void EventLoopServer::AcceptReady() {
  while (true) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or the listener was closed for drain
    }
    if (draining_) {
      CloseQuietly(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.so_sndbuf > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.so_sndbuf,
                   sizeof(options_.so_sndbuf));
    }
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      CloseQuietly(fd);
      continue;
    }
    conn->last_events = EPOLLIN;
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_ctr_->Increment();
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    conns_.emplace(conn->id, std::move(conn));
  }
}

void EventLoopServer::ReadReady(Conn& conn) {
  if (conn.busy || conn.closing || conn.deferred || draining_) return;
  uint8_t buf[65536];
  size_t total = 0;
  while (total < kMaxReadPerVisit) {
    const ssize_t r = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (r > 0) {
      conn.decoder.Append(buf, static_cast<size_t>(r));
      conn.last_read_ns = obs::NowNanos();
      total += static_cast<size_t>(r);
      if (static_cast<size_t>(r) < sizeof(buf)) break;
      continue;
    }
    if (r == 0) {  // clean peer close
      conn.dead = true;
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.dead = true;
    return;
  }
  ParseFrames(conn);
}

void EventLoopServer::ParseFrames(Conn& conn) {
  if (draining_) {
    UpdateInterest(conn);
    return;
  }
  while (!conn.busy && !conn.closing && !conn.dead) {
    if (inflight_.load(std::memory_order_relaxed) >=
        options_.max_inflight_batches) {
      // Query backlog is deep: defer reading (and parsing) until workers
      // catch up. ResumeDeferred picks the connection back up.
      if (!conn.deferred) {
        conn.deferred = true;
        deferred_.push_back(conn.id);
      }
      break;
    }
    if (conn.pending_bytes > options_.write_budget_bytes) break;
    Frame frame;
    auto ready = conn.decoder.Next(&frame);
    if (!ready.ok()) {
      protocol_errors_ctr_->Increment();
      EnqueueError(conn, ready.status(), /*close_after=*/true);
      break;
    }
    if (!*ready) break;
    frames_ctr_->Increment();
    if (!HandleFrame(conn, std::move(frame))) break;
  }
  UpdatePauseAccounting(conn);
  UpdateInterest(conn);
}

bool EventLoopServer::HandleFrame(Conn& conn, Frame frame) {
  switch (frame.type) {
    case MsgType::kQueryRequest: {
      auto batch = DecodeQueryRequest(frame.payload);
      if (!batch.ok()) {
        protocol_errors_ctr_->Increment();
        EnqueueError(conn, batch.status(), /*close_after=*/true);
        return false;
      }
      auto gen = registry_->RouteDefault();
      if (!gen.ok()) {
        EnqueueError(conn, gen.status(), /*close_after=*/false);
        return true;
      }
      DispatchQuery(conn, std::move(*gen), std::move(*batch), /*v2=*/false,
                    obs::TraceContext{});
      return false;
    }
    case MsgType::kQueryRequestV2: {
      const uint64_t parse_start_ns = obs::NowNanos();
      auto request = DecodeTenantQueryRequest(frame.payload);
      if (!request.ok()) {
        protocol_errors_ctr_->Increment();
        EnqueueError(conn, request.status(), /*close_after=*/true);
        return false;
      }
      RecordRequestSpans(conn, request->trace, parse_start_ns, obs::NowNanos());
      const std::string tenant =
          request->tenant.empty() ? kDefaultTenant : request->tenant;
      const std::string tile = request->tile.empty() ? kDefaultTile : request->tile;
      auto gen = registry_->Route(tenant, tile, request->epoch);
      if (!gen.ok()) {
        EnqueueError(conn, gen.status(), /*close_after=*/false);
        return true;
      }
      DispatchQuery(conn, std::move(*gen), std::move(request->batch), /*v2=*/true,
                    request->trace);
      return false;
    }
    case MsgType::kStatsRequest:
      EnqueueFrame(conn, MsgType::kStatsResponse, EncodeString(StatsText()));
      return true;
    case MsgType::kShardStatsRequest: {
      auto request = DecodeShardStatsRequest(frame.payload);
      if (!request.ok()) {
        protocol_errors_ctr_->Increment();
        EnqueueError(conn, request.status(), /*close_after=*/true);
        return false;
      }
      EnqueueFrame(conn, MsgType::kShardStatsResponse,
                   EncodeString(registry_->StatsJson(request->tenant,
                                                     request->tile)));
      return true;
    }
    case MsgType::kMetaRequest: {
      auto gen = registry_->RouteDefault();
      if (!gen.ok()) {
        EnqueueError(conn, gen.status(), /*close_after=*/false);
        return true;
      }
      EnqueueFrame(conn, MsgType::kMetaResponse,
                   EncodeMetaResponse(
                       {(*gen)->engine->dims(), (*gen)->engine->meta()}));
      return true;
    }
    case MsgType::kMetricsRequest:
      EnqueueFrame(conn, MsgType::kMetricsResponse, EncodeString(MetricsText()));
      return true;
    case MsgType::kReadingBatch: {
      const uint64_t parse_start_ns = obs::NowNanos();
      auto batch = DecodeReadingBatch(frame.payload);
      if (!batch.ok()) {
        protocol_errors_ctr_->Increment();
        EnqueueError(conn, batch.status(), /*close_after=*/true);
        return false;
      }
      RecordRequestSpans(conn, batch->trace, parse_start_ns, obs::NowNanos());
      if (ingest_ == nullptr) {
        EnqueueError(conn,
                     Status::FailedPrecondition(
                         "ingest: server started without an ingest pipeline"),
                     /*close_after=*/false);
        return true;
      }
      DispatchIngest(conn, std::move(*batch));
      return false;
    }
    case MsgType::kAdminRequest:
      HandleAdmin(conn, frame.payload);
      return true;
    case MsgType::kTraceRequest: {
      auto request = DecodeTraceFetchRequest(frame.payload);
      if (!request.ok()) {
        protocol_errors_ctr_->Increment();
        EnqueueError(conn, request.status(), /*close_after=*/true);
        return false;
      }
      EnqueueFrame(conn, MsgType::kTraceResponse,
                   EncodeString(obs::TraceStore::Global().ToJson(
                       request->limit, request->trace_id)));
      return true;
    }
    case MsgType::kShutdown:
      EnqueueFrame(conn, MsgType::kShutdown, {});
      RequestStop();
      return false;
    default:
      protocol_errors_ctr_->Increment();
      EnqueueError(conn, Status::InvalidArgument("wire: unexpected message type"),
                   /*close_after=*/true);
      return false;
  }
}

void EventLoopServer::DispatchQuery(Conn& conn,
                                    std::shared_ptr<const ShardGeneration> gen,
                                    query::Workload batch, bool v2,
                                    const obs::TraceContext& trace) {
  conn.busy = true;
  dispatches_ctr_->Increment();
  inflight_gauge_->Set(static_cast<double>(
      inflight_.fetch_add(1, std::memory_order_acq_rel) + 1));
  const uint64_t dispatch_ns = obs::NowNanos();
  auto task = [this, id = conn.id, gen = std::move(gen),
               batch = std::move(batch), v2, trace, dispatch_ns,
               recv_ns = conn.last_read_ns] {
    const uint64_t exec_start_ns = obs::NowNanos();
    Completion comp;
    comp.conn_id = id;
    comp.tenant = gen->key.tenant;
    comp.tile = gen->key.tile;
    comp.req_recv_ns = recv_ns;
    comp.trace = trace;
    StatusOr<QueryResponse> answers = [&]() -> StatusOr<QueryResponse> {
      if (!trace.sampled) return gen->engine->AnswerBatch(batch);
      // The exec span is the active context while the engine runs, so
      // exemplars, slow-batch logs and ParallelFor lanes chain to it.
      obs::TraceContext exec_ctx = trace;
      exec_ctx.span_id = obs::ChildSpanId(trace.span_id, kStageExec);
      obs::ScopedTraceContext scoped(exec_ctx);
      return gen->engine->AnswerBatch(batch);
    }();
    if (!answers.ok()) {
      // Per-query validation failure: report it but keep the connection —
      // the client's next batch may be fine (v1 semantics preserved).
      comp.type = MsgType::kError;
      comp.error = true;
      comp.payload = EncodeString(answers.status().ToString());
    } else if (v2) {
      TenantQueryResponse response;
      response.epoch = gen->epoch;
      response.answers = std::move(*answers);
      response.trace = trace;  // echo so the client can match its context
      comp.type = MsgType::kQueryResponseV2;
      comp.payload = EncodeTenantQueryResponse(response);
    } else {
      comp.type = MsgType::kQueryResponse;
      comp.payload = EncodeQueryResponse(*answers);
    }
    if (trace.sampled) {
      RecordSpan(trace, obs::ChildSpanId(trace.span_id, kStageDispatchWait),
                 trace.span_id, dispatch_ns, exec_start_ns,
                 "serve/dispatch_wait", "worker");
      RecordSpan(trace, obs::ChildSpanId(trace.span_id, kStageExec),
                 trace.span_id, exec_start_ns, obs::NowNanos(), "serve/exec",
                 "worker",
                 {{"tenant", gen->key.tenant},
                  {"tile", gen->key.tile},
                  {"epoch", std::to_string(gen->epoch)}});
    }
    PushCompletion(std::move(comp));
  };
  if (exec::Threads() > 1) {
    exec::GlobalPool().Submit(std::move(task));
  } else {
    // Serial runtime: no pool exists; answer inline. The completion is
    // picked up in the same loop iteration.
    task();
  }
}

void EventLoopServer::DispatchIngest(Conn& conn, ReadingBatch batch) {
  // Same one-in-flight-per-connection discipline as queries: acks stay in
  // request order and a firehose feeder is paced by its own acks while the
  // global inflight cap keeps ingest and queries jointly bounded.
  conn.busy = true;
  dispatches_ctr_->Increment();
  inflight_gauge_->Set(static_cast<double>(
      inflight_.fetch_add(1, std::memory_order_acq_rel) + 1));
  const uint64_t dispatch_ns = obs::NowNanos();
  auto task = [this, id = conn.id, batch = std::move(batch), dispatch_ns,
               recv_ns = conn.last_read_ns] {
    const uint64_t exec_start_ns = obs::NowNanos();
    Completion comp;
    comp.conn_id = id;
    comp.tenant = batch.tenant.empty() ? kDefaultTenant : batch.tenant;
    comp.tile = batch.tile.empty() ? kDefaultTile : batch.tile;
    comp.req_recv_ns = recv_ns;
    comp.trace = batch.trace;
    ReadingAck ack = [&] {
      if (!batch.trace.sampled) return ingest_->Apply(batch);
      // The pipeline records ingest/apply + ingest/publish spans (and the
      // registry its swap span) against the active context, chaining the
      // batch to the epoch it publishes.
      obs::TraceContext exec_ctx = batch.trace;
      exec_ctx.span_id = obs::ChildSpanId(batch.trace.span_id, kStageExec);
      obs::ScopedTraceContext scoped(exec_ctx);
      return ingest_->Apply(batch);
    }();
    comp.error = ack.rejected > 0 && ack.accepted == 0 && ack.clamped == 0;
    ack.trace = batch.trace;  // echo
    comp.type = MsgType::kReadingAck;
    comp.payload = EncodeReadingAck(ack);
    if (batch.trace.sampled) {
      RecordSpan(batch.trace,
                 obs::ChildSpanId(batch.trace.span_id, kStageDispatchWait),
                 batch.trace.span_id, dispatch_ns, exec_start_ns,
                 "serve/dispatch_wait", "worker");
      RecordSpan(batch.trace, obs::ChildSpanId(batch.trace.span_id, kStageExec),
                 batch.trace.span_id, exec_start_ns, obs::NowNanos(),
                 "serve/exec", "worker",
                 {{"tenant", comp.tenant},
                  {"tile", comp.tile},
                  {"epoch", std::to_string(ack.epoch)}});
    }
    PushCompletion(std::move(comp));
  };
  if (exec::Threads() > 1) {
    exec::GlobalPool().Submit(std::move(task));
  } else {
    task();
  }
}

void EventLoopServer::HandleAdmin(Conn& conn,
                                  const std::vector<uint8_t>& payload) {
  const uint64_t parse_start_ns = obs::NowNanos();
  auto request = DecodeAdminRequest(payload);
  if (!request.ok()) {
    protocol_errors_ctr_->Increment();
    EnqueueError(conn, request.status(), /*close_after=*/true);
    return;
  }
  RecordRequestSpans(conn, request->trace, parse_start_ns, obs::NowNanos());
  // The registry records its load/swap span against the active context, so
  // a traced admin verb chains verb → build → published epoch.
  std::optional<obs::ScopedTraceContext> scoped;
  if (request->trace.sampled) scoped.emplace(request->trace);
  const ShardKey key{request->tenant, request->tile};
  AdminResponse response;
  response.verb = request->verb;
  response.trace = request->trace;  // echo
  Status failed = Status::OK();
  switch (request->verb) {
    case AdminVerb::kLoad: {
      auto epoch = registry_->LoadFile(key, request->path);
      if (epoch.ok()) {
        response.epoch = *epoch;
      } else {
        failed = epoch.status();
      }
      break;
    }
    case AdminVerb::kSwap: {
      auto epoch = registry_->SwapFile(key, request->path);
      if (epoch.ok()) {
        response.epoch = *epoch;
      } else {
        failed = epoch.status();
      }
      break;
    }
    case AdminVerb::kUnload:
      failed = registry_->Unload(key);
      break;
  }
  if (!failed.ok()) {
    EnqueueError(conn, failed, /*close_after=*/false);
    return;
  }
  response.message = "ok";
  EnqueueFrame(conn, MsgType::kAdminResponse, EncodeAdminResponse(response));
}

void EventLoopServer::RecordRequestSpans(const Conn& conn,
                                         const obs::TraceContext& ctx,
                                         uint64_t parse_start_ns,
                                         uint64_t parse_end_ns) {
  if (!ctx.sampled) return;
  // The client's send span: its id travels on the wire, its start is the
  // stamped send time, and it closes when the bytes landed in our socket
  // read. Meaningful when client and server share a steady clock (same
  // machine, as in tests and the CI smoke); omitted if the stamp is absent
  // or the clocks disagree enough to invert the interval.
  if (ctx.start_ns != 0 && conn.last_read_ns >= ctx.start_ns) {
    RecordSpan(ctx, ctx.span_id, 0, ctx.start_ns, conn.last_read_ns,
               "client/send", "client");
  }
  if (conn.last_read_ns != 0 && parse_start_ns >= conn.last_read_ns) {
    RecordSpan(ctx, obs::ChildSpanId(ctx.span_id, kStageQueue), ctx.span_id,
               conn.last_read_ns, parse_start_ns, "serve/queue", "loop");
  }
  RecordSpan(ctx, obs::ChildSpanId(ctx.span_id, kStageParse), ctx.span_id,
             parse_start_ns, parse_end_ns, "serve/parse", "loop");
}

std::string EventLoopServer::MetricsText() const {
  // Default shard first (v1-compatible unlabeled stpt_serve_* families),
  // then this server's loop metrics, the registry's admin + labeled
  // per-shard families, and the process-wide registry.
  std::string text;
  auto def = registry_->RouteDefault();
  if (def.ok()) text += (*def)->engine->metrics().ToPrometheusText();
  text += registry_metrics_.ToPrometheusText();
  text += red_.ToPrometheusText();
  if (ingest_ != nullptr) text += ingest_->MetricsText();
  text += registry_->ToPrometheusText();
  text += obs::Registry::Global().ToPrometheusText();
  return text;
}

std::string EventLoopServer::StatsText() const {
  auto def = registry_->RouteDefault();
  if (!def.ok()) return registry_->StatsJson();
  // v1 shape (engine counters) with the trace-region profile and the
  // registry topology spliced in.
  std::string stats_json = (*def)->engine->stats().ToJson();
  std::string splice = ", \"top_regions\": " + obs::TraceProfileJson(10) +
                       ", \"registry\": " + registry_->StatsJson();
  if (ingest_ != nullptr) splice += ", \"ingest\": " + ingest_->StatsJson();
  stats_json.insert(stats_json.size() - 1, splice);
  return stats_json;
}

void EventLoopServer::EnqueueFrame(Conn& conn, MsgType type,
                                   const std::vector<uint8_t>& payload) {
  if (conn.dead) return;
  const uint64_t length = 1 + payload.size();
  if (length > kMaxFrameBytes) {
    conn.dead = true;
    return;
  }
  std::vector<uint8_t> frame;
  frame.reserve(4 + static_cast<size_t>(length));
  frame.push_back(static_cast<uint8_t>(length));
  frame.push_back(static_cast<uint8_t>(length >> 8));
  frame.push_back(static_cast<uint8_t>(length >> 16));
  frame.push_back(static_cast<uint8_t>(length >> 24));
  frame.push_back(static_cast<uint8_t>(type));
  frame.insert(frame.end(), payload.begin(), payload.end());
  conn.pending_bytes += frame.size();
  conn.wqueue.push_back(std::move(frame));
  FlushWrites(conn);
}

void EventLoopServer::EnqueueError(Conn& conn, const Status& status,
                                   bool close_after) {
  if (close_after) conn.closing = true;
  EnqueueFrame(conn, MsgType::kError, EncodeString(status.ToString()));
}

void EventLoopServer::FlushWrites(Conn& conn) {
  if (conn.dead) return;
  while (!conn.wqueue.empty()) {
    const std::vector<uint8_t>& front = conn.wqueue.front();
    const size_t n = front.size() - conn.front_off;
    const ssize_t w =
        ::send(conn.fd, front.data() + conn.front_off, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      conn.dead = true;  // peer hung up mid-response
      return;
    }
    conn.front_off += static_cast<size_t>(w);
    conn.pending_bytes -= static_cast<size_t>(w);
    if (conn.front_off == front.size()) {
      conn.wqueue.pop_front();
      conn.front_off = 0;
    }
  }
  if (conn.wqueue.empty() && conn.closing) {
    conn.dead = true;
    return;
  }
  UpdatePauseAccounting(conn);
  UpdateInterest(conn);
}

void EventLoopServer::WriteReady(Conn& conn) {
  FlushWrites(conn);
  // Dropping back under the write budget may unblock requests that were
  // already sitting in the frame decoder (the socket itself is drained, so
  // no EPOLLIN will fire for them).
  if (!conn.dead && !conn.busy && conn.decoder.buffered() > 0) {
    ParseFrames(conn);
  }
}

void EventLoopServer::UpdateInterest(Conn& conn) {
  if (conn.dead) return;
  uint32_t events = 0;
  const bool want_read = !conn.busy && !conn.closing && !draining_ &&
                         !conn.deferred &&
                         conn.pending_bytes <= options_.write_budget_bytes;
  if (want_read) events |= EPOLLIN;
  if (!conn.wqueue.empty()) events |= EPOLLOUT;
  if (events == conn.last_events) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.last_events = events;
}

void EventLoopServer::UpdatePauseAccounting(Conn& conn) {
  const bool paused =
      !conn.dead && !conn.closing &&
      (conn.deferred || conn.pending_bytes > options_.write_budget_bytes);
  if (paused && !conn.pause_counted) {
    conn.pause_counted = true;
    ++paused_count_;
    pauses_ctr_->Increment();
    paused_gauge_->Set(static_cast<double>(paused_count_));
  } else if (!paused && conn.pause_counted) {
    conn.pause_counted = false;
    --paused_count_;
    paused_gauge_->Set(static_cast<double>(paused_count_));
  }
}

void EventLoopServer::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = *it->second;
  if (conn.pause_counted) {
    --paused_count_;
    paused_gauge_->Set(static_cast<double>(paused_count_));
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  CloseQuietly(conn.fd);
  conns_.erase(it);
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
}

void EventLoopServer::ProcessCompletions() {
  std::vector<Completion> batch;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& comp : batch) {
    inflight_gauge_->Set(static_cast<double>(
        inflight_.fetch_sub(1, std::memory_order_acq_rel) - 1));
    const uint64_t write_start_ns = obs::NowNanos();
    auto it = conns_.find(comp.conn_id);
    if (it == conns_.end() || it->second->dead) continue;
    Conn& conn = *it->second;
    conn.busy = false;
    EnqueueFrame(conn, comp.type, comp.payload);
    if (!comp.tenant.empty()) {
      // RED update: one request per dispatched completion, latency from the
      // request's socket read to its response hitting the write path.
      obs::RedFamily::Cell cell = red_.Get(comp.tenant, comp.tile);
      cell.requests->Increment();
      if (comp.error) cell.errors->Increment();
      const uint64_t now_ns = obs::NowNanos();
      const double latency =
          comp.req_recv_ns != 0 && now_ns >= comp.req_recv_ns
              ? static_cast<double>(now_ns - comp.req_recv_ns)
              : 0.0;
      if (comp.trace.sampled) {
        cell.latency_ns->ObserveWithExemplar(latency, comp.trace.trace_hi,
                                             comp.trace.trace_lo, now_ns);
      } else {
        cell.latency_ns->Observe(latency);
      }
    }
    if (comp.trace.sampled) {
      RecordSpan(comp.trace,
                 obs::ChildSpanId(comp.trace.span_id, kStageWrite),
                 comp.trace.span_id, write_start_ns, obs::NowNanos(),
                 "serve/write", "loop");
    }
    if (comp.close_after) conn.closing = true;
    if (!conn.dead) ParseFrames(conn);  // more frames may be buffered
  }
  ResumeDeferred();
}

void EventLoopServer::ResumeDeferred() {
  while (!deferred_.empty() && inflight_.load(std::memory_order_relaxed) <
                                   options_.max_inflight_batches) {
    const uint64_t id = deferred_.front();
    deferred_.pop_front();
    auto it = conns_.find(id);
    if (it == conns_.end() || it->second->dead) continue;
    Conn& conn = *it->second;
    if (!conn.deferred) continue;
    conn.deferred = false;
    ParseFrames(conn);
  }
}

void EventLoopServer::PushCompletion(Completion completion) {
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    completions_.push_back(std::move(completion));
  }
  // The loop drains the queue at the bottom of every iteration, so a
  // completion produced on the loop thread itself (serial inline dispatch)
  // is already guaranteed to be seen — the wake syscall is only for pool
  // workers that must interrupt a blocking epoll_wait.
  if (std::this_thread::get_id() == loop_thread_.get_id()) return;
  const uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
}

void EventLoopServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  const uint64_t one = 1;
  (void)!::write(wake_fd_, &one, sizeof(one));
  std::lock_guard<std::mutex> lock(mu_);
  stop_flagged_ = true;
  stop_cv_.notify_all();
}

void EventLoopServer::BeginDrain() {
  draining_ = true;
  drain_deadline_ns_ =
      obs::NowNanos() +
      static_cast<uint64_t>(options_.drain_timeout_ms) * 1'000'000ull;
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    CloseQuietly(listen_fd_);
    listen_fd_ = -1;
  }
  // Stop reading everywhere; in-flight batches and pending writes drain.
  for (auto& [id, conn] : conns_) {
    if (!conn->dead) {
      UpdatePauseAccounting(*conn);
      UpdateInterest(*conn);
    }
  }
}

bool EventLoopServer::DrainComplete() const {
  if (inflight_.load(std::memory_order_acquire) != 0) return false;
  {
    std::lock_guard<std::mutex> lock(completions_mu_);
    if (!completions_.empty()) return false;
  }
  for (const auto& [id, conn] : conns_) {
    if (!conn->dead && conn->pending_bytes > 0) return false;
  }
  return true;
}

void EventLoopServer::CloseAllConns() {
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (uint64_t id : ids) CloseConn(id);
}

void EventLoopServer::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait(lock, [this] { return stop_flagged_ || !started_; });
}

void EventLoopServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
  }
  RequestStop();
  if (loop_thread_.joinable()) loop_thread_.join();
  CloseQuietly(listen_fd_);
  CloseQuietly(epoll_fd_);
  CloseQuietly(wake_fd_);
  CloseQuietly(timer_fd_);
  listen_fd_ = -1;
  epoll_fd_ = -1;
  wake_fd_ = -1;
  timer_fd_ = -1;
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

}  // namespace stpt::serve
