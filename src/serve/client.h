#ifndef STPT_SERVE_CLIENT_H_
#define STPT_SERVE_CLIENT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/range_query.h"
#include "serve/wire.h"

namespace stpt::serve {

/// Blocking client for the framed TCP protocol. One connection, one
/// outstanding request at a time; open several clients for concurrency
/// (each is cheap: a socket and nothing else). Not thread-safe — confine
/// each instance to one thread.
class Client {
 public:
  /// Connects to host:port (host is resolved via getaddrinfo, so both
  /// "127.0.0.1" and "localhost" work).
  static StatusOr<Client> Connect(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Answers for each query, index-aligned with the batch. A server-side
  /// validation failure surfaces as the server's error Status. Routed to
  /// the server's default shard (v1 frame).
  StatusOr<QueryResponse> Query(const query::Workload& batch);

  /// Tenant-addressed query (v2 frame). Empty tenant/tile address the
  /// default shard; epoch 0 accepts the current generation, a nonzero
  /// epoch fails with the server's NotFound if that generation was swapped
  /// out. The response carries the epoch that answered. A valid `trace`
  /// context rides the frame (start_ns stamped at send if unset) and is
  /// echoed in the response; a default-constructed one leaves the frame
  /// byte-identical to the pre-trace protocol.
  StatusOr<TenantQueryResponse> QueryTenant(const std::string& tenant,
                                            const std::string& tile,
                                            const query::Workload& batch,
                                            uint64_t epoch = 0,
                                            obs::TraceContext trace = {});

  /// Streams one batch of meter readings into the server's ingest pipeline
  /// (kReadingBatch frame). Empty tenant/tile address the default shard. An
  /// empty `readings` vector forces an epoch boundary (flush) for the
  /// addressed shard. Returns the ack: admission counts plus the epoch now
  /// published. Fails with the server's FailedPrecondition when the server
  /// runs without an ingest pipeline.
  /// `trace` behaves as in QueryTenant: valid contexts ride the frame and
  /// come back in the ack, default ones leave the bytes unchanged.
  StatusOr<ReadingAck> Ingest(const std::string& tenant, const std::string& tile,
                              const std::vector<MeterReading>& readings,
                              obs::TraceContext trace = {});

  /// Loads a snapshot container (server-side path) as a new shard.
  /// Returns the published epoch (1). FailedPrecondition-style server
  /// error if the shard already exists — use Swap.
  StatusOr<uint64_t> Load(const std::string& tenant, const std::string& tile,
                          const std::string& path);

  /// Hot-swaps an existing shard to a new snapshot container with zero
  /// dropped queries. Returns the new epoch.
  StatusOr<uint64_t> Swap(const std::string& tenant, const std::string& tile,
                          const std::string& path);

  /// Removes a shard; in-flight batches on the old generation finish.
  Status Unload(const std::string& tenant, const std::string& tile);

  /// Per-shard stats JSON (SnapshotRegistry::StatsJson). Empty strings
  /// select all shards.
  StatusOr<std::string> ShardStats(const std::string& tenant = "",
                                   const std::string& tile = "");

  /// Server dims + snapshot metadata.
  StatusOr<WireMeta> Meta();

  /// Serving-counter JSON (ServerStats::ToJson).
  StatusOr<std::string> Stats();

  /// Full metric snapshot in Prometheus text exposition format: the
  /// engine's registry followed by the server process's global registry.
  StatusOr<std::string> Metrics();

  /// Fetches recently completed sampled traces from the server's span
  /// store as JSON (obs::TraceStore::ToJson shape). `limit` keeps the most
  /// recent N traces (0 = all stored); a non-empty `trace_id` (32 hex
  /// chars) selects one trace.
  StatusOr<std::string> FetchTraces(uint32_t limit = 0,
                                    const std::string& trace_id = "");

  /// Asks the server to stop; returns OK once the ack arrives.
  Status Shutdown();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// One request/response round trip; maps kError frames to Status.
  StatusOr<Frame> Call(MsgType request, const std::vector<uint8_t>& payload,
                       MsgType expected_response);

  /// Shared load/swap/unload round trip; returns the published epoch.
  StatusOr<uint64_t> Admin(AdminVerb verb, const std::string& tenant,
                           const std::string& tile, const std::string& path);

  int fd_ = -1;
};

}  // namespace stpt::serve

#endif  // STPT_SERVE_CLIENT_H_
