#ifndef STPT_SERVE_CLIENT_H_
#define STPT_SERVE_CLIENT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/range_query.h"
#include "serve/wire.h"

namespace stpt::serve {

/// Blocking client for the framed TCP protocol. One connection, one
/// outstanding request at a time; open several clients for concurrency
/// (each is cheap: a socket and nothing else). Not thread-safe — confine
/// each instance to one thread.
class Client {
 public:
  /// Connects to host:port (host is resolved via getaddrinfo, so both
  /// "127.0.0.1" and "localhost" work).
  static StatusOr<Client> Connect(const std::string& host, int port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  /// Answers for each query, index-aligned with the batch. A server-side
  /// validation failure surfaces as the server's error Status.
  StatusOr<QueryResponse> Query(const query::Workload& batch);

  /// Server dims + snapshot metadata.
  StatusOr<WireMeta> Meta();

  /// Serving-counter JSON (ServerStats::ToJson).
  StatusOr<std::string> Stats();

  /// Full metric snapshot in Prometheus text exposition format: the
  /// engine's registry followed by the server process's global registry.
  StatusOr<std::string> Metrics();

  /// Asks the server to stop; returns OK once the ack arrives.
  Status Shutdown();

 private:
  explicit Client(int fd) : fd_(fd) {}

  /// One request/response round trip; maps kError frames to Status.
  StatusOr<Frame> Call(MsgType request, const std::vector<uint8_t>& payload,
                       MsgType expected_response);

  int fd_ = -1;
};

}  // namespace stpt::serve

#endif  // STPT_SERVE_CLIENT_H_
