#include "serve/query_server.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <list>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "exec/parallel.h"
#include "obs/log.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace stpt::serve {
namespace {

struct CacheKey {
  std::array<int32_t, 6> bounds;
  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const {
    // splitmix64-style mix over the packed coordinate pairs.
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (int i = 0; i < 3; ++i) {
      uint64_t w = static_cast<uint64_t>(static_cast<uint32_t>(k.bounds[2 * i])) |
                   static_cast<uint64_t>(static_cast<uint32_t>(k.bounds[2 * i + 1]))
                       << 32;
      h ^= w;
      h *= 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 27;
    }
    return static_cast<size_t>(h ^ (h >> 31));
  }
};

CacheKey KeyOf(const query::RangeQuery& q) {
  return CacheKey{{q.x0, q.x1, q.y0, q.y1, q.t0, q.t1}};
}

/// One LRU shard: a doubly-linked recency list plus an index into it, both
/// guarded by the shard mutex. Capacity is enforced per shard.
class LruShard {
 public:
  void set_capacity(size_t capacity) { capacity_ = capacity; }

  bool Lookup(const CacheKey& key, double* value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    recency_.splice(recency_.begin(), recency_, it->second);
    *value = it->second->second;
    return true;
  }

  void Insert(const CacheKey& key, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {  // raced with another miss on the same query
      recency_.splice(recency_.begin(), recency_, it->second);
      return;
    }
    recency_.emplace_front(key, value);
    index_[key] = recency_.begin();
    if (index_.size() > capacity_) {
      index_.erase(recency_.back().first);
      recency_.pop_back();
    }
  }

 private:
  std::mutex mu_;
  size_t capacity_ = 0;
  std::list<std::pair<CacheKey, double>> recency_;
  std::unordered_map<CacheKey, std::list<std::pair<CacheKey, double>>::iterator,
                     CacheKeyHash>
      index_;
};

}  // namespace

std::string ServerStats::ToJson() const {
  std::ostringstream os;
  os << "{\"queries\": " << queries << ", \"invalid\": " << invalid
     << ", \"cache_hits\": " << cache_hits << ", \"cache_misses\": " << cache_misses
     << ", \"cache_hit_rate\": " << hit_rate() << ", \"p50_ns\": " << p50_ns
     << ", \"p99_ns\": " << p99_ns << "}";
  return os.str();
}

class QueryServer::Impl {
 public:
  Impl(Snapshot snapshot, grid::PrefixSum3D prefix, const QueryServerOptions& options)
      : meta_(std::move(snapshot.meta)),
        prefix_(std::move(prefix)),
        slow_batch_ns_(options.slow_batch_ns) {
    queries_ = registry_.GetCounter("stpt_serve_queries_total",
                                    "Queries answered successfully");
    invalid_ = registry_.GetCounter("stpt_serve_invalid_total",
                                    "Queries rejected by bounds validation");
    hits_ = registry_.GetCounter("stpt_serve_cache_hits_total",
                                 "Answers served from the LRU cache");
    misses_ = registry_.GetCounter("stpt_serve_cache_misses_total",
                                   "Answers computed on cache miss");
    batches_ = registry_.GetCounter("stpt_serve_batches_total",
                                    "Query batches accepted by AnswerBatch");
    slow_batches_ = registry_.GetCounter(
        "stpt_serve_slow_batches_total",
        "Batches slower than QueryServerOptions::slow_batch_ns");
    latency_ = registry_.GetHistogram("stpt_serve_query_latency_ns",
                                      "Per-query Answer() wall time",
                                      obs::LatencyBucketsNs());
    if (options.cache_capacity > 0) {
      shards_.resize(static_cast<size_t>(
          std::bit_ceil(static_cast<unsigned>(options.cache_shards))));
      const size_t per_shard =
          std::max<size_t>(1, options.cache_capacity / shards_.size());
      for (auto& shard : shards_) {
        shard = std::make_unique<LruShard>();
        shard->set_capacity(per_shard);
      }
    }
  }

  const grid::Dims& dims() const { return prefix_.dims(); }
  const SnapshotMeta& meta() const { return meta_; }
  obs::Registry& metrics() { return registry_; }

  StatusOr<double> Answer(const query::RangeQuery& q) {
    const uint64_t start_ns = obs::NowNanos();
    const Status valid = query::ValidateQuery(q, prefix_.dims());
    if (!valid.ok()) {
      invalid_->Increment();
      return valid;
    }
    double value = 0.0;
    if (shards_.empty()) {
      value = prefix_.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1);
    } else {
      const CacheKey key = KeyOf(q);
      LruShard& shard =
          *shards_[CacheKeyHash{}(key) & (shards_.size() - 1)];
      if (shard.Lookup(key, &value)) {
        hits_->Increment();
      } else {
        value = prefix_.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1);
        shard.Insert(key, value);
        misses_->Increment();
      }
    }
    queries_->Increment();
    const uint64_t end_ns = obs::NowNanos();
    // Sampled requests pin their trace id to the latency bucket they land
    // in (an OpenMetrics exemplar), so a scrape outlier links to its trace.
    const obs::TraceContext* ctx = obs::CurrentTraceContext();
    if (ctx != nullptr && ctx->sampled) {
      latency_->ObserveWithExemplar(static_cast<double>(end_ns - start_ns),
                                    ctx->trace_hi, ctx->trace_lo, end_ns);
    } else {
      latency_->Observe(static_cast<double>(end_ns - start_ns));
    }
    return value;
  }

  StatusOr<QueryResponse> AnswerBatch(const query::Workload& batch) {
    for (size_t i = 0; i < batch.size(); ++i) {
      const Status valid = query::ValidateQuery(batch[i], prefix_.dims());
      if (!valid.ok()) {
        invalid_->Increment();
        return Status::InvalidArgument("AnswerBatch: query " + std::to_string(i) +
                                       " invalid: " + valid.message());
      }
    }
    batches_->Increment();
    // Named span so the batch shows up in the trace-region profile
    // (`stpt_serve stats` top_regions) and labels the worker-chunk lanes.
    obs::Span batch_span("serve/answer_batch");
    const uint64_t batch_start_ns = obs::NowNanos();
    QueryResponse answers(batch.size());
    exec::ParallelFor(static_cast<int64_t>(batch.size()), [&](int64_t i) {
      // Already validated, so Answer cannot fail; each slot is written by
      // exactly one index (the ParallelFor purity contract).
      answers[i] = *Answer(batch[i]);
    });
    const uint64_t batch_ns = obs::NowNanos() - batch_start_ns;
    if (slow_batch_ns_ > 0 && batch_ns > slow_batch_ns_) {
      slow_batches_->Increment();
      // Shard identity + trace id make the warn line joinable against the
      // per-tenant RED series and a `stpt_serve trace` fetch.
      const obs::TraceContext* ctx = obs::CurrentTraceContext();
      obs::Log(obs::LogLevel::kWarn, "serve", "slow batch",
               {{"queries", std::to_string(batch.size())},
                {"wall_ns", std::to_string(batch_ns)},
                {"threshold_ns", std::to_string(slow_batch_ns_)},
                {"tenant", tenant_},
                {"tile", tile_},
                {"epoch", std::to_string(epoch_)},
                {"trace_id",
                 ctx != nullptr && ctx->sampled ? obs::TraceIdHex(*ctx) : ""}});
    }
    return answers;
  }

  void SetShardIdentity(const std::string& tenant, const std::string& tile,
                        uint64_t epoch) {
    tenant_ = tenant;
    tile_ = tile;
    epoch_ = epoch;
  }

  ServerStats stats() const {
    ServerStats s;
    s.queries = queries_->Value();
    s.invalid = invalid_->Value();
    s.cache_hits = hits_->Value();
    s.cache_misses = misses_->Value();
    s.p50_ns = static_cast<uint64_t>(latency_->Quantile(0.50));
    s.p99_ns = static_cast<uint64_t>(latency_->Quantile(0.99));
    return s;
  }

  void ResetStats() { registry_.Reset(); }

 private:
  SnapshotMeta meta_;
  grid::PrefixSum3D prefix_;
  // Per-instance registry; the handles below are resolved once in the
  // constructor and are lock-free thereafter.
  obs::Registry registry_;
  obs::Counter* queries_ = nullptr;
  obs::Counter* invalid_ = nullptr;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* batches_ = nullptr;
  obs::Counter* slow_batches_ = nullptr;
  obs::Histogram* latency_ = nullptr;
  uint64_t slow_batch_ns_ = 0;
  // Shard identity, written once by the registry before the generation is
  // published (never mutated while queries run).
  std::string tenant_;
  std::string tile_;
  uint64_t epoch_ = 0;
  // Shards are heap-allocated because a mutex is neither movable nor
  // copyable; the vector is empty when the cache is disabled.
  std::vector<std::unique_ptr<LruShard>> shards_;
};

QueryServer::QueryServer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
QueryServer::QueryServer(QueryServer&&) noexcept = default;
QueryServer& QueryServer::operator=(QueryServer&&) noexcept = default;
QueryServer::~QueryServer() = default;

StatusOr<QueryServer> QueryServer::Open(const std::string& snapshot_path,
                                        const QueryServerOptions& options) {
  auto snapshot = ReadSnapshot(snapshot_path);
  if (!snapshot.ok()) return snapshot.status();
  return Create(std::move(*snapshot), options);
}

StatusOr<QueryServer> QueryServer::Create(Snapshot snapshot,
                                          const QueryServerOptions& options) {
  if (options.cache_shards < 1) {
    return Status::InvalidArgument(
        "QueryServer: cache_shards must be >= 1, got " +
        std::to_string(options.cache_shards));
  }
  auto prefix =
      grid::PrefixSum3D::FromRaw(snapshot.sanitized.dims(), std::move(snapshot.prefix));
  if (!prefix.ok()) return prefix.status();
  return QueryServer(
      std::make_unique<Impl>(std::move(snapshot), std::move(*prefix), options));
}

const grid::Dims& QueryServer::dims() const { return impl_->dims(); }
const SnapshotMeta& QueryServer::meta() const { return impl_->meta(); }

StatusOr<double> QueryServer::Answer(const query::RangeQuery& q) {
  return impl_->Answer(q);
}

StatusOr<QueryResponse> QueryServer::AnswerBatch(const query::Workload& batch) {
  return impl_->AnswerBatch(batch);
}

void QueryServer::SetShardIdentity(const std::string& tenant,
                                   const std::string& tile, uint64_t epoch) {
  impl_->SetShardIdentity(tenant, tile, epoch);
}

ServerStats QueryServer::stats() const { return impl_->stats(); }
void QueryServer::ResetStats() { impl_->ResetStats(); }
obs::Registry& QueryServer::metrics() const { return impl_->metrics(); }

}  // namespace stpt::serve
