#include "serve/query_server.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstring>
#include <list>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "exec/parallel.h"
#include "exec/timing.h"

namespace stpt::serve {
namespace {

/// Log2-bucketed latency histogram: bucket i counts samples with
/// 2^(i-1) <= ns < 2^i (bucket 0 counts 0 ns). Lock-free recording; the
/// percentile read is a linear scan over 64 counters.
class LatencyHistogram {
 public:
  void Record(uint64_t ns) {
    buckets_[std::bit_width(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  void Reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

  /// Upper bound (2^bucket ns) of the bucket containing quantile `q`.
  uint64_t Quantile(double q) const {
    std::array<uint64_t, 65> counts;
    uint64_t total = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      counts[i] = buckets_[i].load(std::memory_order_relaxed);
      total += counts[i];
    }
    if (total == 0) return 0;
    const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
    uint64_t seen = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      seen += counts[i];
      if (seen > rank) return i == 0 ? 0 : uint64_t{1} << i;
    }
    return uint64_t{1} << 63;
  }

 private:
  std::array<std::atomic<uint64_t>, 65> buckets_{};
};

struct CacheKey {
  std::array<int32_t, 6> bounds;
  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& k) const {
    // splitmix64-style mix over the packed coordinate pairs.
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    for (int i = 0; i < 3; ++i) {
      uint64_t w = static_cast<uint64_t>(static_cast<uint32_t>(k.bounds[2 * i])) |
                   static_cast<uint64_t>(static_cast<uint32_t>(k.bounds[2 * i + 1]))
                       << 32;
      h ^= w;
      h *= 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 27;
    }
    return static_cast<size_t>(h ^ (h >> 31));
  }
};

CacheKey KeyOf(const query::RangeQuery& q) {
  return CacheKey{{q.x0, q.x1, q.y0, q.y1, q.t0, q.t1}};
}

/// One LRU shard: a doubly-linked recency list plus an index into it, both
/// guarded by the shard mutex. Capacity is enforced per shard.
class LruShard {
 public:
  void set_capacity(size_t capacity) { capacity_ = capacity; }

  bool Lookup(const CacheKey& key, double* value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    recency_.splice(recency_.begin(), recency_, it->second);
    *value = it->second->second;
    return true;
  }

  void Insert(const CacheKey& key, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {  // raced with another miss on the same query
      recency_.splice(recency_.begin(), recency_, it->second);
      return;
    }
    recency_.emplace_front(key, value);
    index_[key] = recency_.begin();
    if (index_.size() > capacity_) {
      index_.erase(recency_.back().first);
      recency_.pop_back();
    }
  }

 private:
  std::mutex mu_;
  size_t capacity_ = 0;
  std::list<std::pair<CacheKey, double>> recency_;
  std::unordered_map<CacheKey, std::list<std::pair<CacheKey, double>>::iterator,
                     CacheKeyHash>
      index_;
};

}  // namespace

std::string ServerStats::ToJson() const {
  std::ostringstream os;
  os << "{\"queries\": " << queries << ", \"invalid\": " << invalid
     << ", \"cache_hits\": " << cache_hits << ", \"cache_misses\": " << cache_misses
     << ", \"cache_hit_rate\": " << hit_rate() << ", \"p50_ns\": " << p50_ns
     << ", \"p99_ns\": " << p99_ns << "}";
  return os.str();
}

class QueryServer::Impl {
 public:
  Impl(Snapshot snapshot, grid::PrefixSum3D prefix, const QueryServerOptions& options)
      : meta_(std::move(snapshot.meta)), prefix_(std::move(prefix)) {
    if (options.cache_capacity > 0) {
      const int shards = std::max(1, options.cache_shards);
      shards_.resize(static_cast<size_t>(std::bit_ceil(static_cast<unsigned>(shards))));
      const size_t per_shard =
          std::max<size_t>(1, options.cache_capacity / shards_.size());
      for (auto& shard : shards_) {
        shard = std::make_unique<LruShard>();
        shard->set_capacity(per_shard);
      }
    }
  }

  const grid::Dims& dims() const { return prefix_.dims(); }
  const SnapshotMeta& meta() const { return meta_; }

  StatusOr<double> Answer(const query::RangeQuery& q) {
    const uint64_t start_ns = exec::NowNanos();
    const Status valid = query::ValidateQuery(q, prefix_.dims());
    if (!valid.ok()) {
      invalid_.fetch_add(1, std::memory_order_relaxed);
      return valid;
    }
    double value = 0.0;
    if (shards_.empty()) {
      value = prefix_.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1);
    } else {
      const CacheKey key = KeyOf(q);
      LruShard& shard =
          *shards_[CacheKeyHash{}(key) & (shards_.size() - 1)];
      if (shard.Lookup(key, &value)) {
        hits_.fetch_add(1, std::memory_order_relaxed);
      } else {
        value = prefix_.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1);
        shard.Insert(key, value);
        misses_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    queries_.fetch_add(1, std::memory_order_relaxed);
    histogram_.Record(exec::NowNanos() - start_ns);
    return value;
  }

  Status AnswerBatch(const query::Workload& batch, std::vector<double>* out) {
    out->clear();
    for (size_t i = 0; i < batch.size(); ++i) {
      const Status valid = query::ValidateQuery(batch[i], prefix_.dims());
      if (!valid.ok()) {
        invalid_.fetch_add(1, std::memory_order_relaxed);
        return Status::InvalidArgument("AnswerBatch: query " + std::to_string(i) +
                                       " invalid: " + valid.message());
      }
    }
    out->resize(batch.size());
    std::vector<double>& answers = *out;
    exec::ParallelFor(static_cast<int64_t>(batch.size()), [&](int64_t i) {
      // Already validated, so Answer cannot fail; each slot is written by
      // exactly one index (the ParallelFor purity contract).
      answers[i] = *Answer(batch[i]);
    });
    return Status::OK();
  }

  ServerStats stats() const {
    ServerStats s;
    s.queries = queries_.load(std::memory_order_relaxed);
    s.invalid = invalid_.load(std::memory_order_relaxed);
    s.cache_hits = hits_.load(std::memory_order_relaxed);
    s.cache_misses = misses_.load(std::memory_order_relaxed);
    s.p50_ns = histogram_.Quantile(0.50);
    s.p99_ns = histogram_.Quantile(0.99);
    return s;
  }

  void ResetStats() {
    queries_.store(0, std::memory_order_relaxed);
    invalid_.store(0, std::memory_order_relaxed);
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
    histogram_.Reset();
  }

 private:
  SnapshotMeta meta_;
  grid::PrefixSum3D prefix_;
  // Shards are heap-allocated because a mutex is neither movable nor
  // copyable; the vector is empty when the cache is disabled.
  std::vector<std::unique_ptr<LruShard>> shards_;
  std::atomic<uint64_t> queries_{0};
  std::atomic<uint64_t> invalid_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  LatencyHistogram histogram_;
};

QueryServer::QueryServer(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
QueryServer::QueryServer(QueryServer&&) noexcept = default;
QueryServer& QueryServer::operator=(QueryServer&&) noexcept = default;
QueryServer::~QueryServer() = default;

StatusOr<QueryServer> QueryServer::Open(const std::string& snapshot_path,
                                        const QueryServerOptions& options) {
  auto snapshot = ReadSnapshot(snapshot_path);
  if (!snapshot.ok()) return snapshot.status();
  return Make(std::move(*snapshot), options);
}

StatusOr<QueryServer> QueryServer::Make(Snapshot snapshot,
                                        const QueryServerOptions& options) {
  auto prefix =
      grid::PrefixSum3D::FromRaw(snapshot.sanitized.dims(), std::move(snapshot.prefix));
  if (!prefix.ok()) return prefix.status();
  return QueryServer(
      std::make_unique<Impl>(std::move(snapshot), std::move(*prefix), options));
}

const grid::Dims& QueryServer::dims() const { return impl_->dims(); }
const SnapshotMeta& QueryServer::meta() const { return impl_->meta(); }

StatusOr<double> QueryServer::Answer(const query::RangeQuery& q) {
  return impl_->Answer(q);
}

Status QueryServer::AnswerBatch(const query::Workload& batch,
                                std::vector<double>* out) {
  return impl_->AnswerBatch(batch, out);
}

ServerStats QueryServer::stats() const { return impl_->stats(); }
void QueryServer::ResetStats() { impl_->ResetStats(); }

}  // namespace stpt::serve
