#ifndef STPT_SERVE_SNAPSHOT_H_
#define STPT_SERVE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "grid/consumption_matrix.h"

namespace stpt::serve {

/// Publication metadata carried alongside the sanitized matrix so that a
/// serving process can report what it is serving without re-running the
/// pipeline: which algorithm produced the release, the privacy budget and
/// its split, and the normalization extrema of the release region.
struct SnapshotMeta {
  std::string algorithm;      ///< e.g. "stpt", "identity", "fourier10"
  double eps_total = 0.0;     ///< total privacy budget of the release
  double eps_pattern = 0.0;   ///< budget spent on pattern recognition
  double eps_sanitize = 0.0;  ///< budget spent on sanitization
  int32_t t_train = 0;        ///< training slices withheld from the release
  double norm_min = 0.0;      ///< min cell value of the release
  double norm_max = 0.0;      ///< max cell value of the release

  bool operator==(const SnapshotMeta&) const = default;
};

/// A published release: everything an analyst-facing query server needs,
/// persisted once by the data owner and then served read-only.
///
/// `prefix` is the inclusive 3-D prefix-sum table of `sanitized` in the
/// same (x, y, t) row-major layout (`grid::PrefixSum3D::raw()`), stored so
/// that a server can start answering O(1) range sums without an O(N)
/// rebuild on load.
struct Snapshot {
  SnapshotMeta meta;
  grid::ConsumptionMatrix sanitized;
  std::vector<double> prefix;

  /// Builds a snapshot from a sanitized matrix: computes the prefix table
  /// and the normalization extrema (meta.norm_min/max are overwritten).
  static Snapshot FromMatrix(const grid::ConsumptionMatrix& sanitized,
                             SnapshotMeta meta);
};

/// --- Versioned binary container -----------------------------------------
///
/// Layout (all integers and IEEE-754 doubles little-endian, fixed width):
///
///   offset  size  field
///   0       4     magic "STPT"
///   4       4     u32 format version (currently 1)
///   8       12    i32 cx, cy, ct
///   20      4     u32 algorithm-name length L
///   24      L     algorithm name bytes (UTF-8, no terminator)
///   .       40    f64 eps_total, eps_pattern, eps_sanitize, norm_min,
///                 norm_max
///   .       4     i32 t_train
///   .       8     u64 cell count N (must equal cx*cy*ct)
///   .       8N    f64 sanitized matrix, (x, y, t) row-major
///   .       8     u64 prefix count (must equal N)
///   .       8N    f64 inclusive 3-D prefix sums, same layout
///   .       4     u32 CRC-32 (IEEE 802.3) of every preceding byte
///
/// Readers validate magic, version, bounds, the CRC, and the dimension /
/// count invariants; any violation — truncation, bit corruption, a short
/// write — yields a non-OK Status, never a crash or a partial snapshot.

/// Current container format version.
inline constexpr uint32_t kSnapshotVersion = 1;

/// Conventional file extension for snapshot containers.
inline constexpr const char* kSnapshotExtension = ".stpt";

/// CRC-32 (IEEE 802.3, reflected, init/xorout 0xFFFFFFFF) of `n` bytes.
/// Exposed for tests and for wire-level integrity checks.
uint32_t Crc32(const void* data, size_t n);

/// Serializes a snapshot to the container format.
std::vector<uint8_t> EncodeSnapshot(const Snapshot& snapshot);

/// Parses a container. Returns InvalidArgument on malformed or truncated
/// input and FailedPrecondition ("checksum mismatch") on CRC failure.
StatusOr<Snapshot> DecodeSnapshot(const uint8_t* data, size_t size);

/// Writes the container to `path` (atomically via a sibling temp file, so a
/// crashed writer never leaves a half-written snapshot at the final path).
Status WriteSnapshot(const Snapshot& snapshot, const std::string& path);

/// Reads and validates a container from `path`.
StatusOr<Snapshot> ReadSnapshot(const std::string& path);

}  // namespace stpt::serve

#endif  // STPT_SERVE_SNAPSHOT_H_
