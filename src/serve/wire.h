#ifndef STPT_SERVE_WIRE_H_
#define STPT_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "grid/consumption_matrix.h"
#include "query/range_query.h"
#include "serve/snapshot.h"

namespace stpt::serve {

/// --- Framed TCP protocol --------------------------------------------------
///
/// Every message is one frame:
///
///   u32 LE  frame length L (= 1 + payload bytes, L >= 1, L <= kMaxFrameBytes)
///   u8      message type (MsgType)
///   ...     payload (message-specific, little-endian fixed width)
///
/// Payloads:
///   kQueryRequest   u32 count, then count x 6 i32 (x0 x1 y0 y1 t0 t1)
///   kQueryResponse  u32 count, then count x f64 answers (index-aligned)
///   kStatsRequest   empty
///   kStatsResponse  u32 length + UTF-8 JSON (ServerStats::ToJson)
///   kMetaRequest    empty
///   kMetaResponse   i32 cx cy ct, u32 algo length + bytes, f64 eps_total,
///                   eps_pattern, eps_sanitize, norm_min, norm_max, i32 t_train
///   kError          u32 length + UTF-8 message
///   kShutdown       empty (server acks with an empty kShutdown, then stops)
///   kMetricsRequest empty
///   kMetricsResponse u32 length + UTF-8 Prometheus text exposition
///                   (engine registry followed by the process-wide registry)
///
/// A reader that sees a malformed frame (bad length, unknown type, short
/// payload) gets a non-OK Status and the connection is dropped; the peer's
/// other connections are unaffected.

enum class MsgType : uint8_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kMetaRequest = 5,
  kMetaResponse = 6,
  kError = 7,
  kShutdown = 8,
  kMetricsRequest = 9,
  kMetricsResponse = 10,
};

/// Index-aligned answers for one query batch (the kQueryResponse payload,
/// and what QueryServer::AnswerBatch / Client::Query return).
using QueryResponse = std::vector<double>;

/// Upper bound on one frame (1 MiB of queries is ~43k queries per batch).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  std::vector<uint8_t> payload;
};

/// Snapshot dims + metadata as carried by kMetaResponse.
struct WireMeta {
  grid::Dims dims;
  SnapshotMeta meta;
};

/// --- Payload codecs (pure, no I/O) ---------------------------------------

std::vector<uint8_t> EncodeQueryRequest(const query::Workload& batch);
StatusOr<query::Workload> DecodeQueryRequest(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeQueryResponse(const QueryResponse& answers);
StatusOr<QueryResponse> DecodeQueryResponse(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeString(const std::string& text);  // stats/metrics/error
StatusOr<std::string> DecodeString(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeMetaResponse(const WireMeta& meta);
StatusOr<WireMeta> DecodeMetaResponse(const std::vector<uint8_t>& payload);

/// --- Frame I/O over a connected socket ------------------------------------

/// Writes one frame. Uses MSG_NOSIGNAL so a peer that hung up yields a
/// Status (kInternal, "connection closed by peer") instead of SIGPIPE.
Status WriteFrame(int fd, MsgType type, const std::vector<uint8_t>& payload);

/// Reads one frame. Clean close before the first header byte returns
/// NotFound("connection closed") — the normal end-of-session signal; a close
/// mid-frame or an oversized/zero length returns InvalidArgument.
StatusOr<Frame> ReadFrame(int fd);

/// True for the Status ReadFrame returns on a clean peer close.
bool IsConnectionClosed(const Status& status);

}  // namespace stpt::serve

#endif  // STPT_SERVE_WIRE_H_
