#ifndef STPT_SERVE_WIRE_H_
#define STPT_SERVE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "grid/consumption_matrix.h"
#include "obs/trace_context.h"
#include "query/range_query.h"
#include "serve/snapshot.h"

namespace stpt::serve {

/// --- Framed TCP protocol --------------------------------------------------
///
/// Every message is one frame:
///
///   u32 LE  frame length L (= 1 + payload bytes, L >= 1, L <= kMaxFrameBytes)
///   u8      message type (MsgType)
///   ...     payload (message-specific, little-endian fixed width)
///
/// v1 payloads (unaddressed; a v2 server routes them to the default
/// tenant/tile, so v1 clients keep working unchanged):
///   kQueryRequest   u32 count, then count x 6 i32 (x0 x1 y0 y1 t0 t1)
///   kQueryResponse  u32 count, then count x f64 answers (index-aligned)
///   kStatsRequest   empty
///   kStatsResponse  u32 length + UTF-8 JSON (ServerStats::ToJson)
///   kMetaRequest    empty
///   kMetaResponse   i32 cx cy ct, u32 algo length + bytes, f64 eps_total,
///                   eps_pattern, eps_sanitize, norm_min, norm_max, i32 t_train
///   kError          u32 length + UTF-8 message
///   kShutdown       empty (server acks with an empty kShutdown, then stops)
///   kMetricsRequest empty
///   kMetricsResponse u32 length + UTF-8 Prometheus text exposition
///                   (engine registry followed by the process-wide registry)
///
/// v2 payloads (tenant-addressed; `str` below is u32 length + bytes, names
/// capped at kMaxShardNameBytes, paths at kMaxPathBytes):
///   kQueryRequestV2   str tenant, str tile, u64 epoch (0 = current), then a
///                     v1 query body (u32 count + count x 6 i32). Empty
///                     tenant/tile address the default shard.
///   kQueryResponseV2  u64 epoch that answered, u32 count, count x f64
///   kAdminRequest     u8 verb (AdminVerb), str tenant, str tile, str path
///                     (snapshot container path for load/swap; must be empty
///                     for unload)
///   kAdminResponse    u8 verb echoed, u64 epoch now published (0 after
///                     unload), str message
///   kShardStatsRequest  str tenant, str tile (both empty = all shards)
///   kShardStatsResponse str JSON (SnapshotRegistry::StatsJson)
///   kReadingBatch     str tenant, str tile, u32 count, then count x
///                     { u64 meter_id, i32 x, i32 y, i32 t, f64 kwh } — one
///                     live meter reading per tuple. kWh must be finite.
///   kReadingAck       u64 accepted, u64 rejected, u64 epoch currently
///                     published for the addressed shard (0 = none yet),
///                     then an OPTIONAL clamped-count field (u8 len = 8,
///                     u64 clamped) encoded only when clamped != 0 — absent
///                     reproduces the pre-clamping byte layout, the same
///                     interop pattern as the trace field below (the u8
///                     length disambiguates the two: 8 vs 33)
///   kTraceRequest     u32 limit (0 = all stored), str trace-id filter
///                     (32 hex chars, empty = all traces)
///   kTraceResponse    str JSON (obs::TraceStore::ToJson)
///
/// Trace context (`trace` below): every v2 request frame (kQueryRequestV2,
/// kAdminRequest, kReadingBatch) and its response (kQueryResponseV2,
/// kAdminResponse, kReadingAck) may end with ONE optional trailing
/// length-delimited trace-context field (see obs/trace_context.h for the
/// exact layout: u8 len, u8 flags, u64 trace_hi/trace_lo/span_id/start_ns).
/// Absent = untraced — an untraced frame's bytes are identical to the
/// pre-trace protocol, so old peers and untraced traffic interoperate
/// unchanged. Servers echo the request's context in the response.
///
/// A reader that sees a malformed frame (bad length, unknown type, short
/// payload) gets a non-OK Status and the connection is dropped; the peer's
/// other connections are unaffected.

enum class MsgType : uint8_t {
  kQueryRequest = 1,
  kQueryResponse = 2,
  kStatsRequest = 3,
  kStatsResponse = 4,
  kMetaRequest = 5,
  kMetaResponse = 6,
  kError = 7,
  kShutdown = 8,
  kMetricsRequest = 9,
  kMetricsResponse = 10,
  kQueryRequestV2 = 11,
  kQueryResponseV2 = 12,
  kAdminRequest = 13,
  kAdminResponse = 14,
  kShardStatsRequest = 15,
  kShardStatsResponse = 16,
  kReadingBatch = 17,
  kReadingAck = 18,
  kTraceRequest = 19,
  kTraceResponse = 20,
};

/// Registry admin verbs carried by kAdminRequest.
enum class AdminVerb : uint8_t {
  kLoad = 1,
  kSwap = 2,
  kUnload = 3,
};

/// Index-aligned answers for one query batch (the kQueryResponse payload,
/// and what QueryServer::AnswerBatch / Client::Query return).
using QueryResponse = std::vector<double>;

/// Upper bound on one frame (1 MiB of queries is ~43k queries per batch).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// One decoded frame.
struct Frame {
  MsgType type = MsgType::kError;
  std::vector<uint8_t> payload;
};

/// Snapshot dims + metadata as carried by kMetaResponse.
struct WireMeta {
  grid::Dims dims;
  SnapshotMeta meta;
};

/// Upper bound on tenant/tile names in v2 frames (mirrors the registry cap).
inline constexpr uint32_t kMaxWireNameBytes = 255;

/// Upper bound on the snapshot path in kAdminRequest.
inline constexpr uint32_t kMaxWirePathBytes = 4096;

/// kQueryRequestV2: a query batch addressed to one shard. Empty tenant and
/// tile mean the default shard; epoch 0 means the current generation.
struct TenantQueryRequest {
  std::string tenant;
  std::string tile;
  uint64_t epoch = 0;
  query::Workload batch;
  obs::TraceContext trace;  ///< optional; encoded only when trace.valid()

  bool operator==(const TenantQueryRequest&) const = default;
};

/// kQueryResponseV2: index-aligned answers plus the epoch that produced
/// them, so a client hammering across a hot-swap can tell generations apart.
struct TenantQueryResponse {
  uint64_t epoch = 0;
  QueryResponse answers;
  obs::TraceContext trace;  ///< request context echoed back

  bool operator==(const TenantQueryResponse&) const = default;
};

/// kAdminRequest: load/swap/unload one shard. `path` names a snapshot
/// container on the server's filesystem for load/swap and must be empty
/// for unload.
struct AdminRequest {
  AdminVerb verb = AdminVerb::kLoad;
  std::string tenant;
  std::string tile;
  std::string path;
  obs::TraceContext trace;  ///< optional; encoded only when trace.valid()

  bool operator==(const AdminRequest&) const = default;
};

/// kAdminResponse: the epoch now published for the shard (0 after unload).
struct AdminResponse {
  AdminVerb verb = AdminVerb::kLoad;
  uint64_t epoch = 0;
  std::string message;
  obs::TraceContext trace;  ///< request context echoed back

  bool operator==(const AdminResponse&) const = default;
};

/// kShardStatsRequest: filter for the per-shard stats JSON; empty strings
/// select every shard.
struct ShardStatsRequest {
  std::string tenant;
  std::string tile;

  bool operator==(const ShardStatsRequest&) const = default;
};

/// One live smart-meter reading: kwh consumed by `meter_id` at grid cell
/// (x, y) during timestep t. Fixed 28-byte wire layout inside kReadingBatch.
struct MeterReading {
  uint64_t meter_id = 0;
  int32_t x = 0;
  int32_t y = 0;
  int32_t t = 0;
  double kwh = 0.0;

  bool operator==(const MeterReading&) const = default;
};

/// kReadingBatch: readings addressed to one shard's ingest accumulator.
/// Empty tenant/tile address the default shard, like kQueryRequestV2.
struct ReadingBatch {
  std::string tenant;
  std::string tile;
  std::vector<MeterReading> readings;
  obs::TraceContext trace;  ///< optional; encoded only when trace.valid()

  bool operator==(const ReadingBatch&) const = default;
};

/// kReadingAck: per-batch admission counts plus the epoch currently
/// published for the addressed shard so feeders can watch republishes land.
/// `accepted + clamped + rejected` always equals the batch's reading count:
/// accepted entered the accumulator in full, clamped were admitted but had
/// excess kWh cut by the per-meter sensitivity cap (or duplicated a
/// (meter, cell, t) key already at its cap), rejected never touched it.
struct ReadingAck {
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t epoch = 0;
  uint64_t clamped = 0;     ///< optional on the wire; 0 = pre-change layout
  obs::TraceContext trace;  ///< request context echoed back

  bool operator==(const ReadingAck&) const = default;
};

/// kTraceRequest: fetch recently completed sampled request traces from the
/// server's obs::TraceStore. `limit` keeps only the most recent N traces
/// (0 = all stored); a non-empty `trace_id` (32 lowercase hex chars) selects
/// one trace.
struct TraceFetchRequest {
  uint32_t limit = 0;
  std::string trace_id;

  bool operator==(const TraceFetchRequest&) const = default;
};

/// Upper bound on the kTraceRequest filter (a 128-bit id is 32 hex chars).
inline constexpr uint32_t kMaxWireTraceIdBytes = 64;

/// --- Payload codecs (pure, no I/O) ---------------------------------------

std::vector<uint8_t> EncodeQueryRequest(const query::Workload& batch);
StatusOr<query::Workload> DecodeQueryRequest(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeQueryResponse(const QueryResponse& answers);
StatusOr<QueryResponse> DecodeQueryResponse(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeString(const std::string& text);  // stats/metrics/error
StatusOr<std::string> DecodeString(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeMetaResponse(const WireMeta& meta);
StatusOr<WireMeta> DecodeMetaResponse(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeTenantQueryRequest(const TenantQueryRequest& request);
StatusOr<TenantQueryRequest> DecodeTenantQueryRequest(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeTenantQueryResponse(const TenantQueryResponse& response);
StatusOr<TenantQueryResponse> DecodeTenantQueryResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeAdminRequest(const AdminRequest& request);
StatusOr<AdminRequest> DecodeAdminRequest(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeAdminResponse(const AdminResponse& response);
StatusOr<AdminResponse> DecodeAdminResponse(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeShardStatsRequest(const ShardStatsRequest& request);
StatusOr<ShardStatsRequest> DecodeShardStatsRequest(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeReadingBatch(const ReadingBatch& batch);
StatusOr<ReadingBatch> DecodeReadingBatch(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeReadingAck(const ReadingAck& ack);
StatusOr<ReadingAck> DecodeReadingAck(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeTraceFetchRequest(const TraceFetchRequest& request);
StatusOr<TraceFetchRequest> DecodeTraceFetchRequest(
    const std::vector<uint8_t>& payload);

/// --- Incremental frame decoding (event-loop read path) ---------------------

/// Accumulates nonblocking read() chunks and yields complete frames. The
/// same header/length/type validation as ReadFrame, but pull-based: the
/// event loop appends whatever the socket had and asks for frames until
/// Next returns false (need more bytes) or an error (drop the connection).
class FrameDecoder {
 public:
  /// Appends raw stream bytes.
  void Append(const uint8_t* data, size_t n);

  /// Extracts the next complete frame into `out`. Returns true when a
  /// frame was produced, false when more bytes are needed, and a Status
  /// error on a malformed stream (bad length or unknown type) — the
  /// decoder is then poisoned and the connection should be dropped.
  StatusOr<bool> Next(Frame* out);

  /// Bytes buffered but not yet consumed by Next.
  size_t buffered() const { return buf_.size() - off_; }

 private:
  std::vector<uint8_t> buf_;
  size_t off_ = 0;
  bool poisoned_ = false;
};

/// --- Frame I/O over a connected socket ------------------------------------

/// Writes one frame. Uses MSG_NOSIGNAL so a peer that hung up yields a
/// Status (kInternal, "connection closed by peer") instead of SIGPIPE.
Status WriteFrame(int fd, MsgType type, const std::vector<uint8_t>& payload);

/// Reads one frame. Clean close before the first header byte returns
/// NotFound("connection closed") — the normal end-of-session signal; a close
/// mid-frame or an oversized/zero length returns InvalidArgument.
StatusOr<Frame> ReadFrame(int fd);

/// True for the Status ReadFrame returns on a clean peer close.
bool IsConnectionClosed(const Status& status);

}  // namespace stpt::serve

#endif  // STPT_SERVE_WIRE_H_
