#include "serve/snapshot.h"

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>

#include "grid/consumption_matrix.h"

namespace stpt::serve {
namespace {

constexpr std::array<char, 4> kMagic = {'S', 'T', 'P', 'T'};

/// Largest per-axis extent the container accepts. Guards the N = cx*cy*ct
/// allocation against absurd headers in corrupted or hostile files.
constexpr int64_t kMaxAxis = 1 << 20;
constexpr uint64_t kMaxCells = uint64_t{1} << 33;  // 64 GiB of doubles
constexpr uint32_t kMaxAlgorithmLen = 256;

// --- little-endian primitives (byte-by-byte, endian-independent) ----------

// Byte-wise append (not vector::insert over a char* range, which trips
// GCC 12's stringop-overflow false positives under -Werror).
void PutBytes(std::vector<uint8_t>& out, const void* src, size_t n) {
  const auto* p = static_cast<const uint8_t*>(src);
  for (size_t i = 0; i < n; ++i) out.push_back(p[i]);
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutI32(std::vector<uint8_t>& out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF64(std::vector<uint8_t>& out, double v) {
  PutU64(out, std::bit_cast<uint64_t>(v));
}

/// Bounds-checked sequential reader over the container bytes. Every getter
/// returns false on exhaustion, which callers surface as a truncation
/// Status — out-of-bounds reads are structurally impossible.
class Cursor {
 public:
  Cursor(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t offset() const { return off_; }
  size_t remaining() const { return size_ - off_; }

  bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = static_cast<uint32_t>(data_[off_]) |
         static_cast<uint32_t>(data_[off_ + 1]) << 8 |
         static_cast<uint32_t>(data_[off_ + 2]) << 16 |
         static_cast<uint32_t>(data_[off_ + 3]) << 24;
    off_ += 4;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    uint32_t lo = 0, hi = 0;
    if (!ReadU32(&lo) || !ReadU32(&hi)) return false;
    *v = static_cast<uint64_t>(hi) << 32 | lo;
    return true;
  }

  bool ReadI32(int32_t* v) {
    uint32_t u = 0;
    if (!ReadU32(&u)) return false;
    *v = static_cast<int32_t>(u);
    return true;
  }

  bool ReadF64(double* v) {
    uint64_t u = 0;
    if (!ReadU64(&u)) return false;
    *v = std::bit_cast<double>(u);
    return true;
  }

  bool ReadBytes(void* dst, size_t n) {
    if (remaining() < n) return false;
    std::memcpy(dst, data_ + off_, n);
    off_ += n;
    return true;
  }

  bool ReadF64Array(double* dst, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      if (!ReadF64(&dst[i])) return false;
    }
    return true;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t off_ = 0;
};

Status Truncated() {
  return Status::InvalidArgument("snapshot: truncated container");
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  // IEEE 802.3 reflected polynomial, table computed once.
  static const auto* table = [] {
    auto* t = new std::array<uint32_t, 256>();
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      (*t)[i] = c;
    }
    return t;
  }();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) crc = (*table)[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

Snapshot Snapshot::FromMatrix(const grid::ConsumptionMatrix& sanitized,
                              SnapshotMeta meta) {
  Snapshot snap;
  meta.norm_min = sanitized.MinValue();
  meta.norm_max = sanitized.MaxValue();
  snap.meta = std::move(meta);
  snap.sanitized = sanitized;
  snap.prefix = grid::PrefixSum3D(sanitized).raw();
  return snap;
}

std::vector<uint8_t> EncodeSnapshot(const Snapshot& snapshot) {
  const grid::Dims& dims = snapshot.sanitized.dims();
  const std::string& algo = snapshot.meta.algorithm;
  std::vector<uint8_t> out;
  out.reserve(64 + algo.size() +
              16 * snapshot.sanitized.size() + 8 * snapshot.prefix.size());
  PutBytes(out, kMagic.data(), kMagic.size());
  PutU32(out, kSnapshotVersion);
  PutI32(out, dims.cx);
  PutI32(out, dims.cy);
  PutI32(out, dims.ct);
  PutU32(out, static_cast<uint32_t>(algo.size()));
  PutBytes(out, algo.data(), algo.size());
  PutF64(out, snapshot.meta.eps_total);
  PutF64(out, snapshot.meta.eps_pattern);
  PutF64(out, snapshot.meta.eps_sanitize);
  PutF64(out, snapshot.meta.norm_min);
  PutF64(out, snapshot.meta.norm_max);
  PutI32(out, snapshot.meta.t_train);
  PutU64(out, snapshot.sanitized.size());
  for (double v : snapshot.sanitized.data()) PutF64(out, v);
  PutU64(out, snapshot.prefix.size());
  for (double v : snapshot.prefix) PutF64(out, v);
  PutU32(out, Crc32(out.data(), out.size()));
  return out;
}

StatusOr<Snapshot> DecodeSnapshot(const uint8_t* data, size_t size) {
  // The CRC trailer is checked first, over everything that precedes it:
  // after it passes, any remaining failure is a malformed writer, not bit
  // rot, so the two classes get distinct codes.
  if (size < kMagic.size() + 12) return Truncated();
  uint32_t stored_crc = 0;
  {
    Cursor tail(data + size - 4, 4);
    tail.ReadU32(&stored_crc);
  }
  if (Crc32(data, size - 4) != stored_crc) {
    return Status::FailedPrecondition("snapshot: checksum mismatch (corrupted container)");
  }

  Cursor cur(data, size - 4);
  std::array<char, 4> magic;
  if (!cur.ReadBytes(magic.data(), magic.size())) return Truncated();
  if (magic != kMagic) {
    return Status::InvalidArgument("snapshot: bad magic (not an STPT container)");
  }
  uint32_t version = 0;
  if (!cur.ReadU32(&version)) return Truncated();
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument("snapshot: unsupported format version " +
                                   std::to_string(version));
  }

  grid::Dims dims;
  if (!cur.ReadI32(&dims.cx) || !cur.ReadI32(&dims.cy) || !cur.ReadI32(&dims.ct)) {
    return Truncated();
  }
  if (dims.cx <= 0 || dims.cy <= 0 || dims.ct <= 0 || dims.cx > kMaxAxis ||
      dims.cy > kMaxAxis || dims.ct > kMaxAxis || dims.NumCells() > kMaxCells) {
    return Status::InvalidArgument("snapshot: implausible dimensions");
  }

  Snapshot snap;
  uint32_t algo_len = 0;
  if (!cur.ReadU32(&algo_len)) return Truncated();
  if (algo_len > kMaxAlgorithmLen) {
    return Status::InvalidArgument("snapshot: implausible algorithm-name length");
  }
  snap.meta.algorithm.resize(algo_len);
  if (algo_len > 0 && !cur.ReadBytes(snap.meta.algorithm.data(), algo_len)) {
    return Truncated();
  }
  if (!cur.ReadF64(&snap.meta.eps_total) || !cur.ReadF64(&snap.meta.eps_pattern) ||
      !cur.ReadF64(&snap.meta.eps_sanitize) || !cur.ReadF64(&snap.meta.norm_min) ||
      !cur.ReadF64(&snap.meta.norm_max) || !cur.ReadI32(&snap.meta.t_train)) {
    return Truncated();
  }

  uint64_t cells = 0;
  if (!cur.ReadU64(&cells)) return Truncated();
  if (cells != dims.NumCells()) {
    return Status::InvalidArgument("snapshot: cell count does not match dims");
  }
  // The matrix and prefix sections must still be present: 8 bytes per cell
  // each plus the prefix-count word. Checking before allocating bounds the
  // allocation by the container's actual size, so a tiny file with a huge
  // (CRC-valid) header cannot drive a multi-GiB allocation.
  if (cur.remaining() < 16 * cells + 8) return Truncated();
  auto matrix = grid::ConsumptionMatrix::Create(dims);
  if (!matrix.ok()) return matrix.status();
  snap.sanitized = std::move(*matrix);
  if (!cur.ReadF64Array(snap.sanitized.mutable_data().data(), cells)) {
    return Truncated();
  }

  uint64_t prefix_count = 0;
  if (!cur.ReadU64(&prefix_count)) return Truncated();
  if (prefix_count != cells) {
    return Status::InvalidArgument("snapshot: prefix count does not match dims");
  }
  snap.prefix.resize(prefix_count);
  if (!cur.ReadF64Array(snap.prefix.data(), prefix_count)) return Truncated();

  if (cur.remaining() != 0) {
    return Status::InvalidArgument("snapshot: trailing bytes after container");
  }
  return snap;
}

Status WriteSnapshot(const Snapshot& snapshot, const std::string& path) {
  const std::vector<uint8_t> bytes = EncodeSnapshot(snapshot);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::NotFound("snapshot: cannot open '" + tmp + "' for writing");
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::Internal("snapshot: short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("snapshot: cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::OK();
}

StatusOr<Snapshot> ReadSnapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("snapshot: cannot open '" + path + "'");
  }
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  if (end < 0) {
    std::fclose(f);
    return Status::Internal("snapshot: cannot stat '" + path + "'");
  }
  std::vector<uint8_t> bytes(static_cast<size_t>(end));
  const size_t got = bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) {
    return Status::Internal("snapshot: short read from '" + path + "'");
  }
  return DecodeSnapshot(bytes.data(), bytes.size());
}

}  // namespace stpt::serve
