#include "serve/tcp_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "obs/trace.h"

namespace stpt::serve {
namespace {

void CloseQuietly(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

StatusOr<std::unique_ptr<TcpServer>> TcpServer::Create(QueryServer* engine,
                                                       TcpServerOptions options) {
  if (engine == nullptr) {
    return Status::InvalidArgument("tcp: engine must not be null");
  }
  if (options.port < 0 || options.port > 65535) {
    return Status::InvalidArgument("tcp: port must be in [0, 65535], got " +
                                   std::to_string(options.port));
  }
  if (options.listen_backlog < 1) {
    return Status::InvalidArgument("tcp: listen_backlog must be >= 1, got " +
                                   std::to_string(options.listen_backlog));
  }
  in_addr parsed{};
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &parsed) != 1) {
    return Status::InvalidArgument("tcp: bad bind address '" +
                                   options.bind_address + "'");
  }
  return std::unique_ptr<TcpServer>(new TcpServer(engine, std::move(options)));
}

TcpServer::TcpServer(QueryServer* engine, TcpServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      connections_ctr_(engine->metrics().GetCounter(
          "stpt_serve_connections_total", "TCP connections accepted")),
      protocol_errors_ctr_(engine->metrics().GetCounter(
          "stpt_serve_protocol_errors_total",
          "Malformed or unexpected frames received")) {}

TcpServer::~TcpServer() { Stop(); }

Status TcpServer::Start() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("tcp: cannot create socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    CloseQuietly(fd);
    return Status::InvalidArgument("tcp: bad bind address '" + options_.bind_address +
                                   "'");
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    CloseQuietly(fd);
    return Status::Internal("tcp: cannot bind " + options_.bind_address + ":" +
                            std::to_string(options_.port) + " (" +
                            std::strerror(errno) + ")");
  }
  if (::listen(fd, options_.listen_backlog) != 0) {
    CloseQuietly(fd);
    return Status::Internal("tcp: listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    CloseQuietly(fd);
    return Status::Internal("tcp: getsockname failed");
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stop_requested_ = false;
  }
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (Stop/RequestStop) or fatal error
    }
    const int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const uint64_t conn_id =
        connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_ctr_->Increment();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      CloseQuietly(conn);
      break;
    }
    open_fds_.push_back(conn);
    handlers_.emplace_back([this, conn, conn_id] {
      obs::RegisterCurrentThreadName("stpt-conn-" + std::to_string(conn_id));
      HandleConnection(conn);
    });
  }
}

void TcpServer::HandleConnection(int fd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto frame = ReadFrame(fd);
    if (!frame.ok()) {
      // Clean close is the normal end of a session; anything else gets a
      // best-effort error frame so well-behaved clients can log the cause.
      if (!IsConnectionClosed(frame.status())) {
        protocol_errors_ctr_->Increment();
        (void)WriteFrame(fd, MsgType::kError, EncodeString(frame.status().ToString()));
      }
      break;
    }
    if (!ServeFrame(fd, frame->type, frame->payload)) break;
  }
  ::shutdown(fd, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(mu_);
  open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                  open_fds_.end());
  CloseQuietly(fd);
}

bool TcpServer::ServeFrame(int fd, MsgType type, const std::vector<uint8_t>& payload) {
  switch (type) {
    case MsgType::kQueryRequest: {
      auto batch = DecodeQueryRequest(payload);
      if (!batch.ok()) {
        protocol_errors_ctr_->Increment();
        (void)WriteFrame(fd, MsgType::kError, EncodeString(batch.status().ToString()));
        return false;
      }
      auto answers = engine_->AnswerBatch(*batch);
      if (!answers.ok()) {
        // Per-query validation failure: report it but keep the connection —
        // the client's next batch may be fine.
        return WriteFrame(fd, MsgType::kError,
                          EncodeString(answers.status().ToString()))
            .ok();
      }
      return WriteFrame(fd, MsgType::kQueryResponse, EncodeQueryResponse(*answers))
          .ok();
    }
    case MsgType::kStatsRequest: {
      // Splice the top trace regions into the engine stats object so `stats`
      // shows where serving time actually goes (empty array when no spans
      // have run yet).
      std::string stats_json = engine_->stats().ToJson();
      stats_json.insert(stats_json.size() - 1,
                        ", \"top_regions\": " + obs::TraceProfileJson(10));
      return WriteFrame(fd, MsgType::kStatsResponse, EncodeString(stats_json))
          .ok();
    }
    case MsgType::kMetricsRequest:
      // Engine-private metrics first, then the process-wide registry (exec,
      // core, dp); the name sets are disjoint by the subsystem prefix.
      return WriteFrame(fd, MsgType::kMetricsResponse,
                        EncodeString(engine_->metrics().ToPrometheusText() +
                                     obs::Registry::Global().ToPrometheusText()))
          .ok();
    case MsgType::kMetaRequest:
      return WriteFrame(fd, MsgType::kMetaResponse,
                        EncodeMetaResponse({engine_->dims(), engine_->meta()}))
          .ok();
    case MsgType::kShutdown:
      (void)WriteFrame(fd, MsgType::kShutdown, {});
      RequestStop();
      return false;
    default:
      protocol_errors_ctr_->Increment();
      (void)WriteFrame(fd, MsgType::kError,
                       EncodeString("wire: unexpected message type"));
      return false;
  }
}

void TcpServer::RequestStop() {
  // Called from handler threads: flip the flag and wake Wait(); the waiting
  // thread (or the destructor) runs the joins, so no thread joins itself.
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  std::lock_guard<std::mutex> lock(mu_);
  stop_requested_ = true;
  stop_cv_.notify_all();
}

void TcpServer::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  stop_cv_.wait(lock, [this] { return stop_requested_ || !started_; });
}

void TcpServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
  }
  stopping_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);

  std::vector<std::thread> handlers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Unblock handlers parked in recv().
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
    handlers.swap(handlers_);
    stop_requested_ = true;
    stop_cv_.notify_all();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : handlers) {
    if (t.joinable()) t.join();
  }
  CloseQuietly(listen_fd_);
  listen_fd_ = -1;
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
}

}  // namespace stpt::serve
