#include "nn/optimizer.h"

#include <cmath>

namespace stpt::nn {

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

double Optimizer::ClipGradNorm(double max_norm) {
  double sq = 0.0;
  for (Tensor& p : params_) {
    for (double g : p.grad()) sq += g * g;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (Tensor& p : params_) {
      for (double& g : p.grad()) g *= scale;
    }
  }
  last_grad_norm_ = norm;
  return norm;
}

Sgd::Sgd(std::vector<Tensor> params, double lr, double momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (Tensor& p : params_) velocity_.emplace_back(p.numel(), 0.0);
}

void Sgd::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    const auto& grad = params_[i].grad();
    auto& vel = velocity_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      vel[j] = momentum_ * vel[j] - lr_ * grad[j];
      data[j] += vel[j];
    }
  }
}

RmsProp::RmsProp(std::vector<Tensor> params, double lr, double decay, double eps)
    : Optimizer(std::move(params)), lr_(lr), decay_(decay), eps_(eps) {
  mean_square_.reserve(params_.size());
  for (Tensor& p : params_) mean_square_.emplace_back(p.numel(), 0.0);
}

void RmsProp::Step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    const auto& grad = params_[i].grad();
    auto& ms = mean_square_[i];
    for (size_t j = 0; j < data.size(); ++j) {
      ms[j] = decay_ * ms[j] + (1.0 - decay_) * grad[j] * grad[j];
      data[j] -= lr_ * grad[j] / (std::sqrt(ms[j]) + eps_);
    }
  }
}

Adam::Adam(std::vector<Tensor> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)), lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (Tensor& p : params_) {
    m_.emplace_back(p.numel(), 0.0);
    v_.emplace_back(p.numel(), 0.0);
  }
}

void Adam::Step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    auto& data = params_[i].data();
    const auto& grad = params_[i].grad();
    for (size_t j = 0; j < data.size(); ++j) {
      m_[i][j] = beta1_ * m_[i][j] + (1.0 - beta1_) * grad[j];
      v_[i][j] = beta2_ * v_[i][j] + (1.0 - beta2_) * grad[j] * grad[j];
      const double mhat = m_[i][j] / bc1;
      const double vhat = v_[i][j] / bc2;
      data[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

StatusOr<TrainLog> TrainLog::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::InvalidArgument("TrainLog: cannot open '" + path + "'");
  }
  return TrainLog(file);
}

TrainLog::TrainLog(TrainLog&& other) noexcept : file_(other.file_) {
  other.file_ = nullptr;
}

TrainLog& TrainLog::operator=(TrainLog&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

TrainLog::~TrainLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void TrainLog::LogEpoch(int epoch, double loss, double grad_norm, double lr,
                        int batches) {
  if (file_ == nullptr) return;
  std::fprintf(file_,
               "{\"epoch\": %d, \"loss\": %.17g, \"grad_norm\": %.17g, "
               "\"lr\": %.17g, \"batches\": %d}\n",
               epoch, loss, grad_norm, lr, batches);
  std::fflush(file_);
}

}  // namespace stpt::nn
