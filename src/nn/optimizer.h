#ifndef STPT_NN_OPTIMIZER_H_
#define STPT_NN_OPTIMIZER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "common/status.h"
#include "nn/tensor.h"

namespace stpt::nn {

/// Base optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the currently accumulated gradients.
  virtual void Step() = 0;

  /// The current base learning rate (telemetry; constant for the built-in
  /// optimizers but surfaced so schedules can be observed when added).
  virtual double learning_rate() const = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Clips the global L2 norm of all gradients to max_norm (no-op if under).
  /// Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

  /// The pre-clip global gradient norm measured by the most recent
  /// ClipGradNorm call (0 before the first call). Telemetry only.
  double last_grad_norm() const { return last_grad_norm_; }

 protected:
  std::vector<Tensor> params_;
  double last_grad_norm_ = 0.0;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, double lr, double momentum = 0.0);
  void Step() override;
  double learning_rate() const override { return lr_; }

 private:
  double lr_, momentum_;
  std::vector<std::vector<double>> velocity_;
};

/// RMSProp (the optimizer used in the paper's Appendix C, lr 1e-3).
class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Tensor> params, double lr, double decay = 0.9,
          double eps = 1e-8);
  void Step() override;
  double learning_rate() const override { return lr_; }

 private:
  double lr_, decay_, eps_;
  std::vector<std::vector<double>> mean_square_;
};

/// Adam (Kingma & Ba, 2015).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void Step() override;
  double learning_rate() const override { return lr_; }

 private:
  double lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<std::vector<double>> m_, v_;
};

/// Per-epoch training-curve emitter: one JSONL row per epoch with the mean
/// loss, pre-clip gradient norm, learning rate, and batch count — the
/// --train-log=<path> sink wired through TrainPredictor. Rows are flushed
/// as they are written so an interrupted run keeps its partial curve.
class TrainLog {
 public:
  /// Opens (truncates) the sink. InvalidArgument on an unopenable path.
  static StatusOr<TrainLog> Open(const std::string& path);

  TrainLog(TrainLog&& other) noexcept;
  TrainLog& operator=(TrainLog&& other) noexcept;
  TrainLog(const TrainLog&) = delete;
  TrainLog& operator=(const TrainLog&) = delete;
  ~TrainLog();

  /// Appends {"epoch": ..., "loss": ..., "grad_norm": ..., "lr": ...,
  /// "batches": ...}.
  void LogEpoch(int epoch, double loss, double grad_norm, double lr,
                int batches);

 private:
  explicit TrainLog(std::FILE* file) : file_(file) {}
  std::FILE* file_ = nullptr;  // owned
};

}  // namespace stpt::nn

#endif  // STPT_NN_OPTIMIZER_H_
