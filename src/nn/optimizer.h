#ifndef STPT_NN_OPTIMIZER_H_
#define STPT_NN_OPTIMIZER_H_

#include <vector>

#include "nn/tensor.h"

namespace stpt::nn {

/// Base optimizer over a fixed parameter list.
class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update from the currently accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Clips the global L2 norm of all gradients to max_norm (no-op if under).
  /// Returns the pre-clip norm.
  double ClipGradNorm(double max_norm);

 protected:
  std::vector<Tensor> params_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, double lr, double momentum = 0.0);
  void Step() override;

 private:
  double lr_, momentum_;
  std::vector<std::vector<double>> velocity_;
};

/// RMSProp (the optimizer used in the paper's Appendix C, lr 1e-3).
class RmsProp : public Optimizer {
 public:
  RmsProp(std::vector<Tensor> params, double lr, double decay = 0.9,
          double eps = 1e-8);
  void Step() override;

 private:
  double lr_, decay_, eps_;
  std::vector<std::vector<double>> mean_square_;
};

/// Adam (Kingma & Ba, 2015).
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void Step() override;

 private:
  double lr_, beta1_, beta2_, eps_;
  int64_t t_ = 0;
  std::vector<std::vector<double>> m_, v_;
};

}  // namespace stpt::nn

#endif  // STPT_NN_OPTIMIZER_H_
