#ifndef STPT_NN_OPS_H_
#define STPT_NN_OPS_H_

#include <vector>

#include "nn/tensor.h"

namespace stpt::nn {

/// Elementwise a + b. Shapes must be equal, or b's shape must be a suffix of
/// a's (bias broadcast over the leading dims, e.g. [out] onto [batch, out]).
Tensor Add(const Tensor& a, const Tensor& b);

/// Elementwise a - b (same shapes only).
Tensor Sub(const Tensor& a, const Tensor& b);

/// Elementwise a * b. Same broadcast rule as Add.
Tensor Mul(const Tensor& a, const Tensor& b);

/// a * scalar.
Tensor Scale(const Tensor& a, double scalar);

/// a + scalar.
Tensor AddScalar(const Tensor& a, double scalar);

/// Matrix product with optional transposition of b.
///
/// Supported shapes (with transpose_b == false):
///   [m,k] x [k,n]      -> [m,n]
///   [B,m,k] x [k,n]    -> [B,m,n]   (shared right operand)
///   [B,m,k] x [B,k,n]  -> [B,m,n]   (batched)
/// With transpose_b == true the right operand is given as [n,k] / [B,n,k].
Tensor MatMul(const Tensor& a, const Tensor& b, bool transpose_b = false);

/// Elementwise sigmoid.
Tensor Sigmoid(const Tensor& a);

/// Elementwise tanh.
Tensor Tanh(const Tensor& a);

/// Elementwise ReLU.
Tensor Relu(const Tensor& a);

/// Softmax over the last dimension.
Tensor Softmax(const Tensor& a);

/// Layer normalisation over the last dimension with learned gain/bias.
/// gamma and beta must be rank-1 of size = last dim of a.
Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                 double eps = 1e-5);

/// Stacks rank-2 tensors [b, d] along a new middle axis -> [b, s, d].
/// All inputs must share the same shape.
Tensor StackSeq(const std::vector<Tensor>& steps);

/// Concatenates tensors along the last dimension. All inputs must agree on
/// every leading dimension; any rank >= 1.
Tensor ConcatLastDim(const std::vector<Tensor>& parts);

/// Extracts time step t from a rank-3 tensor [b, s, d] -> [b, d].
Tensor SliceSeq(const Tensor& a, int t);

/// Sum of all elements -> scalar [1].
Tensor SumAll(const Tensor& a);

/// Mean of all elements -> scalar [1].
Tensor MeanAll(const Tensor& a);

/// Mean over the middle (sequence) axis of a rank-3 tensor [b,s,d] -> [b,d].
Tensor MeanSeq(const Tensor& a);

/// Reshapes without copying semantics change (volume must match).
Tensor Reshape(const Tensor& a, const std::vector<int>& shape);

/// Mean squared error between prediction and target (target is constant).
Tensor MseLoss(const Tensor& pred, const Tensor& target);

/// Mean absolute error (smooth at 0 via subgradient 0).
Tensor MaeLoss(const Tensor& pred, const Tensor& target);

}  // namespace stpt::nn

#endif  // STPT_NN_OPS_H_
