#ifndef STPT_NN_TENSOR_H_
#define STPT_NN_TENSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.h"

namespace stpt::nn {

/// Shared storage + autograd node behind a Tensor handle.
struct TensorImpl {
  std::vector<int> shape;
  std::vector<double> data;
  std::vector<double> grad;  // same size as data when requires_grad
  bool requires_grad = false;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  /// Accumulates this node's gradient into its parents' gradients.
  std::function<void(TensorImpl&)> backward_fn;
};

/// Dense row-major tensor of doubles with dynamic-tape reverse-mode
/// autodiff. Handles share storage (shallow copies), mirroring the usual
/// NN-framework semantics. Supported ranks are 1–3, which covers the
/// sequence models used by STPT's pattern-recognition step.
///
/// The tape is built implicitly by the free functions in ops.h; calling
/// Backward() on a scalar result propagates gradients to every reachable
/// tensor with requires_grad == true.
class Tensor {
 public:
  /// Empty (null) tensor handle.
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  static Tensor Zeros(const std::vector<int>& shape, bool requires_grad = false);

  /// Constant-filled tensor.
  static Tensor Full(const std::vector<int>& shape, double value,
                     bool requires_grad = false);

  /// Tensor wrapping the given values (copied). The value count must match
  /// the shape volume.
  static Tensor FromVector(const std::vector<int>& shape,
                           const std::vector<double>& values,
                           bool requires_grad = false);

  /// Gaussian-initialised tensor, N(0, stddev^2).
  static Tensor Randn(const std::vector<int>& shape, Rng& rng, double stddev,
                      bool requires_grad = false);

  bool defined() const { return impl_ != nullptr; }
  const std::vector<int>& shape() const { return impl_->shape; }
  int rank() const { return static_cast<int>(impl_->shape.size()); }
  size_t numel() const { return impl_->data.size(); }
  bool requires_grad() const { return impl_->requires_grad; }

  std::vector<double>& data() { return impl_->data; }
  const std::vector<double>& data() const { return impl_->data; }
  std::vector<double>& grad() { return impl_->grad; }
  const std::vector<double>& grad() const { return impl_->grad; }

  /// Value of a single-element tensor.
  double item() const;

  /// Zeroes the gradient buffer (no-op if !requires_grad).
  void ZeroGrad();

  /// Reverse-mode backprop from this (scalar) tensor. Gradients accumulate
  /// into every reachable requires_grad tensor. The tape is not freed;
  /// dropping the handles frees it.
  void Backward();

  /// Internal: wraps an impl (used by ops).
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}
  const std::shared_ptr<TensorImpl>& impl() const { return impl_; }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Computes the volume of a shape.
size_t ShapeNumel(const std::vector<int>& shape);

}  // namespace stpt::nn

#endif  // STPT_NN_TENSOR_H_
