#ifndef STPT_NN_LAYERS_H_
#define STPT_NN_LAYERS_H_

#include <vector>

#include "common/rng.h"
#include "nn/ops.h"
#include "nn/tensor.h"

namespace stpt::nn {

/// Base for parameterised modules; exposes trainable tensors for optimizers.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of the module (and submodules).
  virtual std::vector<Tensor> Parameters() = 0;

  /// Zeroes gradients of every parameter.
  void ZeroGrad();
};

/// Fully connected layer: y = x W + b.
/// Accepts inputs [batch, in] or [batch, seq, in] (weight shared over seq).
class Linear : public Module {
 public:
  /// Xavier/Glorot-initialised linear layer.
  Linear(int in_features, int out_features, Rng& rng);

  Tensor Forward(const Tensor& x);
  std::vector<Tensor> Parameters() override;

  int in_features() const { return in_; }
  int out_features() const { return out_; }

 private:
  int in_, out_;
  Tensor weight_;  // [in, out]
  Tensor bias_;    // [out]
};

/// Vanilla (Elman) RNN cell: h' = tanh(x W + h U + b).
class RnnCell : public Module {
 public:
  RnnCell(int input_size, int hidden_size, Rng& rng);

  /// One step: x [batch, input], h [batch, hidden] -> h' [batch, hidden].
  Tensor Forward(const Tensor& x, const Tensor& h);
  std::vector<Tensor> Parameters() override;

  int hidden_size() const { return hidden_; }

 private:
  int input_, hidden_;
  Tensor wx_, wh_, b_;
};

/// Gated recurrent unit cell (Cho et al., 2014).
class GruCell : public Module {
 public:
  GruCell(int input_size, int hidden_size, Rng& rng);

  /// One step: x [batch, input], h [batch, hidden] -> h' [batch, hidden].
  Tensor Forward(const Tensor& x, const Tensor& h);
  std::vector<Tensor> Parameters() override;

  int hidden_size() const { return hidden_; }

 private:
  int input_, hidden_;
  Tensor wxz_, whz_, bz_;  // update gate
  Tensor wxr_, whr_, br_;  // reset gate
  Tensor wxn_, whn_, bn_;  // candidate
};

/// LSTM cell state: hidden h and cell c.
struct LstmState {
  Tensor h;
  Tensor c;
};

/// Long short-term memory cell (used by the LGAN-DP baseline).
class LstmCell : public Module {
 public:
  LstmCell(int input_size, int hidden_size, Rng& rng);

  /// One step: x [batch, input] + state -> new state.
  LstmState Forward(const Tensor& x, const LstmState& state);
  std::vector<Tensor> Parameters() override;

  int hidden_size() const { return hidden_; }

  /// Returns a zero state for the given batch size.
  LstmState ZeroState(int batch) const;

 private:
  int input_, hidden_;
  Tensor wxi_, whi_, bi_;  // input gate
  Tensor wxf_, whf_, bf_;  // forget gate
  Tensor wxo_, who_, bo_;  // output gate
  Tensor wxg_, whg_, bg_;  // candidate
};

/// Single-head scaled dot-product self-attention over a sequence
/// [batch, seq, dim] -> [batch, seq, dim].
class SelfAttention : public Module {
 public:
  SelfAttention(int dim, Rng& rng);

  Tensor Forward(const Tensor& x);
  std::vector<Tensor> Parameters() override;

 private:
  int dim_;
  Tensor wq_, wk_, wv_;  // [dim, dim]
};

/// Multi-head scaled dot-product self-attention: `heads` independent
/// single-head attentions over dim/heads-sized projections, concatenated and
/// mixed by an output projection. dim must be divisible by heads.
class MultiHeadAttention : public Module {
 public:
  MultiHeadAttention(int dim, int heads, Rng& rng);

  Tensor Forward(const Tensor& x);
  std::vector<Tensor> Parameters() override;

  int heads() const { return heads_; }

 private:
  int dim_;
  int heads_;
  int head_dim_;
  std::vector<Tensor> wq_, wk_, wv_;  // per head: [dim, head_dim]
  Tensor wo_;                         // [dim, dim]
};

/// Pre-LN transformer encoder layer: x + Attn(LN(x)), then x + FFN(LN(x)).
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(int dim, int ff_dim, Rng& rng);

  Tensor Forward(const Tensor& x);
  std::vector<Tensor> Parameters() override;

 private:
  int dim_;
  SelfAttention attn_;
  Tensor ln1_gamma_, ln1_beta_, ln2_gamma_, ln2_beta_;
  Linear ff1_, ff2_;
};

}  // namespace stpt::nn

#endif  // STPT_NN_LAYERS_H_
