#include "nn/tensor.h"

#include <cassert>
#include <unordered_set>

namespace stpt::nn {

size_t ShapeNumel(const std::vector<int>& shape) {
  size_t n = 1;
  for (int d : shape) {
    assert(d > 0);
    n *= static_cast<size_t>(d);
  }
  return n;
}

namespace {

std::shared_ptr<TensorImpl> MakeImpl(const std::vector<int>& shape,
                                     bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.assign(ShapeNumel(shape), 0.0);
  impl->requires_grad = requires_grad;
  if (requires_grad) impl->grad.assign(impl->data.size(), 0.0);
  return impl;
}

}  // namespace

Tensor Tensor::Zeros(const std::vector<int>& shape, bool requires_grad) {
  return Tensor(MakeImpl(shape, requires_grad));
}

Tensor Tensor::Full(const std::vector<int>& shape, double value, bool requires_grad) {
  auto impl = MakeImpl(shape, requires_grad);
  for (double& v : impl->data) v = value;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(const std::vector<int>& shape,
                          const std::vector<double>& values, bool requires_grad) {
  assert(values.size() == ShapeNumel(shape));
  auto impl = MakeImpl(shape, requires_grad);
  impl->data = values;
  return Tensor(std::move(impl));
}

Tensor Tensor::Randn(const std::vector<int>& shape, Rng& rng, double stddev,
                     bool requires_grad) {
  auto impl = MakeImpl(shape, requires_grad);
  for (double& v : impl->data) v = rng.Gaussian(0.0, stddev);
  return Tensor(std::move(impl));
}

double Tensor::item() const {
  assert(numel() == 1);
  return impl_->data[0];
}

void Tensor::ZeroGrad() {
  if (!impl_->requires_grad) return;
  impl_->grad.assign(impl_->data.size(), 0.0);
}

void Tensor::Backward() {
  assert(numel() == 1 && "Backward requires a scalar tensor");
  // Topological order via iterative DFS over parent edges.
  std::vector<TensorImpl*> topo;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      TensorImpl* p = f.node->parents[f.next_parent++].get();
      if (visited.insert(p).second) stack.push_back({p, 0});
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }
  // Seed: d(out)/d(out) = 1. Ensure grad buffers exist for interior nodes.
  for (TensorImpl* n : topo) {
    if (n->grad.size() != n->data.size()) n->grad.assign(n->data.size(), 0.0);
  }
  impl_->grad[0] = 1.0;
  // topo is child-after-parents; walk in reverse so each node's grad is
  // complete before it pushes into its parents.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn(**it);
  }
}

}  // namespace stpt::nn
