#include "nn/layers.h"

#include <cassert>
#include <cmath>

namespace stpt::nn {
namespace {

/// Xavier/Glorot normal initialisation stddev for a [fan_in, fan_out] matrix.
double XavierStd(int fan_in, int fan_out) {
  return std::sqrt(2.0 / static_cast<double>(fan_in + fan_out));
}

}  // namespace

void Module::ZeroGrad() {
  for (Tensor& p : Parameters()) p.ZeroGrad();
}

Linear::Linear(int in_features, int out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_(Tensor::Randn({in_features, out_features}, rng,
                            XavierStd(in_features, out_features), true)),
      bias_(Tensor::Zeros({out_features}, true)) {}

Tensor Linear::Forward(const Tensor& x) { return Add(MatMul(x, weight_), bias_); }

std::vector<Tensor> Linear::Parameters() { return {weight_, bias_}; }

RnnCell::RnnCell(int input_size, int hidden_size, Rng& rng)
    : input_(input_size),
      hidden_(hidden_size),
      wx_(Tensor::Randn({input_size, hidden_size}, rng,
                        XavierStd(input_size, hidden_size), true)),
      wh_(Tensor::Randn({hidden_size, hidden_size}, rng,
                        XavierStd(hidden_size, hidden_size), true)),
      b_(Tensor::Zeros({hidden_size}, true)) {}

Tensor RnnCell::Forward(const Tensor& x, const Tensor& h) {
  return Tanh(Add(Add(MatMul(x, wx_), MatMul(h, wh_)), b_));
}

std::vector<Tensor> RnnCell::Parameters() { return {wx_, wh_, b_}; }

GruCell::GruCell(int input_size, int hidden_size, Rng& rng)
    : input_(input_size), hidden_(hidden_size) {
  const double sx = XavierStd(input_size, hidden_size);
  const double sh = XavierStd(hidden_size, hidden_size);
  auto mx = [&] { return Tensor::Randn({input_size, hidden_size}, rng, sx, true); };
  auto mh = [&] { return Tensor::Randn({hidden_size, hidden_size}, rng, sh, true); };
  auto bias = [&] { return Tensor::Zeros({hidden_size}, true); };
  wxz_ = mx(); whz_ = mh(); bz_ = bias();
  wxr_ = mx(); whr_ = mh(); br_ = bias();
  wxn_ = mx(); whn_ = mh(); bn_ = bias();
}

Tensor GruCell::Forward(const Tensor& x, const Tensor& h) {
  const Tensor z = Sigmoid(Add(Add(MatMul(x, wxz_), MatMul(h, whz_)), bz_));
  const Tensor r = Sigmoid(Add(Add(MatMul(x, wxr_), MatMul(h, whr_)), br_));
  const Tensor n = Tanh(Add(Add(MatMul(x, wxn_), MatMul(Mul(r, h), whn_)), bn_));
  // h' = (1 - z) * n + z * h
  const Tensor one_minus_z = AddScalar(Scale(z, -1.0), 1.0);
  return Add(Mul(one_minus_z, n), Mul(z, h));
}

std::vector<Tensor> GruCell::Parameters() {
  return {wxz_, whz_, bz_, wxr_, whr_, br_, wxn_, whn_, bn_};
}

LstmCell::LstmCell(int input_size, int hidden_size, Rng& rng)
    : input_(input_size), hidden_(hidden_size) {
  const double sx = XavierStd(input_size, hidden_size);
  const double sh = XavierStd(hidden_size, hidden_size);
  auto mx = [&] { return Tensor::Randn({input_size, hidden_size}, rng, sx, true); };
  auto mh = [&] { return Tensor::Randn({hidden_size, hidden_size}, rng, sh, true); };
  auto bias = [&] { return Tensor::Zeros({hidden_size}, true); };
  wxi_ = mx(); whi_ = mh(); bi_ = bias();
  wxf_ = mx(); whf_ = mh(); bf_ = bias();
  wxo_ = mx(); who_ = mh(); bo_ = bias();
  wxg_ = mx(); whg_ = mh(); bg_ = bias();
  // Standard trick: bias the forget gate open at initialisation.
  for (double& v : bf_.data()) v = 1.0;
}

LstmState LstmCell::Forward(const Tensor& x, const LstmState& state) {
  const Tensor i = Sigmoid(Add(Add(MatMul(x, wxi_), MatMul(state.h, whi_)), bi_));
  const Tensor f = Sigmoid(Add(Add(MatMul(x, wxf_), MatMul(state.h, whf_)), bf_));
  const Tensor o = Sigmoid(Add(Add(MatMul(x, wxo_), MatMul(state.h, who_)), bo_));
  const Tensor g = Tanh(Add(Add(MatMul(x, wxg_), MatMul(state.h, whg_)), bg_));
  const Tensor c = Add(Mul(f, state.c), Mul(i, g));
  const Tensor h = Mul(o, Tanh(c));
  return {h, c};
}

std::vector<Tensor> LstmCell::Parameters() {
  return {wxi_, whi_, bi_, wxf_, whf_, bf_, wxo_, who_, bo_, wxg_, whg_, bg_};
}

LstmState LstmCell::ZeroState(int batch) const {
  return {Tensor::Zeros({batch, hidden_}), Tensor::Zeros({batch, hidden_})};
}

SelfAttention::SelfAttention(int dim, Rng& rng)
    : dim_(dim),
      wq_(Tensor::Randn({dim, dim}, rng, XavierStd(dim, dim), true)),
      wk_(Tensor::Randn({dim, dim}, rng, XavierStd(dim, dim), true)),
      wv_(Tensor::Randn({dim, dim}, rng, XavierStd(dim, dim), true)) {}

Tensor SelfAttention::Forward(const Tensor& x) {
  // x: [b, s, d]
  const Tensor q = MatMul(x, wq_);
  const Tensor k = MatMul(x, wk_);
  const Tensor v = MatMul(x, wv_);
  const Tensor scores = Scale(MatMul(q, k, /*transpose_b=*/true),
                              1.0 / std::sqrt(static_cast<double>(dim_)));
  const Tensor attn = Softmax(scores);  // [b, s, s]
  return MatMul(attn, v);               // [b, s, d]
}

std::vector<Tensor> SelfAttention::Parameters() { return {wq_, wk_, wv_}; }

MultiHeadAttention::MultiHeadAttention(int dim, int heads, Rng& rng)
    : dim_(dim), heads_(heads), head_dim_(dim / heads) {
  assert(heads > 0 && dim % heads == 0 &&
         "MultiHeadAttention: dim must be divisible by heads");
  const double s = XavierStd(dim, head_dim_);
  for (int h = 0; h < heads; ++h) {
    wq_.push_back(Tensor::Randn({dim, head_dim_}, rng, s, true));
    wk_.push_back(Tensor::Randn({dim, head_dim_}, rng, s, true));
    wv_.push_back(Tensor::Randn({dim, head_dim_}, rng, s, true));
  }
  wo_ = Tensor::Randn({dim, dim}, rng, XavierStd(dim, dim), true);
}

Tensor MultiHeadAttention::Forward(const Tensor& x) {
  std::vector<Tensor> head_outputs;
  head_outputs.reserve(heads_);
  const double scale = 1.0 / std::sqrt(static_cast<double>(head_dim_));
  for (int h = 0; h < heads_; ++h) {
    const Tensor q = MatMul(x, wq_[h]);  // [b, s, head_dim]
    const Tensor k = MatMul(x, wk_[h]);
    const Tensor v = MatMul(x, wv_[h]);
    const Tensor attn = Softmax(Scale(MatMul(q, k, /*transpose_b=*/true), scale));
    head_outputs.push_back(MatMul(attn, v));
  }
  return MatMul(ConcatLastDim(head_outputs), wo_);  // [b, s, dim]
}

std::vector<Tensor> MultiHeadAttention::Parameters() {
  std::vector<Tensor> params;
  for (int h = 0; h < heads_; ++h) {
    params.push_back(wq_[h]);
    params.push_back(wk_[h]);
    params.push_back(wv_[h]);
  }
  params.push_back(wo_);
  return params;
}

TransformerEncoderLayer::TransformerEncoderLayer(int dim, int ff_dim, Rng& rng)
    : dim_(dim),
      attn_(dim, rng),
      ln1_gamma_(Tensor::Full({dim}, 1.0, true)),
      ln1_beta_(Tensor::Zeros({dim}, true)),
      ln2_gamma_(Tensor::Full({dim}, 1.0, true)),
      ln2_beta_(Tensor::Zeros({dim}, true)),
      ff1_(dim, ff_dim, rng),
      ff2_(ff_dim, dim, rng) {}

Tensor TransformerEncoderLayer::Forward(const Tensor& x) {
  const Tensor a = attn_.Forward(LayerNorm(x, ln1_gamma_, ln1_beta_));
  const Tensor h = Add(x, a);
  const Tensor f = ff2_.Forward(Relu(ff1_.Forward(LayerNorm(h, ln2_gamma_, ln2_beta_))));
  return Add(h, f);
}

std::vector<Tensor> TransformerEncoderLayer::Parameters() {
  std::vector<Tensor> params = attn_.Parameters();
  params.push_back(ln1_gamma_);
  params.push_back(ln1_beta_);
  params.push_back(ln2_gamma_);
  params.push_back(ln2_beta_);
  for (const Tensor& p : ff1_.Parameters()) params.push_back(p);
  for (const Tensor& p : ff2_.Parameters()) params.push_back(p);
  return params;
}

}  // namespace stpt::nn
