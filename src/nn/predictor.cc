#include "nn/predictor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/optimizer.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace stpt::nn {
namespace {

std::string g_default_train_log_path;  // see SetDefaultTrainLogPath

/// Shared "embed -> self-attention -> recurrent core -> linear head"
/// predictor, with a vanilla RNN or GRU core (paper §4 base design and
/// Appendix C unit).
class RecurrentPredictor : public SequencePredictor {
 public:
  RecurrentPredictor(ModelKind kind, const PredictorConfig& config, Rng& rng)
      : SequencePredictor(config),
        kind_(kind),
        embed_(1, config.embedding_size, rng),
        attn_(config.embedding_size, rng),
        head_(config.hidden_size, 1, rng) {
    switch (kind) {
      case ModelKind::kGru:
        gru_ = std::make_unique<GruCell>(config.embedding_size, config.hidden_size,
                                         rng);
        break;
      case ModelKind::kLstm:
        lstm_ = std::make_unique<LstmCell>(config.embedding_size, config.hidden_size,
                                           rng);
        break;
      default:
        rnn_ = std::make_unique<RnnCell>(config.embedding_size, config.hidden_size,
                                         rng);
        break;
    }
  }

  Tensor Forward(const Tensor& windows) override {
    assert(windows.rank() == 3 && windows.shape()[2] == 1);
    const int batch = windows.shape()[0];
    const int seq = windows.shape()[1];
    const Tensor embedded = embed_.Forward(windows);   // [b, s, emb]
    const Tensor attended = attn_.Forward(embedded);   // [b, s, emb]
    Tensor h = Tensor::Zeros({batch, config_.hidden_size});
    LstmState state;
    if (lstm_) state = lstm_->ZeroState(batch);
    for (int t = 0; t < seq; ++t) {
      const Tensor xt = SliceSeq(attended, t);
      if (gru_) {
        h = gru_->Forward(xt, h);
      } else if (lstm_) {
        state = lstm_->Forward(xt, state);
        h = state.h;
      } else {
        h = rnn_->Forward(xt, h);
      }
    }
    return head_.Forward(h);  // [b, 1]
  }

  std::vector<Tensor> Parameters() override {
    std::vector<Tensor> params = embed_.Parameters();
    for (const Tensor& p : attn_.Parameters()) params.push_back(p);
    const std::vector<Tensor> core = gru_    ? gru_->Parameters()
                                     : lstm_ ? lstm_->Parameters()
                                             : rnn_->Parameters();
    for (const Tensor& p : core) params.push_back(p);
    for (const Tensor& p : head_.Parameters()) params.push_back(p);
    return params;
  }

 private:
  ModelKind kind_;
  Linear embed_;
  SelfAttention attn_;
  std::unique_ptr<GruCell> gru_;
  std::unique_ptr<LstmCell> lstm_;
  std::unique_ptr<RnnCell> rnn_;
  Linear head_;
};

/// Transformer-encoder variant (Fig. 8i): embed + sinusoidal positions ->
/// encoder layer -> mean pool -> linear head.
class TransformerPredictor : public SequencePredictor {
 public:
  TransformerPredictor(const PredictorConfig& config, Rng& rng)
      : SequencePredictor(config),
        embed_(1, config.embedding_size, rng),
        encoder_(config.embedding_size, config.ff_size, rng),
        head_(config.embedding_size, 1, rng),
        pos_enc_(MakePositionalEncoding(config.window_size, config.embedding_size)) {}

  Tensor Forward(const Tensor& windows) override {
    assert(windows.rank() == 3 && windows.shape()[2] == 1);
    const Tensor embedded = Add(embed_.Forward(windows), pos_enc_);  // [b, s, emb]
    const Tensor encoded = encoder_.Forward(embedded);
    return head_.Forward(MeanSeq(encoded));
  }

  std::vector<Tensor> Parameters() override {
    std::vector<Tensor> params = embed_.Parameters();
    for (const Tensor& p : encoder_.Parameters()) params.push_back(p);
    for (const Tensor& p : head_.Parameters()) params.push_back(p);
    return params;
  }

 private:
  static Tensor MakePositionalEncoding(int seq, int dim) {
    std::vector<double> values(static_cast<size_t>(seq) * dim);
    for (int p = 0; p < seq; ++p) {
      for (int i = 0; i < dim; ++i) {
        const double rate = std::pow(10000.0, -2.0 * (i / 2) / static_cast<double>(dim));
        values[static_cast<size_t>(p) * dim + i] =
            (i % 2 == 0) ? std::sin(p * rate) : std::cos(p * rate);
      }
    }
    return Tensor::FromVector({seq, dim}, values);
  }

  Linear embed_;
  TransformerEncoderLayer encoder_;
  Linear head_;
  Tensor pos_enc_;  // constant [seq, dim], broadcast over batch
};

Tensor WindowsToTensor(const std::vector<std::vector<double>>& windows,
                       const std::vector<size_t>& indices, size_t begin, size_t end,
                       int window_size) {
  const int batch = static_cast<int>(end - begin);
  std::vector<double> flat(static_cast<size_t>(batch) * window_size);
  for (size_t i = begin; i < end; ++i) {
    const auto& w = windows[indices[i]];
    assert(static_cast<int>(w.size()) == window_size);
    std::copy(w.begin(), w.end(), flat.begin() + (i - begin) * window_size);
  }
  return Tensor::FromVector({batch, window_size, 1}, flat);
}

}  // namespace

void SetDefaultTrainLogPath(const std::string& path) {
  g_default_train_log_path = path;
}

const std::string& DefaultTrainLogPath() { return g_default_train_log_path; }

const char* ModelKindToString(ModelKind kind) {
  switch (kind) {
    case ModelKind::kRnn:
      return "RNN";
    case ModelKind::kGru:
      return "GRU";
    case ModelKind::kLstm:
      return "LSTM";
    case ModelKind::kTransformer:
      return "Transformer";
  }
  return "UNKNOWN";
}

std::unique_ptr<SequencePredictor> SequencePredictor::Create(
    ModelKind kind, const PredictorConfig& config, Rng& rng) {
  if (kind == ModelKind::kTransformer) {
    return std::make_unique<TransformerPredictor>(config, rng);
  }
  return std::make_unique<RecurrentPredictor>(kind, config, rng);
}

WindowDataset MakeWindows(const std::vector<std::vector<double>>& series,
                          int window_size) {
  WindowDataset ds;
  for (const auto& s : series) {
    if (static_cast<int>(s.size()) < window_size + 1) continue;
    for (size_t i = 0; i + window_size < s.size(); ++i) {
      ds.inputs.emplace_back(s.begin() + i, s.begin() + i + window_size);
      ds.targets.push_back(s[i + window_size]);
    }
  }
  return ds;
}

StatusOr<TrainStats> TrainPredictor(SequencePredictor* predictor,
                                    const WindowDataset& dataset,
                                    const TrainConfig& config, Rng& rng) {
  if (dataset.size() == 0) {
    return Status::InvalidArgument("TrainPredictor: empty dataset");
  }
  const int ws = predictor->window_size();
  for (const auto& w : dataset.inputs) {
    if (static_cast<int>(w.size()) != ws) {
      return Status::InvalidArgument("TrainPredictor: window size mismatch");
    }
  }
  obs::Span train_span("nn/train");
  RmsProp optimizer(predictor->Parameters(), config.learning_rate);
  std::vector<size_t> order(dataset.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  // Telemetry sinks: gauges track the latest epoch; the optional TrainLog
  // keeps the full loss curve as JSONL. Neither influences the math.
  obs::Registry& reg = obs::Registry::Global();
  obs::Gauge* loss_gauge =
      reg.GetGauge("stpt_nn_epoch_loss", "mean training loss of the last epoch");
  obs::Gauge* grad_gauge = reg.GetGauge(
      "stpt_nn_grad_norm", "pre-clip global gradient norm of the last batch");
  obs::Gauge* lr_gauge =
      reg.GetGauge("stpt_nn_learning_rate", "optimizer base learning rate");
  if (lr_gauge != nullptr) lr_gauge->Set(optimizer.learning_rate());
  const std::string& log_path = config.train_log_path.empty()
                                    ? DefaultTrainLogPath()
                                    : config.train_log_path;
  std::unique_ptr<TrainLog> train_log;
  if (!log_path.empty()) {
    StatusOr<TrainLog> opened = TrainLog::Open(log_path);
    if (opened.ok()) {
      train_log = std::make_unique<TrainLog>(std::move(opened).value());
    } else {
      obs::Log(obs::LogLevel::kWarn, "nn",
               "cannot open train log, continuing without it",
               {{"path", log_path}});
    }
  }

  TrainStats stats;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    obs::Span epoch_span("nn/train_epoch");
    // Fisher–Yates shuffle with the injected RNG for reproducibility.
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1))]);
    }
    double epoch_loss = 0.0;
    size_t batches = 0;
    for (size_t begin = 0; begin < dataset.size();
         begin += static_cast<size_t>(config.batch_size)) {
      const size_t end =
          std::min(dataset.size(), begin + static_cast<size_t>(config.batch_size));
      const Tensor x = WindowsToTensor(dataset.inputs, order, begin, end, ws);
      std::vector<double> yv;
      yv.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) yv.push_back(dataset.targets[order[i]]);
      const Tensor y =
          Tensor::FromVector({static_cast<int>(end - begin), 1}, yv);

      optimizer.ZeroGrad();
      const Tensor pred = predictor->Forward(x);
      Tensor loss = MseLoss(pred, y);
      loss.Backward();
      optimizer.ClipGradNorm(config.grad_clip);
      optimizer.Step();
      epoch_loss += loss.item();
      ++batches;
    }
    const double mean_loss = epoch_loss / static_cast<double>(batches);
    stats.epoch_losses.push_back(mean_loss);
    if (loss_gauge != nullptr) loss_gauge->Set(mean_loss);
    if (grad_gauge != nullptr) grad_gauge->Set(optimizer.last_grad_norm());
    if (obs::TraceEventsEnabled()) {
      obs::TraceCounter("nn/epoch_loss", mean_loss);
      obs::TraceCounter("nn/grad_norm", optimizer.last_grad_norm());
    }
    if (train_log != nullptr) {
      train_log->LogEpoch(epoch, mean_loss, optimizer.last_grad_norm(),
                          optimizer.learning_rate(), static_cast<int>(batches));
    }
  }
  return stats;
}

std::vector<double> PredictBatch(SequencePredictor* predictor,
                                 const std::vector<std::vector<double>>& windows) {
  if (windows.empty()) return {};
  obs::Span infer_span("nn/infer");
  std::vector<size_t> identity(windows.size());
  for (size_t i = 0; i < identity.size(); ++i) identity[i] = i;
  std::vector<double> out;
  out.reserve(windows.size());
  // Chunk to bound tape memory.
  constexpr size_t kChunk = 256;
  for (size_t begin = 0; begin < windows.size(); begin += kChunk) {
    const size_t end = std::min(windows.size(), begin + kChunk);
    const Tensor x = WindowsToTensor(windows, identity, begin, end,
                                     predictor->window_size());
    const Tensor pred = predictor->Forward(x);
    for (size_t i = 0; i < end - begin; ++i) out.push_back(pred.data()[i]);
  }
  return out;
}

}  // namespace stpt::nn
