#ifndef STPT_NN_PREDICTOR_H_
#define STPT_NN_PREDICTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "nn/layers.h"

namespace stpt::nn {

/// Model families evaluated by the paper (base design + Fig. 8i variants)
/// plus an LSTM extension.
enum class ModelKind {
  kRnn,          // embed -> self-attention -> vanilla RNN -> linear
  kGru,          // embed -> self-attention -> GRU -> linear (paper App. C unit)
  kLstm,         // embed -> self-attention -> LSTM -> linear (extension)
  kTransformer,  // embed (+pos enc) -> encoder layer -> mean pool -> linear
};

const char* ModelKindToString(ModelKind kind);

/// Hyper-parameters of the sequence predictor (paper Appendix C defaults).
struct PredictorConfig {
  int window_size = 6;     ///< input time steps per prediction
  int embedding_size = 32; ///< paper uses 128; default scaled for CPU runs
  int hidden_size = 32;    ///< paper uses 64; default scaled for CPU runs
  int ff_size = 64;        ///< transformer feed-forward width
};

/// One-step-ahead time-series predictor over fixed-length windows: maps a
/// batch of windows [batch, window, 1] to next-value predictions [batch, 1].
class SequencePredictor {
 public:
  virtual ~SequencePredictor() = default;

  /// Builds a predictor of the given family.
  static std::unique_ptr<SequencePredictor> Create(ModelKind kind,
                                                   const PredictorConfig& config,
                                                   Rng& rng);

  /// Forward pass; builds the autograd tape when any parameter requires grad.
  virtual Tensor Forward(const Tensor& windows) = 0;

  virtual std::vector<Tensor> Parameters() = 0;

  int window_size() const { return config_.window_size; }
  const PredictorConfig& config() const { return config_; }

 protected:
  explicit SequencePredictor(const PredictorConfig& config) : config_(config) {}
  PredictorConfig config_;
};

/// Supervised windowed dataset: each sample is `window_size` consecutive
/// values of one series and the value that follows them.
struct WindowDataset {
  std::vector<std::vector<double>> inputs;  // each of length window_size
  std::vector<double> targets;

  size_t size() const { return inputs.size(); }
};

/// Sweeps a window of length `window_size` across every series (paper §4.2:
/// series are *stacked, not sequential* — windows never straddle two series).
/// Series shorter than window_size + 1 contribute no samples.
WindowDataset MakeWindows(const std::vector<std::vector<double>>& series,
                          int window_size);

/// Training hyper-parameters (paper Appendix C: 20 epochs, batch 32,
/// RMSProp lr 1e-3).
struct TrainConfig {
  int epochs = 20;
  int batch_size = 32;
  double learning_rate = 1e-3;
  double grad_clip = 5.0;
  /// When non-empty, TrainPredictor appends one JSONL row per epoch
  /// ({"epoch", "loss", "grad_norm", "lr", "batches"}) to this path — the
  /// --train-log flag. Empty falls back to DefaultTrainLogPath().
  std::string train_log_path;
};

/// Process-wide fallback for TrainConfig::train_log_path, so front ends
/// that build configs deep inside sweeps (bench binaries) can route every
/// training run's loss curve to one --train-log sink. Empty (the default)
/// disables the fallback. Not thread-safe: set once at startup.
void SetDefaultTrainLogPath(const std::string& path);
const std::string& DefaultTrainLogPath();

/// Per-epoch mean training losses.
struct TrainStats {
  std::vector<double> epoch_losses;
};

/// Trains the predictor in place with RMSProp on MSE loss; samples are
/// reshuffled every epoch. Returns InvalidArgument for an empty dataset or
/// window-size mismatch.
StatusOr<TrainStats> TrainPredictor(SequencePredictor* predictor,
                                    const WindowDataset& dataset,
                                    const TrainConfig& config, Rng& rng);

/// Batched inference: one prediction per window (no tape).
std::vector<double> PredictBatch(SequencePredictor* predictor,
                                 const std::vector<std::vector<double>>& windows);

}  // namespace stpt::nn

#endif  // STPT_NN_PREDICTOR_H_
