#include "nn/ops.h"

#include <cassert>
#include <cmath>
#include <cstdlib>

#include "kernels/backend.h"
#include "obs/log.h"
#include "obs/trace.h"

namespace stpt::nn {
namespace {

using Impl = std::shared_ptr<TensorImpl>;

/// Unconditional shape check on op entry points. Unlike assert, this stays
/// active under NDEBUG: a shape mismatch in a Release build must abort with
/// a message instead of silently indexing out of bounds.
void OpRequire(bool cond, const char* msg) {
  if (!cond) {
    obs::Log(obs::LogLevel::kError, "nn", std::string("fatal: ") + msg);
    std::abort();
  }
}

Impl MakeNode(const std::vector<int>& shape, std::vector<Impl> parents) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.assign(ShapeNumel(shape), 0.0);
  impl->requires_grad = false;
  for (const auto& p : parents) impl->requires_grad |= p->requires_grad;
  impl->parents = std::move(parents);
  return impl;
}

/// True if `suffix` equals the trailing dims of `shape`.
bool IsSuffix(const std::vector<int>& shape,
              const std::vector<int>& suffix) {
  if (suffix.size() > shape.size()) return false;
  const size_t off = shape.size() - suffix.size();
  for (size_t i = 0; i < suffix.size(); ++i) {
    if (shape[off + i] != suffix[i]) return false;
  }
  return true;
}

void AccumulateBroadcastGrad(TensorImpl& node, TensorImpl* parent,
                             const std::vector<double>& factor_or_empty) {
  // node.grad has node size; parent may be a suffix-broadcast operand.
  const size_t pn = parent->data.size();
  const size_t nn = node.data.size();
  assert(nn % pn == 0);
  for (size_t i = 0; i < nn; ++i) {
    const double g =
        factor_or_empty.empty() ? node.grad[i] : node.grad[i] * factor_or_empty[i];
    parent->grad[i % pn] += g;
  }
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  obs::Span span("nn/Add");
  OpRequire(IsSuffix(a.shape(), b.shape()),
            "Add: b must equal or suffix-broadcast a");
  auto node = MakeNode(a.shape(), {a.impl(), b.impl()});
  const size_t bn = b.numel();
  for (size_t i = 0; i < node->data.size(); ++i) {
    node->data[i] = a.data()[i] + b.data()[i % bn];
  }
  if (node->requires_grad) {
    Impl ai = a.impl(), bi = b.impl();
    node->backward_fn = [ai, bi](TensorImpl& n) {
      obs::Span bwd_span("nn/Add.bwd");
      for (size_t i = 0; i < n.data.size(); ++i) ai->grad[i] += n.grad[i];
      AccumulateBroadcastGrad(n, bi.get(), {});
    };
  }
  return Tensor(std::move(node));
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  obs::Span span("nn/Sub");
  OpRequire(a.shape() == b.shape(), "Sub: shapes must match");
  auto node = MakeNode(a.shape(), {a.impl(), b.impl()});
  for (size_t i = 0; i < node->data.size(); ++i) {
    node->data[i] = a.data()[i] - b.data()[i];
  }
  if (node->requires_grad) {
    Impl ai = a.impl(), bi = b.impl();
    node->backward_fn = [ai, bi](TensorImpl& n) {
      obs::Span bwd_span("nn/Sub.bwd");
      for (size_t i = 0; i < n.data.size(); ++i) {
        ai->grad[i] += n.grad[i];
        bi->grad[i] -= n.grad[i];
      }
    };
  }
  return Tensor(std::move(node));
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  obs::Span span("nn/Mul");
  OpRequire(IsSuffix(a.shape(), b.shape()),
            "Mul: b must equal or suffix-broadcast a");
  auto node = MakeNode(a.shape(), {a.impl(), b.impl()});
  const size_t bn = b.numel();
  for (size_t i = 0; i < node->data.size(); ++i) {
    node->data[i] = a.data()[i] * b.data()[i % bn];
  }
  if (node->requires_grad) {
    Impl ai = a.impl(), bi = b.impl();
    node->backward_fn = [ai, bi, bn](TensorImpl& n) {
      obs::Span bwd_span("nn/Mul.bwd");
      for (size_t i = 0; i < n.data.size(); ++i) {
        ai->grad[i] += n.grad[i] * bi->data[i % bn];
        bi->grad[i % bn] += n.grad[i] * ai->data[i];
      }
    };
  }
  return Tensor(std::move(node));
}

Tensor Scale(const Tensor& a, double scalar) {
  obs::Span span("nn/Scale");
  auto node = MakeNode(a.shape(), {a.impl()});
  for (size_t i = 0; i < node->data.size(); ++i) node->data[i] = a.data()[i] * scalar;
  if (node->requires_grad) {
    Impl ai = a.impl();
    node->backward_fn = [ai, scalar](TensorImpl& n) {
      obs::Span bwd_span("nn/Scale.bwd");
      for (size_t i = 0; i < n.data.size(); ++i) ai->grad[i] += n.grad[i] * scalar;
    };
  }
  return Tensor(std::move(node));
}

Tensor AddScalar(const Tensor& a, double scalar) {
  obs::Span span("nn/AddScalar");
  auto node = MakeNode(a.shape(), {a.impl()});
  for (size_t i = 0; i < node->data.size(); ++i) node->data[i] = a.data()[i] + scalar;
  if (node->requires_grad) {
    Impl ai = a.impl();
    node->backward_fn = [ai](TensorImpl& n) {
      obs::Span bwd_span("nn/AddScalar.bwd");
      for (size_t i = 0; i < n.data.size(); ++i) ai->grad[i] += n.grad[i];
    };
  }
  return Tensor(std::move(node));
}

Tensor MatMul(const Tensor& a, const Tensor& b, bool transpose_b) {
  obs::Span span("nn/MatMul");
  const auto& as = a.shape();
  const auto& bs = b.shape();
  OpRequire(a.rank() == 2 || a.rank() == 3, "MatMul: a must be rank 2 or 3");
  OpRequire(b.rank() == 2 || b.rank() == 3, "MatMul: b must be rank 2 or 3");
  OpRequire(!(a.rank() == 2 && b.rank() == 3), "MatMul: 2D x 3D unsupported");

  const int batch = a.rank() == 3 ? as[0] : 1;
  const int m = a.rank() == 3 ? as[1] : as[0];
  const int k = a.rank() == 3 ? as[2] : as[1];
  const bool b_batched = (b.rank() == 3);
  if (b_batched) OpRequire(bs[0] == batch, "MatMul: batch mismatch");
  const int bk = b_batched ? (transpose_b ? bs[2] : bs[1])
                           : (transpose_b ? bs[1] : bs[0]);
  const int n = b_batched ? (transpose_b ? bs[1] : bs[2])
                          : (transpose_b ? bs[0] : bs[1]);
  OpRequire(bk == k, "MatMul: inner dimension mismatch");

  std::vector<int> out_shape =
      a.rank() == 3 ? std::vector<int>{batch, m, n} : std::vector<int>{m, n};
  auto node = MakeNode(out_shape, {a.impl(), b.impl()});

  // The fwd/bwd loop nests live behind the kernel backend (naive oracle or
  // AVX2); this op is now a shape-resolving graph builder. The backend is
  // resolved per call so --kernel-backend applies to graphs built later.
  kernels::MatMulShape shape;
  shape.batch = batch;
  shape.m = m;
  shape.n = n;
  shape.k = k;
  shape.transpose_b = transpose_b;
  shape.b_batched = b_batched;
  kernels::Default()->MatMulFwd(a.data().data(), b.data().data(),
                                node->data.data(), shape);

  if (node->requires_grad) {
    Impl ai = a.impl(), bi = b.impl();
    node->backward_fn = [ai, bi, shape](TensorImpl& node_ref) {
      obs::Span bwd_span("nn/MatMul.bwd");
      const kernels::Backend* backend = kernels::Default();
      backend->MatMulBwdA(node_ref.grad.data(), bi->data.data(),
                          ai->grad.data(), shape);
      backend->MatMulBwdB(node_ref.grad.data(), ai->data.data(),
                          bi->grad.data(), shape);
    };
  }
  return Tensor(std::move(node));
}

Tensor Sigmoid(const Tensor& a) {
  obs::Span span("nn/Sigmoid");
  auto node = MakeNode(a.shape(), {a.impl()});
  for (size_t i = 0; i < node->data.size(); ++i) {
    node->data[i] = 1.0 / (1.0 + std::exp(-a.data()[i]));
  }
  if (node->requires_grad) {
    Impl ai = a.impl();
    node->backward_fn = [ai](TensorImpl& n) {
      obs::Span bwd_span("nn/Sigmoid.bwd");
      for (size_t i = 0; i < n.data.size(); ++i) {
        ai->grad[i] += n.grad[i] * n.data[i] * (1.0 - n.data[i]);
      }
    };
  }
  return Tensor(std::move(node));
}

Tensor Tanh(const Tensor& a) {
  obs::Span span("nn/Tanh");
  auto node = MakeNode(a.shape(), {a.impl()});
  for (size_t i = 0; i < node->data.size(); ++i) node->data[i] = std::tanh(a.data()[i]);
  if (node->requires_grad) {
    Impl ai = a.impl();
    node->backward_fn = [ai](TensorImpl& n) {
      obs::Span bwd_span("nn/Tanh.bwd");
      for (size_t i = 0; i < n.data.size(); ++i) {
        ai->grad[i] += n.grad[i] * (1.0 - n.data[i] * n.data[i]);
      }
    };
  }
  return Tensor(std::move(node));
}

Tensor Relu(const Tensor& a) {
  obs::Span span("nn/Relu");
  auto node = MakeNode(a.shape(), {a.impl()});
  for (size_t i = 0; i < node->data.size(); ++i) {
    node->data[i] = a.data()[i] > 0.0 ? a.data()[i] : 0.0;
  }
  if (node->requires_grad) {
    Impl ai = a.impl();
    node->backward_fn = [ai](TensorImpl& n) {
      obs::Span bwd_span("nn/Relu.bwd");
      for (size_t i = 0; i < n.data.size(); ++i) {
        if (ai->data[i] > 0.0) ai->grad[i] += n.grad[i];
      }
    };
  }
  return Tensor(std::move(node));
}

Tensor Softmax(const Tensor& a) {
  obs::Span span("nn/Softmax");
  const int last = a.shape().back();
  auto node = MakeNode(a.shape(), {a.impl()});
  const size_t rows = a.numel() / last;
  for (size_t r = 0; r < rows; ++r) {
    const double* in = a.data().data() + r * last;
    double* out = node->data.data() + r * last;
    double mx = in[0];
    for (int i = 1; i < last; ++i) mx = std::max(mx, in[i]);
    double sum = 0.0;
    for (int i = 0; i < last; ++i) {
      out[i] = std::exp(in[i] - mx);
      sum += out[i];
    }
    for (int i = 0; i < last; ++i) out[i] /= sum;
  }
  if (node->requires_grad) {
    Impl ai = a.impl();
    node->backward_fn = [ai, last, rows](TensorImpl& n) {
      obs::Span bwd_span("nn/Softmax.bwd");
      for (size_t r = 0; r < rows; ++r) {
        const double* y = n.data.data() + r * last;
        const double* gy = n.grad.data() + r * last;
        double dot = 0.0;
        for (int i = 0; i < last; ++i) dot += y[i] * gy[i];
        double* ga = ai->grad.data() + r * last;
        for (int i = 0; i < last; ++i) ga[i] += y[i] * (gy[i] - dot);
      }
    };
  }
  return Tensor(std::move(node));
}

Tensor LayerNorm(const Tensor& a, const Tensor& gamma, const Tensor& beta,
                 double eps) {
  obs::Span span("nn/LayerNorm");
  const int d = a.shape().back();
  OpRequire(gamma.rank() == 1 && gamma.shape()[0] == d,
            "LayerNorm: gamma must be rank-1 of size last-dim(a)");
  OpRequire(beta.rank() == 1 && beta.shape()[0] == d,
            "LayerNorm: beta must be rank-1 of size last-dim(a)");
  auto node = MakeNode(a.shape(), {a.impl(), gamma.impl(), beta.impl()});
  const size_t rows = a.numel() / d;
  // Cache per-row statistics for the backward pass.
  auto mean = std::make_shared<std::vector<double>>(rows);
  auto inv_std = std::make_shared<std::vector<double>>(rows);
  for (size_t r = 0; r < rows; ++r) {
    const double* in = a.data().data() + r * d;
    double m = 0.0;
    for (int i = 0; i < d; ++i) m += in[i];
    m /= d;
    double var = 0.0;
    for (int i = 0; i < d; ++i) var += (in[i] - m) * (in[i] - m);
    var /= d;
    const double is = 1.0 / std::sqrt(var + eps);
    (*mean)[r] = m;
    (*inv_std)[r] = is;
    double* out = node->data.data() + r * d;
    for (int i = 0; i < d; ++i) {
      out[i] = gamma.data()[i] * (in[i] - m) * is + beta.data()[i];
    }
  }
  if (node->requires_grad) {
    Impl ai = a.impl(), gi = gamma.impl(), bi = beta.impl();
    node->backward_fn = [ai, gi, bi, d, rows, mean, inv_std](TensorImpl& n) {
      obs::Span bwd_span("nn/LayerNorm.bwd");
      for (size_t r = 0; r < rows; ++r) {
        const double* x = ai->data.data() + r * d;
        const double* gy = n.grad.data() + r * d;
        const double m = (*mean)[r];
        const double is = (*inv_std)[r];
        // xhat_i = (x_i - m) * is
        double sum_gy_g = 0.0;     // sum_i gy_i * gamma_i
        double sum_gy_g_xh = 0.0;  // sum_i gy_i * gamma_i * xhat_i
        for (int i = 0; i < d; ++i) {
          const double xh = (x[i] - m) * is;
          const double gg = gy[i] * gi->data[i];
          sum_gy_g += gg;
          sum_gy_g_xh += gg * xh;
          gi->grad[i] += gy[i] * xh;
          bi->grad[i] += gy[i];
        }
        double* ga = ai->grad.data() + r * d;
        for (int i = 0; i < d; ++i) {
          const double xh = (x[i] - m) * is;
          ga[i] += is * (gy[i] * gi->data[i] - sum_gy_g / d - xh * sum_gy_g_xh / d);
        }
      }
    };
  }
  return Tensor(std::move(node));
}

Tensor StackSeq(const std::vector<Tensor>& steps) {
  obs::Span span("nn/StackSeq");
  OpRequire(!steps.empty(), "StackSeq: steps must be non-empty");
  const auto& s0 = steps[0].shape();
  OpRequire(s0.size() == 2, "StackSeq: steps must be rank-2");
  const int b = s0[0];
  const int d = s0[1];
  const int s = static_cast<int>(steps.size());
  std::vector<Impl> parents;
  for (const auto& t : steps) {
    OpRequire(t.shape() == s0, "StackSeq: all steps must share one shape");
    parents.push_back(t.impl());
  }
  auto node = MakeNode({b, s, d}, std::move(parents));
  for (int bt = 0; bt < b; ++bt) {
    for (int st = 0; st < s; ++st) {
      for (int i = 0; i < d; ++i) {
        node->data[(static_cast<size_t>(bt) * s + st) * d + i] =
            steps[st].data()[static_cast<size_t>(bt) * d + i];
      }
    }
  }
  if (node->requires_grad) {
    std::vector<Impl> ps;
    for (const auto& t : steps) ps.push_back(t.impl());
    node->backward_fn = [ps, b, s, d](TensorImpl& n) {
      obs::Span bwd_span("nn/StackSeq.bwd");
      for (int bt = 0; bt < b; ++bt) {
        for (int st = 0; st < s; ++st) {
          for (int i = 0; i < d; ++i) {
            ps[st]->grad[static_cast<size_t>(bt) * d + i] +=
                n.grad[(static_cast<size_t>(bt) * s + st) * d + i];
          }
        }
      }
    };
  }
  return Tensor(std::move(node));
}

Tensor ConcatLastDim(const std::vector<Tensor>& parts) {
  obs::Span span("nn/ConcatLastDim");
  OpRequire(!parts.empty(), "ConcatLastDim: parts must be non-empty");
  const auto& s0 = parts[0].shape();
  std::vector<int> lead(s0.begin(), s0.end() - 1);
  int total_last = 0;
  std::vector<Impl> parents;
  std::vector<int> lasts;
  for (const auto& p : parts) {
    OpRequire(std::vector<int>(p.shape().begin(), p.shape().end() - 1) == lead,
              "ConcatLastDim: leading dims must match");
    lasts.push_back(p.shape().back());
    total_last += p.shape().back();
    parents.push_back(p.impl());
  }
  std::vector<int> out_shape = lead;
  out_shape.push_back(total_last);
  const size_t rows = ShapeNumel(lead);
  auto node = MakeNode(out_shape, parents);
  for (size_t r = 0; r < rows; ++r) {
    size_t off = 0;
    for (size_t p = 0; p < parts.size(); ++p) {
      const int d = lasts[p];
      for (int i = 0; i < d; ++i) {
        node->data[r * total_last + off + i] =
            parts[p].data()[r * static_cast<size_t>(d) + i];
      }
      off += d;
    }
  }
  if (node->requires_grad) {
    std::vector<Impl> ps;
    for (const auto& p : parts) ps.push_back(p.impl());
    node->backward_fn = [ps, lasts, rows, total_last](TensorImpl& n) {
      obs::Span bwd_span("nn/ConcatLastDim.bwd");
      for (size_t r = 0; r < rows; ++r) {
        size_t off = 0;
        for (size_t p = 0; p < ps.size(); ++p) {
          const int d = lasts[p];
          for (int i = 0; i < d; ++i) {
            ps[p]->grad[r * static_cast<size_t>(d) + i] +=
                n.grad[r * total_last + off + i];
          }
          off += d;
        }
      }
    };
  }
  return Tensor(std::move(node));
}

Tensor SliceSeq(const Tensor& a, int t) {
  obs::Span span("nn/SliceSeq");
  OpRequire(a.rank() == 3, "SliceSeq: a must be rank-3");
  const int b = a.shape()[0];
  const int s = a.shape()[1];
  const int d = a.shape()[2];
  OpRequire(t >= 0 && t < s, "SliceSeq: t out of range");
  auto node = MakeNode({b, d}, {a.impl()});
  for (int bt = 0; bt < b; ++bt) {
    for (int i = 0; i < d; ++i) {
      node->data[static_cast<size_t>(bt) * d + i] =
          a.data()[(static_cast<size_t>(bt) * s + t) * d + i];
    }
  }
  if (node->requires_grad) {
    Impl ai = a.impl();
    node->backward_fn = [ai, b, s, d, t](TensorImpl& n) {
      obs::Span bwd_span("nn/SliceSeq.bwd");
      for (int bt = 0; bt < b; ++bt) {
        for (int i = 0; i < d; ++i) {
          ai->grad[(static_cast<size_t>(bt) * s + t) * d + i] +=
              n.grad[static_cast<size_t>(bt) * d + i];
        }
      }
    };
  }
  return Tensor(std::move(node));
}

Tensor SumAll(const Tensor& a) {
  obs::Span span("nn/SumAll");
  auto node = MakeNode({1}, {a.impl()});
  double s = 0.0;
  for (double v : a.data()) s += v;
  node->data[0] = s;
  if (node->requires_grad) {
    Impl ai = a.impl();
    node->backward_fn = [ai](TensorImpl& n) {
      obs::Span bwd_span("nn/SumAll.bwd");
      for (double& g : ai->grad) g += n.grad[0];
    };
  }
  return Tensor(std::move(node));
}

Tensor MeanAll(const Tensor& a) {
  obs::Span span("nn/MeanAll");
  const double inv = 1.0 / static_cast<double>(a.numel());
  return Scale(SumAll(a), inv);
}

Tensor MeanSeq(const Tensor& a) {
  obs::Span span("nn/MeanSeq");
  OpRequire(a.rank() == 3, "MeanSeq: a must be rank-3");
  const int b = a.shape()[0];
  const int s = a.shape()[1];
  const int d = a.shape()[2];
  auto node = MakeNode({b, d}, {a.impl()});
  for (int bt = 0; bt < b; ++bt) {
    for (int st = 0; st < s; ++st) {
      for (int i = 0; i < d; ++i) {
        node->data[static_cast<size_t>(bt) * d + i] +=
            a.data()[(static_cast<size_t>(bt) * s + st) * d + i];
      }
    }
  }
  for (double& v : node->data) v /= s;
  if (node->requires_grad) {
    Impl ai = a.impl();
    node->backward_fn = [ai, b, s, d](TensorImpl& n) {
      obs::Span bwd_span("nn/MeanSeq.bwd");
      const double inv = 1.0 / s;
      for (int bt = 0; bt < b; ++bt) {
        for (int st = 0; st < s; ++st) {
          for (int i = 0; i < d; ++i) {
            ai->grad[(static_cast<size_t>(bt) * s + st) * d + i] +=
                n.grad[static_cast<size_t>(bt) * d + i] * inv;
          }
        }
      }
    };
  }
  return Tensor(std::move(node));
}

Tensor Reshape(const Tensor& a, const std::vector<int>& shape) {
  obs::Span span("nn/Reshape");
  OpRequire(ShapeNumel(shape) == a.numel(), "Reshape: volume must match");
  auto node = MakeNode(shape, {a.impl()});
  node->data = a.data();
  if (node->requires_grad) {
    Impl ai = a.impl();
    node->backward_fn = [ai](TensorImpl& n) {
      obs::Span bwd_span("nn/Reshape.bwd");
      for (size_t i = 0; i < n.data.size(); ++i) ai->grad[i] += n.grad[i];
    };
  }
  return Tensor(std::move(node));
}

Tensor MseLoss(const Tensor& pred, const Tensor& target) {
  obs::Span span("nn/MseLoss");
  OpRequire(pred.shape() == target.shape(), "MseLoss: shapes must match");
  const Tensor diff = Sub(pred, target);
  return MeanAll(Mul(diff, diff));
}

Tensor MaeLoss(const Tensor& pred, const Tensor& target) {
  obs::Span span("nn/MaeLoss");
  OpRequire(pred.shape() == target.shape(), "MaeLoss: shapes must match");
  auto node = MakeNode({1}, {pred.impl(), target.impl()});
  double s = 0.0;
  for (size_t i = 0; i < pred.numel(); ++i) {
    s += std::fabs(pred.data()[i] - target.data()[i]);
  }
  node->data[0] = s / static_cast<double>(pred.numel());
  if (node->requires_grad) {
    Impl pi = pred.impl(), ti = target.impl();
    node->backward_fn = [pi, ti](TensorImpl& n) {
      obs::Span bwd_span("nn/MaeLoss.bwd");
      const double inv = 1.0 / static_cast<double>(pi->data.size());
      for (size_t i = 0; i < pi->data.size(); ++i) {
        const double diff = pi->data[i] - ti->data[i];
        const double sgn = diff > 0.0 ? 1.0 : (diff < 0.0 ? -1.0 : 0.0);
        pi->grad[i] += n.grad[0] * sgn * inv;
        ti->grad[i] -= n.grad[0] * sgn * inv;
      }
    };
  }
  return Tensor(std::move(node));
}

}  // namespace stpt::nn
