#include "io/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <new>
#include <sstream>

namespace stpt::io {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> out;
  std::string field;
  std::istringstream ss(line);
  while (std::getline(ss, field, ',')) out.push_back(field);
  if (!line.empty() && line.back() == ',') out.push_back("");
  return out;
}

Status WriteMatrixCsv(const grid::ConsumptionMatrix& matrix,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("WriteMatrixCsv: cannot open " + path);
  out << std::setprecision(17);
  out << "x,y,t,value\n";
  const grid::Dims& dims = matrix.dims();
  for (int x = 0; x < dims.cx; ++x) {
    for (int y = 0; y < dims.cy; ++y) {
      for (int t = 0; t < dims.ct; ++t) {
        out << x << ',' << y << ',' << t << ',' << matrix.at(x, y, t) << '\n';
      }
    }
  }
  if (!out) return Status::Internal("WriteMatrixCsv: write failed for " + path);
  return Status::OK();
}

StatusOr<grid::ConsumptionMatrix> ReadMatrixCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("ReadMatrixCsv: cannot open " + path);
  return ReadMatrixCsv(in);
}

StatusOr<grid::ConsumptionMatrix> ReadMatrixCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || SplitCsvLine(line).size() != 4) {
    return Status::InvalidArgument("ReadMatrixCsv: missing x,y,t,value header");
  }
  struct Cell {
    int x, y, t;
    double v;
  };
  std::vector<Cell> cells;
  int max_x = -1, max_y = -1, max_t = -1;
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 4) {
      return Status::InvalidArgument("ReadMatrixCsv: bad field count at line " +
                                     std::to_string(line_no));
    }
    try {
      Cell c{std::stoi(fields[0]), std::stoi(fields[1]), std::stoi(fields[2]),
             std::stod(fields[3])};
      if (c.x < 0 || c.y < 0 || c.t < 0) {
        return Status::InvalidArgument("ReadMatrixCsv: negative index at line " +
                                       std::to_string(line_no));
      }
      if (c.x >= kMaxCsvAxis || c.y >= kMaxCsvAxis || c.t >= kMaxCsvAxis) {
        return Status::InvalidArgument("ReadMatrixCsv: index exceeds axis limit at line " +
                                       std::to_string(line_no));
      }
      if (!std::isfinite(c.v)) {
        return Status::InvalidArgument("ReadMatrixCsv: non-finite value at line " +
                                       std::to_string(line_no));
      }
      max_x = std::max(max_x, c.x);
      max_y = std::max(max_y, c.y);
      max_t = std::max(max_t, c.t);
      cells.push_back(c);
    } catch (const std::exception&) {
      return Status::InvalidArgument("ReadMatrixCsv: parse error at line " +
                                     std::to_string(line_no));
    }
  }
  if (cells.empty()) return Status::InvalidArgument("ReadMatrixCsv: no data rows");
  // Check that the rows fill the inferred dims *before* allocating the
  // matrix: a single hostile row like "999999,999999,999999,1" must not
  // drive an allocation sized by its indices. Indices are < kMaxCsvAxis,
  // so the product fits in int64 with no overflow.
  const int64_t expected = int64_t{max_x + 1} * int64_t{max_y + 1} * int64_t{max_t + 1};
  if (static_cast<int64_t>(cells.size()) != expected) {
    return Status::InvalidArgument("ReadMatrixCsv: cell count does not fill matrix");
  }
  auto matrix_or = grid::ConsumptionMatrix::Create({max_x + 1, max_y + 1, max_t + 1});
  STPT_RETURN_IF_ERROR(matrix_or.status());
  grid::ConsumptionMatrix matrix = std::move(matrix_or).value();
  // Count matching dims does not imply coverage: a duplicated cell plus a
  // missing one has the right count but silently corrupts the release.
  std::vector<uint8_t> seen(matrix.size(), 0);
  for (const Cell& c : cells) {
    const size_t idx =
        (static_cast<size_t>(c.x) * (max_y + 1) + c.y) * (max_t + 1) + c.t;
    if (seen[idx]) {
      return Status::InvalidArgument("ReadMatrixCsv: duplicate cell (" +
                                     std::to_string(c.x) + "," + std::to_string(c.y) +
                                     "," + std::to_string(c.t) + ")");
    }
    seen[idx] = 1;
    matrix.set(c.x, c.y, c.t, c.v);
  }
  return matrix;
}

Status WriteDatasetCsv(const datagen::SyntheticDataset& dataset,
                       const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("WriteDatasetCsv: cannot open " + path);
  out << std::setprecision(17);
  const auto& s = dataset.spec;
  out << "# " << s.name << ',' << s.num_households << ',' << s.mean_kwh << ','
      << s.std_kwh << ',' << s.max_kwh << ',' << s.clip_factor << ','
      << dataset.grid_x << ',' << dataset.grid_y << ',' << dataset.hours << '\n';
  out << "household,cell_x,cell_y,hour,kwh\n";
  for (size_t h = 0; h < dataset.households.size(); ++h) {
    const auto& house = dataset.households[h];
    for (int t = 0; t < dataset.hours; ++t) {
      out << h << ',' << house.cell_x << ',' << house.cell_y << ',' << t << ','
          << house.series[t] << '\n';
    }
  }
  if (!out) return Status::Internal("WriteDatasetCsv: write failed for " + path);
  return Status::OK();
}

StatusOr<datagen::SyntheticDataset> ReadDatasetCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("ReadDatasetCsv: cannot open " + path);
  return ReadDatasetCsv(in);
}

StatusOr<datagen::SyntheticDataset> ReadDatasetCsv(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.size() < 3 || line[0] != '#') {
    return Status::InvalidArgument("ReadDatasetCsv: missing spec comment line");
  }
  const auto meta = SplitCsvLine(line.substr(2));
  if (meta.size() != 9) {
    return Status::InvalidArgument("ReadDatasetCsv: bad spec line");
  }
  datagen::SyntheticDataset ds;
  try {
    ds.spec.name = meta[0];
    ds.spec.num_households = std::stoi(meta[1]);
    ds.spec.mean_kwh = std::stod(meta[2]);
    ds.spec.std_kwh = std::stod(meta[3]);
    ds.spec.max_kwh = std::stod(meta[4]);
    ds.spec.clip_factor = std::stod(meta[5]);
    ds.grid_x = std::stoi(meta[6]);
    ds.grid_y = std::stoi(meta[7]);
    ds.hours = std::stoi(meta[8]);
  } catch (const std::exception&) {
    return Status::InvalidArgument("ReadDatasetCsv: spec parse error");
  }
  if (ds.spec.num_households <= 0 || ds.hours <= 0) {
    return Status::InvalidArgument("ReadDatasetCsv: non-positive spec values");
  }
  if (ds.grid_x <= 0 || ds.grid_y <= 0) {
    return Status::InvalidArgument("ReadDatasetCsv: non-positive grid dimensions");
  }
  if (ds.grid_x > kMaxCsvAxis || ds.grid_y > kMaxCsvAxis || ds.hours > kMaxCsvAxis) {
    return Status::InvalidArgument("ReadDatasetCsv: spec dimensions exceed axis limit");
  }
  if (!std::isfinite(ds.spec.mean_kwh) || !std::isfinite(ds.spec.std_kwh) ||
      !std::isfinite(ds.spec.max_kwh) || !std::isfinite(ds.spec.clip_factor)) {
    return Status::InvalidArgument("ReadDatasetCsv: non-finite spec statistics");
  }
  // Cap the header-declared sizes before the resize below: this allocation
  // is driven entirely by a line of untrusted text.
  if (ds.spec.num_households > kMaxCsvHouseholds ||
      int64_t{ds.spec.num_households} * int64_t{ds.hours} > kMaxCsvReadings) {
    return Status::InvalidArgument(
        "ReadDatasetCsv: households x hours exceeds reader limit");
  }
  try {
    ds.households.resize(ds.spec.num_households);
    for (auto& h : ds.households) h.series.assign(ds.hours, 0.0);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("ReadDatasetCsv: cannot allocate dataset");
  }

  if (!std::getline(in, line) || SplitCsvLine(line).size() != 5) {
    return Status::InvalidArgument("ReadDatasetCsv: missing data header");
  }
  size_t line_no = 2;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const auto fields = SplitCsvLine(line);
    if (fields.size() != 5) {
      return Status::InvalidArgument("ReadDatasetCsv: bad field count at line " +
                                     std::to_string(line_no));
    }
    try {
      const int h = std::stoi(fields[0]);
      const int t = std::stoi(fields[3]);
      if (h < 0 || h >= ds.spec.num_households || t < 0 || t >= ds.hours) {
        return Status::OutOfRange("ReadDatasetCsv: index out of range at line " +
                                  std::to_string(line_no));
      }
      const int cx = std::stoi(fields[1]);
      const int cy = std::stoi(fields[2]);
      if (cx < 0 || cx >= ds.grid_x || cy < 0 || cy >= ds.grid_y) {
        return Status::OutOfRange("ReadDatasetCsv: cell outside grid at line " +
                                  std::to_string(line_no));
      }
      const double kwh = std::stod(fields[4]);
      if (!std::isfinite(kwh)) {
        return Status::InvalidArgument("ReadDatasetCsv: non-finite reading at line " +
                                       std::to_string(line_no));
      }
      ds.households[h].cell_x = cx;
      ds.households[h].cell_y = cy;
      ds.households[h].series[t] = kwh;
    } catch (const std::exception&) {
      return Status::InvalidArgument("ReadDatasetCsv: parse error at line " +
                                     std::to_string(line_no));
    }
  }
  return ds;
}

Status WriteTableCsv(const std::vector<std::string>& headers,
                     const std::vector<std::vector<double>>& rows,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("WriteTableCsv: cannot open " + path);
  out << std::setprecision(17);
  for (size_t i = 0; i < headers.size(); ++i) {
    out << headers[i] << (i + 1 < headers.size() ? "," : "");
  }
  out << '\n';
  for (const auto& row : rows) {
    if (row.size() != headers.size()) {
      return Status::InvalidArgument("WriteTableCsv: row width mismatch");
    }
    for (size_t i = 0; i < row.size(); ++i) {
      out << row[i] << (i + 1 < row.size() ? "," : "");
    }
    out << '\n';
  }
  if (!out) return Status::Internal("WriteTableCsv: write failed for " + path);
  return Status::OK();
}

}  // namespace stpt::io
