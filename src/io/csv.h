#ifndef STPT_IO_CSV_H_
#define STPT_IO_CSV_H_

#include <cstdint>
#include <istream>
#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/dataset.h"
#include "grid/consumption_matrix.h"

namespace stpt::io {

/// Hard limits the readers enforce on untrusted input before allocating
/// anything from header-declared sizes. A hostile or corrupted file can
/// therefore cost at most bounded memory, never an uncaught bad_alloc.
inline constexpr int kMaxCsvAxis = 1 << 20;             ///< per-axis index bound
inline constexpr int kMaxCsvHouseholds = 1 << 22;       ///< dataset household bound
inline constexpr int64_t kMaxCsvReadings = int64_t{1} << 26;  ///< households × hours

/// Writes a consumption matrix as CSV with header `x,y,t,value`, one row per
/// cell, in (x, y, t) order.
Status WriteMatrixCsv(const grid::ConsumptionMatrix& matrix,
                      const std::string& path);

/// Reads a matrix written by WriteMatrixCsv. Dimensions are inferred from
/// the maximum indices; every cell must be present exactly once (duplicates
/// and gaps are rejected), every value must be finite, and indices are
/// bounded by kMaxCsvAxis. Arbitrary input yields a Status, never a crash.
StatusOr<grid::ConsumptionMatrix> ReadMatrixCsv(const std::string& path);

/// Stream-based core of ReadMatrixCsv (also the fuzzing entry point: it
/// parses untrusted bytes without touching the filesystem).
StatusOr<grid::ConsumptionMatrix> ReadMatrixCsv(std::istream& in);

/// Writes a dataset as CSV with header `household,cell_x,cell_y,hour,kwh`.
/// Spec metadata goes into a leading comment line
/// `# name,num_households,mean,std,max,clip,grid_x,grid_y,hours`.
Status WriteDatasetCsv(const datagen::SyntheticDataset& dataset,
                       const std::string& path);

/// Reads a dataset written by WriteDatasetCsv. The spec line is validated
/// before any allocation: grid dimensions and hours must be in
/// [1, kMaxCsvAxis], households in [1, kMaxCsvHouseholds], and
/// households × hours <= kMaxCsvReadings; data rows must reference
/// households/hours declared by the spec, cells inside the grid, and finite
/// readings. Arbitrary input yields a Status, never a crash.
StatusOr<datagen::SyntheticDataset> ReadDatasetCsv(const std::string& path);

/// Stream-based core of ReadDatasetCsv (also the fuzzing entry point).
StatusOr<datagen::SyntheticDataset> ReadDatasetCsv(std::istream& in);

/// Writes rows of doubles with the given column headers.
Status WriteTableCsv(const std::vector<std::string>& headers,
                     const std::vector<std::vector<double>>& rows,
                     const std::string& path);

/// Splits one CSV line on commas (no quoting support; the writers above
/// never emit quoted fields).
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace stpt::io

#endif  // STPT_IO_CSV_H_
