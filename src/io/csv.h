#ifndef STPT_IO_CSV_H_
#define STPT_IO_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "datagen/dataset.h"
#include "grid/consumption_matrix.h"

namespace stpt::io {

/// Writes a consumption matrix as CSV with header `x,y,t,value`, one row per
/// cell, in (x, y, t) order.
Status WriteMatrixCsv(const grid::ConsumptionMatrix& matrix,
                      const std::string& path);

/// Reads a matrix written by WriteMatrixCsv. Dimensions are inferred from
/// the maximum indices; every cell must be present exactly once.
StatusOr<grid::ConsumptionMatrix> ReadMatrixCsv(const std::string& path);

/// Writes a dataset as CSV with header `household,cell_x,cell_y,hour,kwh`.
/// Spec metadata goes into a leading comment line
/// `# name,num_households,mean,std,max,clip,grid_x,grid_y,hours`.
Status WriteDatasetCsv(const datagen::SyntheticDataset& dataset,
                       const std::string& path);

/// Reads a dataset written by WriteDatasetCsv.
StatusOr<datagen::SyntheticDataset> ReadDatasetCsv(const std::string& path);

/// Writes rows of doubles with the given column headers.
Status WriteTableCsv(const std::vector<std::string>& headers,
                     const std::vector<std::vector<double>>& rows,
                     const std::string& path);

/// Splits one CSV line on commas (no quoting support; the writers above
/// never emit quoted fields).
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace stpt::io

#endif  // STPT_IO_CSV_H_
