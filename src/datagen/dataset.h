#ifndef STPT_DATAGEN_DATASET_H_
#define STPT_DATAGEN_DATASET_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "grid/consumption_matrix.h"

namespace stpt::datagen {

/// Target statistics for a synthetic digital twin of one of the paper's four
/// evaluation datasets (Table 2).
struct DatasetSpec {
  std::string name;
  int num_households = 0;
  double mean_kwh = 0.0;      ///< target average hourly consumption
  double std_kwh = 0.0;       ///< target hourly standard deviation
  double max_kwh = 0.0;       ///< hard cap on a single reading
  double clip_factor = 0.0;   ///< sensitivity clipping factor used before DP
};

/// Table 2 presets.
DatasetSpec CerSpec();
DatasetSpec CaSpec();
DatasetSpec MiSpec();
DatasetSpec TxSpec();
std::vector<DatasetSpec> AllSpecs();

/// Household placement models from §5.1.
enum class SpatialDistribution {
  kUniform,     ///< uniform over grid cells
  kNormal,      ///< Gaussian around a random centre, sigma = grid / 3
  kLosAngeles,  ///< LA-population-like multi-modal density (Veraset substitute)
};

const char* SpatialDistributionToString(SpatialDistribution d);

/// One smart-metered household: a fixed grid cell plus its hourly series.
struct Household {
  int cell_x = 0;
  int cell_y = 0;
  std::vector<double> series;  ///< hourly kWh readings, length = hours
};

/// A generated dataset: N households placed on a grid_x × grid_y map with
/// `hours` hourly readings each.
struct SyntheticDataset {
  DatasetSpec spec;
  SpatialDistribution distribution = SpatialDistribution::kUniform;
  int grid_x = 32;
  int grid_y = 32;
  int hours = 0;
  std::vector<Household> households;

  /// Flattens all readings (for statistics).
  std::vector<double> AllReadings() const;
};

/// Options for GenerateDataset.
struct GenerateOptions {
  int grid_x = 32;
  int grid_y = 32;
  int hours = 220;  ///< paper: 100 training + 120 test slices
};

/// Generates a synthetic dataset whose marginal statistics track the spec
/// (heavy-tailed multiplicative model with daily/weekly cycles, clipped at
/// spec.max_kwh) and whose households follow the given spatial distribution.
/// Returns InvalidArgument for non-positive dimensions.
StatusOr<SyntheticDataset> GenerateDataset(const DatasetSpec& spec,
                                           SpatialDistribution distribution,
                                           const GenerateOptions& options, Rng& rng);

/// Aggregates a dataset into a consumption matrix, clipping every individual
/// hourly reading at spec.clip_factor first so that one user's per-slice
/// contribution to any cell is bounded (Theorem 4).
///
/// `hours_per_slice` sets the release granularity Delta (paper §3.1): 1 for
/// hourly slices, 24 for the day granularity used throughout the paper's
/// evaluation. dataset.hours must be divisible by hours_per_slice; the
/// result has ct = hours / hours_per_slice.
StatusOr<grid::ConsumptionMatrix> BuildConsumptionMatrix(
    const SyntheticDataset& dataset, int hours_per_slice = 1);

/// The L1 bound on one household's contribution to a single matrix cell in
/// one slice at the given granularity: clip_factor * hours_per_slice. This
/// is the `unit_sensitivity` to pass to every publisher.
double UnitSensitivity(const DatasetSpec& spec, int hours_per_slice);

/// Summary statistics of a dataset's readings (for the Table 2 harness).
struct DatasetStats {
  double mean = 0.0;
  double stddev = 0.0;
  double max = 0.0;
};
DatasetStats ComputeStats(const SyntheticDataset& dataset);

/// Total consumption per weekday (Mon..Sun indices 0..6) summed over all
/// households — the series plotted in Figure 9. Hour 0 is a Monday 00:00.
std::vector<double> WeekdayTotals(const SyntheticDataset& dataset);

}  // namespace stpt::datagen

#endif  // STPT_DATAGEN_DATASET_H_
