#include "datagen/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace stpt::datagen {
namespace {

/// Hour-of-day load shape: night valley, morning shoulder, evening peak.
/// Mean over 24 hours is ~1 so it scales consumption without shifting it.
double DailyProfile(int hour_of_day) {
  const double h = static_cast<double>(hour_of_day);
  const double morning = 0.55 * std::exp(-0.5 * std::pow((h - 8.0) / 2.5, 2.0));
  const double evening = 1.05 * std::exp(-0.5 * std::pow((h - 19.0) / 2.8, 2.0));
  return 0.55 + morning + evening;
}

/// Day-of-week factor: residential load is higher on weekends (Fig. 9).
double WeekdayFactor(int day_of_week) {
  // 0 = Monday ... 6 = Sunday.
  switch (day_of_week) {
    case 5:
      return 1.12;
    case 6:
      return 1.18;
    default:
      return 0.97 + 0.01 * day_of_week;  // mild drift across workdays
  }
}

/// Samples a household's grid cell according to the spatial distribution.
void PlaceHousehold(SpatialDistribution dist, int gx, int gy, double center_x,
                    double center_y, const std::vector<double>& la_cdf, Rng& rng,
                    int* out_x, int* out_y) {
  switch (dist) {
    case SpatialDistribution::kUniform:
      *out_x = static_cast<int>(rng.UniformInt(0, gx - 1));
      *out_y = static_cast<int>(rng.UniformInt(0, gy - 1));
      return;
    case SpatialDistribution::kNormal: {
      // Paper: sigma = one third of the grid size, centre random; samples
      // falling off the map are clamped to the border cell.
      const double sx = static_cast<double>(gx) / 3.0;
      const double sy = static_cast<double>(gy) / 3.0;
      const double x = rng.Gaussian(center_x, sx);
      const double y = rng.Gaussian(center_y, sy);
      *out_x = static_cast<int>(Clamp(std::floor(x), 0.0, gx - 1.0));
      *out_y = static_cast<int>(Clamp(std::floor(y), 0.0, gy - 1.0));
      return;
    }
    case SpatialDistribution::kLosAngeles: {
      // Inverse-CDF sample from the precomputed density map.
      const double u = rng.NextDouble();
      const auto it = std::lower_bound(la_cdf.begin(), la_cdf.end(), u);
      const size_t idx = std::min<size_t>(it - la_cdf.begin(), la_cdf.size() - 1);
      *out_x = static_cast<int>(idx) / gy;
      *out_y = static_cast<int>(idx) % gy;
      return;
    }
  }
}

/// Builds an LA-like population density CDF: a dominant downtown core plus
/// secondary centres and a diffuse background, substituting for the Veraset
/// cell-phone histogram (see DESIGN.md, substitutions).
std::vector<double> BuildLaCdf(int gx, int gy) {
  struct Hotspot {
    double x, y, sigma, weight;
  };
  const std::vector<Hotspot> hotspots = {
      {0.52, 0.48, 0.06, 0.30},  // downtown core
      {0.30, 0.62, 0.09, 0.15},  // secondary centre (e.g. west side)
      {0.68, 0.30, 0.08, 0.12},  // secondary centre (e.g. south east)
      {0.42, 0.25, 0.10, 0.10},  // corridor
      {0.75, 0.70, 0.12, 0.08},  // valley sprawl
  };
  std::vector<double> density(static_cast<size_t>(gx) * gy, 0.0);
  for (int x = 0; x < gx; ++x) {
    for (int y = 0; y < gy; ++y) {
      const double fx = (x + 0.5) / gx;
      const double fy = (y + 0.5) / gy;
      double d = 0.04;  // diffuse background
      for (const auto& h : hotspots) {
        const double dx = fx - h.x;
        const double dy = fy - h.y;
        d += h.weight * std::exp(-0.5 * (dx * dx + dy * dy) / (h.sigma * h.sigma));
      }
      density[static_cast<size_t>(x) * gy + y] = d;
    }
  }
  double total = 0.0;
  for (double d : density) total += d;
  std::vector<double> cdf(density.size());
  double acc = 0.0;
  for (size_t i = 0; i < density.size(); ++i) {
    acc += density[i] / total;
    cdf[i] = acc;
  }
  cdf.back() = 1.0;
  return cdf;
}

DatasetSpec MakeSpec(const char* name, int households, double mean, double stddev,
                     double max, double clip) {
  DatasetSpec s;
  s.name = name;
  s.num_households = households;
  s.mean_kwh = mean;
  s.std_kwh = stddev;
  s.max_kwh = max;
  s.clip_factor = clip;
  return s;
}

}  // namespace

DatasetSpec CerSpec() { return MakeSpec("CER", 5000, 0.61, 1.24, 19.62, 1.85); }
DatasetSpec CaSpec() { return MakeSpec("CA", 250, 0.38, 1.13, 33.54, 1.51); }
DatasetSpec MiSpec() { return MakeSpec("MI", 250, 0.48, 1.22, 49.50, 1.70); }
DatasetSpec TxSpec() { return MakeSpec("TX", 250, 0.55, 1.63, 68.86, 2.18); }

std::vector<DatasetSpec> AllSpecs() {
  return {CerSpec(), CaSpec(), MiSpec(), TxSpec()};
}

const char* SpatialDistributionToString(SpatialDistribution d) {
  switch (d) {
    case SpatialDistribution::kUniform:
      return "Uniform";
    case SpatialDistribution::kNormal:
      return "Normal";
    case SpatialDistribution::kLosAngeles:
      return "LosAngeles";
  }
  return "UNKNOWN";
}

std::vector<double> SyntheticDataset::AllReadings() const {
  std::vector<double> out;
  out.reserve(households.size() * static_cast<size_t>(hours));
  for (const auto& h : households) {
    out.insert(out.end(), h.series.begin(), h.series.end());
  }
  return out;
}

StatusOr<SyntheticDataset> GenerateDataset(const DatasetSpec& spec,
                                           SpatialDistribution distribution,
                                           const GenerateOptions& options, Rng& rng) {
  if (options.grid_x <= 0 || options.grid_y <= 0 || options.hours <= 0) {
    return Status::InvalidArgument("GenerateDataset: dimensions must be positive");
  }
  if (spec.num_households <= 0) {
    return Status::InvalidArgument("GenerateDataset: households must be positive");
  }

  SyntheticDataset ds;
  ds.spec = spec;
  ds.distribution = distribution;
  ds.grid_x = options.grid_x;
  ds.grid_y = options.grid_y;
  ds.hours = options.hours;
  ds.households.resize(spec.num_households);

  const double center_x = rng.Uniform(0.0, options.grid_x);
  const double center_y = rng.Uniform(0.0, options.grid_y);
  const std::vector<double> la_cdf =
      distribution == SpatialDistribution::kLosAngeles
          ? BuildLaCdf(options.grid_x, options.grid_y)
          : std::vector<double>{};

  // Day-to-day weather: a global AR(1) log-factor shared by everyone plus a
  // per-quadrant regional deviation (cold snaps drive heating). Because the
  // factor is shared within a region, it survives spatial aggregation and
  // gives pillar series realistic high-frequency temporal content.
  const int num_days = CeilDiv(options.hours, 24);
  const double weather_rho = 0.7;
  const double weather_sigma = 0.16;
  const double regional_sigma = 0.07;
  std::vector<double> weather_global(num_days);
  std::vector<std::vector<double>> weather_region(4, std::vector<double>(num_days));
  {
    double g = rng.Gaussian(0.0, weather_sigma);
    std::vector<double> r(4);
    for (auto& v : r) v = rng.Gaussian(0.0, regional_sigma);
    const double g_innov = weather_sigma * std::sqrt(1.0 - weather_rho * weather_rho);
    const double r_innov = regional_sigma * std::sqrt(1.0 - weather_rho * weather_rho);
    for (int d = 0; d < num_days; ++d) {
      g = weather_rho * g + rng.Gaussian(0.0, g_innov);
      weather_global[d] = g;
      for (int q = 0; q < 4; ++q) {
        r[q] = weather_rho * r[q] + rng.Gaussian(0.0, r_innov);
        weather_region[q][d] = r[q];
      }
    }
  }
  auto quadrant = [&](int cx, int cy) {
    return (cx >= options.grid_x / 2 ? 2 : 0) + (cy >= options.grid_y / 2 ? 1 : 0);
  };
  // Scale compensation so the weather factor is mean-one.
  const double e_weather = std::exp((weather_sigma * weather_sigma +
                                     regional_sigma * regional_sigma) /
                                    2.0);

  // Heavy-tail calibration. Readings are modelled as
  //   x = scale * household_factor * daily * weekly * exp(ar1) * spike
  // with lognormal household_factor and AR(1) lognormal noise; the spike
  // term occasionally multiplies by a large draw (appliance bursts), which
  // produces the paper's max >> mean + several std. `scale` is solved so the
  // expected value matches spec.mean_kwh.
  const double sigma_house = 0.55;
  const double sigma_noise = 0.80;
  const double ar1 = 0.7;
  const double spike_prob = 0.012;
  const double spike_mu = 1.6;     // lognormal location of spike multiplier
  const double spike_sigma = 0.5;
  // E[exp(N(0, s^2))] = exp(s^2 / 2); stationary AR(1) variance below.
  const double stat_noise_var =
      sigma_noise * sigma_noise / (1.0 - ar1 * ar1) * (1.0 - ar1 * ar1);
  const double e_house = std::exp(sigma_house * sigma_house / 2.0);
  const double e_noise = std::exp(stat_noise_var / 2.0);
  const double e_spike =
      1.0 - spike_prob + spike_prob * std::exp(spike_mu + spike_sigma * spike_sigma / 2.0);
  const double scale = spec.mean_kwh / (e_house * e_noise * e_spike);

  for (auto& house : ds.households) {
    PlaceHousehold(distribution, options.grid_x, options.grid_y, center_x, center_y,
                   la_cdf, rng, &house.cell_x, &house.cell_y);
    const double house_factor = rng.LogNormal(0.0, sigma_house);
    // Random phase so households do not all peak in the same hour.
    const int phase = static_cast<int>(rng.UniformInt(0, 2)) - 1;
    house.series.resize(options.hours);
    double noise_state = rng.Gaussian(0.0, sigma_noise);
    for (int t = 0; t < options.hours; ++t) {
      const int hour_of_day = ((t + phase) % 24 + 24) % 24;
      const int day_of_week = (t / 24) % 7;
      noise_state = ar1 * noise_state +
                    rng.Gaussian(0.0, sigma_noise * std::sqrt(1.0 - ar1 * ar1));
      const int day = t / 24;
      const double weather =
          std::exp(weather_global[day] + weather_region[quadrant(house.cell_x,
                                                                 house.cell_y)][day]) /
          e_weather;
      double x = scale * house_factor * DailyProfile(hour_of_day) *
                 WeekdayFactor(day_of_week) * weather * std::exp(noise_state);
      if (rng.Bernoulli(spike_prob)) x *= rng.LogNormal(spike_mu, spike_sigma);
      house.series[t] = std::min(x, spec.max_kwh);
    }
  }
  return ds;
}

StatusOr<grid::ConsumptionMatrix> BuildConsumptionMatrix(
    const SyntheticDataset& dataset, int hours_per_slice) {
  if (hours_per_slice <= 0) {
    return Status::InvalidArgument("BuildConsumptionMatrix: granularity must be > 0");
  }
  if (dataset.hours % hours_per_slice != 0) {
    return Status::InvalidArgument(
        "BuildConsumptionMatrix: hours must be divisible by hours_per_slice");
  }
  const int ct = dataset.hours / hours_per_slice;
  auto matrix_or =
      grid::ConsumptionMatrix::Create({dataset.grid_x, dataset.grid_y, ct});
  STPT_RETURN_IF_ERROR(matrix_or.status());
  grid::ConsumptionMatrix matrix = std::move(matrix_or).value();
  const double clip = dataset.spec.clip_factor;
  for (const auto& house : dataset.households) {
    for (int t = 0; t < dataset.hours; ++t) {
      matrix.add(house.cell_x, house.cell_y, t / hours_per_slice,
                 std::min(house.series[t], clip));
    }
  }
  return matrix;
}

double UnitSensitivity(const DatasetSpec& spec, int hours_per_slice) {
  return spec.clip_factor * static_cast<double>(hours_per_slice);
}

DatasetStats ComputeStats(const SyntheticDataset& dataset) {
  const std::vector<double> all = dataset.AllReadings();
  DatasetStats s;
  s.mean = Mean(all);
  s.stddev = StdDev(all);
  s.max = Max(all);
  return s;
}

std::vector<double> WeekdayTotals(const SyntheticDataset& dataset) {
  std::vector<double> totals(7, 0.0);
  for (const auto& house : dataset.households) {
    for (int t = 0; t < dataset.hours; ++t) {
      totals[(t / 24) % 7] += house.series[t];
    }
  }
  return totals;
}

}  // namespace stpt::datagen
