#include "exec/parallel.h"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <optional>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace stpt::exec {
namespace {

/// Pool instrumentation, resolved once from the global registry. Counting
/// happens outside the worker tasks so it cannot perturb the deterministic
/// fork-by-index execution order.
obs::Counter& InlineRegions() {
  static obs::Counter* c = obs::Registry::Global().GetCounter(
      "stpt_exec_regions_inline_total",
      "Parallel regions executed inline on the calling thread");
  return *c;
}

obs::Counter& DispatchedRegions() {
  static obs::Counter* c = obs::Registry::Global().GetCounter(
      "stpt_exec_regions_dispatched_total",
      "Parallel regions dispatched to the worker pool");
  return *c;
}

obs::Histogram& RegionNs() {
  static obs::Histogram* h = obs::Registry::Global().GetHistogram(
      "stpt_exec_region_ns", "Wall time of pool-dispatched parallel regions",
      obs::LatencyBucketsNs());
  return *h;
}

/// Synchronisation state for one blocking parallel region.
struct Region {
  std::mutex mu;
  std::condition_variable done_cv;
  int pending = 0;
  std::exception_ptr first_error;

  void Finish(std::exception_ptr err) {
    std::lock_guard<std::mutex> lock(mu);
    if (err && !first_error) first_error = err;
    if (--pending == 0) done_cv.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [this] { return pending == 0; });
    if (first_error) std::rethrow_exception(first_error);
  }
};

}  // namespace

void ParallelForRange(int64_t n,
                      const std::function<void(int64_t, int64_t)>& fn) {
  if (n <= 0) return;
  const int threads = Threads();
  if (threads <= 1 || n < kParallelForMinWork || ThreadPool::InWorker()) {
    InlineRegions().Increment();
    fn(0, n);
    return;
  }
  DispatchedRegions().Increment();
  const uint64_t region_start_ns = obs::NowNanos();
  // Chunk label for event tracing: the span enclosing the dispatch (e.g.
  // "stpt/sanitize"), captured once here so workers tag their lanes with the
  // region they execute on behalf of. nullptr when tracing is off — the
  // per-chunk emit below then compiles down to two untaken branches.
  const char* trace_label = nullptr;
  if (obs::TraceEventsEnabled()) {
    trace_label = obs::CurrentSpanName();
    if (trace_label == nullptr) trace_label = "exec/chunk";
  }
  // Same capture-at-dispatch discipline for the request trace context: the
  // dispatching thread's active context (if any) is re-established on every
  // worker lane, so code inside the chunks can still name its trace. A
  // 32-byte copy when a traced request is running, nothing otherwise.
  const obs::TraceContext* active_ctx = obs::CurrentTraceContext();
  const obs::TraceContext trace_ctx =
      active_ctx != nullptr ? *active_ctx : obs::TraceContext{};
  const int64_t num_chunks = n < threads ? n : threads;
  const int64_t base = n / num_chunks;
  const int64_t rem = n % num_chunks;

  ThreadPool& pool = GlobalPool();
  Region region;
  region.pending = static_cast<int>(num_chunks);
  int64_t begin = 0;
  for (int64_t c = 0; c < num_chunks; ++c) {
    const int64_t len = base + (c < rem ? 1 : 0);
    const int64_t end = begin + len;
    pool.Submit([&fn, &region, begin, end, trace_label, trace_ctx] {
      // Raw B/E events (not a Span): chunks are already aggregated into
      // stpt_exec_region_ns by the dispatcher, so a Span here would
      // double-count the region in the profile.
      if (trace_label != nullptr) {
        obs::EmitTraceEvent('B', trace_label, obs::NowNanos());
      }
      std::optional<obs::ScopedTraceContext> scoped_ctx;
      if (trace_ctx.valid()) scoped_ctx.emplace(trace_ctx);
      std::exception_ptr err;
      try {
        fn(begin, end);
      } catch (...) {
        err = std::current_exception();
      }
      if (trace_label != nullptr) {
        obs::EmitTraceEvent('E', trace_label, obs::NowNanos());
      }
      region.Finish(err);
    });
    begin = end;
  }
  region.Wait();
  RegionNs().Observe(static_cast<double>(obs::NowNanos() - region_start_ns));
}

void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn) {
  ParallelForRange(n, [&fn](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace stpt::exec
