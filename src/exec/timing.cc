#include "exec/timing.h"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <map>
#include <mutex>
#include <sstream>

#include "exec/thread_pool.h"

namespace stpt::exec {
namespace {

struct Accumulator {
  uint64_t calls = 0;
  uint64_t total_ns = 0;
};

std::mutex g_mu;
// std::map keeps the profile output stable across runs.
std::map<std::string, Accumulator>& Registry() {
  static auto* registry = new std::map<std::string, Accumulator>();
  return *registry;
}

}  // namespace

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ScopedTimer::ScopedTimer(const char* region)
    : region_(region), start_ns_(NowNanos()) {}

ScopedTimer::~ScopedTimer() {
  const uint64_t ns = NowNanos() - start_ns_;
  std::lock_guard<std::mutex> lock(g_mu);
  Accumulator& acc = Registry()[region_];
  ++acc.calls;
  acc.total_ns += ns;
}

std::vector<TimingEntry> TimingProfile() {
  std::vector<TimingEntry> out;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    out.reserve(Registry().size());
    for (const auto& [name, acc] : Registry()) {
      out.push_back({name, acc.calls, acc.total_ns});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TimingEntry& a, const TimingEntry& b) {
                     return a.total_ns > b.total_ns;
                   });
  return out;
}

void ResetTimings() {
  std::lock_guard<std::mutex> lock(g_mu);
  Registry().clear();
}

void PrintTimings(std::ostream& os) {
  const auto profile = TimingProfile();
  os << "--- exec timing profile (" << Threads() << " threads) ---\n";
  for (const auto& e : profile) {
    const double ms = static_cast<double>(e.total_ns) * 1e-6;
    const double mean_us =
        e.calls == 0 ? 0.0
                     : static_cast<double>(e.total_ns) / e.calls * 1e-3;
    os << "  " << std::left << std::setw(28) << e.region << std::right
       << std::setw(10) << e.calls << " calls" << std::setw(12) << std::fixed
       << std::setprecision(2) << ms << " ms total" << std::setw(12)
       << mean_us << " us/call\n";
  }
}

std::string TimingsJson() {
  std::ostringstream os;
  os << "{\"threads\": " << Threads() << ", \"regions\": [";
  bool first = true;
  for (const auto& e : TimingProfile()) {
    if (!first) os << ", ";
    first = false;
    const uint64_t mean_ns = e.calls == 0 ? 0 : e.total_ns / e.calls;
    os << "{\"region\": \"" << e.region << "\", \"calls\": " << e.calls
       << ", \"total_ns\": " << e.total_ns << ", \"mean_ns\": " << mean_ns
       << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace stpt::exec
