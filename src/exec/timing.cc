#include "exec/timing.h"

#include <iomanip>
#include <sstream>

#include "exec/thread_pool.h"
#include "obs/metrics.h"

namespace stpt::exec {

std::vector<TimingEntry> TimingProfile() { return obs::TraceProfile(); }

void ResetTimings() { obs::ResetTrace(); }

void PrintTimings(std::ostream& os) {
  const auto profile = TimingProfile();
  os << "--- exec timing profile (" << Threads() << " threads) ---\n";
  for (const auto& e : profile) {
    const double ms = static_cast<double>(e.total_ns) * 1e-6;
    const double mean_us =
        e.calls == 0 ? 0.0
                     : static_cast<double>(e.total_ns) / e.calls * 1e-3;
    os << "  " << std::left << std::setw(28) << e.region << std::right
       << std::setw(10) << e.calls << " calls" << std::setw(12) << std::fixed
       << std::setprecision(2) << ms << " ms total" << std::setw(12)
       << mean_us << " us/call\n";
  }
}

std::string TimingsJson() {
  std::ostringstream os;
  os << "{\"threads\": " << Threads() << ", \"regions\": [";
  bool first = true;
  for (const auto& e : TimingProfile()) {
    if (!first) os << ", ";
    first = false;
    const uint64_t mean_ns = e.calls == 0 ? 0 : e.total_ns / e.calls;
    os << "{\"region\": \"" << e.region << "\", \"calls\": " << e.calls
       << ", \"total_ns\": " << e.total_ns << ", \"mean_ns\": " << mean_ns
       << "}";
  }
  os << "]}";
  return os.str();
}

std::string MetricsSnapshotJson() {
  std::string out = "{\"metrics\": ";
  out += obs::Registry::Global().ToJson();
  out += ", \"profile\": ";
  out += TimingsJson();
  out += "}";
  return out;
}

}  // namespace stpt::exec
