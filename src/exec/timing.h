#ifndef STPT_EXEC_TIMING_H_
#define STPT_EXEC_TIMING_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace stpt::exec {

/// Aggregated wall-clock statistics for one named region.
struct TimingEntry {
  std::string region;
  uint64_t calls = 0;
  uint64_t total_ns = 0;
};

/// Monotonic wall clock in nanoseconds (steady_clock). The single time
/// source for all latency measurement in the library: ScopedTimer below,
/// the serve-layer latency histograms, and the bench load generators all
/// read this clock, so their numbers are directly comparable.
uint64_t NowNanos();

/// RAII per-region wall-clock timer. On destruction the elapsed time is
/// added to a process-wide profile keyed by region name. Thread-safe;
/// overhead is one clock read + one mutexed map update per region exit, so
/// instrument phases (training, sanitization, sweeps), not inner loops.
///
///   {
///     exec::ScopedTimer timer("stpt/pattern");
///     ...  // phase body
///   }
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* region);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* region_;
  uint64_t start_ns_;
};

/// Snapshot of the aggregated profile, sorted by descending total time.
std::vector<TimingEntry> TimingProfile();

/// Clears all accumulated timings.
void ResetTimings();

/// Human-readable profile table (one line per region).
void PrintTimings(std::ostream& os);

/// The profile as a JSON object:
///   {"threads": N, "regions": [{"region": ..., "calls": ..., "total_ns":
///   ..., "mean_ns": ...}, ...]}
std::string TimingsJson();

}  // namespace stpt::exec

#endif  // STPT_EXEC_TIMING_H_
