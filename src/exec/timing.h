#ifndef STPT_EXEC_TIMING_H_
#define STPT_EXEC_TIMING_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace stpt::exec {

/// Region timing now lives in stpt::obs (see obs/trace.h): obs::Span is the
/// RAII primitive and the process-wide profile store is obs::RecordRegion /
/// obs::TraceProfile. This header keeps the original exec-layer names as
/// aliases and thin wrappers so existing call sites — and the pool-size
/// context that only exec knows — continue to work unchanged.

/// Aggregated wall-clock statistics for one named region.
using TimingEntry = obs::RegionEntry;

/// Monotonic wall clock in nanoseconds (steady_clock); alias of
/// obs::NowNanos, the single time source for all latency measurement.
inline uint64_t NowNanos() { return obs::NowNanos(); }

/// RAII per-region wall-clock timer; alias of obs::Span. On destruction the
/// elapsed time is added to the process-wide trace profile (and, if a
/// histogram handle was passed, observed into that metric).
///
///   {
///     exec::ScopedTimer timer("stpt/pattern");
///     ...  // phase body
///   }
using ScopedTimer = obs::Span;

/// Snapshot of the aggregated profile, sorted by descending total time.
std::vector<TimingEntry> TimingProfile();

/// Clears all accumulated timings.
void ResetTimings();

/// Human-readable profile table (one line per region).
void PrintTimings(std::ostream& os);

/// The profile as a JSON object:
///   {"threads": N, "regions": [{"region": ..., "calls": ..., "total_ns":
///   ..., "mean_ns": ...}, ...]}
std::string TimingsJson();

/// The full observability snapshot written by --metrics=<path>:
///   {"metrics": <obs::Registry::Global().ToJson()>, "profile": <TimingsJson()>}
/// Combining both in one document keeps counters/gauges/histograms and the
/// aggregated trace-region profile in a single artifact per run.
std::string MetricsSnapshotJson();

}  // namespace stpt::exec

#endif  // STPT_EXEC_TIMING_H_
