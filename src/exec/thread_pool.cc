#include "exec/thread_pool.h"

#include <cstdlib>
#include <memory>
#include <string>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace stpt::exec {
namespace {

thread_local bool t_in_worker = false;

obs::Counter& TasksSubmitted() {
  static obs::Counter* c = obs::Registry::Global().GetCounter(
      "stpt_exec_tasks_total", "Tasks submitted to the exec worker pool");
  return *c;
}

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int ResolveDefaultThreads() {
  if (const char* env = std::getenv("STPT_THREADS")) {
    const int v = ParseThreadsValue(env);
    if (v > 0) return v;
    obs::Log(obs::LogLevel::kWarn, "exec",
             "ignoring invalid STPT_THREADS, using hardware default",
             {{"value", env}, {"default", std::to_string(HardwareThreads())}});
  }
  return HardwareThreads();
}

std::mutex g_runtime_mu;
int g_threads = 0;  // 0 = not yet resolved
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

int ParseThreadsValue(const char* text) {
  // A bare strtol silently accepted "4abc", negatives wrapped through the
  // int cast, and values far beyond any plausible core count. Require a
  // pure bounded decimal instead.
  if (text == nullptr || *text == '\0') return 0;
  long v = 0;
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;
    v = v * 10 + (*p - '0');
    if (v > kMaxThreads) return 0;
  }
  return v >= 1 ? static_cast<int>(v) : 0;
}

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers < 1) num_workers = 1;
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  TasksSubmitted().Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::InWorker() { return t_in_worker; }

void ThreadPool::WorkerLoop(int index) {
  t_in_worker = true;
  // Name the lane so Chrome-trace exports render parallel regions per worker.
  obs::RegisterCurrentThreadName("stpt-worker-" + std::to_string(index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int Threads() {
  std::lock_guard<std::mutex> lock(g_runtime_mu);
  if (g_threads == 0) g_threads = ResolveDefaultThreads();
  return g_threads;
}

void SetThreads(int n) {
  std::lock_guard<std::mutex> lock(g_runtime_mu);
  g_pool.reset();  // workers join; safe because no region is in flight
  g_threads = n >= 1 ? n : ResolveDefaultThreads();
}

ThreadPool& GlobalPool() {
  std::lock_guard<std::mutex> lock(g_runtime_mu);
  if (g_threads == 0) g_threads = ResolveDefaultThreads();
  if (g_pool == nullptr) g_pool = std::make_unique<ThreadPool>(g_threads);
  return *g_pool;
}

}  // namespace stpt::exec
