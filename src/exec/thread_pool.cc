#include "exec/thread_pool.h"

#include <cstdlib>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace stpt::exec {
namespace {

thread_local bool t_in_worker = false;

obs::Counter& TasksSubmitted() {
  static obs::Counter* c = obs::Registry::Global().GetCounter(
      "stpt_exec_tasks_total", "Tasks submitted to the exec worker pool");
  return *c;
}

int ResolveDefaultThreads() {
  if (const char* env = std::getenv("STPT_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && v >= 1) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::mutex g_runtime_mu;
int g_threads = 0;  // 0 = not yet resolved
std::unique_ptr<ThreadPool> g_pool;

}  // namespace

ThreadPool::ThreadPool(int num_workers) {
  if (num_workers < 1) num_workers = 1;
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  TasksSubmitted().Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::InWorker() { return t_in_worker; }

void ThreadPool::WorkerLoop(int index) {
  t_in_worker = true;
  // Name the lane so Chrome-trace exports render parallel regions per worker.
  obs::RegisterCurrentThreadName("stpt-worker-" + std::to_string(index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

int Threads() {
  std::lock_guard<std::mutex> lock(g_runtime_mu);
  if (g_threads == 0) g_threads = ResolveDefaultThreads();
  return g_threads;
}

void SetThreads(int n) {
  std::lock_guard<std::mutex> lock(g_runtime_mu);
  g_pool.reset();  // workers join; safe because no region is in flight
  g_threads = n >= 1 ? n : ResolveDefaultThreads();
}

ThreadPool& GlobalPool() {
  std::lock_guard<std::mutex> lock(g_runtime_mu);
  if (g_threads == 0) g_threads = ResolveDefaultThreads();
  if (g_pool == nullptr) g_pool = std::make_unique<ThreadPool>(g_threads);
  return *g_pool;
}

}  // namespace stpt::exec
