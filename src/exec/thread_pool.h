#ifndef STPT_EXEC_THREAD_POOL_H_
#define STPT_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stpt::exec {

/// A persistent fixed-size worker pool. Tasks are arbitrary closures; the
/// pool makes no ordering guarantees between tasks, so all determinism in
/// the library comes from how work is *partitioned* (see parallel.h), never
/// from execution order.
///
/// The pool is an implementation detail of ParallelFor; library code should
/// not normally talk to it directly.
class ThreadPool {
 public:
  /// Spawns `num_workers` worker threads (>= 1).
  explicit ThreadPool(int num_workers);

  /// Drains outstanding tasks and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task. The task runs on some worker thread at an unspecified
  /// time; use your own synchronisation to wait for completion.
  void Submit(std::function<void()> task);

  /// True when the calling thread is one of this pool's workers. Used by
  /// ParallelFor to run nested parallel regions inline instead of
  /// deadlocking on the pool's own queue.
  static bool InWorker();

 private:
  void WorkerLoop(int index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// --- Global execution runtime -------------------------------------------

/// Number of worker threads the runtime is configured to use. Resolution
/// order: SetThreads() if called, else the STPT_THREADS environment
/// variable, else std::thread::hardware_concurrency(). Always >= 1;
/// 1 means fully serial (no pool is ever created).
int Threads();

/// Upper bound accepted from STPT_THREADS / SetThreads resolution.
inline constexpr int kMaxThreads = 4096;

/// Strictly parses a STPT_THREADS-style override: a bare decimal integer in
/// [1, kMaxThreads], no sign, no whitespace, no trailing junk. Returns the
/// parsed value, or 0 when `text` is null or invalid (the runtime then logs
/// a warning and falls back to the hardware default).
int ParseThreadsValue(const char* text);

/// Reconfigures the runtime worker count. n <= 0 restores the default
/// (env / hardware) resolution. Destroys and recreates the global pool;
/// must not be called from inside a parallel region.
void SetThreads(int n);

/// The process-wide pool, created lazily with Threads() workers.
/// Precondition: Threads() > 1 (serial mode never needs a pool).
ThreadPool& GlobalPool();

}  // namespace stpt::exec

#endif  // STPT_EXEC_THREAD_POOL_H_
