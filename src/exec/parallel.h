#ifndef STPT_EXEC_PARALLEL_H_
#define STPT_EXEC_PARALLEL_H_

#include <cstdint>
#include <functional>

namespace stpt::exec {

/// Blocking parallel loop over [0, n) with *static* chunking: the index
/// range is split into at most Threads() contiguous chunks, fixed up front.
/// Each index is visited exactly once, by exactly one task.
///
/// Determinism contract: the partition depends only on n and the worker
/// count, and ParallelFor guarantees that per-index work observes no
/// cross-index state, so any computation whose per-index body is a pure
/// function of (shared inputs, index) produces bit-identical results at
/// every thread count — including 1. Never share an Rng across indices;
/// fork one per index (Rng::Fork(stream) const) instead.
///
/// Runs inline (serially) when Threads() == 1, when n is too small to be
/// worth dispatching, or when called from inside another parallel region
/// (nested regions do not deadlock; they serialise).
///
/// If any invocation throws, the first exception is rethrown on the caller
/// after all chunks finish; remaining chunks still run (indices are never
/// silently skipped mid-chunk on *other* tasks).
void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

/// Chunk-granular variant: fn(begin, end) is called once per contiguous
/// chunk. Prefer this for tight loops where a per-index std::function call
/// would dominate (e.g. matrix kernels).
void ParallelForRange(int64_t n,
                      const std::function<void(int64_t, int64_t)>& fn);

/// Minimum n below which ParallelFor always runs inline.
inline constexpr int64_t kParallelForMinWork = 2;

}  // namespace stpt::exec

#endif  // STPT_EXEC_PARALLEL_H_
