#include "baselines/wavelet_pub.h"

#include <algorithm>
#include <cmath>

#include "kernels/backend.h"
#include "signal/wavelet.h"

namespace stpt::baselines {

StatusOr<grid::ConsumptionMatrix> WaveletPublisher::Publish(
    const grid::ConsumptionMatrix& cons, double epsilon, double unit_sensitivity,
    Rng& rng) {
  if (k_ <= 0) return Status::InvalidArgument("WaveletPublisher: k must be positive");
  const grid::Dims& dims = cons.dims();
  const int n = dims.ct;

  auto out_or = grid::ConsumptionMatrix::Create(dims);
  STPT_RETURN_IF_ERROR(out_or.status());
  grid::ConsumptionMatrix out = std::move(out_or).value();

  for (int x = 0; x < dims.cx; ++x) {
    for (int y = 0; y < dims.cy; ++y) {
      const std::vector<double> padded = signal::PadToPowerOfTwo(cons.Pillar(x, y));
      const int padded_n = static_cast<int>(padded.size());
      const int k = std::min(k_, padded_n);
      // The orthonormal Haar transform preserves the L2 norm, so the L2
      // sensitivity in the wavelet domain equals the time-domain one:
      // sqrt(Ct) * unit_sensitivity (user-level). Same calibration as FPA.
      const double delta2 = std::sqrt(static_cast<double>(n)) * unit_sensitivity;
      const double lambda = std::sqrt(static_cast<double>(k)) * delta2 / epsilon;

      auto coeffs_or = kernels::Default()->HaarForward(padded);
      STPT_RETURN_IF_ERROR(coeffs_or.status());
      std::vector<double> coeffs = std::move(coeffs_or).value();
      for (int j = 0; j < padded_n; ++j) {
        coeffs[j] = j < k ? coeffs[j] + rng.Laplace(lambda) : 0.0;
      }
      auto inv_or = kernels::Default()->HaarInverse(coeffs);
      STPT_RETURN_IF_ERROR(inv_or.status());
      std::vector<double> series = std::move(inv_or).value();
      series.resize(n);
      STPT_RETURN_IF_ERROR(out.SetPillar(x, y, series));
    }
  }
  return out;
}

}  // namespace stpt::baselines
