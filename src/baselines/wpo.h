#ifndef STPT_BASELINES_WPO_H_
#define STPT_BASELINES_WPO_H_

#include "baselines/publisher.h"

namespace stpt::baselines {

/// WPO — Wind Power Obfuscation (Dvorkin & Botterud, 2023).
///
/// The original sanitizes a power time series with the Laplace mechanism and
/// solves a convex program for regression weights that keep the synthetic
/// data consistent with optimal-power-flow constraints. It provides
/// *event-level* privacy and uses no geospatial information.
///
/// This reproduction preserves exactly those two properties (which drive the
/// Fig. 7 result):
///  1. user-level deployment forces the budget to be split across all Ct
///     timestamps of the *global* consumption series, which is sanitized
///     with Laplace noise;
///  2. the convex program is a ridge regression of the noisy series onto a
///     truncated Fourier basis (closed-form optimum) with a non-negativity
///     projection — a smooth, OPF-style feasible series;
///  3. the smooth global series is distributed uniformly over space
///     (geospatially blind).
class WpoPublisher : public Publisher {
 public:
  struct Options {
    int basis_order = 8;        ///< Fourier regression harmonics
    double ridge_lambda = 1e-3; ///< regularisation weight
  };

  WpoPublisher() = default;
  explicit WpoPublisher(const Options& options) : options_(options) {}

  std::string name() const override { return "WPO"; }

  StatusOr<grid::ConsumptionMatrix> Publish(const grid::ConsumptionMatrix& cons,
                                            double epsilon, double unit_sensitivity,
                                            Rng& rng) override;

 private:
  Options options_;
};

/// Solves the ridge-regression normal equations (A^T A + λI) w = A^T y for a
/// column-major design matrix A [n x m]. Exposed for testing. Uses Cholesky
/// decomposition; the system is SPD for λ > 0.
StatusOr<std::vector<double>> SolveRidge(const std::vector<std::vector<double>>& basis,
                                         const std::vector<double>& y, double lambda);

}  // namespace stpt::baselines

#endif  // STPT_BASELINES_WPO_H_
