#include "baselines/fourier.h"

#include <algorithm>
#include <cmath>
#include <complex>

#include "signal/fft.h"

namespace stpt::baselines {

StatusOr<grid::ConsumptionMatrix> FourierPublisher::Publish(
    const grid::ConsumptionMatrix& cons, double epsilon, double unit_sensitivity,
    Rng& rng) {
  if (k_ <= 0) return Status::InvalidArgument("FourierPublisher: k must be positive");
  const grid::Dims& dims = cons.dims();
  const int n = dims.ct;
  const int k = std::min(k_, n);

  // FPA noise calibration (Rastogi & Nath 2010, with the sensitivity
  // correction of Leukam Lako et al. 2021). Under user-level privacy one
  // household can shift every slice of its pillar by unit_sensitivity, so
  // the time-domain L2 sensitivity is sqrt(Ct) * unit. The *unnormalized*
  // DFT used here scales L2 norms by sqrt(Ct), so the released coefficient
  // vector (2k real coordinates: re/im of the k kept frequencies) has
  //   Delta_2 = Ct * unit,  Delta_1 <= sqrt(2k) * Delta_2,
  // and each coordinate is perturbed with Lap(Delta_1 / epsilon).
  const double delta2 = static_cast<double>(n) * unit_sensitivity;
  const double lambda = std::sqrt(2.0 * k) * delta2 / epsilon;

  auto out_or = grid::ConsumptionMatrix::Create(dims);
  STPT_RETURN_IF_ERROR(out_or.status());
  grid::ConsumptionMatrix out = std::move(out_or).value();

  for (int x = 0; x < dims.cx; ++x) {
    for (int y = 0; y < dims.cy; ++y) {
      std::vector<std::complex<double>> coeffs = signal::RealDft(cons.Pillar(x, y));
      // Retain the k lowest frequencies (DC plus the slowest oscillations),
      // perturb, zero the rest, and mirror for a real-valued inverse.
      std::vector<std::complex<double>> kept(n, {0.0, 0.0});
      const int half = n / 2;
      const int keep = std::min(k, half + 1);
      for (int j = 0; j < keep; ++j) {
        const double re = coeffs[j].real() + rng.Laplace(lambda);
        // Coefficient 0 (and n/2 for even n) are real-valued.
        const bool self_conjugate = (j == 0) || (n % 2 == 0 && j == half);
        const double im = self_conjugate ? 0.0 : coeffs[j].imag() + rng.Laplace(lambda);
        kept[j] = {re, im};
        if (!self_conjugate) kept[n - j] = std::conj(kept[j]);
      }
      STPT_RETURN_IF_ERROR(out.SetPillar(x, y, signal::InverseDftReal(kept)));
    }
  }
  return out;
}

}  // namespace stpt::baselines
