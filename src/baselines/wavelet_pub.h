#ifndef STPT_BASELINES_WAVELET_PUB_H_
#define STPT_BASELINES_WAVELET_PUB_H_

#include "baselines/publisher.h"

namespace stpt::baselines {

/// Wavelet Perturbation Algorithm (Lyu et al., 2017): like FPA but in the
/// discrete Haar wavelet domain, applied per spatial pillar. The k coarsest
/// coefficients (pyramid order: approximation first) are retained and
/// perturbed; the rest are zeroed before inverting. The series is
/// zero-padded to a power of two for the transform and truncated back.
class WaveletPublisher : public Publisher {
 public:
  /// k = number of retained coefficients (paper: 10 and 20).
  explicit WaveletPublisher(int k) : k_(k) {}

  std::string name() const override { return "Wavelet-" + std::to_string(k_); }

  StatusOr<grid::ConsumptionMatrix> Publish(const grid::ConsumptionMatrix& cons,
                                            double epsilon, double unit_sensitivity,
                                            Rng& rng) override;

  int k() const { return k_; }

 private:
  int k_;
};

}  // namespace stpt::baselines

#endif  // STPT_BASELINES_WAVELET_PUB_H_
