#include "baselines/lgan_dp.h"

#include <algorithm>
#include <cmath>

#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/ops.h"

namespace stpt::baselines {
namespace {

using nn::Tensor;

/// LSTM sequence scorer/regressor: runs an LstmCell over [b, s, 1] inputs
/// and maps the last hidden state through a linear head to one output.
class LstmHead {
 public:
  LstmHead(int hidden, Rng& rng) : cell_(1, hidden, rng), head_(hidden, 1, rng) {}

  Tensor Forward(const Tensor& seq) {  // [b, s, 1] -> [b, 1]
    const int batch = seq.shape()[0];
    const int steps = seq.shape()[1];
    nn::LstmState state = cell_.ZeroState(batch);
    for (int t = 0; t < steps; ++t) {
      state = cell_.Forward(nn::SliceSeq(seq, t), state);
    }
    return head_.Forward(state.h);
  }

  std::vector<Tensor> Parameters() {
    std::vector<Tensor> params = cell_.Parameters();
    for (const Tensor& p : head_.Parameters()) params.push_back(p);
    return params;
  }

 private:
  nn::LstmCell cell_;
  nn::Linear head_;
};

/// Clips the global gradient norm to `clip` then adds Laplace(noise_scale)
/// to every gradient coordinate — the noisy-objective DP step of LGAN-DP.
void ClipAndPerturbGradients(std::vector<Tensor>& params, double clip,
                             double noise_scale, Rng& rng) {
  double sq = 0.0;
  for (Tensor& p : params) {
    for (double g : p.grad()) sq += g * g;
  }
  const double norm = std::sqrt(sq);
  const double scale = norm > clip && norm > 0.0 ? clip / norm : 1.0;
  for (Tensor& p : params) {
    for (double& g : p.grad()) g = g * scale + rng.Laplace(noise_scale);
  }
}

Tensor BatchToTensor(const std::vector<std::vector<double>>& windows,
                     const std::vector<size_t>& idx, Rng& rng, int batch, int len) {
  std::vector<double> flat(static_cast<size_t>(batch) * len);
  for (int b = 0; b < batch; ++b) {
    const auto& w = windows[idx[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(idx.size()) - 1))]];
    std::copy(w.begin(), w.end(), flat.begin() + static_cast<size_t>(b) * len);
  }
  return Tensor::FromVector({batch, len, 1}, flat);
}

}  // namespace

StatusOr<grid::ConsumptionMatrix> LganDpPublisher::Publish(
    const grid::ConsumptionMatrix& cons, double epsilon, double unit_sensitivity,
    Rng& rng) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("LganDpPublisher: epsilon must be > 0");
  }
  const grid::Dims& dims = cons.dims();
  const int ws = options_.window_size;
  if (dims.ct <= ws) {
    return Status::InvalidArgument("LganDpPublisher: ct must exceed window size");
  }

  // Work in globally normalised units (paper Eq. 6 convention).
  const double lo = cons.MinValue();
  const double hi = cons.MaxValue();
  const double range = std::max(hi - lo, 1e-12);
  const grid::ConsumptionMatrix norm = cons.Normalized();
  const double sens_norm = unit_sensitivity / range;

  const double eps_train = epsilon * options_.train_budget_fraction;
  const double eps_seed = epsilon - eps_train;

  // --- Collect (window ++ next) training sequences from all pillars. ---
  std::vector<std::vector<double>> real_seqs;  // length ws + 1
  for (int x = 0; x < dims.cx; ++x) {
    for (int y = 0; y < dims.cy; ++y) {
      const std::vector<double> pillar = norm.Pillar(x, y);
      for (int t = 0; t + ws < dims.ct; ++t) {
        real_seqs.emplace_back(pillar.begin() + t, pillar.begin() + t + ws + 1);
      }
    }
  }
  // Deterministic subsample for tractability.
  if (real_seqs.size() > options_.max_training_windows) {
    std::vector<std::vector<double>> sampled;
    sampled.reserve(options_.max_training_windows);
    const double stride =
        static_cast<double>(real_seqs.size()) / options_.max_training_windows;
    for (size_t i = 0; i < options_.max_training_windows; ++i) {
      sampled.push_back(real_seqs[static_cast<size_t>(i * stride)]);
    }
    real_seqs = std::move(sampled);
  }
  std::vector<size_t> all_idx(real_seqs.size());
  for (size_t i = 0; i < all_idx.size(); ++i) all_idx[i] = i;

  // --- Adversarial training with a noisy objective. ---
  // The training budget is split across iterations; each iteration's
  // gradient perturbation is calibrated to clip / eps_iter (the clipped
  // gradient plays the role of the bounded query).
  LstmHead generator(options_.hidden_size, rng);
  LstmHead discriminator(options_.hidden_size, rng);
  nn::RmsProp g_opt(generator.Parameters(), options_.learning_rate);
  nn::RmsProp d_opt(discriminator.Parameters(), options_.learning_rate);
  const double eps_iter =
      eps_train / static_cast<double>(std::max(1, options_.iterations));
  const double noise_scale = options_.grad_clip / eps_iter /
                             std::sqrt(static_cast<double>(options_.batch_size));

  const int batch = options_.batch_size;
  for (int iter = 0; iter < options_.iterations; ++iter) {
    // Real and fake continuation sequences.
    const Tensor real = BatchToTensor(real_seqs, all_idx, rng, batch, ws + 1);
    // Fake: window from data, continuation from the generator.
    const Tensor windows = BatchToTensor(real_seqs, all_idx, rng, batch, ws + 1);
    std::vector<double> window_flat(static_cast<size_t>(batch) * ws);
    for (int b = 0; b < batch; ++b) {
      for (int t = 0; t < ws; ++t) {
        window_flat[static_cast<size_t>(b) * ws + t] =
            windows.data()[(static_cast<size_t>(b) * (ws + 1)) + t];
      }
    }
    const Tensor window_only = Tensor::FromVector({batch, ws, 1}, window_flat);

    // --- Discriminator step (LSGAN): D(real) -> 1, D(fake) -> 0. ---
    {
      const Tensor gen_next = generator.Forward(window_only);  // [b,1]
      // Assemble fake sequence as constant data (detached from G).
      std::vector<double> fake_flat = window_flat;
      fake_flat.resize(static_cast<size_t>(batch) * (ws + 1));
      for (int b = batch - 1; b >= 0; --b) {
        for (int t = ws - 1; t >= 0; --t) {
          fake_flat[static_cast<size_t>(b) * (ws + 1) + t] =
              window_flat[static_cast<size_t>(b) * ws + t];
        }
        fake_flat[static_cast<size_t>(b) * (ws + 1) + ws] = gen_next.data()[b];
      }
      const Tensor fake = Tensor::FromVector({batch, ws + 1, 1}, fake_flat);
      auto d_params = discriminator.Parameters();
      for (Tensor& p : d_params) p.ZeroGrad();
      const Tensor ones = Tensor::Full({batch, 1}, 1.0);
      const Tensor zeros = Tensor::Zeros({batch, 1});
      Tensor d_loss = nn::Add(nn::MseLoss(discriminator.Forward(real), ones),
                              nn::MseLoss(discriminator.Forward(fake), zeros));
      d_loss.Backward();
      ClipAndPerturbGradients(d_params, options_.grad_clip, noise_scale, rng);
      d_opt.Step();
    }

    // --- Generator step: make D score the fake continuation as real. ---
    {
      auto g_params = generator.Parameters();
      for (Tensor& p : g_params) p.ZeroGrad();
      const Tensor gen_next = generator.Forward(window_only);  // [b,1] on tape
      // Build the fake sequence on-tape: stack window steps + generated step.
      std::vector<Tensor> steps;
      for (int t = 0; t < ws; ++t) steps.push_back(nn::SliceSeq(window_only, t));
      steps.push_back(gen_next);
      const Tensor fake = nn::StackSeq(steps);  // [b, ws+1, 1]
      const Tensor ones = Tensor::Full({batch, 1}, 1.0);
      Tensor g_loss = nn::MseLoss(discriminator.Forward(fake), ones);
      g_loss.Backward();
      ClipAndPerturbGradients(g_params, options_.grad_clip, noise_scale, rng);
      g_opt.Step();
    }
  }

  // --- Release: per-pillar seed (Laplace) + autoregressive roll-out. ---
  // Seeds compose in parallel across pillars (disjoint space) and
  // sequentially across the ws seed slices.
  const double eps_per_seed_slice = eps_seed / static_cast<double>(ws);
  auto out_or = grid::ConsumptionMatrix::Create(dims);
  STPT_RETURN_IF_ERROR(out_or.status());
  grid::ConsumptionMatrix out = std::move(out_or).value();

  const int num_pillars = dims.cx * dims.cy;
  std::vector<std::vector<double>> released(num_pillars,
                                            std::vector<double>(dims.ct, 0.0));
  for (int p = 0; p < num_pillars; ++p) {
    const std::vector<double> pillar = norm.Pillar(p / dims.cy, p % dims.cy);
    for (int t = 0; t < ws; ++t) {
      released[p][t] = pillar[t] + rng.Laplace(sens_norm / eps_per_seed_slice);
    }
  }
  // Roll all pillars forward in one batch per timestamp.
  for (int t = ws; t < dims.ct; ++t) {
    std::vector<double> flat(static_cast<size_t>(num_pillars) * ws);
    for (int p = 0; p < num_pillars; ++p) {
      std::copy(released[p].begin() + (t - ws), released[p].begin() + t,
                flat.begin() + static_cast<size_t>(p) * ws);
    }
    const Tensor win = Tensor::FromVector({num_pillars, ws, 1}, flat);
    const Tensor next = generator.Forward(win);  // [num_pillars, 1]
    for (int p = 0; p < num_pillars; ++p) {
      // Generated values estimate a min-max-normalised quantity; clamping to
      // [0, 1] is post-processing and keeps the roll-out from diverging.
      released[p][t] = std::clamp(next.data()[p], 0.0, 1.0);
    }
  }
  for (int p = 0; p < num_pillars; ++p) {
    for (double& v : released[p]) v = v * range + lo;  // de-normalise
    STPT_RETURN_IF_ERROR(out.SetPillar(p / dims.cy, p % dims.cy, released[p]));
  }
  return out;
}

}  // namespace stpt::baselines
