#include "baselines/fast.h"

#include <algorithm>
#include <cmath>

#include "dp/mechanisms.h"
#include "filter/kalman.h"

namespace stpt::baselines {

StatusOr<grid::ConsumptionMatrix> FastPublisher::Publish(
    const grid::ConsumptionMatrix& cons, double epsilon, double unit_sensitivity,
    Rng& rng) {
  const grid::Dims& dims = cons.dims();
  const int max_samples = std::max(
      1, static_cast<int>(std::ceil(options_.sample_fraction * dims.ct)));
  const double eps_per_sample = epsilon / static_cast<double>(max_samples);
  auto mech_or = dp::LaplaceMechanism::Create(eps_per_sample, unit_sensitivity);
  STPT_RETURN_IF_ERROR(mech_or.status());
  const dp::LaplaceMechanism& mech = *mech_or;
  const double measurement_variance = mech.NoiseVariance();

  auto out_or = grid::ConsumptionMatrix::Create(dims);
  STPT_RETURN_IF_ERROR(out_or.status());
  grid::ConsumptionMatrix out = std::move(out_or).value();

  for (int x = 0; x < dims.cx; ++x) {
    for (int y = 0; y < dims.cy; ++y) {
      const std::vector<double> series = cons.Pillar(x, y);
      // First release is always sampled: it initialises the filter.
      auto kf_or = filter::ScalarKalmanFilter::Create(
          options_.process_variance, measurement_variance,
          /*initial_estimate=*/mech.AddNoise(series[0], rng),
          /*initial_variance=*/measurement_variance);
      STPT_RETURN_IF_ERROR(kf_or.status());
      filter::ScalarKalmanFilter kf = std::move(kf_or).value();
      filter::PidController pid(options_.pid_kp, options_.pid_ki, options_.pid_kd);

      std::vector<double> released(dims.ct);
      released[0] = kf.estimate();
      int samples_used = 1;
      double interval = 1.0;  // current sampling interval (timestamps)
      int next_sample = 1 + static_cast<int>(std::lround(interval));

      for (int t = 1; t < dims.ct; ++t) {
        const double prior = kf.Predict();
        if (t >= next_sample && samples_used < max_samples) {
          const double z = mech.AddNoise(series[t], rng);
          const double posterior = kf.Correct(z);
          released[t] = posterior;
          ++samples_used;
          // Feedback error: how far the prior drifted from the observation,
          // relative to the noise floor. Large error -> sample sooner.
          const double error =
              std::fabs(z - prior) / std::max(1.0, std::sqrt(measurement_variance));
          const double control = pid.Update(error - 1.0);
          interval = std::clamp(interval * std::exp(-0.5 * control), 1.0, 16.0);
          next_sample = t + std::max(1, static_cast<int>(std::lround(interval)));
        } else {
          released[t] = prior;
        }
      }
      STPT_RETURN_IF_ERROR(out.SetPillar(x, y, released));
    }
  }
  return out;
}

}  // namespace stpt::baselines
