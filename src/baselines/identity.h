#ifndef STPT_BASELINES_IDENTITY_H_
#define STPT_BASELINES_IDENTITY_H_

#include "baselines/publisher.h"

namespace stpt::baselines {

/// The Identity algorithm (§3.3): splits the budget equally across the Ct
/// time slices (sequential composition) and adds independent Laplace noise
/// to every cell of each slice (parallel composition within a slice).
class IdentityPublisher : public Publisher {
 public:
  std::string name() const override { return "Identity"; }

  StatusOr<grid::ConsumptionMatrix> Publish(const grid::ConsumptionMatrix& cons,
                                            double epsilon, double unit_sensitivity,
                                            Rng& rng) override;
};

}  // namespace stpt::baselines

#endif  // STPT_BASELINES_IDENTITY_H_
