#include "baselines/wpo.h"

#include <algorithm>
#include <cmath>

#include "dp/mechanisms.h"

namespace stpt::baselines {

StatusOr<std::vector<double>> SolveRidge(const std::vector<std::vector<double>>& basis,
                                         const std::vector<double>& y, double lambda) {
  const size_t m = basis.size();
  if (m == 0) return Status::InvalidArgument("SolveRidge: empty basis");
  const size_t n = y.size();
  for (const auto& col : basis) {
    if (col.size() != n) {
      return Status::InvalidArgument("SolveRidge: basis column size mismatch");
    }
  }
  if (!(lambda > 0.0)) {
    return Status::InvalidArgument("SolveRidge: lambda must be > 0");
  }
  // Normal equations: G = A^T A + lambda I, b = A^T y.
  std::vector<double> g(m * m, 0.0);
  std::vector<double> b(m, 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = i; j < m; ++j) {
      double s = 0.0;
      for (size_t t = 0; t < n; ++t) s += basis[i][t] * basis[j][t];
      g[i * m + j] = g[j * m + i] = s + (i == j ? lambda : 0.0);
    }
    for (size_t t = 0; t < n; ++t) b[i] += basis[i][t] * y[t];
  }
  // Cholesky: G = L L^T.
  std::vector<double> l(m * m, 0.0);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double s = g[i * m + j];
      for (size_t k = 0; k < j; ++k) s -= l[i * m + k] * l[j * m + k];
      if (i == j) {
        if (s <= 0.0) return Status::Internal("SolveRidge: matrix not SPD");
        l[i * m + i] = std::sqrt(s);
      } else {
        l[i * m + j] = s / l[j * m + j];
      }
    }
  }
  // Forward/back substitution.
  std::vector<double> z(m, 0.0);
  for (size_t i = 0; i < m; ++i) {
    double s = b[i];
    for (size_t k = 0; k < i; ++k) s -= l[i * m + k] * z[k];
    z[i] = s / l[i * m + i];
  }
  std::vector<double> w(m, 0.0);
  for (size_t ii = m; ii-- > 0;) {
    double s = z[ii];
    for (size_t k = ii + 1; k < m; ++k) s -= l[k * m + ii] * w[k];
    w[ii] = s / l[ii * m + ii];
  }
  return w;
}

StatusOr<grid::ConsumptionMatrix> WpoPublisher::Publish(
    const grid::ConsumptionMatrix& cons, double epsilon, double unit_sensitivity,
    Rng& rng) {
  const grid::Dims& dims = cons.dims();
  const int n = dims.ct;

  // Event-level design forced into the user-level setting: the budget is
  // split across every timestamp of the global series (Theorem 1).
  const double eps_per_slice = epsilon / static_cast<double>(n);
  auto mech_or = dp::LaplaceMechanism::Create(eps_per_slice, unit_sensitivity);
  STPT_RETURN_IF_ERROR(mech_or.status());
  const dp::LaplaceMechanism& mech = *mech_or;

  std::vector<double> noisy_global(n, 0.0);
  for (int t = 0; t < n; ++t) {
    double total = 0.0;
    for (int x = 0; x < dims.cx; ++x) {
      for (int y = 0; y < dims.cy; ++y) total += cons.at(x, y, t);
    }
    noisy_global[t] = mech.AddNoise(total, rng);
  }

  // Convex program: ridge regression onto a truncated Fourier basis
  // (constant + basis_order harmonics), the closed-form optimum of
  //   min_w ||y - A w||^2 + lambda ||w||^2.
  const int order = std::max(1, options_.basis_order);
  std::vector<std::vector<double>> basis;
  basis.emplace_back(n, 1.0);
  for (int h = 1; h <= order; ++h) {
    std::vector<double> cosb(n), sinb(n);
    for (int t = 0; t < n; ++t) {
      const double ang = 2.0 * M_PI * h * t / static_cast<double>(n);
      cosb[t] = std::cos(ang);
      sinb[t] = std::sin(ang);
    }
    basis.push_back(std::move(cosb));
    basis.push_back(std::move(sinb));
  }
  auto w_or = SolveRidge(basis, noisy_global, options_.ridge_lambda);
  STPT_RETURN_IF_ERROR(w_or.status());
  const std::vector<double>& w = *w_or;

  auto out_or = grid::ConsumptionMatrix::Create(dims);
  STPT_RETURN_IF_ERROR(out_or.status());
  grid::ConsumptionMatrix out = std::move(out_or).value();
  const double inv_cells = 1.0 / (static_cast<double>(dims.cx) * dims.cy);
  for (int t = 0; t < n; ++t) {
    double smooth = 0.0;
    for (size_t i = 0; i < basis.size(); ++i) smooth += w[i] * basis[i][t];
    smooth = std::max(0.0, smooth);  // OPF-style feasibility projection
    // Geospatially blind: the smoothed global value is spread uniformly.
    const double per_cell = smooth * inv_cells;
    for (int x = 0; x < dims.cx; ++x) {
      for (int y = 0; y < dims.cy; ++y) out.set(x, y, t, per_cell);
    }
  }
  return out;
}

}  // namespace stpt::baselines
