#ifndef STPT_BASELINES_LOCAL_DP_H_
#define STPT_BASELINES_LOCAL_DP_H_

#include "baselines/publisher.h"
#include "datagen/dataset.h"

namespace stpt::baselines {

/// Local differential privacy publisher — the decentralised model the paper
/// names as future work (§7): households do not trust the aggregator, so
/// each meter perturbs its own readings with the Laplace mechanism before
/// reporting. The aggregator merely sums the noisy reports per cell.
///
/// Budget model: each household's whole series is protected at `epsilon`,
/// split evenly across its Ct reported slices (sequential composition at the
/// user). Per-slice local noise is Lap(clip * Ct / epsilon) *per household*,
/// so cell noise grows with household count — the well-known utility cost of
/// LDP, quantified against central DP in bench_extensions.
///
/// This operates on the raw dataset (it needs individual series), not on the
/// aggregated matrix, so it does not implement the Publisher interface.
class LocalDpPublisher {
 public:
  std::string name() const { return "LocalDP"; }

  /// Publishes an epsilon-LDP consumption matrix at the given granularity.
  /// Readings are clipped to spec.clip_factor per hour before perturbation.
  StatusOr<grid::ConsumptionMatrix> Publish(const datagen::SyntheticDataset& dataset,
                                            int hours_per_slice, double epsilon,
                                            Rng& rng) const;
};

}  // namespace stpt::baselines

#endif  // STPT_BASELINES_LOCAL_DP_H_
