#ifndef STPT_BASELINES_LGAN_DP_H_
#define STPT_BASELINES_LGAN_DP_H_

#include "baselines/publisher.h"

namespace stpt::baselines {

/// LGAN-DP (Zhang et al., 2023): an LSTM-based GAN that learns the temporal
/// shape of the series and achieves DP by injecting Laplace noise into the
/// training objective (not into the data).
///
/// This implementation follows the method's structure with a least-squares
/// GAN (LSGAN) objective: an LSTM generator predicts the continuation of a
/// window, an LSTM discriminator scores (window ++ continuation) sequences,
/// and every discriminator/generator gradient step is clipped and perturbed
/// with Laplace noise calibrated to the per-iteration budget (the noisy-
/// objective scheme of the original paper). Released series are generator
/// roll-outs from per-pillar seed windows sanitized with the remaining
/// budget. Like the original, it uses no geospatial information beyond the
/// per-pillar seed.
class LganDpPublisher : public Publisher {
 public:
  struct Options {
    int window_size = 6;
    int hidden_size = 16;
    int iterations = 60;        ///< adversarial steps (D and G alternate)
    int batch_size = 32;
    double learning_rate = 2e-3;
    double grad_clip = 1.0;     ///< per-step global gradient clip C
    double train_budget_fraction = 0.8;  ///< rest goes to the seed windows
    size_t max_training_windows = 4096;  ///< subsample cap for speed
  };

  LganDpPublisher() = default;
  explicit LganDpPublisher(const Options& options) : options_(options) {}

  std::string name() const override { return "LGAN-DP"; }

  StatusOr<grid::ConsumptionMatrix> Publish(const grid::ConsumptionMatrix& cons,
                                            double epsilon, double unit_sensitivity,
                                            Rng& rng) override;

 private:
  Options options_;
};

}  // namespace stpt::baselines

#endif  // STPT_BASELINES_LGAN_DP_H_
