#ifndef STPT_BASELINES_FOURIER_H_
#define STPT_BASELINES_FOURIER_H_

#include "baselines/publisher.h"

namespace stpt::baselines {

/// Fourier Perturbation Algorithm (Rastogi & Nath, 2010; sensitivity
/// refinement per Leukam Lako et al., 2021), applied per spatial pillar.
///
/// Each pillar series is DFT-transformed; the k lowest-frequency
/// coefficients are retained and perturbed with the Laplace mechanism at
/// scale sqrt(k) * L2-sensitivity / epsilon (split over real/imaginary
/// parts); the remaining coefficients are zeroed and the inverse transform
/// (with Hermitian symmetry enforced) yields the DP series.
///
/// Under user-level privacy the L2 sensitivity of a pillar series is
/// sqrt(Ct) * unit_sensitivity (one household changes every slice of its
/// pillar by at most unit_sensitivity).
class FourierPublisher : public Publisher {
 public:
  /// k = number of retained DFT coefficients (paper: 10 and 20).
  explicit FourierPublisher(int k) : k_(k) {}

  std::string name() const override { return "Fourier-" + std::to_string(k_); }

  StatusOr<grid::ConsumptionMatrix> Publish(const grid::ConsumptionMatrix& cons,
                                            double epsilon, double unit_sensitivity,
                                            Rng& rng) override;

  int k() const { return k_; }

 private:
  int k_;
};

}  // namespace stpt::baselines

#endif  // STPT_BASELINES_FOURIER_H_
