#include "baselines/local_dp.h"

#include <algorithm>

#include "dp/mechanisms.h"

namespace stpt::baselines {

StatusOr<grid::ConsumptionMatrix> LocalDpPublisher::Publish(
    const datagen::SyntheticDataset& dataset, int hours_per_slice, double epsilon,
    Rng& rng) const {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("LocalDpPublisher: epsilon must be > 0");
  }
  if (hours_per_slice <= 0 || dataset.hours % hours_per_slice != 0) {
    return Status::InvalidArgument("LocalDpPublisher: bad granularity");
  }
  const int ct = dataset.hours / hours_per_slice;
  const double clip = dataset.spec.clip_factor;
  // One household contributes at most clip * hours_per_slice per slice and
  // reports ct slices: per-slice local budget epsilon / ct.
  auto mech_or = dp::LaplaceMechanism::Create(epsilon / ct, clip * hours_per_slice);
  STPT_RETURN_IF_ERROR(mech_or.status());
  const dp::LaplaceMechanism& mech = *mech_or;

  auto out_or =
      grid::ConsumptionMatrix::Create({dataset.grid_x, dataset.grid_y, ct});
  STPT_RETURN_IF_ERROR(out_or.status());
  grid::ConsumptionMatrix out = std::move(out_or).value();
  for (const auto& house : dataset.households) {
    for (int slice = 0; slice < ct; ++slice) {
      double v = 0.0;
      for (int h = 0; h < hours_per_slice; ++h) {
        v += std::min(house.series[slice * hours_per_slice + h], clip);
      }
      // Perturbed at the meter, before aggregation: this is the LDP step.
      out.add(house.cell_x, house.cell_y, slice, mech.AddNoise(v, rng));
    }
  }
  return out;
}

}  // namespace stpt::baselines
