#include "baselines/identity.h"

#include "dp/mechanisms.h"

namespace stpt::baselines {

StatusOr<grid::ConsumptionMatrix> IdentityPublisher::Publish(
    const grid::ConsumptionMatrix& cons, double epsilon, double unit_sensitivity,
    Rng& rng) {
  const grid::Dims& dims = cons.dims();
  const double eps_per_slice = epsilon / static_cast<double>(dims.ct);
  auto mech_or = dp::LaplaceMechanism::Create(eps_per_slice, unit_sensitivity);
  STPT_RETURN_IF_ERROR(mech_or.status());
  const dp::LaplaceMechanism& mech = *mech_or;

  auto out_or = grid::ConsumptionMatrix::Create(dims);
  STPT_RETURN_IF_ERROR(out_or.status());
  grid::ConsumptionMatrix out = std::move(out_or).value();
  for (int x = 0; x < dims.cx; ++x) {
    for (int y = 0; y < dims.cy; ++y) {
      for (int t = 0; t < dims.ct; ++t) {
        out.set(x, y, t, mech.AddNoise(cons.at(x, y, t), rng));
      }
    }
  }
  return out;
}

}  // namespace stpt::baselines
