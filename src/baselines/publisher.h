#ifndef STPT_BASELINES_PUBLISHER_H_
#define STPT_BASELINES_PUBLISHER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "grid/consumption_matrix.h"

namespace stpt::baselines {

/// Common interface for all DP time-series publication algorithms compared
/// in §5 (Identity, FAST, Fourier-k, Wavelet-k, LGAN-DP, WPO) and for STPT
/// itself (adapted in core/).
///
/// All publishers operate under *user-level* privacy: removing one household
/// may change one cell in every time slice by at most `unit_sensitivity`
/// (the clipping factor of Table 2), so budgets compose sequentially across
/// time and in parallel across space (Theorem 5).
class Publisher {
 public:
  virtual ~Publisher() = default;

  /// Display name used in experiment tables (e.g. "Fourier-10").
  virtual std::string name() const = 0;

  /// Produces an epsilon-DP sanitized version of the consumption matrix.
  virtual StatusOr<grid::ConsumptionMatrix> Publish(
      const grid::ConsumptionMatrix& cons, double epsilon, double unit_sensitivity,
      Rng& rng) = 0;
};

/// Builds the full benchmark suite of §5.2 (everything except STPT):
/// Identity, FAST, Fourier-10, Fourier-20, Wavelet-10, Wavelet-20, LGAN-DP.
std::vector<std::unique_ptr<Publisher>> MakeStandardBaselines();

}  // namespace stpt::baselines

#endif  // STPT_BASELINES_PUBLISHER_H_
