#include "baselines/publisher.h"

#include "baselines/fast.h"
#include "baselines/fourier.h"
#include "baselines/identity.h"
#include "baselines/lgan_dp.h"
#include "baselines/wavelet_pub.h"

namespace stpt::baselines {

std::vector<std::unique_ptr<Publisher>> MakeStandardBaselines() {
  std::vector<std::unique_ptr<Publisher>> out;
  out.push_back(std::make_unique<IdentityPublisher>());
  out.push_back(std::make_unique<FastPublisher>());
  out.push_back(std::make_unique<FourierPublisher>(10));
  out.push_back(std::make_unique<FourierPublisher>(20));
  out.push_back(std::make_unique<WaveletPublisher>(10));
  out.push_back(std::make_unique<WaveletPublisher>(20));
  out.push_back(std::make_unique<LganDpPublisher>());
  return out;
}

}  // namespace stpt::baselines
