#ifndef STPT_BASELINES_FAST_H_
#define STPT_BASELINES_FAST_H_

#include "baselines/publisher.h"

namespace stpt::baselines {

/// FAST (Fan & Xiong, 2013): adaptive sampling + Kalman-filter posterior
/// estimation for DP time series, applied per spatial pillar (pillars are
/// disjoint in space, so parallel composition applies across them; the
/// sampled timestamps of one pillar compose sequentially).
///
/// Only a fraction of timestamps is sampled (perturbed with the Laplace
/// mechanism at budget epsilon / max_samples); non-sampled timestamps are
/// released from the filter's prediction. A PID controller widens or narrows
/// the sampling interval based on the observed prediction error.
class FastPublisher : public Publisher {
 public:
  struct Options {
    double sample_fraction = 0.25;  ///< max sampled timestamps / Ct
    double process_variance = 1.0;  ///< Kalman Q (in squared matrix units)
    double pid_kp = 0.8;
    double pid_ki = 0.1;
    double pid_kd = 0.05;
  };

  FastPublisher() = default;
  explicit FastPublisher(const Options& options) : options_(options) {}

  std::string name() const override { return "FAST"; }

  StatusOr<grid::ConsumptionMatrix> Publish(const grid::ConsumptionMatrix& cons,
                                            double epsilon, double unit_sensitivity,
                                            Rng& rng) override;

 private:
  Options options_;
};

}  // namespace stpt::baselines

#endif  // STPT_BASELINES_FAST_H_
