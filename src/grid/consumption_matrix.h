#ifndef STPT_GRID_CONSUMPTION_MATRIX_H_
#define STPT_GRID_CONSUMPTION_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace stpt::kernels {
class Backend;
}  // namespace stpt::kernels

namespace stpt::grid {

/// Dimensions of a consumption matrix: Cx × Cy spatial cells × Ct time slices.
struct Dims {
  int cx = 0;
  int cy = 0;
  int ct = 0;

  bool operator==(const Dims&) const = default;
  size_t NumCells() const {
    return static_cast<size_t>(cx) * static_cast<size_t>(cy) *
           static_cast<size_t>(ct);
  }
};

/// Dense spatio-temporal electricity consumption matrix (paper §3.1).
///
/// Element (x, y, t) is the aggregate consumption in spatial cell (x, y)
/// during time slice t. Storage is row-major with time innermost, so a
/// "pillar" — all slices of one cell, the per-location time series — is
/// contiguous.
class ConsumptionMatrix {
 public:
  /// Creates a zero-initialised matrix. Returns InvalidArgument for
  /// non-positive dimensions.
  static StatusOr<ConsumptionMatrix> Create(Dims dims);

  ConsumptionMatrix() = default;

  const Dims& dims() const { return dims_; }
  size_t size() const { return data_.size(); }

  double at(int x, int y, int t) const { return data_[Index(x, y, t)]; }
  void set(int x, int y, int t, double v) { data_[Index(x, y, t)] = v; }
  void add(int x, int y, int t, double v) { data_[Index(x, y, t)] += v; }

  /// Raw contiguous storage (x-major, then y, then t).
  const std::vector<double>& data() const { return data_; }
  std::vector<double>& mutable_data() { return data_; }

  /// Returns a copy of the pillar (time series) of cell (x, y).
  std::vector<double> Pillar(int x, int y) const;

  /// Overwrites the pillar of cell (x, y). Series length must equal ct.
  Status SetPillar(int x, int y, const std::vector<double>& series);

  /// Global extrema over all elements.
  double MinValue() const;
  double MaxValue() const;

  /// Min-max normalises a copy of this matrix to [0, 1] (paper Eq. 6).
  /// If the matrix is constant, returns an all-zero matrix.
  ConsumptionMatrix Normalized() const;

  /// Sum over an inclusive box [x0,x1] × [y0,y1] × [t0,t1]. O(volume).
  /// For repeated queries build a PrefixSum3D instead.
  double BoxSum(int x0, int x1, int y0, int y1, int t0, int t1) const;

  /// Sum of all elements.
  double TotalSum() const;

 private:
  explicit ConsumptionMatrix(Dims dims)
      : dims_(dims), data_(dims.NumCells(), 0.0) {}

  size_t Index(int x, int y, int t) const {
    return (static_cast<size_t>(x) * dims_.cy + y) * dims_.ct + t;
  }

  Dims dims_;
  std::vector<double> data_;
};

/// 3-D inclusive prefix-sum structure for O(1) range-sum queries over a
/// consumption matrix. Build is O(N); used by the query-evaluation harness
/// where hundreds of range queries are issued per experiment.
class PrefixSum3D {
 public:
  /// Builds prefix sums over the given matrix via the three separable scan
  /// passes of the kernel backend (`backend`, or the process default when
  /// null). All backends produce bit-identical scans, so the choice affects
  /// build speed only.
  explicit PrefixSum3D(const ConsumptionMatrix& m,
                       const kernels::Backend* backend = nullptr);

  /// Adopts precomputed inclusive prefix sums in the canonical (x, y, t)
  /// row-major layout — the exact vector a prior build's raw() returned.
  /// Used by stpt::serve to load a published snapshot without an O(N)
  /// rebuild. Returns InvalidArgument when the size does not match dims.
  static StatusOr<PrefixSum3D> FromRaw(Dims dims, std::vector<double> prefix);

  /// Sum over the inclusive box [x0,x1] × [y0,y1] × [t0,t1].
  /// Bounds must lie inside the matrix and be ordered.
  double BoxSum(int x0, int x1, int y0, int y1, int t0, int t1) const;

  const Dims& dims() const { return dims_; }

  /// The raw inclusive prefix table, (x, y, t) row-major (for persistence).
  const std::vector<double>& raw() const { return pre_; }

 private:
  PrefixSum3D(Dims dims, std::vector<double> pre)
      : dims_(dims), pre_(std::move(pre)) {}

  double P(int x, int y, int t) const {  // prefix value with -1 guards
    if (x < 0 || y < 0 || t < 0) return 0.0;
    return pre_[(static_cast<size_t>(x) * dims_.cy + y) * dims_.ct + t];
  }

  Dims dims_;
  std::vector<double> pre_;
};

}  // namespace stpt::grid

#endif  // STPT_GRID_CONSUMPTION_MATRIX_H_
