#ifndef STPT_GRID_QUADTREE_H_
#define STPT_GRID_QUADTREE_H_

#include <vector>

#include "common/status.h"
#include "grid/consumption_matrix.h"

namespace stpt::grid {

/// One spatial neighborhood at some quadtree depth, together with its
/// representative time series over the depth's time segment (paper Eq. 9:
/// element-wise average of all per-cell series in the neighborhood).
struct Neighborhood {
  /// Inclusive spatial extent.
  int x0 = 0, x1 = 0, y0 = 0, y1 = 0;
  /// Representative series over [t_begin, t_end) of the owning level.
  std::vector<double> series;
  /// Number of matrix cells covered (= (x1-x0+1) * (y1-y0+1)).
  int num_cells = 0;
  /// L1 sensitivity of one point of the representative series under
  /// user-level changes of a single normalised cell value: 1 / num_cells.
  /// For square power-of-two grids this equals the paper's
  /// 1 / 4^(log2(Cx) - depth) (Theorem 6).
  double sensitivity = 0.0;
};

/// One level of the spatio-temporal quadtree: a disjoint time segment of the
/// training prefix, with space divided into 2^depth × 2^depth neighborhoods.
struct QuadtreeLevel {
  int depth = 0;
  /// Half-open time range [t_begin, t_end) within the training prefix.
  int t_begin = 0;
  int t_end = 0;
  std::vector<Neighborhood> neighborhoods;
};

/// Builds the spatio-temporal quadtree of Algorithm 1 (lines 5–12) over the
/// first `t_train` slices of the (normalised) matrix.
///
/// Time is split into max_depth+1 equal segments of length
/// ceil(t_train / (max_depth+1)) (paper Eq. 8); level d covers segment d and
/// divides each spatial axis into 2^d parts. Levels whose time segment would
/// start at or beyond t_train are omitted (can happen when t_train <
/// max_depth+1).
///
/// Returns InvalidArgument if t_train is not in [1, ct], or max_depth < 0,
/// or 2^max_depth exceeds a spatial dimension.
StatusOr<std::vector<QuadtreeLevel>> BuildQuadtreeLevels(
    const ConsumptionMatrix& matrix, int t_train, int max_depth);

/// Returns the default quadtree depth used by the paper: log2(min(Cx, Cy)).
int DefaultQuadtreeDepth(const Dims& dims);

}  // namespace stpt::grid

#endif  // STPT_GRID_QUADTREE_H_
