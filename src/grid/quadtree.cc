#include "grid/quadtree.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"

namespace stpt::grid {
namespace {

/// Splits [0, n) into `parts` contiguous ranges as evenly as possible and
/// returns the boundary starts (parts+1 entries, last == n).
std::vector<int> SplitAxis(int n, int parts) {
  std::vector<int> bounds;
  bounds.reserve(parts + 1);
  for (int p = 0; p <= parts; ++p) {
    bounds.push_back(static_cast<int>(static_cast<int64_t>(p) * n / parts));
  }
  return bounds;
}

}  // namespace

int DefaultQuadtreeDepth(const Dims& dims) {
  const int m = std::min(dims.cx, dims.cy);
  return FloorLog2(static_cast<uint64_t>(std::max(1, m)));
}

StatusOr<std::vector<QuadtreeLevel>> BuildQuadtreeLevels(
    const ConsumptionMatrix& matrix, int t_train, int max_depth) {
  const Dims& dims = matrix.dims();
  if (t_train < 1 || t_train > dims.ct) {
    return Status::InvalidArgument("BuildQuadtreeLevels: t_train out of range");
  }
  if (max_depth < 0) {
    return Status::InvalidArgument("BuildQuadtreeLevels: max_depth must be >= 0");
  }
  const int64_t parts = int64_t{1} << max_depth;
  if (parts > dims.cx || parts > dims.cy) {
    return Status::InvalidArgument(
        "BuildQuadtreeLevels: 2^max_depth exceeds spatial dimension");
  }

  const int num_levels = max_depth + 1;
  const int seg_len = static_cast<int>(CeilDiv(t_train, num_levels));  // Eq. 8

  std::vector<QuadtreeLevel> levels;
  for (int d = 0; d < num_levels; ++d) {
    const int t0 = d * seg_len;
    if (t0 >= t_train) break;
    const int t1 = std::min(t_train, (d + 1) * seg_len);

    QuadtreeLevel level;
    level.depth = d;
    level.t_begin = t0;
    level.t_end = t1;

    const int axis_parts = 1 << d;
    const std::vector<int> xb = SplitAxis(dims.cx, axis_parts);
    const std::vector<int> yb = SplitAxis(dims.cy, axis_parts);

    for (int xi = 0; xi < axis_parts; ++xi) {
      for (int yi = 0; yi < axis_parts; ++yi) {
        Neighborhood nb;
        nb.x0 = xb[xi];
        nb.x1 = xb[xi + 1] - 1;
        nb.y0 = yb[yi];
        nb.y1 = yb[yi + 1] - 1;
        nb.num_cells = (nb.x1 - nb.x0 + 1) * (nb.y1 - nb.y0 + 1);
        nb.sensitivity = 1.0 / static_cast<double>(nb.num_cells);
        nb.series.resize(t1 - t0, 0.0);
        for (int x = nb.x0; x <= nb.x1; ++x) {
          for (int y = nb.y0; y <= nb.y1; ++y) {
            for (int t = t0; t < t1; ++t) nb.series[t - t0] += matrix.at(x, y, t);
          }
        }
        for (double& v : nb.series) v /= static_cast<double>(nb.num_cells);
        level.neighborhoods.push_back(std::move(nb));
      }
    }
    levels.push_back(std::move(level));
  }
  return levels;
}

}  // namespace stpt::grid
