#include "grid/consumption_matrix.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <new>
#include <stdexcept>
#include <string>

#include "exec/parallel.h"
#include "kernels/backend.h"

namespace stpt::grid {

StatusOr<ConsumptionMatrix> ConsumptionMatrix::Create(Dims dims) {
  if (dims.cx <= 0 || dims.cy <= 0 || dims.ct <= 0) {
    return Status::InvalidArgument("ConsumptionMatrix: dimensions must be positive");
  }
  // Dims often come straight from a parsed header (CSV, snapshot container),
  // so an allocation failure is an input problem, not a programming error:
  // surface it as a Status instead of an uncaught bad_alloc.
  try {
    return ConsumptionMatrix(dims);
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted("ConsumptionMatrix: cannot allocate " +
                                     std::to_string(dims.NumCells()) + " cells");
  } catch (const std::length_error&) {
    return Status::ResourceExhausted("ConsumptionMatrix: cannot allocate " +
                                     std::to_string(dims.NumCells()) + " cells");
  }
}

std::vector<double> ConsumptionMatrix::Pillar(int x, int y) const {
  assert(x >= 0 && x < dims_.cx && y >= 0 && y < dims_.cy);
  const size_t base = Index(x, y, 0);
  return std::vector<double>(data_.begin() + base, data_.begin() + base + dims_.ct);
}

Status ConsumptionMatrix::SetPillar(int x, int y, const std::vector<double>& series) {
  if (x < 0 || x >= dims_.cx || y < 0 || y >= dims_.cy) {
    return Status::OutOfRange("SetPillar: cell out of range");
  }
  if (static_cast<int>(series.size()) != dims_.ct) {
    return Status::InvalidArgument("SetPillar: series length must equal ct");
  }
  std::copy(series.begin(), series.end(), data_.begin() + Index(x, y, 0));
  return Status::OK();
}

double ConsumptionMatrix::MinValue() const {
  return *std::min_element(data_.begin(), data_.end());
}

double ConsumptionMatrix::MaxValue() const {
  return *std::max_element(data_.begin(), data_.end());
}

ConsumptionMatrix ConsumptionMatrix::Normalized() const {
  ConsumptionMatrix out(dims_);
  const double lo = MinValue();
  const double hi = MaxValue();
  const double range = hi - lo;
  if (range <= 0.0) return out;  // constant matrix -> all zeros
  exec::ParallelForRange(
      static_cast<int64_t>(data_.size()), [&](int64_t begin, int64_t end) {
        for (int64_t i = begin; i < end; ++i) {
          out.data_[i] = (data_[i] - lo) / range;
        }
      });
  return out;
}

double ConsumptionMatrix::BoxSum(int x0, int x1, int y0, int y1, int t0, int t1) const {
  assert(0 <= x0 && x0 <= x1 && x1 < dims_.cx);
  assert(0 <= y0 && y0 <= y1 && y1 < dims_.cy);
  assert(0 <= t0 && t0 <= t1 && t1 < dims_.ct);
  double s = 0.0;
  for (int x = x0; x <= x1; ++x) {
    for (int y = y0; y <= y1; ++y) {
      const size_t base = Index(x, y, 0);
      for (int t = t0; t <= t1; ++t) s += data_[base + t];
    }
  }
  return s;
}

double ConsumptionMatrix::TotalSum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

PrefixSum3D::PrefixSum3D(const ConsumptionMatrix& m,
                         const kernels::Backend* backend)
    : dims_(m.dims()), pre_(m.data()) {
  // Three separable in-place scans, one per axis, via the kernel backend.
  // Every output element sees a fixed accumulation order regardless of
  // backend or thread count, so the build is bit-identical everywhere (the
  // association differs from the classic inclusion–exclusion recurrence,
  // but is deterministic in itself).
  if (backend == nullptr) backend = kernels::Default();
  const int cx = dims_.cx;
  const int cy = dims_.cy;
  const int ct = dims_.ct;
  double* p = pre_.data();
  backend->ScanT(p, p, static_cast<int64_t>(cx) * cy, ct, /*t_lo=*/0);
  backend->ScanY(p, p, cx, cy, ct, /*t_lo=*/0);
  backend->ScanX(p, p, cx, cy, ct, /*t_lo=*/0);
}

StatusOr<PrefixSum3D> PrefixSum3D::FromRaw(Dims dims, std::vector<double> prefix) {
  if (dims.cx <= 0 || dims.cy <= 0 || dims.ct <= 0) {
    return Status::InvalidArgument("PrefixSum3D::FromRaw: dimensions must be positive");
  }
  if (prefix.size() != dims.NumCells()) {
    return Status::InvalidArgument("PrefixSum3D::FromRaw: prefix size does not match dims");
  }
  return PrefixSum3D(dims, std::move(prefix));
}

double PrefixSum3D::BoxSum(int x0, int x1, int y0, int y1, int t0, int t1) const {
  assert(0 <= x0 && x0 <= x1 && x1 < dims_.cx);
  assert(0 <= y0 && y0 <= y1 && y1 < dims_.cy);
  assert(0 <= t0 && t0 <= t1 && t1 < dims_.ct);
  double s = P(x1, y1, t1);
  s -= P(x0 - 1, y1, t1) + P(x1, y0 - 1, t1) + P(x1, y1, t0 - 1);
  s += P(x0 - 1, y0 - 1, t1) + P(x0 - 1, y1, t0 - 1) + P(x1, y0 - 1, t0 - 1);
  s -= P(x0 - 1, y0 - 1, t0 - 1);
  return s;
}

}  // namespace stpt::grid
