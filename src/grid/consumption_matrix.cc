#include "grid/consumption_matrix.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace stpt::grid {

StatusOr<ConsumptionMatrix> ConsumptionMatrix::Create(Dims dims) {
  if (dims.cx <= 0 || dims.cy <= 0 || dims.ct <= 0) {
    return Status::InvalidArgument("ConsumptionMatrix: dimensions must be positive");
  }
  return ConsumptionMatrix(dims);
}

std::vector<double> ConsumptionMatrix::Pillar(int x, int y) const {
  assert(x >= 0 && x < dims_.cx && y >= 0 && y < dims_.cy);
  const size_t base = Index(x, y, 0);
  return std::vector<double>(data_.begin() + base, data_.begin() + base + dims_.ct);
}

Status ConsumptionMatrix::SetPillar(int x, int y, const std::vector<double>& series) {
  if (x < 0 || x >= dims_.cx || y < 0 || y >= dims_.cy) {
    return Status::OutOfRange("SetPillar: cell out of range");
  }
  if (static_cast<int>(series.size()) != dims_.ct) {
    return Status::InvalidArgument("SetPillar: series length must equal ct");
  }
  std::copy(series.begin(), series.end(), data_.begin() + Index(x, y, 0));
  return Status::OK();
}

double ConsumptionMatrix::MinValue() const {
  return *std::min_element(data_.begin(), data_.end());
}

double ConsumptionMatrix::MaxValue() const {
  return *std::max_element(data_.begin(), data_.end());
}

ConsumptionMatrix ConsumptionMatrix::Normalized() const {
  ConsumptionMatrix out(dims_);
  const double lo = MinValue();
  const double hi = MaxValue();
  const double range = hi - lo;
  if (range <= 0.0) return out;  // constant matrix -> all zeros
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = (data_[i] - lo) / range;
  return out;
}

double ConsumptionMatrix::BoxSum(int x0, int x1, int y0, int y1, int t0, int t1) const {
  assert(0 <= x0 && x0 <= x1 && x1 < dims_.cx);
  assert(0 <= y0 && y0 <= y1 && y1 < dims_.cy);
  assert(0 <= t0 && t0 <= t1 && t1 < dims_.ct);
  double s = 0.0;
  for (int x = x0; x <= x1; ++x) {
    for (int y = y0; y <= y1; ++y) {
      const size_t base = Index(x, y, 0);
      for (int t = t0; t <= t1; ++t) s += data_[base + t];
    }
  }
  return s;
}

double ConsumptionMatrix::TotalSum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

PrefixSum3D::PrefixSum3D(const ConsumptionMatrix& m)
    : dims_(m.dims()), pre_(m.dims().NumCells(), 0.0) {
  const auto& d = m.data();
  auto idx = [&](int x, int y, int t) {
    return (static_cast<size_t>(x) * dims_.cy + y) * dims_.ct + t;
  };
  for (int x = 0; x < dims_.cx; ++x) {
    for (int y = 0; y < dims_.cy; ++y) {
      for (int t = 0; t < dims_.ct; ++t) {
        double v = d[idx(x, y, t)];
        v += P(x - 1, y, t) + P(x, y - 1, t) + P(x, y, t - 1);
        v -= P(x - 1, y - 1, t) + P(x - 1, y, t - 1) + P(x, y - 1, t - 1);
        v += P(x - 1, y - 1, t - 1);
        pre_[idx(x, y, t)] = v;
      }
    }
  }
}

double PrefixSum3D::BoxSum(int x0, int x1, int y0, int y1, int t0, int t1) const {
  assert(0 <= x0 && x0 <= x1 && x1 < dims_.cx);
  assert(0 <= y0 && y0 <= y1 && y1 < dims_.cy);
  assert(0 <= t0 && t0 <= t1 && t1 < dims_.ct);
  double s = P(x1, y1, t1);
  s -= P(x0 - 1, y1, t1) + P(x1, y0 - 1, t1) + P(x1, y1, t0 - 1);
  s += P(x0 - 1, y0 - 1, t1) + P(x0 - 1, y1, t0 - 1) + P(x1, y0 - 1, t0 - 1);
  s -= P(x0 - 1, y0 - 1, t0 - 1);
  return s;
}

}  // namespace stpt::grid
