// Second-layer baseline tests: algorithm-specific behavioural properties
// beyond the smoke/determinism coverage of baselines_test.cc.

#include <cmath>

#include "baselines/fast.h"
#include "baselines/fourier.h"
#include "baselines/identity.h"
#include "baselines/wavelet_pub.h"
#include "baselines/wpo.h"
#include "common/rng.h"
#include "gtest/gtest.h"
#include "signal/fft.h"

namespace stpt::baselines {
namespace {

grid::ConsumptionMatrix SineMatrix(grid::Dims dims, double period, double level) {
  auto m = grid::ConsumptionMatrix::Create(dims);
  EXPECT_TRUE(m.ok());
  for (int x = 0; x < dims.cx; ++x) {
    for (int y = 0; y < dims.cy; ++y) {
      for (int t = 0; t < dims.ct; ++t) {
        m->set(x, y, t, level * (1.0 + 0.5 * std::sin(2.0 * M_PI * t / period)));
      }
    }
  }
  return std::move(m).value();
}

double PillarMae(const grid::ConsumptionMatrix& a, const grid::ConsumptionMatrix& b,
                 int x, int y) {
  const auto pa = a.Pillar(x, y);
  const auto pb = b.Pillar(x, y);
  double s = 0.0;
  for (size_t i = 0; i < pa.size(); ++i) s += std::fabs(pa[i] - pb[i]);
  return s / static_cast<double>(pa.size());
}

// --------------------------- Fourier behaviour ---------------------------

TEST(FourierBehaviorTest, LowFrequencySignalSurvivesBetterThanHighFrequency) {
  // FPA keeps the k lowest frequencies: a slow sine must reconstruct far
  // better than a fast one under the same budget.
  const grid::Dims dims{2, 2, 64};
  const auto slow = SineMatrix(dims, 64.0, 100.0);
  const auto fast = SineMatrix(dims, 3.0, 100.0);
  FourierPublisher pub(4);
  Rng rng(1);
  auto out_slow = pub.Publish(slow, 1e8, 1.0, rng);
  auto out_fast = pub.Publish(fast, 1e8, 1.0, rng);
  ASSERT_TRUE(out_slow.ok());
  ASSERT_TRUE(out_fast.ok());
  EXPECT_LT(PillarMae(slow, *out_slow, 0, 0), 0.01);
  EXPECT_GT(PillarMae(fast, *out_fast, 0, 0), 1.0);  // truncated away
}

TEST(FourierBehaviorTest, NoiseScalesWithK) {
  // On a constant signal, reconstruction error is purely coefficient noise,
  // which grows with k (more coefficients, each noisier).
  const grid::Dims dims{2, 2, 64};
  auto m = grid::ConsumptionMatrix::Create(dims);
  ASSERT_TRUE(m.ok());
  for (auto& v : m->mutable_data()) v = 50.0;
  Rng rng(2);
  double err_small = 0.0, err_large = 0.0;
  for (int rep = 0; rep < 10; ++rep) {
    auto small = FourierPublisher(5).Publish(*m, 30.0, 1.0, rng);
    auto large = FourierPublisher(20).Publish(*m, 30.0, 1.0, rng);
    ASSERT_TRUE(small.ok());
    ASSERT_TRUE(large.ok());
    err_small += PillarMae(*m, *small, 0, 0);
    err_large += PillarMae(*m, *large, 0, 0);
  }
  EXPECT_LT(err_small, err_large);
}

TEST(FourierBehaviorTest, OutputHasNoImaginaryLeakage) {
  // The Hermitian mirroring must make the inverse exactly real: the output
  // of two runs with the same seed equals its own real part (trivially) and
  // the DFT of the released pillar must be Hermitian.
  const grid::Dims dims{1, 1, 33};
  const auto m = SineMatrix(dims, 11.0, 10.0);
  FourierPublisher pub(6);
  Rng rng(3);
  auto out = pub.Publish(m, 5.0, 1.0, rng);
  ASSERT_TRUE(out.ok());
  const auto coeffs = signal::RealDft(out->Pillar(0, 0));
  for (size_t j = 1; j < coeffs.size(); ++j) {
    EXPECT_NEAR(coeffs[j].imag(), -coeffs[coeffs.size() - j].imag(), 1e-6);
  }
}

// --------------------------- Wavelet behaviour ---------------------------

TEST(WaveletBehaviorTest, PiecewiseConstantSignalIsWaveletFriendly) {
  // Haar represents step functions compactly; a two-level step should be
  // reconstructed nearly exactly from few coefficients.
  const grid::Dims dims{1, 1, 32};
  auto m = grid::ConsumptionMatrix::Create(dims);
  ASSERT_TRUE(m.ok());
  std::vector<double> step(32, 10.0);
  for (int t = 16; t < 32; ++t) step[t] = 90.0;
  ASSERT_TRUE(m->SetPillar(0, 0, step).ok());
  WaveletPublisher pub(2);  // approximation + first detail
  Rng rng(4);
  auto out = pub.Publish(*m, 1e8, 1.0, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(PillarMae(*m, *out, 0, 0), 0.01);
}

TEST(WaveletBehaviorTest, PaddingDoesNotShiftTheSeries) {
  // Non-power-of-two lengths go through zero padding; with huge budget and
  // all coefficients kept, the original prefix must come back untouched.
  const grid::Dims dims{1, 1, 24};
  const auto m = SineMatrix(dims, 8.0, 20.0);
  WaveletPublisher pub(32);
  Rng rng(5);
  auto out = pub.Publish(m, 1e8, 1.0, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_LT(PillarMae(m, *out, 0, 0), 1e-3);
}

// --------------------------- FAST behaviour ---------------------------

TEST(FastBehaviorTest, SamplingBudgetIsRespectedPerPillar) {
  // With sample_fraction f, at most ceil(f * ct) timestamps are perturbed;
  // we can't observe samples directly, but accuracy must degrade gracefully
  // as f shrinks on a *volatile* series (fewer corrections).
  const grid::Dims dims{2, 2, 64};
  Rng data_rng(6);
  auto m = grid::ConsumptionMatrix::Create(dims);
  ASSERT_TRUE(m.ok());
  for (auto& v : m->mutable_data()) v = data_rng.Uniform(0.0, 200.0);
  Rng rng(7);
  double err_many = 0.0, err_few = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    FastPublisher::Options many;
    many.sample_fraction = 0.5;
    FastPublisher::Options few;
    few.sample_fraction = 0.05;
    auto out_many = FastPublisher(many).Publish(*m, 20.0, 1.0, rng);
    auto out_few = FastPublisher(few).Publish(*m, 20.0, 1.0, rng);
    ASSERT_TRUE(out_many.ok());
    ASSERT_TRUE(out_few.ok());
    err_many += PillarMae(*m, *out_many, 0, 0);
    err_few += PillarMae(*m, *out_few, 0, 0);
  }
  EXPECT_LT(err_many, err_few);
}

TEST(FastBehaviorTest, FirstReleaseInitialisesFromData) {
  const grid::Dims dims{1, 1, 8};
  auto m = grid::ConsumptionMatrix::Create(dims);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->SetPillar(0, 0, {500, 500, 500, 500, 500, 500, 500, 500}).ok());
  FastPublisher pub;
  Rng rng(8);
  auto out = pub.Publish(*m, 50.0, 1.0, rng);
  ASSERT_TRUE(out.ok());
  // Generous budget: the first released value must be near 500, not near 0.
  EXPECT_NEAR(out->at(0, 0, 0), 500.0, 20.0);
}

// --------------------------- WPO behaviour ---------------------------

TEST(WpoBehaviorTest, SmoothsOutHighFrequencyNoise) {
  // The ridge regression onto few harmonics must track the slow component
  // and reject per-slice jitter.
  const grid::Dims dims{2, 2, 48};
  Rng data_rng(9);
  auto m = grid::ConsumptionMatrix::Create(dims);
  ASSERT_TRUE(m.ok());
  for (int x = 0; x < 2; ++x) {
    for (int y = 0; y < 2; ++y) {
      for (int t = 0; t < 48; ++t) {
        m->set(x, y, t, 100.0 * (1.0 + 0.4 * std::sin(2.0 * M_PI * t / 48.0)) +
                            data_rng.Uniform(-5, 5));
      }
    }
  }
  WpoPublisher::Options opts;
  opts.basis_order = 2;
  WpoPublisher pub(opts);
  Rng rng(10);
  auto out = pub.Publish(*m, 1e8, 1.0, rng);
  ASSERT_TRUE(out.ok());
  // Released global series: check it tracks the sine within jitter scale.
  for (int t = 0; t < 48; ++t) {
    double truth = 0.0, released = 0.0;
    for (int x = 0; x < 2; ++x) {
      for (int y = 0; y < 2; ++y) {
        truth += m->at(x, y, t);
        released += out->at(x, y, t);
      }
    }
    EXPECT_NEAR(released, truth, 40.0) << "t=" << t;
  }
}

TEST(WpoBehaviorTest, HigherBasisOrderFitsSharperShapes) {
  const grid::Dims dims{1, 1, 48};
  const auto m = SineMatrix(dims, 12.0, 100.0);  // 4 cycles: needs order >= 4
  Rng rng(11);
  WpoPublisher::Options low;
  low.basis_order = 1;
  WpoPublisher::Options high;
  high.basis_order = 8;
  auto out_low = WpoPublisher(low).Publish(m, 1e8, 1.0, rng);
  auto out_high = WpoPublisher(high).Publish(m, 1e8, 1.0, rng);
  ASSERT_TRUE(out_low.ok());
  ASSERT_TRUE(out_high.ok());
  EXPECT_LT(PillarMae(m, *out_high, 0, 0), PillarMae(m, *out_low, 0, 0));
}

// --------------------------- Identity behaviour ---------------------------

TEST(IdentityBehaviorTest, NoiseIsIndependentAcrossCells) {
  // Correlation between two cells' noise must vanish over repetitions.
  const grid::Dims dims{2, 1, 1};
  auto m = grid::ConsumptionMatrix::Create(dims);
  ASSERT_TRUE(m.ok());
  IdentityPublisher pub;
  Rng rng(12);
  double sum_ab = 0.0, sum_a = 0.0, sum_b = 0.0, sum_a2 = 0.0, sum_b2 = 0.0;
  const int reps = 20000;
  for (int r = 0; r < reps; ++r) {
    auto out = pub.Publish(*m, 1.0, 1.0, rng);
    ASSERT_TRUE(out.ok());
    const double a = out->at(0, 0, 0);
    const double b = out->at(1, 0, 0);
    sum_ab += a * b;
    sum_a += a;
    sum_b += b;
    sum_a2 += a * a;
    sum_b2 += b * b;
  }
  const double cov = sum_ab / reps - (sum_a / reps) * (sum_b / reps);
  const double var_a = sum_a2 / reps - (sum_a / reps) * (sum_a / reps);
  const double var_b = sum_b2 / reps - (sum_b / reps) * (sum_b / reps);
  EXPECT_LT(std::fabs(cov / std::sqrt(var_a * var_b)), 0.05);
}

}  // namespace
}  // namespace stpt::baselines
