#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "fuzz/fuzz_util.h"
#include "fuzz/targets.h"
#include "grid/consumption_matrix.h"
#include "gtest/gtest.h"
#include "query/range_query.h"
#include "serve/client.h"
#include "serve/query_server.h"
#include "serve/snapshot.h"
#include "serve/tcp_server.h"
#include "serve/wire.h"

namespace stpt::serve {
namespace {

grid::ConsumptionMatrix MakeMatrix(grid::Dims dims, uint64_t seed) {
  auto matrix = grid::ConsumptionMatrix::Create(dims);
  EXPECT_TRUE(matrix.ok());
  Rng rng(seed);
  for (double& v : matrix->mutable_data()) {
    // Mix magnitudes and signs so bit-identity checks are meaningful.
    v = rng.Gaussian(0.0, 100.0) + rng.Laplace(0.5);
  }
  return std::move(*matrix);
}

Snapshot MakeTestSnapshot(grid::Dims dims = {6, 5, 9}, uint64_t seed = 42) {
  SnapshotMeta meta;
  meta.algorithm = "stpt";
  meta.eps_total = 30.0;
  meta.eps_pattern = 10.0;
  meta.eps_sanitize = 20.0;
  meta.t_train = 100;
  return Snapshot::FromMatrix(MakeMatrix(dims, seed), meta);
}

bool BitIdentical(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

query::Workload MakeQueries(const grid::Dims& dims, int count, uint64_t seed) {
  Rng rng(seed);
  auto wl = query::MakeWorkload(query::WorkloadKind::kRandom, dims, count, rng);
  EXPECT_TRUE(wl.ok());
  return std::move(*wl);
}

/// Patches `bytes` in place and rewrites the CRC trailer so that decoding
/// reaches the structural check under test instead of failing the CRC.
void Recrc(std::vector<uint8_t>& bytes) {
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - 4);
  bytes[bytes.size() - 4] = static_cast<uint8_t>(crc);
  bytes[bytes.size() - 3] = static_cast<uint8_t>(crc >> 8);
  bytes[bytes.size() - 2] = static_cast<uint8_t>(crc >> 16);
  bytes[bytes.size() - 1] = static_cast<uint8_t>(crc >> 24);
}

// --- Snapshot container ----------------------------------------------------

TEST(SnapshotTest, EncodeDecodeBitIdentity) {
  const Snapshot snap = MakeTestSnapshot();
  const std::vector<uint8_t> bytes = EncodeSnapshot(snap);
  auto decoded = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->meta, snap.meta);
  EXPECT_EQ(decoded->sanitized.dims(), snap.sanitized.dims());
  ASSERT_EQ(decoded->sanitized.size(), snap.sanitized.size());
  EXPECT_EQ(0, std::memcmp(decoded->sanitized.data().data(),
                           snap.sanitized.data().data(),
                           snap.sanitized.size() * sizeof(double)));
  ASSERT_EQ(decoded->prefix.size(), snap.prefix.size());
  EXPECT_EQ(0, std::memcmp(decoded->prefix.data(), snap.prefix.data(),
                           snap.prefix.size() * sizeof(double)));
}

TEST(SnapshotTest, FileRoundTripBitIdentity) {
  const Snapshot snap = MakeTestSnapshot({4, 7, 11}, 7);
  const std::string path = testing::TempDir() + "/roundtrip.stpt";
  ASSERT_TRUE(WriteSnapshot(snap, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta, snap.meta);
  EXPECT_EQ(0, std::memcmp(loaded->sanitized.data().data(),
                           snap.sanitized.data().data(),
                           snap.sanitized.size() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(loaded->prefix.data(), snap.prefix.data(),
                           snap.prefix.size() * sizeof(double)));
}

TEST(SnapshotTest, NormalizationExtremaRecorded) {
  const Snapshot snap = MakeTestSnapshot();
  EXPECT_EQ(snap.meta.norm_min, snap.sanitized.MinValue());
  EXPECT_EQ(snap.meta.norm_max, snap.sanitized.MaxValue());
}

TEST(SnapshotTest, TruncationAndBitflipRejectedEverywhere) {
  // Exhaustive: every strict prefix and every single-bit corruption must be
  // rejected with a Status, never a crash. The sweep helper is shared with
  // the fuzz_snapshot_replay harness, so unit tests and corpus replay
  // exercise byte-identical robustness logic.
  const std::vector<uint8_t> bytes = EncodeSnapshot(MakeTestSnapshot({3, 3, 4}));
  const fuzz::SweepStats stats = fuzz::TruncationAndBitflipSweep(
      bytes, [](const uint8_t* data, size_t size) {
        return DecodeSnapshot(data, size).ok();
      });
  EXPECT_EQ(stats.accepted, 0u);
  // All prefixes plus eight flips per byte were actually tried.
  EXPECT_EQ(stats.cases, bytes.size() + 8 * bytes.size());
}

TEST(SnapshotTest, CheckedInCorpusReplaysClean) {
  // The seed corpus must decode without crashing; every committed crash-*
  // regression input must be rejected (each pins a fixed decoder bug).
  const auto corpus =
      fuzz::LoadCorpus(std::string(STPT_SOURCE_DIR) + "/fuzz/corpus/snapshot");
  ASSERT_FALSE(corpus.empty());
  size_t valid = 0;
  for (const auto& entry : corpus) {
    auto decoded = DecodeSnapshot(entry.bytes.data(), entry.bytes.size());
    if (entry.name.rfind("crash-", 0) == 0) {
      EXPECT_FALSE(decoded.ok()) << entry.name << " must stay rejected";
    }
    if (decoded.ok()) ++valid;
  }
  EXPECT_GE(valid, 3u) << "seed-valid-* containers should decode";
}

TEST(SnapshotTest, HugeDimsHeaderWithoutBodyRejected) {
  // Regression for fuzz/corpus/snapshot/crash-huge-dims-no-body.stpt: a
  // CRC-valid 80-byte container declaring 2048^3 cells used to reach the
  // 64 GiB matrix allocation before noticing the body bytes are missing.
  const auto corpus = fuzz::LoadCorpus(
      std::string(STPT_SOURCE_DIR) +
      "/fuzz/corpus/snapshot/crash-huge-dims-no-body.stpt");
  ASSERT_EQ(corpus.size(), 1u);
  auto decoded = DecodeSnapshot(corpus[0].bytes.data(), corpus[0].bytes.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("truncated"), std::string::npos);
}

TEST(SnapshotTest, CorruptedByteFailsChecksum) {
  std::vector<uint8_t> bytes = EncodeSnapshot(MakeTestSnapshot());
  bytes[bytes.size() / 2] ^= 0x10;  // one bit flip in the matrix payload
  auto decoded = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(decoded.status().message().find("checksum"), std::string::npos);
}

TEST(SnapshotTest, TruncatedFileRejected) {
  const std::vector<uint8_t> bytes = EncodeSnapshot(MakeTestSnapshot());
  const std::string path = testing::TempDir() + "/truncated.stpt";
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fwrite(bytes.data(), 1, bytes.size() - 17, f);
  fclose(f);
  auto loaded = ReadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(SnapshotTest, BadMagicRejected) {
  std::vector<uint8_t> bytes = EncodeSnapshot(MakeTestSnapshot());
  bytes[0] = 'X';
  Recrc(bytes);
  auto decoded = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("magic"), std::string::npos);
}

TEST(SnapshotTest, UnsupportedVersionRejected) {
  std::vector<uint8_t> bytes = EncodeSnapshot(MakeTestSnapshot());
  bytes[4] = 99;
  Recrc(bytes);
  auto decoded = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  auto loaded = ReadSnapshot(testing::TempDir() + "/does-not-exist.stpt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// --- QueryServer -----------------------------------------------------------

TEST(QueryServerTest, AnswersBitIdenticalToDirectEvaluation) {
  const grid::Dims dims{12, 10, 30};
  const Snapshot snap = MakeTestSnapshot(dims, 3);
  const grid::PrefixSum3D direct(snap.sanitized);
  auto server = QueryServer::Create(snap);
  ASSERT_TRUE(server.ok());
  for (const query::RangeQuery& q : MakeQueries(dims, 500, 11)) {
    auto got = server->Answer(q);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(
        BitIdentical(*got, direct.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1)));
  }
}

TEST(QueryServerTest, CachedEqualsUncached) {
  const grid::Dims dims{10, 10, 20};
  const Snapshot snap = MakeTestSnapshot(dims, 5);
  auto cached = QueryServer::Create(snap, {.cache_shards = 4, .cache_capacity = 1024});
  auto uncached = QueryServer::Create(snap, {.cache_capacity = 0});
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(uncached.ok());
  const query::Workload wl = MakeQueries(dims, 300, 13);
  // Two passes through the cached server: the second is served from the
  // LRU and must still be bit-identical to the cache-free engine.
  for (int pass = 0; pass < 2; ++pass) {
    for (const query::RangeQuery& q : wl) {
      auto a = cached->Answer(q);
      auto b = uncached->Answer(q);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_TRUE(BitIdentical(*a, *b));
    }
  }
  const ServerStats stats = cached->stats();
  EXPECT_EQ(stats.queries, 600u);
  EXPECT_GE(stats.cache_hits, 300u);  // second pass is all hits
  EXPECT_GT(stats.hit_rate(), 0.49);
  EXPECT_EQ(uncached->stats().cache_hits, 0u);
}

TEST(QueryServerTest, TinyCacheEvictsButStaysCorrect) {
  const grid::Dims dims{8, 8, 16};
  const Snapshot snap = MakeTestSnapshot(dims, 9);
  const grid::PrefixSum3D direct(snap.sanitized);
  auto server = QueryServer::Create(snap, {.cache_shards = 2, .cache_capacity = 8});
  ASSERT_TRUE(server.ok());
  for (const query::RangeQuery& q : MakeQueries(dims, 400, 17)) {
    auto got = server->Answer(q);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(
        BitIdentical(*got, direct.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1)));
  }
}

TEST(QueryServerTest, BatchMatchesSingleAnswers) {
  const grid::Dims dims{9, 9, 25};
  const Snapshot snap = MakeTestSnapshot(dims, 21);
  auto batch_server = QueryServer::Create(snap);
  auto single_server = QueryServer::Create(snap);
  ASSERT_TRUE(batch_server.ok());
  ASSERT_TRUE(single_server.ok());
  const query::Workload wl = MakeQueries(dims, 257, 23);
  auto batched = batch_server->AnswerBatch(wl);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_EQ(batched->size(), wl.size());
  for (size_t i = 0; i < wl.size(); ++i) {
    auto got = single_server->Answer(wl[i]);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(BitIdentical((*batched)[i], *got));
  }
}

TEST(QueryServerTest, InvalidQueriesRejected) {
  auto server = QueryServer::Create(MakeTestSnapshot({5, 5, 5}));
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE(server->Answer({0, 5, 0, 0, 0, 0}).ok());  // x1 == cx
  EXPECT_FALSE(server->Answer({2, 1, 0, 0, 0, 0}).ok());  // unordered
  EXPECT_FALSE(server->Answer({0, 0, -1, 0, 0, 0}).ok());

  auto batched = server->AnswerBatch({{0, 0, 0, 0, 0, 0}, {0, 9, 0, 0, 0, 0}});
  ASSERT_FALSE(batched.ok());
  EXPECT_NE(batched.status().message().find("query 1"), std::string::npos);
  EXPECT_EQ(server->stats().invalid, 4u);
}

TEST(QueryServerTest, CreateRejectsInvalidOptions) {
  const Snapshot snap = MakeTestSnapshot({4, 4, 4});
  auto server = QueryServer::Create(snap, {.cache_shards = 0});
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(QueryServer::Create(snap, {.cache_shards = -3}).ok());
}

TEST(QueryServerTest, StatsTrackLatencyAndResetClears) {
  auto server = QueryServer::Create(MakeTestSnapshot({6, 6, 12}));
  ASSERT_TRUE(server.ok());
  for (const query::RangeQuery& q : MakeQueries({6, 6, 12}, 100, 31)) {
    ASSERT_TRUE(server->Answer(q).ok());
  }
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.queries, 100u);
  EXPECT_GT(stats.p50_ns, 0u);
  EXPECT_GE(stats.p99_ns, stats.p50_ns);
  EXPECT_NE(stats.ToJson().find("\"queries\": 100"), std::string::npos);
  server->ResetStats();
  stats = server->stats();
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_EQ(stats.p99_ns, 0u);
}

TEST(QueryServerTest, OpenFromDiskServesLoadedPrefixSums) {
  const grid::Dims dims{7, 9, 14};
  const Snapshot snap = MakeTestSnapshot(dims, 37);
  const std::string path = testing::TempDir() + "/served.stpt";
  ASSERT_TRUE(WriteSnapshot(snap, path).ok());
  auto server = QueryServer::Open(path);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ(server->dims(), dims);
  EXPECT_EQ(server->meta().algorithm, "stpt");
  const grid::PrefixSum3D direct(snap.sanitized);
  for (const query::RangeQuery& q : MakeQueries(dims, 200, 41)) {
    auto got = server->Answer(q);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(
        BitIdentical(*got, direct.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1)));
  }
}

// --- Wire codecs -----------------------------------------------------------

TEST(WireTest, QueryRequestRoundTrip) {
  const query::Workload wl = MakeQueries({16, 16, 32}, 50, 43);
  auto decoded = DecodeQueryRequest(EncodeQueryRequest(wl));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, wl);
}

TEST(WireTest, QueryResponseRoundTrip) {
  const std::vector<double> answers = {0.0, -1.5, 3.25e300, 5e-324, 42.0};
  auto decoded = DecodeQueryResponse(EncodeQueryResponse(answers));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    EXPECT_TRUE(BitIdentical((*decoded)[i], answers[i]));
  }
}

TEST(WireTest, StringAndMetaRoundTrip) {
  auto text = DecodeString(EncodeString("hello stats"));
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "hello stats");

  WireMeta meta;
  meta.dims = {32, 32, 120};
  meta.meta.algorithm = "fourier10";
  meta.meta.eps_total = 12.5;
  meta.meta.eps_sanitize = 12.5;
  meta.meta.norm_min = -3.0;
  meta.meta.norm_max = 9.75;
  meta.meta.t_train = 100;
  auto decoded = DecodeMetaResponse(EncodeMetaResponse(meta));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->dims, meta.dims);
  EXPECT_EQ(decoded->meta, meta.meta);
}

TEST(WireTest, MalformedPayloadsRejected) {
  EXPECT_FALSE(DecodeQueryRequest({0x01}).ok());  // short header
  std::vector<uint8_t> wrong_len = EncodeQueryRequest(MakeQueries({4, 4, 4}, 3, 1));
  wrong_len.pop_back();
  EXPECT_FALSE(DecodeQueryRequest(wrong_len).ok());
  EXPECT_FALSE(DecodeQueryResponse({0xFF, 0xFF, 0xFF, 0xFF}).ok());
  EXPECT_FALSE(DecodeString({0x05, 0x00, 0x00, 0x00, 'a'}).ok());
  EXPECT_FALSE(DecodeMetaResponse({0x01, 0x02}).ok());
}

TEST(WireTest, QueryRequestTruncationSweepRejectsEveryPrefix) {
  // Shared sweep helper: the codec must survive every strict prefix and
  // every single-bit flip of a valid payload without crashing. Bit flips
  // may still decode (no checksum on wire payloads) but truncations must
  // not: the trailing-length check catches every short payload.
  const std::vector<uint8_t> payload =
      EncodeQueryRequest(MakeQueries({6, 6, 8}, 5, 3));
  size_t prefix_accepted = 0;
  const fuzz::SweepStats stats = fuzz::TruncationAndBitflipSweep(
      payload, [&](const uint8_t* data, size_t size) {
        const bool ok =
            DecodeQueryRequest(std::vector<uint8_t>(data, data + size)).ok();
        if (ok && size < payload.size()) ++prefix_accepted;
        return ok;
      });
  EXPECT_GT(stats.cases, payload.size());
  EXPECT_EQ(prefix_accepted, 0u);
}

TEST(WireTest, CheckedInCorpusReplaysClean) {
  // Every committed wire corpus entry must run through the full harness
  // (codec selector + frame-stream path) without crashing.
  const auto corpus =
      fuzz::LoadCorpus(std::string(STPT_SOURCE_DIR) + "/fuzz/corpus/wire");
  ASSERT_FALSE(corpus.empty());
  for (const auto& entry : corpus) {
    fuzz::FuzzWire(entry.bytes.data(), entry.bytes.size());
  }
}

TEST(WireTest, FrameRoundTripOverSocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::vector<uint8_t> payload = EncodeString("ping");
  ASSERT_TRUE(WriteFrame(fds[0], MsgType::kStatsResponse, payload).ok());
  auto frame = ReadFrame(fds[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, MsgType::kStatsResponse);
  EXPECT_EQ(frame->payload, payload);

  // Clean close reads as the dedicated "connection closed" status.
  ::close(fds[0]);
  auto closed = ReadFrame(fds[1]);
  ASSERT_FALSE(closed.ok());
  EXPECT_TRUE(IsConnectionClosed(closed.status()));
  ::close(fds[1]);
}

TEST(WireTest, MalformedFramesRejected) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Zero-length frame.
  const uint8_t zero[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(fds[0], zero, 4, 0), 4);
  EXPECT_FALSE(ReadFrame(fds[1]).ok());
  // Oversized frame length.
  const uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  ASSERT_EQ(::send(fds[0], huge, 4, 0), 4);
  EXPECT_FALSE(ReadFrame(fds[1]).ok());
  // Unknown message type.
  const uint8_t unknown[5] = {1, 0, 0, 0, 0xEE};
  ASSERT_EQ(::send(fds[0], unknown, 5, 0), 5);
  EXPECT_FALSE(ReadFrame(fds[1]).ok());
  // Truncated payload then close.
  const uint8_t partial[6] = {10, 0, 0, 0, 1, 0x42};
  ASSERT_EQ(::send(fds[0], partial, 6, 0), 6);
  ::close(fds[0]);
  auto truncated = ReadFrame(fds[1]);
  ASSERT_FALSE(truncated.ok());
  EXPECT_FALSE(IsConnectionClosed(truncated.status()));
  ::close(fds[1]);
}

// --- TCP loopback ----------------------------------------------------------

class LoopbackTest : public testing::Test {
 protected:
  void StartServer(grid::Dims dims, uint64_t seed) {
    snapshot_ = MakeTestSnapshot(dims, seed);
    auto engine = QueryServer::Create(snapshot_);
    ASSERT_TRUE(engine.ok());
    engine_ = std::make_unique<QueryServer>(std::move(*engine));
    auto server = TcpServer::Create(engine_.get(), TcpServerOptions{});
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  Snapshot snapshot_;
  std::unique_ptr<QueryServer> engine_;
  std::unique_ptr<TcpServer> server_;
};

TEST_F(LoopbackTest, FourConcurrentClientsBitIdenticalToDirectEvaluation) {
  const grid::Dims dims{16, 16, 40};
  StartServer(dims, 51);
  const grid::PrefixSum3D direct(snapshot_.sanitized);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 600;
  constexpr int kBatch = 64;
  std::vector<int64_t> mismatches(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      ASSERT_TRUE(client.ok());
      const query::Workload wl =
          MakeQueries(dims, kQueriesPerClient, 1000 + static_cast<uint64_t>(c));
      for (size_t base = 0; base < wl.size(); base += kBatch) {
        const size_t n = std::min<size_t>(kBatch, wl.size() - base);
        const query::Workload batch(wl.begin() + base, wl.begin() + base + n);
        auto answers = client->Query(batch);
        ASSERT_TRUE(answers.ok()) << answers.status().ToString();
        for (size_t i = 0; i < n; ++i) {
          const query::RangeQuery& q = batch[i];
          if (!BitIdentical((*answers)[i],
                            direct.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1))) {
            ++mismatches[c];
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(mismatches[c], 0) << "client " << c;
  EXPECT_EQ(server_->connections_accepted(), static_cast<uint64_t>(kClients));
  EXPECT_EQ(engine_->stats().queries,
            static_cast<uint64_t>(kClients) * kQueriesPerClient);
}

TEST_F(LoopbackTest, MetaStatsAndServerSideValidation) {
  StartServer({8, 8, 12}, 53);
  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());

  auto meta = client->Meta();
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->dims, (grid::Dims{8, 8, 12}));
  EXPECT_EQ(meta->meta, snapshot_.meta);

  // An invalid batch is answered with an error frame, and the connection
  // stays usable for the next (valid) request.
  auto bad = client->Query({{0, 99, 0, 0, 0, 0}});
  EXPECT_FALSE(bad.ok());
  auto good = client->Query({{0, 1, 0, 1, 0, 1}});
  ASSERT_TRUE(good.ok());

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"queries\""), std::string::npos);
  EXPECT_NE(stats->find("\"cache_hit_rate\""), std::string::npos);
}

TEST_F(LoopbackTest, MalformedFrameAndDisconnectsDoNotKillServer) {
  StartServer({6, 6, 6}, 57);

  // Client 1: connects and vanishes without a word.
  {
    auto ghost = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(ghost.ok());
  }

  // Client 2: raw socket spewing garbage (a huge frame length).
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const uint8_t garbage[8] = {0xFF, 0xFF, 0xFF, 0xFF, 0xDE, 0xAD, 0xBE, 0xEF};
    ASSERT_EQ(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 8);
    // The server answers with an error frame (or just closes); either way
    // the connection winds down without taking the server with it.
    uint8_t buf[256];
    while (::recv(fd, buf, sizeof(buf), 0) > 0) {
    }
    ::close(fd);
  }

  // Client 3: normal service still works.
  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  auto answers = client->Query({{0, 2, 0, 2, 0, 2}});
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
}

TEST_F(LoopbackTest, ShutdownFrameUnblocksWait) {
  StartServer({5, 5, 5}, 59);
  std::thread waiter([&] { server_->Wait(); });
  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Shutdown().ok());
  waiter.join();  // Wait() returned, so the shutdown request took effect
  server_->Stop();
}

// --- Options validation and metrics export ---------------------------------

TEST(TcpServerTest, CreateRejectsInvalidOptions) {
  auto engine = QueryServer::Create(MakeTestSnapshot({4, 4, 4}));
  ASSERT_TRUE(engine.ok());

  EXPECT_FALSE(TcpServer::Create(nullptr, TcpServerOptions{}).ok());

  TcpServerOptions bad_port;
  bad_port.port = 70000;
  EXPECT_FALSE(TcpServer::Create(&*engine, bad_port).ok());
  bad_port.port = -1;
  EXPECT_FALSE(TcpServer::Create(&*engine, bad_port).ok());

  TcpServerOptions bad_backlog;
  bad_backlog.listen_backlog = 0;
  EXPECT_FALSE(TcpServer::Create(&*engine, bad_backlog).ok());

  TcpServerOptions bad_bind;
  bad_bind.bind_address = "not-an-address";
  auto created = TcpServer::Create(&*engine, bad_bind);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
}

/// Extracts the value of a Prometheus sample line `name value` from `text`.
/// Returns -1 when the metric is absent.
double PrometheusValue(const std::string& text, const std::string& name) {
  size_t pos = 0;
  const std::string needle = name + " ";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    // Must be at the start of a line (exposition samples, not HELP text).
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::strtod(text.c_str() + pos + needle.size(), nullptr);
    }
    pos += needle.size();
  }
  return -1.0;
}

/// Runs the same batched workload through a loopback server at `threads`
/// exec threads and requires the cache counters reported by the `metrics`
/// wire command to exactly match the `stats` counters.
void RunMetricsMatchesStats(int threads) {
  const int prev_threads = exec::Threads();
  exec::SetThreads(threads);
  const grid::Dims dims{10, 10, 18};
  const Snapshot snap = MakeTestSnapshot(dims, 61);
  auto engine = QueryServer::Create(snap);
  ASSERT_TRUE(engine.ok());
  auto server = TcpServer::Create(&*engine, TcpServerOptions{});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  const query::Workload wl = MakeQueries(dims, 256, 67);
  // Two identical passes: the second one is cache-hot.
  for (int pass = 0; pass < 2; ++pass) {
    auto answers = client->Query(wl);
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
    ASSERT_EQ(answers->size(), wl.size());
  }

  auto text = client->Metrics();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  const ServerStats stats = engine->stats();
  EXPECT_EQ(stats.queries, 512u);
  EXPECT_EQ(PrometheusValue(*text, "stpt_serve_queries_total"),
            static_cast<double>(stats.queries));
  EXPECT_EQ(PrometheusValue(*text, "stpt_serve_cache_hits_total"),
            static_cast<double>(stats.cache_hits));
  EXPECT_EQ(PrometheusValue(*text, "stpt_serve_cache_misses_total"),
            static_cast<double>(stats.cache_misses));
  // The payload also carries the process-global registry (exec/dp metrics).
  EXPECT_NE(text->find("# TYPE stpt_serve_query_latency_ns histogram"),
            std::string::npos);

  (*server)->Stop();
  exec::SetThreads(prev_threads);
}

TEST(MetricsExportTest, WireMetricsMatchStatsSingleThread) {
  RunMetricsMatchesStats(1);
}

TEST(MetricsExportTest, WireMetricsMatchStatsEightThreads) {
  RunMetricsMatchesStats(8);
}

TEST(MetricsExportTest, RegistriesArePerEngineInstance) {
  const Snapshot snap = MakeTestSnapshot({6, 6, 6});
  auto a = QueryServer::Create(snap);
  auto b = QueryServer::Create(snap);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a->Answer({0, 1, 0, 1, 0, 1}).ok());
  EXPECT_EQ(a->stats().queries, 1u);
  EXPECT_EQ(b->stats().queries, 0u);
  EXPECT_NE(a->metrics().ToPrometheusText().find("stpt_serve_queries_total 1"),
            std::string::npos);
}

}  // namespace
}  // namespace stpt::serve
