#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "exec/thread_pool.h"
#include "fuzz/fuzz_util.h"
#include "fuzz/targets.h"
#include "grid/consumption_matrix.h"
#include "gtest/gtest.h"
#include "query/range_query.h"
#include "serve/client.h"
#include "serve/event_loop.h"
#include "serve/query_server.h"
#include "serve/registry.h"
#include "serve/snapshot.h"
#include "serve/wire.h"

namespace stpt::serve {
namespace {

grid::ConsumptionMatrix MakeMatrix(grid::Dims dims, uint64_t seed) {
  auto matrix = grid::ConsumptionMatrix::Create(dims);
  EXPECT_TRUE(matrix.ok());
  Rng rng(seed);
  for (double& v : matrix->mutable_data()) {
    // Mix magnitudes and signs so bit-identity checks are meaningful.
    v = rng.Gaussian(0.0, 100.0) + rng.Laplace(0.5);
  }
  return std::move(*matrix);
}

Snapshot MakeTestSnapshot(grid::Dims dims = {6, 5, 9}, uint64_t seed = 42) {
  SnapshotMeta meta;
  meta.algorithm = "stpt";
  meta.eps_total = 30.0;
  meta.eps_pattern = 10.0;
  meta.eps_sanitize = 20.0;
  meta.t_train = 100;
  return Snapshot::FromMatrix(MakeMatrix(dims, seed), meta);
}

bool BitIdentical(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

query::Workload MakeQueries(const grid::Dims& dims, int count, uint64_t seed) {
  Rng rng(seed);
  auto wl = query::MakeWorkload(query::WorkloadKind::kRandom, dims, count, rng);
  EXPECT_TRUE(wl.ok());
  return std::move(*wl);
}

/// Patches `bytes` in place and rewrites the CRC trailer so that decoding
/// reaches the structural check under test instead of failing the CRC.
void Recrc(std::vector<uint8_t>& bytes) {
  const uint32_t crc = Crc32(bytes.data(), bytes.size() - 4);
  bytes[bytes.size() - 4] = static_cast<uint8_t>(crc);
  bytes[bytes.size() - 3] = static_cast<uint8_t>(crc >> 8);
  bytes[bytes.size() - 2] = static_cast<uint8_t>(crc >> 16);
  bytes[bytes.size() - 1] = static_cast<uint8_t>(crc >> 24);
}

// --- Snapshot container ----------------------------------------------------

TEST(SnapshotTest, EncodeDecodeBitIdentity) {
  const Snapshot snap = MakeTestSnapshot();
  const std::vector<uint8_t> bytes = EncodeSnapshot(snap);
  auto decoded = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->meta, snap.meta);
  EXPECT_EQ(decoded->sanitized.dims(), snap.sanitized.dims());
  ASSERT_EQ(decoded->sanitized.size(), snap.sanitized.size());
  EXPECT_EQ(0, std::memcmp(decoded->sanitized.data().data(),
                           snap.sanitized.data().data(),
                           snap.sanitized.size() * sizeof(double)));
  ASSERT_EQ(decoded->prefix.size(), snap.prefix.size());
  EXPECT_EQ(0, std::memcmp(decoded->prefix.data(), snap.prefix.data(),
                           snap.prefix.size() * sizeof(double)));
}

TEST(SnapshotTest, FileRoundTripBitIdentity) {
  const Snapshot snap = MakeTestSnapshot({4, 7, 11}, 7);
  const std::string path = testing::TempDir() + "/roundtrip.stpt";
  ASSERT_TRUE(WriteSnapshot(snap, path).ok());
  auto loaded = ReadSnapshot(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta, snap.meta);
  EXPECT_EQ(0, std::memcmp(loaded->sanitized.data().data(),
                           snap.sanitized.data().data(),
                           snap.sanitized.size() * sizeof(double)));
  EXPECT_EQ(0, std::memcmp(loaded->prefix.data(), snap.prefix.data(),
                           snap.prefix.size() * sizeof(double)));
}

TEST(SnapshotTest, NormalizationExtremaRecorded) {
  const Snapshot snap = MakeTestSnapshot();
  EXPECT_EQ(snap.meta.norm_min, snap.sanitized.MinValue());
  EXPECT_EQ(snap.meta.norm_max, snap.sanitized.MaxValue());
}

TEST(SnapshotTest, TruncationAndBitflipRejectedEverywhere) {
  // Exhaustive: every strict prefix and every single-bit corruption must be
  // rejected with a Status, never a crash. The sweep helper is shared with
  // the fuzz_snapshot_replay harness, so unit tests and corpus replay
  // exercise byte-identical robustness logic.
  const std::vector<uint8_t> bytes = EncodeSnapshot(MakeTestSnapshot({3, 3, 4}));
  const fuzz::SweepStats stats = fuzz::TruncationAndBitflipSweep(
      bytes, [](const uint8_t* data, size_t size) {
        return DecodeSnapshot(data, size).ok();
      });
  EXPECT_EQ(stats.accepted, 0u);
  // All prefixes plus eight flips per byte were actually tried.
  EXPECT_EQ(stats.cases, bytes.size() + 8 * bytes.size());
}

TEST(SnapshotTest, CheckedInCorpusReplaysClean) {
  // The seed corpus must decode without crashing; every committed crash-*
  // regression input must be rejected (each pins a fixed decoder bug).
  const auto corpus =
      fuzz::LoadCorpus(std::string(STPT_SOURCE_DIR) + "/fuzz/corpus/snapshot");
  ASSERT_FALSE(corpus.empty());
  size_t valid = 0;
  for (const auto& entry : corpus) {
    auto decoded = DecodeSnapshot(entry.bytes.data(), entry.bytes.size());
    if (entry.name.rfind("crash-", 0) == 0) {
      EXPECT_FALSE(decoded.ok()) << entry.name << " must stay rejected";
    }
    if (decoded.ok()) ++valid;
  }
  EXPECT_GE(valid, 3u) << "seed-valid-* containers should decode";
}

TEST(SnapshotTest, HugeDimsHeaderWithoutBodyRejected) {
  // Regression for fuzz/corpus/snapshot/crash-huge-dims-no-body.stpt: a
  // CRC-valid 80-byte container declaring 2048^3 cells used to reach the
  // 64 GiB matrix allocation before noticing the body bytes are missing.
  const auto corpus = fuzz::LoadCorpus(
      std::string(STPT_SOURCE_DIR) +
      "/fuzz/corpus/snapshot/crash-huge-dims-no-body.stpt");
  ASSERT_EQ(corpus.size(), 1u);
  auto decoded = DecodeSnapshot(corpus[0].bytes.data(), corpus[0].bytes.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(decoded.status().message().find("truncated"), std::string::npos);
}

TEST(SnapshotTest, CorruptedByteFailsChecksum) {
  std::vector<uint8_t> bytes = EncodeSnapshot(MakeTestSnapshot());
  bytes[bytes.size() / 2] ^= 0x10;  // one bit flip in the matrix payload
  auto decoded = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(decoded.status().message().find("checksum"), std::string::npos);
}

TEST(SnapshotTest, TruncatedFileRejected) {
  const std::vector<uint8_t> bytes = EncodeSnapshot(MakeTestSnapshot());
  const std::string path = testing::TempDir() + "/truncated.stpt";
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fwrite(bytes.data(), 1, bytes.size() - 17, f);
  fclose(f);
  auto loaded = ReadSnapshot(path);
  EXPECT_FALSE(loaded.ok());
}

TEST(SnapshotTest, BadMagicRejected) {
  std::vector<uint8_t> bytes = EncodeSnapshot(MakeTestSnapshot());
  bytes[0] = 'X';
  Recrc(bytes);
  auto decoded = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("magic"), std::string::npos);
}

TEST(SnapshotTest, UnsupportedVersionRejected) {
  std::vector<uint8_t> bytes = EncodeSnapshot(MakeTestSnapshot());
  bytes[4] = 99;
  Recrc(bytes);
  auto decoded = DecodeSnapshot(bytes.data(), bytes.size());
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("version"), std::string::npos);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  auto loaded = ReadSnapshot(testing::TempDir() + "/does-not-exist.stpt");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

// --- QueryServer -----------------------------------------------------------

TEST(QueryServerTest, AnswersBitIdenticalToDirectEvaluation) {
  const grid::Dims dims{12, 10, 30};
  const Snapshot snap = MakeTestSnapshot(dims, 3);
  const grid::PrefixSum3D direct(snap.sanitized);
  auto server = QueryServer::Create(snap);
  ASSERT_TRUE(server.ok());
  for (const query::RangeQuery& q : MakeQueries(dims, 500, 11)) {
    auto got = server->Answer(q);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(
        BitIdentical(*got, direct.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1)));
  }
}

TEST(QueryServerTest, CachedEqualsUncached) {
  const grid::Dims dims{10, 10, 20};
  const Snapshot snap = MakeTestSnapshot(dims, 5);
  auto cached = QueryServer::Create(snap, {.cache_shards = 4, .cache_capacity = 1024});
  auto uncached = QueryServer::Create(snap, {.cache_capacity = 0});
  ASSERT_TRUE(cached.ok());
  ASSERT_TRUE(uncached.ok());
  const query::Workload wl = MakeQueries(dims, 300, 13);
  // Two passes through the cached server: the second is served from the
  // LRU and must still be bit-identical to the cache-free engine.
  for (int pass = 0; pass < 2; ++pass) {
    for (const query::RangeQuery& q : wl) {
      auto a = cached->Answer(q);
      auto b = uncached->Answer(q);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_TRUE(BitIdentical(*a, *b));
    }
  }
  const ServerStats stats = cached->stats();
  EXPECT_EQ(stats.queries, 600u);
  EXPECT_GE(stats.cache_hits, 300u);  // second pass is all hits
  EXPECT_GT(stats.hit_rate(), 0.49);
  EXPECT_EQ(uncached->stats().cache_hits, 0u);
}

TEST(QueryServerTest, TinyCacheEvictsButStaysCorrect) {
  const grid::Dims dims{8, 8, 16};
  const Snapshot snap = MakeTestSnapshot(dims, 9);
  const grid::PrefixSum3D direct(snap.sanitized);
  auto server = QueryServer::Create(snap, {.cache_shards = 2, .cache_capacity = 8});
  ASSERT_TRUE(server.ok());
  for (const query::RangeQuery& q : MakeQueries(dims, 400, 17)) {
    auto got = server->Answer(q);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(
        BitIdentical(*got, direct.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1)));
  }
}

TEST(QueryServerTest, BatchMatchesSingleAnswers) {
  const grid::Dims dims{9, 9, 25};
  const Snapshot snap = MakeTestSnapshot(dims, 21);
  auto batch_server = QueryServer::Create(snap);
  auto single_server = QueryServer::Create(snap);
  ASSERT_TRUE(batch_server.ok());
  ASSERT_TRUE(single_server.ok());
  const query::Workload wl = MakeQueries(dims, 257, 23);
  auto batched = batch_server->AnswerBatch(wl);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ASSERT_EQ(batched->size(), wl.size());
  for (size_t i = 0; i < wl.size(); ++i) {
    auto got = single_server->Answer(wl[i]);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(BitIdentical((*batched)[i], *got));
  }
}

TEST(QueryServerTest, InvalidQueriesRejected) {
  auto server = QueryServer::Create(MakeTestSnapshot({5, 5, 5}));
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE(server->Answer({0, 5, 0, 0, 0, 0}).ok());  // x1 == cx
  EXPECT_FALSE(server->Answer({2, 1, 0, 0, 0, 0}).ok());  // unordered
  EXPECT_FALSE(server->Answer({0, 0, -1, 0, 0, 0}).ok());

  auto batched = server->AnswerBatch({{0, 0, 0, 0, 0, 0}, {0, 9, 0, 0, 0, 0}});
  ASSERT_FALSE(batched.ok());
  EXPECT_NE(batched.status().message().find("query 1"), std::string::npos);
  EXPECT_EQ(server->stats().invalid, 4u);
}

TEST(QueryServerTest, CreateRejectsInvalidOptions) {
  const Snapshot snap = MakeTestSnapshot({4, 4, 4});
  auto server = QueryServer::Create(snap, {.cache_shards = 0});
  ASSERT_FALSE(server.ok());
  EXPECT_EQ(server.status().code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(QueryServer::Create(snap, {.cache_shards = -3}).ok());
}

TEST(QueryServerTest, StatsTrackLatencyAndResetClears) {
  auto server = QueryServer::Create(MakeTestSnapshot({6, 6, 12}));
  ASSERT_TRUE(server.ok());
  for (const query::RangeQuery& q : MakeQueries({6, 6, 12}, 100, 31)) {
    ASSERT_TRUE(server->Answer(q).ok());
  }
  ServerStats stats = server->stats();
  EXPECT_EQ(stats.queries, 100u);
  EXPECT_GT(stats.p50_ns, 0u);
  EXPECT_GE(stats.p99_ns, stats.p50_ns);
  EXPECT_NE(stats.ToJson().find("\"queries\": 100"), std::string::npos);
  server->ResetStats();
  stats = server->stats();
  EXPECT_EQ(stats.queries, 0u);
  EXPECT_EQ(stats.p99_ns, 0u);
}

TEST(QueryServerTest, OpenFromDiskServesLoadedPrefixSums) {
  const grid::Dims dims{7, 9, 14};
  const Snapshot snap = MakeTestSnapshot(dims, 37);
  const std::string path = testing::TempDir() + "/served.stpt";
  ASSERT_TRUE(WriteSnapshot(snap, path).ok());
  auto server = QueryServer::Open(path);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  EXPECT_EQ(server->dims(), dims);
  EXPECT_EQ(server->meta().algorithm, "stpt");
  const grid::PrefixSum3D direct(snap.sanitized);
  for (const query::RangeQuery& q : MakeQueries(dims, 200, 41)) {
    auto got = server->Answer(q);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(
        BitIdentical(*got, direct.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1)));
  }
}

// --- Wire codecs -----------------------------------------------------------

TEST(WireTest, QueryRequestRoundTrip) {
  const query::Workload wl = MakeQueries({16, 16, 32}, 50, 43);
  auto decoded = DecodeQueryRequest(EncodeQueryRequest(wl));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, wl);
}

TEST(WireTest, QueryResponseRoundTrip) {
  const std::vector<double> answers = {0.0, -1.5, 3.25e300, 5e-324, 42.0};
  auto decoded = DecodeQueryResponse(EncodeQueryResponse(answers));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), answers.size());
  for (size_t i = 0; i < answers.size(); ++i) {
    EXPECT_TRUE(BitIdentical((*decoded)[i], answers[i]));
  }
}

TEST(WireTest, StringAndMetaRoundTrip) {
  auto text = DecodeString(EncodeString("hello stats"));
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "hello stats");

  WireMeta meta;
  meta.dims = {32, 32, 120};
  meta.meta.algorithm = "fourier10";
  meta.meta.eps_total = 12.5;
  meta.meta.eps_sanitize = 12.5;
  meta.meta.norm_min = -3.0;
  meta.meta.norm_max = 9.75;
  meta.meta.t_train = 100;
  auto decoded = DecodeMetaResponse(EncodeMetaResponse(meta));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->dims, meta.dims);
  EXPECT_EQ(decoded->meta, meta.meta);
}

TEST(WireTest, MalformedPayloadsRejected) {
  EXPECT_FALSE(DecodeQueryRequest({0x01}).ok());  // short header
  std::vector<uint8_t> wrong_len = EncodeQueryRequest(MakeQueries({4, 4, 4}, 3, 1));
  wrong_len.pop_back();
  EXPECT_FALSE(DecodeQueryRequest(wrong_len).ok());
  EXPECT_FALSE(DecodeQueryResponse({0xFF, 0xFF, 0xFF, 0xFF}).ok());
  EXPECT_FALSE(DecodeString({0x05, 0x00, 0x00, 0x00, 'a'}).ok());
  EXPECT_FALSE(DecodeMetaResponse({0x01, 0x02}).ok());
}

TEST(WireTest, QueryRequestTruncationSweepRejectsEveryPrefix) {
  // Shared sweep helper: the codec must survive every strict prefix and
  // every single-bit flip of a valid payload without crashing. Bit flips
  // may still decode (no checksum on wire payloads) but truncations must
  // not: the trailing-length check catches every short payload.
  const std::vector<uint8_t> payload =
      EncodeQueryRequest(MakeQueries({6, 6, 8}, 5, 3));
  size_t prefix_accepted = 0;
  const fuzz::SweepStats stats = fuzz::TruncationAndBitflipSweep(
      payload, [&](const uint8_t* data, size_t size) {
        const bool ok =
            DecodeQueryRequest(std::vector<uint8_t>(data, data + size)).ok();
        if (ok && size < payload.size()) ++prefix_accepted;
        return ok;
      });
  EXPECT_GT(stats.cases, payload.size());
  EXPECT_EQ(prefix_accepted, 0u);
}

TEST(WireTest, CheckedInCorpusReplaysClean) {
  // Every committed wire corpus entry must run through the full harness
  // (codec selector + frame-stream path) without crashing.
  const auto corpus =
      fuzz::LoadCorpus(std::string(STPT_SOURCE_DIR) + "/fuzz/corpus/wire");
  ASSERT_FALSE(corpus.empty());
  for (const auto& entry : corpus) {
    fuzz::FuzzWire(entry.bytes.data(), entry.bytes.size());
  }
}

TEST(WireTest, FrameRoundTripOverSocketPair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::vector<uint8_t> payload = EncodeString("ping");
  ASSERT_TRUE(WriteFrame(fds[0], MsgType::kStatsResponse, payload).ok());
  auto frame = ReadFrame(fds[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->type, MsgType::kStatsResponse);
  EXPECT_EQ(frame->payload, payload);

  // Clean close reads as the dedicated "connection closed" status.
  ::close(fds[0]);
  auto closed = ReadFrame(fds[1]);
  ASSERT_FALSE(closed.ok());
  EXPECT_TRUE(IsConnectionClosed(closed.status()));
  ::close(fds[1]);
}

TEST(WireTest, MalformedFramesRejected) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // Zero-length frame.
  const uint8_t zero[4] = {0, 0, 0, 0};
  ASSERT_EQ(::send(fds[0], zero, 4, 0), 4);
  EXPECT_FALSE(ReadFrame(fds[1]).ok());
  // Oversized frame length.
  const uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0x7F};
  ASSERT_EQ(::send(fds[0], huge, 4, 0), 4);
  EXPECT_FALSE(ReadFrame(fds[1]).ok());
  // Unknown message type.
  const uint8_t unknown[5] = {1, 0, 0, 0, 0xEE};
  ASSERT_EQ(::send(fds[0], unknown, 5, 0), 5);
  EXPECT_FALSE(ReadFrame(fds[1]).ok());
  // Truncated payload then close.
  const uint8_t partial[6] = {10, 0, 0, 0, 1, 0x42};
  ASSERT_EQ(::send(fds[0], partial, 6, 0), 6);
  ::close(fds[0]);
  auto truncated = ReadFrame(fds[1]);
  ASSERT_FALSE(truncated.ok());
  EXPECT_FALSE(IsConnectionClosed(truncated.status()));
  ::close(fds[1]);
}

/// Extracts the value of a Prometheus sample line `name value` from `text`.
/// Returns -1 when the metric is absent.
double PrometheusValue(const std::string& text, const std::string& name) {
  size_t pos = 0;
  const std::string needle = name + " ";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    // Must be at the start of a line (exposition samples, not HELP text).
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::strtod(text.c_str() + pos + needle.size(), nullptr);
    }
    pos += needle.size();
  }
  return -1.0;
}

// --- Wire v2 codecs --------------------------------------------------------

TEST(WireV2Test, TenantQueryRequestRoundTrip) {
  TenantQueryRequest request;
  request.tenant = "acme";
  request.tile = "tile-7";
  request.epoch = 42;
  request.batch = MakeQueries({16, 16, 32}, 20, 71);
  auto decoded = DecodeTenantQueryRequest(EncodeTenantQueryRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, request);

  // Empty names (default shard) and epoch 0 (current generation) are valid.
  TenantQueryRequest defaults;
  defaults.batch = MakeQueries({4, 4, 4}, 3, 73);
  auto decoded_defaults =
      DecodeTenantQueryRequest(EncodeTenantQueryRequest(defaults));
  ASSERT_TRUE(decoded_defaults.ok());
  EXPECT_EQ(*decoded_defaults, defaults);
}

TEST(WireV2Test, TenantQueryResponseRoundTripBitIdentical) {
  TenantQueryResponse response;
  response.epoch = 9;
  response.answers = {0.0, -1.5, 3.25e300, 5e-324, 42.0};
  auto decoded = DecodeTenantQueryResponse(EncodeTenantQueryResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->epoch, 9u);
  ASSERT_EQ(decoded->answers.size(), response.answers.size());
  for (size_t i = 0; i < response.answers.size(); ++i) {
    EXPECT_TRUE(BitIdentical(decoded->answers[i], response.answers[i]));
  }
}

TEST(WireV2Test, AdminRequestRoundTripAndValidation) {
  for (const AdminVerb verb : {AdminVerb::kLoad, AdminVerb::kSwap}) {
    AdminRequest request;
    request.verb = verb;
    request.tenant = "acme";
    request.tile = "0";
    request.path = "/var/lib/stpt/release.stpt";
    auto decoded = DecodeAdminRequest(EncodeAdminRequest(request));
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(*decoded, request);
  }
  AdminRequest unload;
  unload.verb = AdminVerb::kUnload;
  unload.tenant = "acme";
  unload.tile = "0";
  auto decoded = DecodeAdminRequest(EncodeAdminRequest(unload));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, unload);

  // Semantic validation: unload must not carry a path, load/swap must.
  AdminRequest bad_unload = unload;
  bad_unload.path = "/some/path";
  EXPECT_FALSE(DecodeAdminRequest(EncodeAdminRequest(bad_unload)).ok());
  AdminRequest bad_load;
  bad_load.verb = AdminVerb::kLoad;
  EXPECT_FALSE(DecodeAdminRequest(EncodeAdminRequest(bad_load)).ok());

  // Out-of-range verb byte.
  std::vector<uint8_t> bytes = EncodeAdminRequest(unload);
  bytes[0] = 0;
  EXPECT_FALSE(DecodeAdminRequest(bytes).ok());
  bytes[0] = 4;
  EXPECT_FALSE(DecodeAdminRequest(bytes).ok());
}

TEST(WireV2Test, AdminResponseAndShardStatsRoundTrip) {
  AdminResponse response;
  response.verb = AdminVerb::kSwap;
  response.epoch = 17;
  response.message = "ok";
  auto decoded = DecodeAdminResponse(EncodeAdminResponse(response));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, response);

  ShardStatsRequest stats;
  stats.tenant = "acme";
  stats.tile = "";
  auto decoded_stats = DecodeShardStatsRequest(EncodeShardStatsRequest(stats));
  ASSERT_TRUE(decoded_stats.ok());
  EXPECT_EQ(*decoded_stats, stats);
}

TEST(WireV2Test, OversizedNamesRejected) {
  TenantQueryRequest request;
  request.tenant = std::string(kMaxWireNameBytes + 1, 'x');
  request.batch = MakeQueries({4, 4, 4}, 1, 79);
  EXPECT_FALSE(
      DecodeTenantQueryRequest(EncodeTenantQueryRequest(request)).ok());

  AdminRequest admin;
  admin.verb = AdminVerb::kLoad;
  admin.path = std::string(kMaxWirePathBytes + 1, 'p');
  EXPECT_FALSE(DecodeAdminRequest(EncodeAdminRequest(admin)).ok());
}

TEST(WireV2Test, TruncationSweepRejectsEveryPrefix) {
  // Strict codecs: every strict prefix must fail, and no case may crash.
  TenantQueryRequest request;
  request.tenant = "acme";
  request.tile = "0";
  request.epoch = 3;
  request.batch = MakeQueries({6, 6, 8}, 4, 83);
  const std::vector<std::vector<uint8_t>> payloads = {
      EncodeTenantQueryRequest(request),
      EncodeTenantQueryResponse({5, {1.0, -2.0, 0.5}, {}}),
      EncodeAdminRequest({AdminVerb::kSwap, "acme", "0", "/tmp/a.stpt", {}}),
      EncodeAdminResponse({AdminVerb::kLoad, 1, "ok", {}}),
      EncodeShardStatsRequest({"acme", "0"}),
  };
  const std::vector<std::function<bool(const uint8_t*, size_t)>> decoders = {
      [](const uint8_t* d, size_t n) {
        return DecodeTenantQueryRequest({d, d + n}).ok();
      },
      [](const uint8_t* d, size_t n) {
        return DecodeTenantQueryResponse({d, d + n}).ok();
      },
      [](const uint8_t* d, size_t n) { return DecodeAdminRequest({d, d + n}).ok(); },
      [](const uint8_t* d, size_t n) { return DecodeAdminResponse({d, d + n}).ok(); },
      [](const uint8_t* d, size_t n) {
        return DecodeShardStatsRequest({d, d + n}).ok();
      },
  };
  for (size_t k = 0; k < payloads.size(); ++k) {
    size_t prefix_accepted = 0;
    const fuzz::SweepStats stats = fuzz::TruncationAndBitflipSweep(
        payloads[k], [&](const uint8_t* data, size_t size) {
          const bool ok = decoders[k](data, size);
          if (ok && size < payloads[k].size()) ++prefix_accepted;
          return ok;
        });
    EXPECT_GT(stats.cases, payloads[k].size()) << "payload " << k;
    EXPECT_EQ(prefix_accepted, 0u) << "payload " << k;
  }
}

TEST(FrameDecoderTest, ReassemblesFramesFromSingleByteChunks) {
  std::vector<uint8_t> stream;
  auto append_frame = [&stream](MsgType type, const std::vector<uint8_t>& payload) {
    const uint32_t length = static_cast<uint32_t>(1 + payload.size());
    stream.push_back(static_cast<uint8_t>(length));
    stream.push_back(static_cast<uint8_t>(length >> 8));
    stream.push_back(static_cast<uint8_t>(length >> 16));
    stream.push_back(static_cast<uint8_t>(length >> 24));
    stream.push_back(static_cast<uint8_t>(type));
    stream.insert(stream.end(), payload.begin(), payload.end());
  };
  const std::vector<uint8_t> query =
      EncodeQueryRequest(MakeQueries({4, 4, 4}, 2, 89));
  append_frame(MsgType::kStatsRequest, {});
  append_frame(MsgType::kQueryRequest, query);
  append_frame(MsgType::kShardStatsRequest,
               EncodeShardStatsRequest({"a", "b"}));

  FrameDecoder decoder;
  std::vector<Frame> frames;
  for (const uint8_t byte : stream) {
    decoder.Append(&byte, 1);
    Frame frame;
    auto ready = decoder.Next(&frame);
    ASSERT_TRUE(ready.ok());
    if (*ready) frames.push_back(std::move(frame));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].type, MsgType::kStatsRequest);
  EXPECT_TRUE(frames[0].payload.empty());
  EXPECT_EQ(frames[1].type, MsgType::kQueryRequest);
  EXPECT_EQ(frames[1].payload, query);
  EXPECT_EQ(frames[2].type, MsgType::kShardStatsRequest);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameDecoderTest, MalformedStreamPoisonsDecoder) {
  {  // zero frame length
    FrameDecoder decoder;
    const uint8_t zero[5] = {0, 0, 0, 0, 1};
    decoder.Append(zero, sizeof(zero));
    Frame frame;
    EXPECT_FALSE(decoder.Next(&frame).ok());
    EXPECT_FALSE(decoder.Next(&frame).ok());  // stays poisoned
  }
  {  // oversized frame length
    FrameDecoder decoder;
    const uint8_t huge[4] = {0xFF, 0xFF, 0xFF, 0x7F};
    decoder.Append(huge, sizeof(huge));
    Frame frame;
    EXPECT_FALSE(decoder.Next(&frame).ok());
  }
  {  // unknown message type
    FrameDecoder decoder;
    const uint8_t unknown[5] = {1, 0, 0, 0, 0xEE};
    decoder.Append(unknown, sizeof(unknown));
    Frame frame;
    EXPECT_FALSE(decoder.Next(&frame).ok());
  }
}

// --- SnapshotRegistry ------------------------------------------------------

TEST(RegistryTest, LoadRouteSwapUnloadLifecycle) {
  const grid::Dims dims{8, 8, 10};
  const Snapshot snap_a = MakeTestSnapshot(dims, 11);
  const Snapshot snap_b = MakeTestSnapshot(dims, 22);
  const grid::PrefixSum3D direct_a(snap_a.sanitized);
  const grid::PrefixSum3D direct_b(snap_b.sanitized);

  auto registry = SnapshotRegistry::Create();
  ASSERT_TRUE(registry.ok());
  const ShardKey key{"acme", "0"};
  auto epoch = (*registry)->Load(key, snap_a);
  ASSERT_TRUE(epoch.ok());
  EXPECT_EQ(*epoch, 1u);
  EXPECT_EQ((*registry)->shard_count(), 1u);

  auto gen = (*registry)->Route("acme", "0");
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ((*gen)->epoch, 1u);
  const query::RangeQuery q{0, 3, 1, 4, 2, 7};
  auto a = (*gen)->engine->Answer(q);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(BitIdentical(*a, direct_a.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1)));

  auto swapped = (*registry)->Swap(key, snap_b);
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(*swapped, 2u);
  auto gen2 = (*registry)->Route("acme", "0");
  ASSERT_TRUE(gen2.ok());
  EXPECT_EQ((*gen2)->epoch, 2u);
  auto b = (*gen2)->engine->Answer(q);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(BitIdentical(*b, direct_b.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1)));

  // Explicit-epoch routing: current matches, swapped-out epochs are gone.
  EXPECT_TRUE((*registry)->Route("acme", "0", 2).ok());
  auto stale = (*registry)->Route("acme", "0", 1);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kNotFound);

  ASSERT_TRUE((*registry)->Unload(key).ok());
  EXPECT_EQ((*registry)->shard_count(), 0u);
  EXPECT_FALSE((*registry)->Route("acme", "0").ok());
  EXPECT_FALSE((*registry)->Unload(key).ok());  // already gone
}

TEST(RegistryTest, InFlightGenerationSurvivesSwapAndUnload) {
  const grid::Dims dims{6, 6, 8};
  const Snapshot snap_a = MakeTestSnapshot(dims, 31);
  const grid::PrefixSum3D direct_a(snap_a.sanitized);
  auto registry = SnapshotRegistry::Create();
  ASSERT_TRUE(registry.ok());
  const ShardKey key{"t", "0"};
  ASSERT_TRUE((*registry)->Load(key, snap_a).ok());

  // A batch in flight captures the generation once; the swap and even the
  // unload must not pull the engine out from under it.
  auto held = (*registry)->Route("t", "0");
  ASSERT_TRUE(held.ok());
  ASSERT_TRUE((*registry)->Swap(key, MakeTestSnapshot(dims, 32)).ok());
  ASSERT_TRUE((*registry)->Unload(key).ok());
  const query::RangeQuery q{1, 4, 0, 5, 2, 6};
  auto answer = (*held)->engine->Answer(q);
  ASSERT_TRUE(answer.ok());
  EXPECT_TRUE(BitIdentical(
      *answer, direct_a.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1)));
  EXPECT_EQ((*held)->epoch, 1u);
}

TEST(RegistryTest, DuplicateLoadAndMissingSwapRejected) {
  auto registry = SnapshotRegistry::Create();
  ASSERT_TRUE(registry.ok());
  const ShardKey key{"acme", "0"};
  ASSERT_TRUE((*registry)->Load(key, MakeTestSnapshot()).ok());

  auto dup = (*registry)->Load(key, MakeTestSnapshot());
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kFailedPrecondition);

  auto missing = (*registry)->Swap(ShardKey{"ghost", "0"}, MakeTestSnapshot());
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(RegistryTest, NamesAndOptionsValidated) {
  SnapshotRegistryOptions no_capacity;
  no_capacity.max_shards = 0;
  EXPECT_FALSE(SnapshotRegistry::Create(no_capacity).ok());

  auto registry = SnapshotRegistry::Create();
  ASSERT_TRUE(registry.ok());
  EXPECT_FALSE((*registry)->Load(ShardKey{"", "0"}, MakeTestSnapshot()).ok());
  EXPECT_FALSE((*registry)->Load(ShardKey{"t", ""}, MakeTestSnapshot()).ok());
  const std::string oversized(kMaxShardNameBytes + 1, 'x');
  auto too_long = (*registry)->Load(ShardKey{oversized, "0"}, MakeTestSnapshot());
  ASSERT_FALSE(too_long.ok());
  EXPECT_EQ(too_long.status().code(), StatusCode::kInvalidArgument);
}

TEST(RegistryTest, MaxShardsEnforced) {
  SnapshotRegistryOptions two_slots;
  two_slots.max_shards = 2;
  auto registry = SnapshotRegistry::Create(two_slots);
  ASSERT_TRUE(registry.ok());
  ASSERT_TRUE((*registry)->Load(ShardKey{"a", "0"}, MakeTestSnapshot()).ok());
  ASSERT_TRUE((*registry)->Load(ShardKey{"b", "0"}, MakeTestSnapshot()).ok());
  auto third = (*registry)->Load(ShardKey{"c", "0"}, MakeTestSnapshot());
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);
  // Unload frees a slot.
  ASSERT_TRUE((*registry)->Unload(ShardKey{"a", "0"}).ok());
  EXPECT_TRUE((*registry)->Load(ShardKey{"c", "0"}, MakeTestSnapshot()).ok());
}

TEST(RegistryTest, StatsJsonAndLabeledPrometheusFamilies) {
  auto registry = SnapshotRegistry::Create();
  ASSERT_TRUE(registry.ok());
  ASSERT_TRUE((*registry)->Load(ShardKey{"acme", "7"}, MakeTestSnapshot()).ok());
  ASSERT_TRUE((*registry)->Load(ShardKey{"beta", "0"}, MakeTestSnapshot()).ok());
  ASSERT_TRUE((*registry)->Swap(ShardKey{"beta", "0"}, MakeTestSnapshot()).ok());

  const std::string all = (*registry)->StatsJson();
  EXPECT_NE(all.find("\"tenant\": \"acme\""), std::string::npos);
  EXPECT_NE(all.find("\"tenant\": \"beta\""), std::string::npos);
  EXPECT_NE(all.find("\"loads_total\": 2"), std::string::npos);
  EXPECT_NE(all.find("\"swaps_total\": 1"), std::string::npos);

  const std::string filtered = (*registry)->StatsJson("acme");
  EXPECT_NE(filtered.find("\"tenant\": \"acme\""), std::string::npos);
  EXPECT_EQ(filtered.find("\"tenant\": \"beta\""), std::string::npos);

  const std::string text = (*registry)->ToPrometheusText();
  EXPECT_NE(text.find("stpt_shard_epoch{tenant=\"acme\",tile=\"7\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("stpt_shard_epoch{tenant=\"beta\",tile=\"0\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("stpt_registry_swap_latency_ns"), std::string::npos);
}

// --- Event-loop loopback ---------------------------------------------------

class LoopbackTest : public testing::Test {
 protected:
  void StartServer(grid::Dims dims, uint64_t seed,
                   EventLoopOptions options = {}) {
    snapshot_ = MakeTestSnapshot(dims, seed);
    auto registry = SnapshotRegistry::Create();
    ASSERT_TRUE(registry.ok());
    registry_ = std::move(*registry);
    ASSERT_TRUE(registry_
                    ->Load(ShardKey{kDefaultTenant, kDefaultTile},
                           snapshot_)
                    .ok());
    auto server = EventLoopServer::Create(registry_.get(), std::move(options));
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
    ASSERT_TRUE(server_->Start().ok());
  }

  ServerStats DefaultShardStats() {
    auto gen = registry_->RouteDefault();
    EXPECT_TRUE(gen.ok());
    return (*gen)->engine->stats();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  Snapshot snapshot_;
  std::unique_ptr<SnapshotRegistry> registry_;
  std::unique_ptr<EventLoopServer> server_;
};

TEST_F(LoopbackTest, FourConcurrentClientsBitIdenticalToDirectEvaluation) {
  const grid::Dims dims{16, 16, 40};
  StartServer(dims, 51);
  const grid::PrefixSum3D direct(snapshot_.sanitized);

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 600;
  constexpr int kBatch = 64;
  std::vector<int64_t> mismatches(kClients, 0);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      ASSERT_TRUE(client.ok());
      const query::Workload wl =
          MakeQueries(dims, kQueriesPerClient, 1000 + static_cast<uint64_t>(c));
      for (size_t base = 0; base < wl.size(); base += kBatch) {
        const size_t n = std::min<size_t>(kBatch, wl.size() - base);
        const query::Workload batch(wl.begin() + base, wl.begin() + base + n);
        auto answers = client->Query(batch);
        ASSERT_TRUE(answers.ok()) << answers.status().ToString();
        for (size_t i = 0; i < n; ++i) {
          const query::RangeQuery& q = batch[i];
          if (!BitIdentical((*answers)[i],
                            direct.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1))) {
            ++mismatches[c];
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(mismatches[c], 0) << "client " << c;
  EXPECT_EQ(server_->connections_accepted(), static_cast<uint64_t>(kClients));
  EXPECT_EQ(DefaultShardStats().queries,
            static_cast<uint64_t>(kClients) * kQueriesPerClient);
}

TEST_F(LoopbackTest, MetaStatsAndServerSideValidation) {
  StartServer({8, 8, 12}, 53);
  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());

  auto meta = client->Meta();
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->dims, (grid::Dims{8, 8, 12}));
  EXPECT_EQ(meta->meta, snapshot_.meta);

  // An invalid batch is answered with an error frame, and the connection
  // stays usable for the next (valid) request.
  auto bad = client->Query({{0, 99, 0, 0, 0, 0}});
  EXPECT_FALSE(bad.ok());
  auto good = client->Query({{0, 1, 0, 1, 0, 1}});
  ASSERT_TRUE(good.ok());

  auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"queries\""), std::string::npos);
  EXPECT_NE(stats->find("\"cache_hit_rate\""), std::string::npos);
  EXPECT_NE(stats->find("\"registry\""), std::string::npos);
}

TEST_F(LoopbackTest, V1AndV2AddressTheSameDefaultShard) {
  // v1 compatibility: an unaddressed client and a tenant-addressed client
  // hit the same default shard and get bit-identical answers.
  const grid::Dims dims{10, 10, 16};
  StartServer(dims, 55);
  auto v1 = Client::Connect("127.0.0.1", server_->port());
  auto v2 = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  const query::Workload wl = MakeQueries(dims, 128, 59);

  auto old_answers = v1->Query(wl);
  ASSERT_TRUE(old_answers.ok());
  auto addressed = v2->QueryTenant("", "", wl);
  ASSERT_TRUE(addressed.ok()) << addressed.status().ToString();
  EXPECT_EQ(addressed->epoch, 1u);
  auto named = v2->QueryTenant(kDefaultTenant, kDefaultTile, wl);
  ASSERT_TRUE(named.ok());
  ASSERT_EQ(addressed->answers.size(), old_answers->size());
  for (size_t i = 0; i < wl.size(); ++i) {
    EXPECT_TRUE(BitIdentical((*old_answers)[i], addressed->answers[i]));
    EXPECT_TRUE(BitIdentical((*old_answers)[i], named.value().answers[i]));
  }
  // Both protocols' queries landed on one engine.
  EXPECT_EQ(DefaultShardStats().queries, 3u * wl.size());
}

TEST_F(LoopbackTest, MalformedFrameAndDisconnectsDoNotKillServer) {
  StartServer({6, 6, 6}, 57);

  // Client 1: connects and vanishes without a word.
  {
    auto ghost = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(ghost.ok());
  }

  // Client 2: raw socket spewing garbage (a huge frame length).
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const uint8_t garbage[8] = {0xFF, 0xFF, 0xFF, 0xFF, 0xDE, 0xAD, 0xBE, 0xEF};
    ASSERT_EQ(::send(fd, garbage, sizeof(garbage), MSG_NOSIGNAL), 8);
    // The server answers with an error frame (or just closes); either way
    // the connection winds down without taking the server with it.
    uint8_t buf[256];
    while (::recv(fd, buf, sizeof(buf), 0) > 0) {
    }
    ::close(fd);
  }

  // Client 3: normal service still works.
  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  auto answers = client->Query({{0, 2, 0, 2, 0, 2}});
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(answers->size(), 1u);
}

TEST_F(LoopbackTest, ShutdownFrameUnblocksWait) {
  StartServer({5, 5, 5}, 59);
  std::thread waiter([&] { server_->Wait(); });
  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->Shutdown().ok());
  waiter.join();  // Wait() returned, so the shutdown request took effect
  server_->Stop();
  EXPECT_EQ(server_->open_connections(), 0);
}

TEST_F(LoopbackTest, AdminLifecycleOverTheWire) {
  const grid::Dims dims{9, 9, 14};
  StartServer(dims, 61);

  const Snapshot snap_a = MakeTestSnapshot(dims, 71);
  const Snapshot snap_b = MakeTestSnapshot(dims, 72);
  const std::string path_a = testing::TempDir() + "/admin_a.stpt";
  const std::string path_b = testing::TempDir() + "/admin_b.stpt";
  ASSERT_TRUE(WriteSnapshot(snap_a, path_a).ok());
  ASSERT_TRUE(WriteSnapshot(snap_b, path_b).ok());
  const grid::PrefixSum3D direct_a(snap_a.sanitized);
  const grid::PrefixSum3D direct_b(snap_b.sanitized);

  auto client = Client::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());

  // Load a second tenant next to the default shard.
  auto epoch = client->Load("acme", "7", path_a);
  ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
  EXPECT_EQ(*epoch, 1u);
  auto dup = client->Load("acme", "7", path_a);
  ASSERT_FALSE(dup.ok());  // already loaded -> use swap
  auto missing = client->Swap("ghost", "0", path_a);
  ASSERT_FALSE(missing.ok());

  const query::Workload wl = MakeQueries(dims, 64, 73);
  auto before = client->QueryTenant("acme", "7", wl);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->epoch, 1u);
  for (size_t i = 0; i < wl.size(); ++i) {
    const query::RangeQuery& q = wl[i];
    EXPECT_TRUE(BitIdentical(before->answers[i],
                             direct_a.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1)));
  }

  auto swapped = client->Swap("acme", "7", path_b);
  ASSERT_TRUE(swapped.ok());
  EXPECT_EQ(*swapped, 2u);
  auto after = client->QueryTenant("acme", "7", wl);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->epoch, 2u);
  for (size_t i = 0; i < wl.size(); ++i) {
    const query::RangeQuery& q = wl[i];
    EXPECT_TRUE(BitIdentical(after->answers[i],
                             direct_b.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1)));
  }

  // Pinning the swapped-out epoch fails; the connection stays usable.
  auto stale = client->QueryTenant("acme", "7", wl, /*epoch=*/1);
  ASSERT_FALSE(stale.ok());
  auto pinned = client->QueryTenant("acme", "7", wl, /*epoch=*/2);
  ASSERT_TRUE(pinned.ok());

  // Per-shard stats and labeled metrics see both tenants.
  auto stats = client->ShardStats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("\"tenant\": \"acme\""), std::string::npos);
  EXPECT_NE(stats->find("\"tenant\": \"default\""), std::string::npos);
  auto filtered = client->ShardStats("acme", "7");
  ASSERT_TRUE(filtered.ok());
  EXPECT_EQ(filtered->find("\"tenant\": \"default\""), std::string::npos);
  auto metrics = client->Metrics();
  ASSERT_TRUE(metrics.ok());
  EXPECT_NE(metrics->find("stpt_shard_epoch{tenant=\"acme\",tile=\"7\"} 2"),
            std::string::npos);

  // Unload, then the tenant is gone while the default shard still serves.
  ASSERT_TRUE(client->Unload("acme", "7").ok());
  EXPECT_FALSE(client->QueryTenant("acme", "7", wl).ok());
  EXPECT_TRUE(client->Query({{0, 1, 0, 1, 0, 1}}).ok());
}

TEST_F(LoopbackTest, HammerWhileSwappingZeroErrorsBitIdentical) {
  const grid::Dims dims{12, 12, 24};
  StartServer(dims, 63);
  const Snapshot snap_a = MakeTestSnapshot(dims, 101);
  const Snapshot snap_b = MakeTestSnapshot(dims, 202);
  const grid::PrefixSum3D direct_a(snap_a.sanitized);
  const grid::PrefixSum3D direct_b(snap_b.sanitized);
  const ShardKey key{"acme", "0"};
  ASSERT_TRUE(registry_->Load(key, snap_a).ok());  // epoch 1 = A

  constexpr int kThreads = 4;
  constexpr int kBatch = 32;
  constexpr int kMinBatches = 40;
  constexpr int kMaxBatches = 4000;
  std::atomic<bool> swapping{true};
  std::atomic<int64_t> errors{0};
  std::atomic<int64_t> mismatches{0};
  std::atomic<int64_t> batches_done{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        errors.fetch_add(1);
        return;
      }
      const query::Workload wl =
          MakeQueries(dims, kMinBatches * kBatch, 5000 + static_cast<uint64_t>(t));
      for (int b = 0; b < kMaxBatches && (b < kMinBatches || swapping.load());
           ++b) {
        const int slot = b % kMinBatches;
        const query::Workload batch(wl.begin() + slot * kBatch,
                                    wl.begin() + (slot + 1) * kBatch);
        auto response = client->QueryTenant("acme", "0", batch);
        if (!response.ok()) {
          errors.fetch_add(1);
          continue;
        }
        // Load published epoch 1 (= A); each swap alternates to B, A, ...
        // so odd epochs answer from A and even epochs from B.
        const grid::PrefixSum3D& direct =
            (response->epoch % 2 == 1) ? direct_a : direct_b;
        for (size_t i = 0; i < batch.size(); ++i) {
          const query::RangeQuery& q = batch[i];
          if (!BitIdentical(response->answers[i],
                            direct.BoxSum(q.x0, q.x1, q.y0, q.y1, q.t0, q.t1))) {
            mismatches.fetch_add(1);
          }
        }
        batches_done.fetch_add(1);
      }
    });
  }

  constexpr int kSwaps = 30;
  for (int s = 0; s < kSwaps; ++s) {
    auto epoch = registry_->Swap(key, (s % 2 == 0) ? snap_b : snap_a);
    ASSERT_TRUE(epoch.ok()) << epoch.status().ToString();
    EXPECT_EQ(*epoch, static_cast<uint64_t>(s + 2));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  swapping.store(false);
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(batches_done.load(), kThreads * kMinBatches);
  EXPECT_NE(registry_->metrics().ToPrometheusText().find(
                "stpt_registry_swaps_total 30"),
            std::string::npos);
}

// --- Shutdown drain and fd hygiene -----------------------------------------

int CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  EXPECT_NE(dir, nullptr);
  int count = 0;
  while (dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count - 1;  // exclude the directory iteration fd itself
}

TEST(ShutdownDrainTest, InFlightResponsesFlushBeforeCloseAndNoFdLeaks) {
  const int fds_before = CountOpenFds();
  {
    const grid::Dims dims{16, 16, 32};
    const Snapshot snap = MakeTestSnapshot(dims, 67);
    auto registry = SnapshotRegistry::Create();
    ASSERT_TRUE(registry.ok());
    ASSERT_TRUE(
        (*registry)->Load(ShardKey{kDefaultTenant, kDefaultTile}, snap).ok());
    auto server = EventLoopServer::Create(registry->get(), {});
    ASSERT_TRUE(server.ok());
    ASSERT_TRUE((*server)->Start().ok());

    std::promise<void> first_response;
    auto first_done = first_response.get_future();
    std::atomic<int64_t> ok_batches{0};
    std::atomic<bool> close_was_clean{false};
    std::thread client_thread([&] {
      auto client = Client::Connect("127.0.0.1", (*server)->port());
      ASSERT_TRUE(client.ok());
      const query::Workload wl = MakeQueries(dims, 128, 69);
      bool signaled = false;
      for (int i = 0; i < 1000000; ++i) {
        auto answers = client->Query(wl);
        if (answers.ok()) {
          ok_batches.fetch_add(1);
          if (!signaled) {
            first_response.set_value();
            signaled = true;
          }
          continue;
        }
        // Drain guarantees responses are flushed whole: the failure must be
        // a connection-level close on a frame boundary, never a truncated
        // or corrupted frame.
        close_was_clean.store(
            answers.status().message().find("connection") != std::string::npos);
        break;
      }
    });
    first_done.wait();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    (*server)->Stop();
    client_thread.join();
    EXPECT_GE(ok_batches.load(), 1);
    EXPECT_TRUE(close_was_clean.load());
    EXPECT_EQ((*server)->open_connections(), 0);
  }
  // Listener, epoll, eventfd, and every connection fd are gone.
  EXPECT_EQ(CountOpenFds(), fds_before);
}

TEST(ShutdownDrainTest, ConnectionMidRequestAtShutdownClosedCleanly) {
  const int fds_before = CountOpenFds();
  {
    auto registry = SnapshotRegistry::Create();
    ASSERT_TRUE(registry.ok());
    ASSERT_TRUE((*registry)
                    ->Load(ShardKey{kDefaultTenant, kDefaultTile},
                           MakeTestSnapshot())
                    .ok());
    auto server = EventLoopServer::Create(registry->get(), {});
    ASSERT_TRUE(server.ok());
    ASSERT_TRUE((*server)->Start().ok());

    // A connection parked mid-frame: 6 bytes of a frame that declares 10.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>((*server)->port()));
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const uint8_t partial[6] = {10, 0, 0, 0,
                                static_cast<uint8_t>(MsgType::kQueryRequest), 1};
    ASSERT_EQ(::send(fd, partial, sizeof(partial), MSG_NOSIGNAL), 6);
    // Let the loop accept and read the half frame before stopping.
    for (int i = 0; i < 200 && (*server)->connections_accepted() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ((*server)->connections_accepted(), 1u);

    (*server)->Stop();
    EXPECT_EQ((*server)->open_connections(), 0);
    // The peer observes the close promptly rather than hanging.
    uint8_t buf[64];
    const ssize_t r = ::recv(fd, buf, sizeof(buf), 0);
    EXPECT_LE(r, 0);
    ::close(fd);
  }
  EXPECT_EQ(CountOpenFds(), fds_before);
}

// --- Backpressure ----------------------------------------------------------

TEST(BackpressureTest, SlowReaderIsPausedAndEveryResponseStillArrives) {
  auto registry = SnapshotRegistry::Create();
  ASSERT_TRUE(registry.ok());
  ASSERT_TRUE((*registry)
                  ->Load(ShardKey{kDefaultTenant, kDefaultTile},
                         MakeTestSnapshot({8, 8, 12}, 77))
                  .ok());
  EventLoopOptions options;
  options.write_budget_bytes = 4096;  // minimum: trip the budget quickly
  options.so_sndbuf = 16384;  // keep the kernel from absorbing the backlog
  auto server = EventLoopServer::Create(registry->get(), options);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  // A deliberately tiny receive window so the server's responses back up.
  const int rcvbuf = 8192;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>((*server)->port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // Pipeline thousands of metrics requests without reading a byte. Each
  // response is a multi-KiB exposition payload, so the pending bytes blow
  // through the 4 KiB budget and the loop must pause reading this
  // connection instead of buffering responses without bound.
  constexpr int kRequests = 1000;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(WriteFrame(fd, MsgType::kMetricsRequest, {}).ok()) << i;
  }
  // Now drain: every single response must arrive, in order, well-formed.
  int got = 0;
  for (; got < kRequests; ++got) {
    auto frame = ReadFrame(fd);
    ASSERT_TRUE(frame.ok()) << "response " << got << ": "
                            << frame.status().ToString();
    ASSERT_EQ(frame->type, MsgType::kMetricsResponse);
  }
  EXPECT_EQ(got, kRequests);

  const std::string text = (*server)->metrics().ToPrometheusText();
  const double pauses = PrometheusValue(text, "stpt_serve_backpressure_pauses_total");
  EXPECT_GE(pauses, 1.0);
  const double paused_now = PrometheusValue(text, "stpt_serve_backpressure_paused");
  EXPECT_EQ(paused_now, 0.0);  // fully drained -> nothing paused anymore

  ::close(fd);
  (*server)->Stop();
}

// --- Options validation and metrics export ---------------------------------

TEST(EventLoopServerTest, CreateRejectsInvalidOptions) {
  auto registry = SnapshotRegistry::Create();
  ASSERT_TRUE(registry.ok());

  EXPECT_FALSE(EventLoopServer::Create(nullptr, EventLoopOptions{}).ok());

  EventLoopOptions bad_port;
  bad_port.port = 70000;
  EXPECT_FALSE(EventLoopServer::Create(registry->get(), bad_port).ok());
  bad_port.port = -1;
  EXPECT_FALSE(EventLoopServer::Create(registry->get(), bad_port).ok());

  EventLoopOptions bad_backlog;
  bad_backlog.listen_backlog = 0;
  EXPECT_FALSE(EventLoopServer::Create(registry->get(), bad_backlog).ok());

  EventLoopOptions bad_budget;
  bad_budget.write_budget_bytes = 1;
  EXPECT_FALSE(EventLoopServer::Create(registry->get(), bad_budget).ok());

  EventLoopOptions bad_inflight;
  bad_inflight.max_inflight_batches = 0;
  EXPECT_FALSE(EventLoopServer::Create(registry->get(), bad_inflight).ok());

  EventLoopOptions bad_bind;
  bad_bind.bind_address = "not-an-address";
  auto created = EventLoopServer::Create(registry->get(), bad_bind);
  ASSERT_FALSE(created.ok());
  EXPECT_EQ(created.status().code(), StatusCode::kInvalidArgument);
}

/// Runs the same batched workload through a loopback server at `threads`
/// exec threads and requires the cache counters reported by the `metrics`
/// wire command to exactly match the default shard's `stats` counters.
void RunMetricsMatchesStats(int threads) {
  const int prev_threads = exec::Threads();
  exec::SetThreads(threads);
  const grid::Dims dims{10, 10, 18};
  const Snapshot snap = MakeTestSnapshot(dims, 61);
  auto registry = SnapshotRegistry::Create();
  ASSERT_TRUE(registry.ok());
  ASSERT_TRUE(
      (*registry)->Load(ShardKey{kDefaultTenant, kDefaultTile}, snap).ok());
  auto server = EventLoopServer::Create(registry->get(), {});
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Start().ok());

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  const query::Workload wl = MakeQueries(dims, 256, 67);
  // Two identical passes: the second one is cache-hot.
  for (int pass = 0; pass < 2; ++pass) {
    auto answers = client->Query(wl);
    ASSERT_TRUE(answers.ok()) << answers.status().ToString();
    ASSERT_EQ(answers->size(), wl.size());
  }

  auto text = client->Metrics();
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  auto gen = (*registry)->RouteDefault();
  ASSERT_TRUE(gen.ok());
  const ServerStats stats = (*gen)->engine->stats();
  EXPECT_EQ(stats.queries, 512u);
  EXPECT_EQ(PrometheusValue(*text, "stpt_serve_queries_total"),
            static_cast<double>(stats.queries));
  EXPECT_EQ(PrometheusValue(*text, "stpt_serve_cache_hits_total"),
            static_cast<double>(stats.cache_hits));
  EXPECT_EQ(PrometheusValue(*text, "stpt_serve_cache_misses_total"),
            static_cast<double>(stats.cache_misses));
  // The payload also carries the event-loop, registry, and process-global
  // registries.
  EXPECT_NE(text->find("# TYPE stpt_serve_query_latency_ns histogram"),
            std::string::npos);
  EXPECT_NE(text->find("stpt_serve_dispatches_total"), std::string::npos);
  EXPECT_NE(text->find("stpt_registry_shards 1"), std::string::npos);
  EXPECT_NE(text->find("stpt_shard_epoch{tenant=\"default\",tile=\"0\"} 1"),
            std::string::npos);

  (*server)->Stop();
  exec::SetThreads(prev_threads);
}

TEST(MetricsExportTest, WireMetricsMatchStatsSingleThread) {
  RunMetricsMatchesStats(1);
}

TEST(MetricsExportTest, WireMetricsMatchStatsEightThreads) {
  RunMetricsMatchesStats(8);
}

TEST(MetricsExportTest, RegistriesArePerEngineInstance) {
  const Snapshot snap = MakeTestSnapshot({6, 6, 6});
  auto a = QueryServer::Create(snap);
  auto b = QueryServer::Create(snap);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(a->Answer({0, 1, 0, 1, 0, 1}).ok());
  EXPECT_EQ(a->stats().queries, 1u);
  EXPECT_EQ(b->stats().queries, 0u);
  EXPECT_NE(a->metrics().ToPrometheusText().find("stpt_serve_queries_total 1"),
            std::string::npos);
}

}  // namespace
}  // namespace stpt::serve
