#include <cmath>

#include "common/rng.h"
#include "filter/kalman.h"
#include "gtest/gtest.h"

namespace stpt::filter {
namespace {

TEST(KalmanTest, RejectsInvalidVariances) {
  EXPECT_FALSE(ScalarKalmanFilter::Create(0.0, 1.0, 0.0, 1.0).ok());
  EXPECT_FALSE(ScalarKalmanFilter::Create(1.0, 0.0, 0.0, 1.0).ok());
  EXPECT_FALSE(ScalarKalmanFilter::Create(1.0, 1.0, 0.0, -1.0).ok());
  EXPECT_TRUE(ScalarKalmanFilter::Create(1.0, 1.0, 0.0, 0.0).ok());
}

TEST(KalmanTest, PredictGrowsVariance) {
  auto kf = ScalarKalmanFilter::Create(0.5, 1.0, 0.0, 1.0);
  ASSERT_TRUE(kf.ok());
  const double v0 = kf->variance();
  kf->Predict();
  EXPECT_DOUBLE_EQ(kf->variance(), v0 + 0.5);
}

TEST(KalmanTest, CorrectShrinksVariance) {
  auto kf = ScalarKalmanFilter::Create(0.5, 1.0, 0.0, 2.0);
  ASSERT_TRUE(kf.ok());
  const double v0 = kf->variance();
  kf->Correct(1.0);
  EXPECT_LT(kf->variance(), v0);
}

TEST(KalmanTest, GainBalancesPriorAndMeasurement) {
  // With prior variance == measurement variance the gain is 0.5 and the
  // posterior is the midpoint.
  auto kf = ScalarKalmanFilter::Create(1e-9, 4.0, 0.0, 4.0);
  ASSERT_TRUE(kf.ok());
  const double post = kf->Correct(10.0);
  EXPECT_NEAR(kf->gain(), 0.5, 1e-9);
  EXPECT_NEAR(post, 5.0, 1e-6);
}

TEST(KalmanTest, ConvergesToConstantSignal) {
  Rng rng(77);
  auto kf = ScalarKalmanFilter::Create(1e-4, 1.0, 0.0, 1.0);
  ASSERT_TRUE(kf.ok());
  const double truth = 3.0;
  double estimate = 0.0;
  for (int t = 0; t < 500; ++t) {
    kf->Predict();
    estimate = kf->Correct(truth + rng.Gaussian(0.0, 1.0));
  }
  EXPECT_NEAR(estimate, truth, 0.25);
}

TEST(KalmanTest, FiltersNoiseBelowRawVariance) {
  // The posterior should track a slow ramp with lower MSE than raw
  // observations.
  Rng rng(78);
  auto kf = ScalarKalmanFilter::Create(0.05, 4.0, 0.0, 4.0);
  ASSERT_TRUE(kf.ok());
  double mse_filter = 0.0, mse_raw = 0.0;
  const int n = 2000;
  for (int t = 0; t < n; ++t) {
    const double truth = 0.01 * t;
    const double z = truth + rng.Gaussian(0.0, 2.0);
    kf->Predict();
    const double est = kf->Correct(z);
    mse_filter += (est - truth) * (est - truth);
    mse_raw += (z - truth) * (z - truth);
  }
  EXPECT_LT(mse_filter, 0.5 * mse_raw);
}

TEST(PidTest, ProportionalOnlyScalesError) {
  PidController pid(2.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(pid.Update(1.5), 3.0);
  EXPECT_DOUBLE_EQ(pid.Update(-1.0), -2.0);
}

TEST(PidTest, IntegralAveragesWindow) {
  PidController pid(0.0, 1.0, 0.0, /*integral_window=*/2);
  EXPECT_DOUBLE_EQ(pid.Update(2.0), 2.0);        // window {2}
  EXPECT_DOUBLE_EQ(pid.Update(4.0), 3.0);        // window {2,4}
  EXPECT_DOUBLE_EQ(pid.Update(0.0), 2.0);        // window {4,0}
}

TEST(PidTest, DerivativeRespondsToChange) {
  PidController pid(0.0, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(pid.Update(1.0), 0.0);  // no previous error
  EXPECT_DOUBLE_EQ(pid.Update(3.0), 2.0);
  EXPECT_DOUBLE_EQ(pid.Update(2.0), -1.0);
}

TEST(PidTest, ResetClearsState) {
  PidController pid(0.0, 0.0, 1.0);
  pid.Update(1.0);
  pid.Update(2.0);
  pid.Reset();
  EXPECT_DOUBLE_EQ(pid.Update(5.0), 0.0);  // derivative has no history again
}

}  // namespace
}  // namespace stpt::filter
