// Event-level tracing, training telemetry, and the privacy-budget audit
// ledger: the observability surfaces added on top of the aggregate-only
// obs layer. The three suites here mirror the three user-facing artifacts:
// the Chrome trace-event export, the --train-log loss curve, and the
// --audit-ledger JSONL whose composed epsilon must equal the accountant's
// spend bit-for-bit.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/stpt.h"
#include "dp/audit_ledger.h"
#include "dp/budget_accountant.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "gtest/gtest.h"
#include "nn/predictor.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace stpt {
namespace {

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t count = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// ------------------------- Chrome trace export -------------------------

TEST(TraceExportTest, DisabledByDefaultBuffersNoEvents) {
  obs::StopTraceEvents();
  const size_t before = obs::TraceEventCount();
  {
    obs::Span span("telemetry/disabled");
  }
  obs::TraceCounter("telemetry/disabled_counter", 1.0);
  EXPECT_EQ(obs::TraceEventCount(), before);
  EXPECT_FALSE(obs::TraceEventsEnabled());
}

TEST(TraceExportTest, ExportIsBalancedWellFormedAndThreadNamed) {
  obs::RegisterCurrentThreadName("telemetry-main");
  obs::StartTraceEvents();
  {
    obs::Span outer("telemetry/outer");
    {
      obs::Span inner("telemetry/inner");
    }
    obs::TraceCounter("telemetry/gauge", 2.5);
  }
  obs::StopTraceEvents();
  const std::string json = obs::ExportChromeTrace();

  // Container shape (golden): a traceEvents array with ms display units.
  EXPECT_EQ(json.rfind("{\"traceEvents\": [", 0), 0u) << json;
  EXPECT_NE(json.find("], \"displayTimeUnit\": \"ms\"}"), std::string::npos);

  // Balanced duration events.
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""),
            CountOccurrences(json, "\"ph\": \"E\""));
  EXPECT_GE(CountOccurrences(json, "\"ph\": \"B\""), 2u);

  // Both spans, the counter sample, and the thread-name metadata record.
  EXPECT_NE(json.find("\"name\": \"telemetry/outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"telemetry/inner\""), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"value\": 2.5}"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("telemetry-main"), std::string::npos);

  // Every object the exporter emits carries the stpt category or is a
  // metadata record; quotes and braces must pair up for the JSON to load.
  EXPECT_EQ(CountOccurrences(json, "{"), CountOccurrences(json, "}"));
  EXPECT_EQ(CountOccurrences(json, "\"") % 2, 0u);
}

TEST(TraceExportTest, RingTruncationStaysBalanced) {
  obs::StartTraceEvents(/*per_thread_capacity=*/5);
  for (int i = 0; i < 20; ++i) {
    obs::Span span("telemetry/ring");
  }
  obs::StopTraceEvents();
  const std::string json = obs::ExportChromeTrace();
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""),
            CountOccurrences(json, "\"ph\": \"E\""));
}

TEST(TraceExportTest, ParallelRegionRendersWorkerLanes) {
  exec::SetThreads(4);
  obs::StartTraceEvents();
  {
    obs::Span span("telemetry/parallel_region");
    std::vector<double> out(1 << 12);
    exec::ParallelForRange(static_cast<int64_t>(out.size()),
                           [&](int64_t begin, int64_t end) {
                             for (int64_t i = begin; i < end; ++i) {
                               out[i] = static_cast<double>(i) * 0.5;
                             }
                           });
  }
  obs::StopTraceEvents();
  exec::SetThreads(0);
  const std::string json = obs::ExportChromeTrace();
  // Workers registered their lanes and tagged chunks with the dispatching
  // span's label.
  EXPECT_NE(json.find("stpt-worker-"), std::string::npos) << json;
  EXPECT_GE(CountOccurrences(json, "\"name\": \"telemetry/parallel_region\""), 3u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\": \"B\""),
            CountOccurrences(json, "\"ph\": \"E\""));
}

TEST(TraceExportTest, WriteChromeTraceRoundTrips) {
  obs::StartTraceEvents();
  {
    obs::Span span("telemetry/file");
  }
  obs::StopTraceEvents();
  const std::string path = testing::TempDir() + "telemetry_trace.json";
  ASSERT_TRUE(obs::WriteChromeTrace(path));
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), obs::ExportChromeTrace());
  std::remove(path.c_str());
}

// --------------------------- Structured logger ---------------------------

TEST(LogTest, ParsesLevelsAndRejectsJunk) {
  obs::LogLevel level;
  EXPECT_TRUE(obs::ParseLogLevel("debug", &level));
  EXPECT_EQ(level, obs::LogLevel::kDebug);
  EXPECT_TRUE(obs::ParseLogLevel("off", &level));
  EXPECT_EQ(level, obs::LogLevel::kOff);
  EXPECT_FALSE(obs::ParseLogLevel("verbose", &level));
}

TEST(LogTest, JsonlSinkWritesStructuredRecords) {
  const std::string path = testing::TempDir() + "telemetry_log.jsonl";
  ASSERT_TRUE(obs::SetLogFile(path));
  obs::SetLogLevel(obs::LogLevel::kInfo);
  obs::Log(obs::LogLevel::kInfo, "test", "hello", {{"key", "value"}});
  obs::Log(obs::LogLevel::kDebug, "test", "filtered out");
  obs::SetLogLevel(obs::LogLevel::kWarn);  // restore the default
  ASSERT_TRUE(obs::SetLogFile(""));        // back to stderr
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"level\": \"info\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"component\": \"test\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"message\": \"hello\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"key\": \"value\""), std::string::npos);
  std::remove(path.c_str());
}

// --------------------------- Training telemetry ---------------------------

nn::WindowDataset SineDataset(int series_count, int length) {
  std::vector<std::vector<double>> series(series_count);
  for (int s = 0; s < series_count; ++s) {
    for (int t = 0; t < length; ++t) {
      series[s].push_back(0.5 + 0.4 * std::sin(0.3 * t + s));
    }
  }
  return nn::MakeWindows(series, /*window_size=*/4);
}

TEST(TrainingTelemetryTest, TrainLogHasOneRowPerEpochAndGaugesAreFinite) {
  Rng rng(11);
  nn::PredictorConfig pc;
  pc.window_size = 4;
  pc.embedding_size = 4;
  pc.hidden_size = 4;
  auto predictor = nn::SequencePredictor::Create(nn::ModelKind::kGru, pc, rng);
  const nn::WindowDataset ds = SineDataset(3, 24);

  nn::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 8;
  const std::string path = testing::TempDir() + "telemetry_loss.jsonl";
  tc.train_log_path = path;

  auto stats = nn::TrainPredictor(predictor.get(), ds, tc, rng);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->epoch_losses.size(), 4u);

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 4u);
  for (int e = 0; e < 4; ++e) {
    EXPECT_NE(lines[e].find("\"epoch\": " + std::to_string(e)),
              std::string::npos);
    EXPECT_NE(lines[e].find("\"loss\": "), std::string::npos);
    EXPECT_NE(lines[e].find("\"grad_norm\": "), std::string::npos);
    EXPECT_NE(lines[e].find("\"lr\": "), std::string::npos);
    EXPECT_NE(lines[e].find("\"batches\": "), std::string::npos);
  }
  std::remove(path.c_str());

  // The gauges track the final epoch exactly (Set, not averaged).
  obs::Gauge* loss_gauge =
      obs::Registry::Global().GetGauge("stpt_nn_epoch_loss", "");
  ASSERT_NE(loss_gauge, nullptr);
  EXPECT_TRUE(std::isfinite(loss_gauge->Value()));
  EXPECT_EQ(loss_gauge->Value(), stats->epoch_losses.back());
  obs::Gauge* lr_gauge =
      obs::Registry::Global().GetGauge("stpt_nn_learning_rate", "");
  ASSERT_NE(lr_gauge, nullptr);
  EXPECT_EQ(lr_gauge->Value(), tc.learning_rate);

  // Training phases land in the trace profile even with event capture off.
  bool saw_train = false, saw_epoch = false;
  for (const auto& entry : obs::TraceProfile()) {
    if (entry.region == "nn/train") saw_train = true;
    if (entry.region == "nn/train_epoch") saw_epoch = true;
  }
  EXPECT_TRUE(saw_train);
  EXPECT_TRUE(saw_epoch);
}

TEST(TrainingTelemetryTest, TracedTrainingShowsPerOpEvents) {
  Rng rng(5);
  nn::PredictorConfig pc;
  pc.window_size = 4;
  pc.embedding_size = 4;
  pc.hidden_size = 4;
  auto predictor = nn::SequencePredictor::Create(nn::ModelKind::kGru, pc, rng);
  const nn::WindowDataset ds = SineDataset(2, 16);
  nn::TrainConfig tc;
  tc.epochs = 1;
  obs::StartTraceEvents();
  ASSERT_TRUE(nn::TrainPredictor(predictor.get(), ds, tc, rng).ok());
  obs::StopTraceEvents();
  const std::string json = obs::ExportChromeTrace();
  // Forward and backward autograd ops appear as duration events, and the
  // per-epoch loss appears as a counter sample.
  EXPECT_NE(json.find("\"name\": \"nn/MatMul\""), std::string::npos);
  EXPECT_NE(json.find(".bwd\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"nn/epoch_loss\""), std::string::npos);
}

// --------------------------- Audit ledger ---------------------------

TEST(AuditLedgerTest, RecordsCompositionAndMatchesAccountantExactly) {
  auto accountant = dp::BudgetAccountant::Create(10.0);
  ASSERT_TRUE(accountant.ok());
  dp::AuditLedger ledger;
  accountant->AttachLedger(&ledger);

  ASSERT_TRUE(accountant->Charge("pattern", 1.25).ok());
  ASSERT_TRUE(
      accountant->Charge("sanitize", 0.75, dp::ChargeDetails{"laplace", 3.0})
          .ok());
  ASSERT_TRUE(
      accountant->Charge("sanitize", 2.5, dp::ChargeDetails{"laplace", 8.0})
          .ok());
  // Rejected charges must not be recorded.
  EXPECT_FALSE(accountant->Charge("pattern", 100.0).ok());

  const auto records = ledger.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].seq, 0u);
  EXPECT_EQ(records[1].seq, 1u);
  EXPECT_EQ(records[2].seq, 2u);
  EXPECT_EQ(records[0].stage, "pattern");
  EXPECT_EQ(records[0].composition, "sequential");
  EXPECT_EQ(records[1].composition, "sequential");  // opens the sanitize group
  EXPECT_EQ(records[2].composition, "parallel");    // repeat within the group
  EXPECT_EQ(records[2].sensitivity, 8.0);

  EXPECT_EQ(ledger.TotalEpsilonRaw(), 1.25 + 0.75 + 2.5);
  // Bitwise equality, not near-equality: the replay is the same arithmetic.
  EXPECT_EQ(ledger.ComposedEpsilon(), accountant->ConsumedEpsilon());
  EXPECT_EQ(ledger.ComposedEpsilon(), 1.25 + 2.5);
}

TEST(AuditLedgerTest, JsonlSinkMirrorsInMemoryRecords) {
  const std::string path = testing::TempDir() + "telemetry_ledger.jsonl";
  dp::AuditLedger ledger;
  ASSERT_TRUE(ledger.OpenFile(path).ok());
  auto accountant = dp::BudgetAccountant::Create(5.0);
  ASSERT_TRUE(accountant.ok());
  accountant->AttachLedger(&ledger);
  ASSERT_TRUE(accountant->Charge("a", 1.0).ok());
  ASSERT_TRUE(accountant->Charge("b", 2.0).ok());

  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"seq\": 0"), std::string::npos);
  EXPECT_NE(lines[0].find("\"stage\": \"a\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"consumed_after\": 3"), std::string::npos);
  std::ostringstream joined;
  for (const auto& line : lines) joined << line << "\n";
  EXPECT_EQ(ledger.ToJsonl(), joined.str());
  std::remove(path.c_str());
}

grid::ConsumptionMatrix PipelineMatrix(grid::Dims dims) {
  auto m = grid::ConsumptionMatrix::Create(dims);
  EXPECT_TRUE(m.ok());
  for (int x = 0; x < dims.cx; ++x) {
    for (int y = 0; y < dims.cy; ++y) {
      for (int t = 0; t < dims.ct; ++t) {
        m->set(x, y, t, (x + y) * 2.0 + std::sin(2.0 * M_PI * t / 12.0) + 2.0);
      }
    }
  }
  return std::move(m).value();
}

core::StptConfig PipelineConfig() {
  core::StptConfig cfg;
  cfg.eps_pattern = 10.0;
  cfg.eps_sanitize = 20.0;
  cfg.t_train = 16;
  cfg.quadtree_depth = 2;
  cfg.quantization_levels = 4;
  cfg.predictor.window_size = 3;
  cfg.predictor.embedding_size = 6;
  cfg.predictor.hidden_size = 6;
  cfg.training.epochs = 2;
  cfg.training.batch_size = 8;
  return cfg;
}

TEST(AuditLedgerTest, FullPipelineLedgerSumsToAccountantSpend) {
  const auto cons = PipelineMatrix({4, 4, 32});
  core::StptConfig cfg = PipelineConfig();
  dp::AuditLedger ledger;
  cfg.audit_ledger = &ledger;
  Rng rng(42);
  auto result = core::Stpt(cfg).Publish(cons, 1.0, rng);
  ASSERT_TRUE(result.ok());

  // One pattern charge plus one charge per positively-budgeted partition.
  const auto records = ledger.records();
  ASSERT_GE(records.size(), 2u);
  EXPECT_EQ(records[0].stage, "pattern");
  EXPECT_EQ(records[0].epsilon, cfg.eps_pattern);
  size_t positive_partitions = 0;
  for (double e : result->partition_epsilons) {
    if (e > 0.0) ++positive_partitions;
  }
  EXPECT_EQ(records.size(), 1u + positive_partitions);
  for (const auto& r : records) {
    EXPECT_EQ(r.mechanism, "laplace");
    EXPECT_GT(r.epsilon, 0.0);
  }

  // The headline invariant: replaying the ledger reproduces the
  // accountant's composed spend EXACTLY, as exported via the budget gauge.
  obs::Gauge* consumed =
      obs::Registry::Global().GetGauge("stpt_core_epsilon_consumed", "");
  ASSERT_NE(consumed, nullptr);
  EXPECT_EQ(ledger.ComposedEpsilon(), consumed->Value());
  EXPECT_EQ(ledger.records().back().consumed_after, consumed->Value());
  // And it matches the pipeline's own outputs: eps_pattern + max partition.
  double max_eps = 0.0;
  for (double e : result->partition_epsilons) max_eps = std::max(max_eps, e);
  EXPECT_EQ(ledger.ComposedEpsilon(), cfg.eps_pattern + max_eps);
}

// --------------------------- Determinism ---------------------------

TEST(TracingDeterminismTest, PublishedOutputIsBitIdenticalWithTracingOn) {
  const auto cons = PipelineMatrix({4, 4, 32});
  const core::StptConfig cfg = PipelineConfig();

  Rng rng_off(7);
  auto plain = core::Stpt(cfg).Publish(cons, 1.0, rng_off);
  ASSERT_TRUE(plain.ok());

  exec::SetThreads(3);
  obs::StartTraceEvents();
  Rng rng_on(7);
  auto traced = core::Stpt(cfg).Publish(cons, 1.0, rng_on);
  obs::StopTraceEvents();
  exec::SetThreads(0);
  ASSERT_TRUE(traced.ok());

  ASSERT_EQ(plain->sanitized.size(), traced->sanitized.size());
  for (size_t i = 0; i < plain->sanitized.size(); ++i) {
    EXPECT_EQ(plain->sanitized.data()[i], traced->sanitized.data()[i]) << i;
  }
}

}  // namespace
}  // namespace stpt
